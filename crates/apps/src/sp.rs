//! SP (NPB) — scalar penta-diagonal solver skeleton.
//!
//! Paper Table II: `u` (WAR), `step` (Index). Each time step computes the
//! right-hand side from the current solution and then adds it back into
//! `u`; `rhs` is fully rewritten before use every iteration.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// sp (NPB): ADI time-stepping skeleton
void compute_rhs(float* u, float* rhs, int n) {
    for (int i = 0; i < n; i = i + 1) {
        rhs[i] = (u[(i + 1) % n] - 2.0 * u[i] + u[(i + n - 1) % n]) * 0.1;
    }
}
void add(float* u, float* rhs, int n) {
    for (int i = 0; i < n; i = i + 1) {
        u[i] = u[i] + rhs[i];
    }
}
int main() {
    float u[@N@];
    float rhs[@N@];
    for (int i = 0; i < @N@; i = i + 1) {
        u[i] = float(i % 5) * 0.5 + 1.0;
        rhs[i] = 0.0;
    }
    for (int step = 0; step < @ITERS@; step = step + 1) { // @loop-start
        compute_rhs(u, rhs, @N@);
        add(u, rhs, @N@);
    } // @loop-end
    print(u[@MID@]);
    return 0;
}
";

/// Source at grid size `n`, `iters` time steps.
pub fn source(n: usize, iters: usize) -> String {
    TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@MID@", &(n / 2).to_string())
        .replace("@ITERS@", &iters.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(16, 8)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize) -> AppSpec {
    let source = source(n, iters);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "sp",
        description: "Scalar Penta-diagonal solver (NPB)",
        source,
        region,
        expected: vec![("u", DepType::War), ("step", DepType::Index)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }
}
