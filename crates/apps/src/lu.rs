//! LU (NPB) — lower-upper Gauss-Seidel (SSOR) solver skeleton.
//!
//! Paper Table II: `u`, `rho_i`, `qs`, `rsd` (all WAR) and `istep` (Index).
//! The SSOR sweep reads the previous residual and the derived quantities
//! `rho_i`/`qs` (computed at the *end* of the previous iteration), then
//! updates the residual and the solution in place and recomputes the
//! derived fields — so all four arrays carry state across iterations.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// lu (NPB): SSOR time step skeleton
void jacld_blts(float* rsd, float* u, float* rho_i, float* qs, float* coeffs, int n) {
    for (int i = 0; i < n; i = i + 1) {
        float c = coeffs[i * 4] + coeffs[i * 4 + 1] * 0.5;
        rsd[i] = 0.9 * rsd[i] + 0.1 * c * (u[i] * rho_i[i] + qs[i] * 0.05);
    }
}
void add_u(float* u, float* rsd, int n) {
    for (int i = 0; i < n; i = i + 1) {
        u[i] = u[i] + 0.5 * rsd[i];
    }
}
int main() {
    float u[@N@];
    float rsd[@N@];
    float rho_i[@N@];
    float qs[@N@];
    float coeffs[@N4@];
    for (int i = 0; i < @N4@; i = i + 1) {
        coeffs[i] = 0.6;
    }
    for (int i = 0; i < @N@; i = i + 1) {
        u[i] = 1.0 + float(i % 4) * 0.3;
        rsd[i] = 0.5;
        rho_i[i] = 1.0 / (1.0 + u[i]);
        qs[i] = u[i] * u[i] * 0.5;
    }
    for (int istep = 0; istep < @ITERS@; istep = istep + 1) { // @loop-start
        jacld_blts(rsd, u, rho_i, qs, coeffs, @N@);
        add_u(u, rsd, @N@);
        for (int i = 0; i < @N@; i = i + 1) {
            rho_i[i] = 1.0 / (1.0 + fabs(u[i]));
            qs[i] = u[i] * u[i] * 0.5;
        }
    } // @loop-end
    print(u[0]);
    print(rsd[0]);
    return 0;
}
";

/// Source at grid size `n`, `iters` SSOR steps.
pub fn source(n: usize, iters: usize) -> String {
    TEMPLATE
        .replace("@N4@", &(4 * n).to_string())
        .replace("@N@", &n.to_string())
        .replace("@ITERS@", &iters.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(16, 8)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize) -> AppSpec {
    let source = source(n, iters);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "lu",
        description: "Lower-Upper Gauss-Seidel solver (NPB)",
        source,
        region,
        expected: vec![
            ("u", DepType::War),
            ("rho_i", DepType::War),
            ("qs", DepType::War),
            ("rsd", DepType::War),
            ("istep", DepType::Index),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }
}
