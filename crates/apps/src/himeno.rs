//! Himeno — Poisson-equation pressure relaxation (Jacobi sweeps).
//!
//! Paper Table II: critical variables `p` (WAR) and `n` (Index). The
//! pressure array is read by the stencil and fully rewritten from the work
//! array every outer iteration; `gosa` is recomputed from scratch each
//! iteration and printed inside the loop, so it needs no checkpoint.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// himeno: Jacobi pressure relaxation
float jacobi_sweep(float* p, float* bnd, float* wrk, int nn) {
    float gosa = 0.0;
    for (int i = 1; i < nn - 1; i = i + 1) {
        float s0 = p[i - 1] * 0.3 + p[i] * 0.4 + p[i + 1] * 0.3;
        float ss = (s0 - p[i]) * bnd[i];
        gosa = gosa + ss * ss;
        wrk[i] = p[i] + 0.8 * ss;
    }
    wrk[0] = p[0];
    wrk[nn - 1] = p[nn - 1];
    for (int i = 0; i < nn; i = i + 1) {
        p[i] = wrk[i];
    }
    return gosa;
}
int main() {
    float p[@N@];
    float bnd[@N@];
    float wrk[@N@];
    float gosa = 0.0;
    for (int i = 0; i < @N@; i = i + 1) {
        p[i] = float(i * i) / float(@NM1@ * @NM1@);
        bnd[i] = 1.0;
        wrk[i] = 0.0;
    }
    for (int n = 0; n < @ITERS@; n = n + 1) { // @loop-start
        gosa = jacobi_sweep(p, bnd, wrk, @N@);
        print(gosa);
    } // @loop-end
    print(p[@MID@]);
    return 0;
}
";

/// Source at pressure-array size `n` over `iters` sweeps.
pub fn source(n: usize, iters: usize) -> String {
    TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@NM1@", &(n - 1).to_string())
        .replace("@MID@", &(n / 2).to_string())
        .replace("@ITERS@", &iters.to_string())
}

/// Default (analysis-sized) spec.
pub fn spec() -> AppSpec {
    spec_scaled(16, 8)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize) -> AppSpec {
    let source = source(n, iters);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "himeno",
        description: "Poisson equation solver measuring floating-point performance",
        source,
        region,
        expected: vec![("p", DepType::War), ("n", DepType::Index)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn gosa_is_skipped_as_rewritten() {
        let run = crate::analyze_app(&spec());
        assert!(run.report.skipped.iter().any(|(n, _)| &**n == "gosa"));
    }
}
