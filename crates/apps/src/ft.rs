//! FT (NPB) — discrete 3-D FFT (evolve/checksum skeleton).
//!
//! Paper Table II: `y` (WAR), `sum` (Outcome), `kt` (Index). Like the
//! original, `y` and `twiddle` are *globals used inside functions called
//! from the main loop* — the situation of the paper's Challenge 1
//! workaround (§V-B): they are initialized at region level right before the
//! loop so the pre-processing can collect them. `evolve` multiplies `y` by
//! the twiddle factors in place (WAR); the checksum is recomputed fresh
//! each iteration into `sum`, which is only consumed after the loop
//! (Outcome).

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// ft (NPB): evolve + checksum skeleton of the 3-D FFT benchmark
global float y[@N@];
global float twiddle[@N@];
void evolve(float* yy, float* tw, int n) {
    for (int i = 0; i < n; i = i + 1) {
        yy[i] = yy[i] * tw[i];
    }
}
int main() {
    float sum = 0.0;
    for (int i = 0; i < @N@; i = i + 1) {
        y[i] = 1.0 + float(i % 7) * 0.1;
        twiddle[i] = 0.98 + float(i % 3) * 0.02;
    }
    for (int kt = 0; kt < @ITERS@; kt = kt + 1) { // @loop-start
        evolve(y, twiddle, @N@);
        float chk = 0.0;
        for (int i = 0; i < @N@; i = i + 1) { chk = chk + y[i]; }
        sum = chk / float(@N@);
    } // @loop-end
    print(sum);
    return 0;
}
";

/// Source at array size `n`, `iters` evolve steps.
pub fn source(n: usize, iters: usize) -> String {
    TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@ITERS@", &iters.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(16, 8)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize) -> AppSpec {
    let source = source(n, iters);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "ft",
        description: "Discrete 3D Fast Fourier Transform (NPB)",
        source,
        region,
        expected: vec![
            ("y", DepType::War),
            ("sum", DepType::Outcome),
            ("kt", DepType::Index),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn twiddle_global_is_read_only() {
        let run = crate::analyze_app(&spec());
        assert!(run
            .report
            .skipped
            .iter()
            .any(|(n, r)| &**n == "twiddle" && *r == autocheck_core::SkipReason::ReadOnlyInLoop));
    }
}
