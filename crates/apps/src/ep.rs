//! EP (NPB) — embarrassingly parallel Gaussian-pair generation.
//!
//! Paper Table II: `sy` (WAR), `q` (WAR), `sx` (WAR), `k` (Index). The
//! Gaussian sums `sx`/`sy` accumulate across iterations, and the annulus
//! histogram `q` is read-modify-written — only the bucket being incremented
//! is touched, so (unlike IS's scatter/scan arrays) it is WAR, not RAPO.
//! Random deviates are derived from the induction variable each iteration,
//! like NPB EP's per-batch seeds, so they are loop-local.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// ep (NPB): Gaussian pairs via an inline LCG, tallied into a histogram
int main() {
    float sx = 0.0;
    float sy = 0.0;
    float q[10];
    for (int i = 0; i < 10; i = i + 1) {
        q[i] = 0.0;
    }
    for (int k = 0; k < @ITERS@; k = k + 1) { // @loop-start
        int s1 = (k * 1103515245 + 12345) % 1000000;
        int s2 = (s1 * 1103515245 + 12345) % 1000000;
        if (s1 < 0) { s1 = -s1; }
        if (s2 < 0) { s2 = -s2; }
        float x1 = float(s1 % 1000) / 500.0 - 1.0;
        float x2 = float(s2 % 1000) / 500.0 - 1.0;
        float t = x1 * x1 + x2 * x2;
        if (t <= 1.0 && t > 0.0) {
            float fac = sqrt(-2.0 * log(t) / t);
            float gx = x1 * fac;
            float gy = x2 * fac;
            sx = sx + gx;
            sy = sy + gy;
            int l = int(fmax(fabs(gx), fabs(gy)));
            if (l > 9) { l = 9; }
            q[l] = q[l] + 1.0;
        }
    } // @loop-end
    print(sx);
    print(sy);
    for (int i = 0; i < 10; i = i + 1) {
        print(q[i]);
    }
    return 0;
}
";

/// Source with `iters` pair draws.
pub fn source(iters: usize) -> String {
    TEMPLATE.replace("@ITERS@", &iters.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(64)
}

/// Spec at a chosen scale.
pub fn spec_scaled(iters: usize) -> AppSpec {
    let source = source(iters);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "ep",
        description: "Embarrassingly Parallel random-number kernel (NPB)",
        source,
        region,
        expected: vec![
            ("sy", DepType::War),
            ("q", DepType::War),
            ("sx", DepType::War),
            ("k", DepType::Index),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn histogram_is_war_not_rapo() {
        // The RMW histogram only ever reads the element it rewrites.
        let run = crate::analyze_app(&spec());
        let q = run.report.critical_by_name("q").expect("q detected");
        assert_eq!(q.dep, DepType::War);
    }
}
