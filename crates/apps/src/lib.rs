//! The paper's 14 HPC benchmarks, rewritten in MiniLang.
//!
//! Table II of the paper evaluates AutoCheck on HPCCG, Himeno, the NAS
//! Parallel Benchmarks (CG, MG, FT, SP, EP, IS, BT, LU), three ECP proxy
//! apps (CoMD, miniAMR, AMG) and HACC. We cannot ship those C/C++ sources,
//! so each benchmark is rewritten as a scaled-down MiniLang kernel that
//! preserves exactly what AutoCheck analyzes: **the named variables and
//! their read/write patterns** across the main computation loop — each
//! paper-reported critical variable appears under its original name with
//! its original dependency class (WAR / RAPO / Outcome / Index), and each
//! paper-reported *non*-critical variable (e.g. CG's `z, p, q, r, A`)
//! appears with the access pattern that makes it skippable.
//!
//! Every app module provides a [`AppSpec`] with the source, the main
//! computation loop's location (the MCLR column of Table II, found via
//! `// @loop-start` / `// @loop-end` markers), and the expected critical
//! set. [`analyze_app`] runs the full substrate chain — compile → trace →
//! loop pass → AutoCheck — and is what the tests, examples and benchmark
//! harness all share.

pub mod amg;
pub mod bt;
pub mod cg;
pub mod comd;
pub mod ep;
pub mod ft;
pub mod hacc;
pub mod himeno;
pub mod hpccg;
pub mod is;
pub mod lu;
pub mod mg;
pub mod miniamr;
pub mod sp;
pub mod spec;

pub use spec::{analyze_app, region_from_markers, try_region_from_markers, AppRun, AppSpec};

/// All 14 benchmarks at their default (analysis-friendly) sizes, in the
/// paper's Table II order.
pub fn all_apps() -> Vec<AppSpec> {
    vec![
        himeno::spec(),
        hpccg::spec(),
        cg::spec(),
        mg::spec(),
        ft::spec(),
        sp::spec(),
        ep::spec(),
        is::spec(),
        bt::spec(),
        lu::spec(),
        comd::spec(),
        miniamr::spec(),
        amg::spec(),
        hacc::spec(),
    ]
}

/// Look up a benchmark by name.
pub fn app_by_name(name: &str) -> Option<AppSpec> {
    all_apps().into_iter().find(|a| a.name == name)
}

/// Input-size presets for the benchmark harness (the paper uses small
/// inputs for trace analysis and larger ones for the storage study).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Default analysis-friendly sizes (seconds for the whole suite).
    Small,
    /// Bigger traces for timing studies (Table III).
    Medium,
    /// Large state for the storage study (Table IV).
    Large,
}

/// All 14 benchmarks at a given scale.
pub fn all_apps_scaled(scale: Scale) -> Vec<AppSpec> {
    match scale {
        Scale::Small => all_apps(),
        Scale::Medium => vec![
            himeno::spec_scaled(48, 16),
            hpccg::spec_scaled(48, 12),
            cg::spec_scaled(32, 8, 6),
            mg::spec_scaled(48, 16),
            ft::spec_scaled(48, 16),
            sp::spec_scaled(48, 16),
            ep::spec_scaled(256),
            is::spec_scaled(24, 16),
            bt::spec_scaled(48, 16),
            lu::spec_scaled(48, 16),
            comd::spec_scaled(48, 16),
            miniamr::spec_scaled(48, 16),
            amg::spec_scaled(32, 12),
            hacc::spec_scaled(48, 16),
        ],
        Scale::Large => vec![
            himeno::spec_scaled(192, 24),
            hpccg::spec_scaled(192, 20),
            cg::spec_scaled(96, 10, 8),
            mg::spec_scaled(192, 24),
            ft::spec_scaled(192, 24),
            sp::spec_scaled(192, 24),
            ep::spec_scaled(1024),
            is::spec_scaled(48, 32),
            bt::spec_scaled(192, 24),
            lu::spec_scaled(192, 24),
            comd::spec_scaled(192, 24),
            miniamr::spec_scaled(192, 24),
            amg::spec_scaled(96, 16),
            hacc::spec_scaled(192, 24),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_fourteen_apps() {
        let apps = all_apps();
        assert_eq!(apps.len(), 14);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14, "names are unique");
    }

    #[test]
    fn all_sources_compile_and_verify() {
        for app in all_apps() {
            autocheck_minilang::compile(&app.source)
                .unwrap_or_else(|e| panic!("{} does not compile: {:?}", app.name, e));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(app_by_name("cg").is_some());
        assert!(app_by_name("hacc").is_some());
        assert!(app_by_name("nope").is_none());
    }
}
