//! Benchmark descriptors and the shared compile→trace→analyze driver.

use autocheck_core::{index_variables_of, Analyzer, DepType, Region, Report};
use autocheck_interp::{ExecOptions, Machine, NoHook, VecSink, WriterSink};
use autocheck_ir::Module;
use autocheck_trace::Record;
use std::time::{Duration, Instant};

/// One benchmark.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// Short name (Table II's first column, lowercased).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// MiniLang source.
    pub source: String,
    /// The main computation loop's location (the MCLR input).
    pub region: Region,
    /// Expected critical variables with dependency types — the ground truth
    /// the paper's Table II reports for the original benchmark.
    pub expected: Vec<(&'static str, DepType)>,
}

impl AppSpec {
    /// Lines of MiniLang code (Table II's LOC analogue).
    pub fn loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Expected critical set as sorted `(name, dep)` pairs, comparable with
    /// [`Report::summary`].
    pub fn expected_summary(&self) -> Vec<(String, DepType)> {
        let mut v: Vec<(String, DepType)> = self
            .expected
            .iter()
            .map(|(n, d)| (n.to_string(), *d))
            .collect();
        v.sort();
        v
    }
}

/// Locate the main computation loop from `// @loop-start` / `// @loop-end`
/// markers in the source. The markers sit on the loop statement's line and
/// on its closing brace, so the resulting region is exactly the paper's
/// MCLR convention (start/end line numbers in the named function).
pub fn region_from_markers(source: &str, function: &str) -> Region {
    try_region_from_markers(source, function).expect("loop markers missing or inverted")
}

/// Fallible [`region_from_markers`] for user-supplied sources: `None` when
/// either marker is missing or `@loop-end` does not come after
/// `@loop-start`.
pub fn try_region_from_markers(source: &str, function: &str) -> Option<Region> {
    let mut start = 0u32;
    let mut end = 0u32;
    for (i, line) in source.lines().enumerate() {
        if line.contains("@loop-start") {
            start = i as u32 + 1;
        }
        if line.contains("@loop-end") {
            end = i as u32 + 1;
        }
    }
    (start > 0 && end > start).then(|| Region::new(function, start, end))
}

/// Everything produced by one full run of the substrate chain on an app.
pub struct AppRun {
    /// The compiled module.
    pub module: Module,
    /// The dynamic trace.
    pub records: Vec<Record>,
    /// Size of the textual trace in bytes (Table II's "trace size").
    pub trace_bytes: u64,
    /// Wall time to generate the trace (Table II's "trace generation
    /// time").
    pub trace_gen_time: Duration,
    /// Program output of the traced run.
    pub output: Vec<String>,
    /// The AutoCheck analysis report.
    pub report: Report,
}

/// Compile, execute under the tracer, run the loop pass, and analyze.
pub fn analyze_app(spec: &AppSpec) -> AppRun {
    let module = autocheck_minilang::compile(&spec.source)
        .unwrap_or_else(|e| panic!("{} does not compile: {:?}", spec.name, e));

    let t0 = Instant::now();
    let mut sink = VecSink::default();
    let mut machine = Machine::new(&module, ExecOptions::default());
    let outcome = machine
        .run(&mut sink, &mut NoHook)
        .unwrap_or_else(|e| panic!("{} failed to run: {e}", spec.name));
    let trace_gen_time = t0.elapsed();

    // Byte size of the textual form, without keeping the text around.
    let mut byte_sink = WriterSink::new(std::io::sink());
    for r in &sink.records {
        use autocheck_interp::TraceSink as _;
        byte_sink.record(r.clone()).expect("sink");
    }
    let trace_bytes = byte_sink.bytes_written();

    let index = index_variables_of(&module, &spec.region);
    let report = Analyzer::new(spec.region.clone())
        .with_index_vars(index)
        .analyze(&sink.records);

    AppRun {
        module,
        records: sink.records,
        trace_bytes,
        trace_gen_time,
        output: outcome.output,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_resolve_to_region() {
        let src = "int main() {\n  int x = 0;\n  for (int i = 0; i < 3; i = i + 1) { // @loop-start\n    x = x + i;\n  } // @loop-end\n  print(x);\n  return 0;\n}\n";
        let r = region_from_markers(src, "main");
        assert_eq!(r.start_line, 3);
        assert_eq!(r.end_line, 5);
        assert_eq!(r.function, "main");
    }

    #[test]
    #[should_panic(expected = "loop markers")]
    fn missing_markers_panic() {
        region_from_markers("int main() { return 0; }", "main");
    }
}
