//! CG (NPB) — conjugate gradient with the paper's Algorithm-2 structure.
//!
//! Paper Table II and the §IV-D case study: `x` (WAR — read by
//! `conj_grad`'s `r = x` at the top of each outer iteration, overwritten by
//! `x = z/‖z‖` at its end) and `it` (Index). All other inputs to
//! `conj_grad` — `z`, `p`, `q`, `r`, and the matrix `a` — are rewritten
//! before use or read-only, so they need no checkpoint; `zeta` and the
//! global `rnorm` are recomputed and printed inside the loop.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// cg (NPB): conjugate gradient with irregular access, Algorithm 2 shape
global float rnorm;
void conj_grad(float* x, float* z, float* p, float* q, float* r, float* a, int n) {
    float rho = 0.0;
    for (int i = 0; i < n; i = i + 1) { z[i] = 0.0; }
    for (int i = 0; i < n; i = i + 1) { r[i] = x[i]; }
    for (int i = 0; i < n; i = i + 1) { rho = rho + r[i] * r[i]; }
    for (int i = 0; i < n; i = i + 1) { p[i] = r[i]; }
    for (int cgit = 0; cgit < @CGITS@; cgit = cgit + 1) {
        float dpq = 0.0;
        for (int i = 0; i < n; i = i + 1) { q[i] = a[i] * p[i] + 0.3 * p[(i + 1) % n]; }
        for (int i = 0; i < n; i = i + 1) { dpq = dpq + p[i] * q[i]; }
        float alpha = rho / dpq;
        for (int i = 0; i < n; i = i + 1) { z[i] = z[i] + alpha * p[i]; }
        float rho0 = rho;
        for (int i = 0; i < n; i = i + 1) { r[i] = r[i] - alpha * q[i]; }
        rho = 0.0;
        for (int i = 0; i < n; i = i + 1) { rho = rho + r[i] * r[i]; }
        float beta = rho / rho0;
        for (int i = 0; i < n; i = i + 1) { p[i] = r[i] + beta * p[i]; }
    }
    float s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        float d = x[i] - a[i] * z[i];
        s = s + d * d;
    }
    rnorm = sqrt(s);
}
int main() {
    float x[@N@];
    float z[@N@];
    float p[@N@];
    float q[@N@];
    float r[@N@];
    float a[@N@];
    float zeta = 0.0;
    float shift = 20.0;
    rnorm = 0.0;
    for (int i = 0; i < @N@; i = i + 1) {
        x[i] = 1.0;
        z[i] = 0.0;
        p[i] = 0.0;
        q[i] = 0.0;
        r[i] = 0.0;
        a[i] = 2.0 + float(i % 5) * 0.1;
    }
    for (int it = 0; it < @ITERS@; it = it + 1) { // @loop-start
        conj_grad(x, z, p, q, r, a, @N@);
        float znorm = 0.0;
        for (int i = 0; i < @N@; i = i + 1) { znorm = znorm + z[i] * z[i]; }
        znorm = sqrt(znorm);
        for (int i = 0; i < @N@; i = i + 1) { x[i] = z[i] / znorm; }
        float xz = 0.0;
        for (int i = 0; i < @N@; i = i + 1) { xz = xz + x[i] * z[i]; }
        zeta = shift + 1.0 / xz;
        print(zeta);
        print(rnorm);
    } // @loop-end
    print(x[0]);
    return 0;
}
";

/// Source at vector size `n`, `iters` outer iterations, `cgits` inner CG
/// steps.
pub fn source(n: usize, iters: usize, cgits: usize) -> String {
    TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@ITERS@", &iters.to_string())
        .replace("@CGITS@", &cgits.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(12, 5, 4)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize, cgits: usize) -> AppSpec {
    let source = source(n, iters, cgits);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "cg",
        description: "Conjugate Gradient with irregular memory access (NPB)",
        source,
        region,
        expected: vec![("x", DepType::War), ("it", DepType::Index)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn case_study_inputs_are_skipped() {
        // Paper §IV-D: "For the remaining input variables, including z, p,
        // q, r, and A, we did not find a dependency necessary for
        // checkpointing."
        let run = crate::analyze_app(&spec());
        for v in ["z", "p", "q", "r", "a"] {
            assert!(
                run.report.skipped.iter().any(|(n, _)| &**n == v),
                "{v} should be skipped; report: {}",
                run.report
            );
        }
    }
}
