//! AMG (ECP) — algebraic multigrid solver proxy.
//!
//! Paper Table II: `diagonal` (WAR), `cum_num_its` (WAR), `cum_nnz_ap`
//! (WAR), `hypre_global_error` (WAR), `final_res_norm` (Outcome), `j`
//! (Index). The paper's §III uses AMG's call depth (eight levels down to
//! `hypre_LowerBound`) as the *nested function calls* pain point; the
//! skeleton keeps a `solve → vcycle → relax / hypre_lower_bound` chain. The
//! solution vector is re-zeroed at the top of each cycle (fresh solve), so
//! — matching the paper — no solution array appears in the critical set;
//! `final_res_norm` is written every iteration and only consumed after the
//! loop.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// amg (ECP): algebraic multigrid driver skeleton
global float hypre_global_error;
float hypre_lower_bound(float* v, int n) {
    float m = v[0];
    for (int i = 1; i < n; i = i + 1) {
        if (v[i] < m) {
            m = v[i];
        }
    }
    return m;
}
float relax(float* sol, float* rhs, float* diagonal, int n) {
    float res = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        float delta = (rhs[i] - sol[i]) / diagonal[i];
        sol[i] = sol[i] + delta;
        res = res + delta * delta;
    }
    return res;
}
float vcycle(float* sol, float* rhs, float* diagonal, int n) {
    float r1 = relax(sol, rhs, diagonal, n);
    float r2 = relax(sol, rhs, diagonal, n);
    float lb = hypre_lower_bound(diagonal, n);
    return (r1 + r2) / (1.0 + fabs(lb));
}
float solve(float* sol, float* rhs, float* diagonal, int n) {
    float res = vcycle(sol, rhs, diagonal, n);
    res = res + vcycle(sol, rhs, diagonal, n) * 0.5;
    return sqrt(res);
}
int main() {
    float sol[@N@];
    float rhs[@N@];
    float diagonal[@N@];
    float final_res_norm = 0.0;
    int cum_num_its = 0;
    int cum_nnz_ap = 0;
    hypre_global_error = 0.0;
    for (int i = 0; i < @N@; i = i + 1) {
        sol[i] = 0.0;
        rhs[i] = 1.0 + float(i % 6) * 0.2;
        diagonal[i] = 2.0 + float(i % 4) * 0.1;
    }
    for (int j = 0; j < @ITERS@; j = j + 1) { // @loop-start
        for (int i = 0; i < @N@; i = i + 1) {
            sol[i] = 0.0;
        }
        float res = solve(sol, rhs, diagonal, @N@);
        for (int i = 0; i < @N@; i = i + 1) {
            diagonal[i] = diagonal[i] * 1.0001;
        }
        cum_num_its = cum_num_its + 4;
        cum_nnz_ap = cum_nnz_ap + @N@ * 3;
        hypre_global_error = hypre_global_error + res * 0.000001;
        final_res_norm = res;
    } // @loop-end
    print(final_res_norm);
    print(cum_num_its);
    print(cum_nnz_ap);
    print(hypre_global_error);
    return 0;
}
";

/// Source at system size `n` over `iters` solve cycles.
pub fn source(n: usize, iters: usize) -> String {
    TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@ITERS@", &iters.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(12, 6)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize) -> AppSpec {
    let source = source(n, iters);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "amg",
        description: "Algebraic Multi-Grid linear system solver (ECP AMG)",
        source,
        region,
        expected: vec![
            ("diagonal", DepType::War),
            ("cum_num_its", DepType::War),
            ("cum_nnz_ap", DepType::War),
            ("hypre_global_error", DepType::War),
            ("final_res_norm", DepType::Outcome),
            ("j", DepType::Index),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn solution_vector_is_not_critical() {
        let run = crate::analyze_app(&spec());
        assert!(run.report.critical_by_name("sol").is_none());
        assert!(run.report.skipped.iter().any(|(n, _)| &**n == "sol"));
    }
}
