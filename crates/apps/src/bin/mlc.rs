//! `mlc` — the MiniLang compiler/runner/tracer CLI (the substrate's
//! equivalent of `clang + LLVM-Tracer`).
//!
//! ```text
//! mlc run   <file.mc>                 # compile and execute, print output
//! mlc trace <file.mc> -o trace.txt    # execute and write the dynamic trace
//! mlc trace <file.mc> -o t --format binary   # ... in the binary format
//! mlc trace <file.mc>... --stream --function f --start a --end b
//!                                     # execute and analyze online: records
//!                                     # flow interpreter -> analyzer with no
//!                                     # trace file or record buffer at all.
//!                                     # Several files = one session each,
//!                                     # with per-session peak-live/timing
//! mlc convert <in> <out> [--to text|binary]
//!                                     # lossless trace conversion; the input
//!                                     # format auto-detects, --to defaults
//!                                     # to the opposite format. With
//!                                     # --function/--start/--end the binary
//!                                     # output carries the v2 iteration-
//!                                     # index footer (shard planning with
//!                                     # no pre-scan); an input footer is
//!                                     # otherwise carried over
//! mlc ir    <file.mc>                 # dump the textual IR
//! mlc loops <file.mc> [--function f]  # list loops and their control vars
//! mlc app   <name> [-o file.mc]       # emit a bundled benchmark's source
//! ```
//!
//! In `--stream` mode the region defaults to `// @loop-start` /
//! `// @loop-end` markers when `--start`/`--end` are not given, and the
//! loop pass supplies the Index variables automatically. With more than
//! one input file, every file is analyzed in its **own session** (its own
//! symbol space, via `AnalysisCtx::session`), and the peak-live window and
//! timings are reported per session — not just for the last analysis.

use autocheck_core::{capture_ledger, index_variables_of, Region, StreamAnalyzer, StreamConfig};
use autocheck_interp::{
    BinarySink, ExecError, ExecOptions, FnSink, Machine, NoHook, NullSink, TraceSink, WriterSink,
};
use autocheck_ir::{Cfg, DomTree, LoopForest};
use autocheck_obs::ledger::{BatchLedger, Ledger};
use autocheck_obs::{Metrics, TimerId};
use autocheck_trace::{AnalysisCtx, Record, TraceSource};
use std::io::Write;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: mlc <run|trace|convert|ir|loops|app> <file.mc | app-name> [-o out] [--function f]\n\
         \x20      mlc trace <file.mc> [-o out] [--format text|binary]\n\
         \x20      mlc trace <file.mc>... --stream [--function f] [--start n --end n]\n\
         \x20                [--max-live-records N] [--limit <kind>=<N>]... [--metrics <file|->]\n\
         \x20                (per-session stats per input file)\n\
         \x20      mlc convert <in> <out> [--to text|binary]   (trace format conversion)\n\
         \x20      mlc convert <in> <out> --to binary --function f --start n --end n\n\
         \x20                (also emit the v2 iteration-index footer for sharded analysis)"
    );
    std::process::exit(2)
}

/// Every flag that consumes the following argument as its value. The
/// multi-file positional scan below and `opt()` both depend on this —
/// add new value-taking flags HERE, not inline, or their values will be
/// misread as input files.
const VALUE_FLAGS: &[&str] = &[
    "--function",
    "--start",
    "--end",
    "--max-live-records",
    "--limit",
    "--metrics",
    "--format",
    "--to",
    "-o",
];

/// Text-or-binary trace sink for `mlc trace --format`, forwarding to the
/// matching interpreter sink.
enum FileSink<W: Write> {
    Text(WriterSink<W>),
    Binary(Box<BinarySink<W>>),
}

impl<W: Write> FileSink<W> {
    fn records_written(&self) -> u64 {
        match self {
            FileSink::Text(s) => s.records_written(),
            FileSink::Binary(s) => s.records_written(),
        }
    }

    /// Bytes on the wire (text) or the projected file size (binary, which
    /// buffers until finish).
    fn bytes_written(&self) -> u64 {
        match self {
            FileSink::Text(s) => s.bytes_written(),
            FileSink::Binary(s) => s.bytes_written(),
        }
    }

    fn finish(self) -> Result<W, ExecError> {
        match self {
            FileSink::Text(s) => s.finish(),
            FileSink::Binary(s) => s.finish(),
        }
    }
}

impl<W: Write> TraceSink for FileSink<W> {
    fn record(&mut self, rec: Record) -> Result<(), ExecError> {
        match self {
            FileSink::Text(s) => s.record(rec),
            FileSink::Binary(s) => s.record(rec),
        }
    }
}

fn compile_file(path: &str) -> Result<autocheck_ir::Module, ExitCode> {
    let src = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read `{path}`: {e}");
        ExitCode::FAILURE
    })?;
    autocheck_minilang::compile(&src).map_err(|errs| {
        for e in errs {
            eprintln!("{e}");
        }
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.len() < 2 {
        usage();
    }
    let cmd = argv[0].as_str();
    let target = argv[1].as_str();
    let opt = |flag: &str| {
        debug_assert!(
            VALUE_FLAGS.contains(&flag),
            "{flag} must be listed in VALUE_FLAGS"
        );
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };

    match cmd {
        "run" => {
            let module = match compile_file(target) {
                Ok(m) => m,
                Err(c) => return c,
            };
            let mut machine = Machine::new(&module, ExecOptions::default());
            match machine.run(&mut NullSink, &mut NoHook) {
                Ok(out) => {
                    for line in &out.output {
                        println!("{line}");
                    }
                    eprintln!("[{} dynamic instructions]", out.steps);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "trace" if argv.iter().any(|a| a == "--stream") => {
            // Every positional argument is an input file; each gets its own
            // analysis session with its own symbol space.
            let targets: Vec<&String> = argv[1..]
                .iter()
                .enumerate()
                .filter(|(i, a)| {
                    !a.starts_with('-')
                        && !argv[1..]
                            .get(i.wrapping_sub(1))
                            .is_some_and(|p| VALUE_FLAGS.contains(&p.as_str()))
                })
                .map(|(_, a)| a)
                .collect();
            if targets.is_empty() {
                usage();
            }
            if opt("-o").is_some() {
                eprintln!("note: -o is ignored in --stream mode; no trace file is written");
            }
            let max_live = match opt("--max-live-records") {
                Some(v) => match v.parse::<usize>() {
                    Ok(n) => Some(n),
                    Err(_) => usage(),
                },
                None => None,
            };
            // `--limit` is repeatable, so it is collected directly rather
            // than through `opt` (which only sees the first occurrence).
            let mut limits = autocheck_trace::ResourceLimits::default();
            for (i, a) in argv.iter().enumerate() {
                if a == "--limit" {
                    let Some(v) = argv.get(i + 1) else { usage() };
                    match autocheck_trace::parse_limit_arg(v) {
                        Ok((kind, n)) => limits = limits.set(kind, n),
                        Err(e) => {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            let metrics_path = opt("--metrics");
            let mut ledgers: Vec<Ledger> = Vec::new();
            let t_all = std::time::Instant::now();
            let batch = targets.len() > 1;
            if batch && opt("--start").is_some() {
                eprintln!(
                    "note: --start/--end apply the same region to every input file; \
                     omit them to use each file's @loop-start/@loop-end markers"
                );
            }
            let mut code = ExitCode::SUCCESS;
            for target in targets {
                if batch {
                    println!("=== {target} ===");
                }
                let t0 = std::time::Instant::now();
                let src = match std::fs::read_to_string(target) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: cannot read `{target}`: {e}");
                        code = ExitCode::FAILURE;
                        continue;
                    }
                };
                // Compile from the bytes already read — re-reading the file
                // here could race with an edit and analyze a region computed
                // from different source than the module being executed.
                let module = match autocheck_minilang::compile(&src) {
                    Ok(m) => m,
                    Err(errs) => {
                        for e in errs {
                            eprintln!("{e}");
                        }
                        code = ExitCode::FAILURE;
                        continue;
                    }
                };
                let function = opt("--function").unwrap_or_else(|| "main".to_string());
                let region = match (opt("--start"), opt("--end")) {
                    (Some(s), Some(e)) => {
                        let (Ok(s), Ok(e)) = (s.parse::<u32>(), e.parse::<u32>()) else {
                            usage()
                        };
                        if s == 0 || e < s {
                            eprintln!("error: --start/--end must satisfy 1 <= start <= end");
                            return ExitCode::FAILURE;
                        }
                        Region::new(function, s, e)
                    }
                    (None, None) => {
                        match autocheck_apps::try_region_from_markers(&src, &function) {
                            Some(r) => r,
                            None => {
                                eprintln!(
                                    "error: `{target}` needs --start/--end (or a @loop-start \
                                     marker followed by @loop-end in the source)"
                                );
                                code = ExitCode::FAILURE;
                                continue;
                            }
                        }
                    }
                    _ => {
                        eprintln!("error: --start and --end must be given together");
                        return ExitCode::FAILURE;
                    }
                };
                // One session per input file: fresh symbol space, entered
                // for the whole trace+analyze+render span.
                let mut ctx = AnalysisCtx::session();
                if !limits.is_unlimited() {
                    ctx = ctx.with_limits(limits);
                }
                if metrics_path.is_some() {
                    ctx = ctx.with_metrics(Metrics::enabled());
                }
                let _guard = ctx.enter();
                let index = index_variables_of(&module, &region);
                let analyzer = StreamAnalyzer::new(region)
                    .with_index_vars(index)
                    .with_config(StreamConfig {
                        max_live_records: max_live,
                        ..StreamConfig::default()
                    })
                    .with_ctx(ctx.clone());
                // Interpreter → analyzer directly: every emitted record is
                // pushed into the session and dropped; nothing touches disk.
                let mut session = analyzer.session();
                let mut sink = FnSink::new(|rec| {
                    session.push(&rec).map_err(|e| ExecError::Sink {
                        message: e.to_string(),
                    })
                });
                let mut machine = Machine::with_ctx(&module, ExecOptions::default(), ctx.clone());
                if let Err(e) = machine.run(&mut sink, &mut NoHook) {
                    eprintln!("runtime error: {e}");
                    code = ExitCode::FAILURE;
                    continue;
                }
                let run = session.finish();
                println!("{}", run.report);
                let bound = match run.stats.live_bound {
                    Some(b) => format!("{b}"),
                    None => "unbounded".to_string(),
                };
                println!(
                    "streaming: peak {} live records of {} total (bound: {}); no trace file written",
                    run.stats.peak_live_records, run.report.records, bound
                );
                println!(
                    "session: {} symbols; ingest+identify {:.3?}; wall {:.3?}",
                    ctx.space().len(),
                    run.report.timings.total(),
                    t0.elapsed()
                );
                if metrics_path.is_some() {
                    ctx.metrics()
                        .record_duration(TimerId::SessionWall, t0.elapsed());
                    let name = std::path::Path::new(target.as_str())
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .unwrap_or(target);
                    ledgers.push(capture_ledger(name, &ctx));
                }
                if batch {
                    println!();
                }
            }
            // One input file → its session ledger; several → the aggregated
            // batch form (one session ledger per file).
            if let Some(path) = metrics_path {
                let (table, json) = if ledgers.len() == 1 {
                    (ledgers[0].render_table(), ledgers[0].to_json())
                } else {
                    let b = BatchLedger {
                        jobs: ledgers.len() as u64,
                        wall_ns: t_all.elapsed().as_nanos() as u64,
                        batch: Ledger::empty("mlc.stream"),
                        sessions: ledgers,
                    };
                    (b.render_table(), b.to_json())
                };
                if path == "-" {
                    println!("{table}");
                } else if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("error: cannot write `{path}`: {e}");
                    code = ExitCode::FAILURE;
                } else {
                    println!("run ledger written to {path}");
                }
            }
            code
        }
        "trace" => {
            let module = match compile_file(target) {
                Ok(m) => m,
                Err(c) => return c,
            };
            let format = opt("--format").unwrap_or_else(|| "text".to_string());
            let out_path = opt("-o").unwrap_or_else(|| format!("{target}.trace"));
            let file = match std::fs::File::create(&out_path) {
                Ok(f) => std::io::BufWriter::new(f),
                Err(e) => {
                    eprintln!("error: cannot create `{out_path}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut sink = match format.as_str() {
                "text" => FileSink::Text(WriterSink::new(file)),
                "binary" => FileSink::Binary(Box::new(BinarySink::new(file))),
                other => {
                    eprintln!("error: --format must be `text` or `binary`, not `{other}`");
                    return ExitCode::FAILURE;
                }
            };
            let mut machine = Machine::new(&module, ExecOptions::default());
            match machine.run(&mut sink, &mut NoHook) {
                Ok(_) => {
                    let records = sink.records_written();
                    let bytes = sink.bytes_written();
                    if sink.finish().is_err() {
                        eprintln!("error: flush failed");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {records} records ({bytes} bytes, {format}) to {out_path}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "convert" => {
            let out_path = match argv.get(2).filter(|a| !a.starts_with('-')) {
                Some(p) => p.clone(),
                None => usage(),
            };
            let bytes = match std::fs::read(target) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: cannot read `{target}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let src_binary = autocheck_trace::binary::is_binary(&bytes);
            let to_binary = match opt("--to").as_deref() {
                Some("binary") => true,
                Some("text") => false,
                // Default: flip to the other format.
                None => !src_binary,
                Some(other) => {
                    eprintln!("error: --to must be `text` or `binary`, not `{other}`");
                    return ExitCode::FAILURE;
                }
            };
            // A fresh session per conversion: the trace is third-party input.
            let ctx = AnalysisCtx::session();
            let _guard = ctx.enter();
            let records = match TraceSource::from_bytes(&bytes).ctx(&ctx).records() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Optional v2 iteration-index footer: `--function/--start/--end`
            // name the main loop, the region tracker computes the
            // iteration-aligned boundaries, and the binary writer appends
            // them so sharded readers plan without a pre-scan. Without a
            // region, an existing footer on a binary input is carried over.
            let index_region = match (opt("--function"), opt("--start"), opt("--end")) {
                (Some(f), Some(s), Some(e)) => match (s.parse::<u32>(), e.parse::<u32>()) {
                    (Ok(s), Ok(e)) => Some(Region::new(f, s, e)),
                    _ => usage(),
                },
                (None, None, None) => None,
                _ => {
                    eprintln!("error: --function/--start/--end must be given together");
                    return ExitCode::FAILURE;
                }
            };
            let mut indexed = false;
            let out_bytes = if to_binary {
                let bounds = match &index_region {
                    Some(region) => {
                        let phases = autocheck_core::Phases::compute_in(&records, region, &ctx);
                        Some(autocheck_core::boundaries_from_annots(&phases.annots))
                    }
                    None => autocheck_trace::binary::iteration_index(&bytes)
                        .ok()
                        .flatten(),
                };
                match bounds {
                    Some(b) => {
                        indexed = true;
                        autocheck_trace::binary::to_bytes_with_index(&records, b, &ctx)
                    }
                    None => autocheck_trace::binary::to_bytes(&records, &ctx),
                }
            } else {
                if index_region.is_some() {
                    eprintln!("error: the iteration-index footer requires `--to binary`");
                    return ExitCode::FAILURE;
                }
                autocheck_trace::writer::to_string(&records).into_bytes()
            };
            if let Err(e) = std::fs::write(&out_path, &out_bytes) {
                eprintln!("error: cannot write `{out_path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "converted {} -> {} ({} records, {} -> {}{}, {} -> {} bytes)",
                target,
                out_path,
                records.len(),
                if src_binary { "binary" } else { "text" },
                if to_binary { "binary" } else { "text" },
                if indexed { " + iteration index" } else { "" },
                bytes.len(),
                out_bytes.len()
            );
            ExitCode::SUCCESS
        }
        "ir" => {
            let module = match compile_file(target) {
                Ok(m) => m,
                Err(c) => return c,
            };
            print!("{}", autocheck_ir::printer::print_module(&module));
            ExitCode::SUCCESS
        }
        "loops" => {
            let module = match compile_file(target) {
                Ok(m) => m,
                Err(c) => return c,
            };
            let fname = opt("--function").unwrap_or_else(|| "main".to_string());
            let Some(fid) = module.function_by_name(&fname) else {
                eprintln!("error: no function `{fname}`");
                return ExitCode::FAILURE;
            };
            let f = module.function(fid);
            let cfg = Cfg::compute(f);
            let dom = DomTree::compute(&cfg);
            let forest = LoopForest::compute(f, &cfg, &dom);
            for (i, l) in forest.loops.iter().enumerate() {
                let line = f.blocks[l.header.index()].loc.line;
                let cv = autocheck_ir::loops::control_variables(&module, f, l);
                println!(
                    "loop {i}: header line {line}, depth {}, control vars: {}",
                    l.depth,
                    cv.iter()
                        .map(|c| {
                            if c.is_basic_induction {
                                format!("{} (induction, step {})", c.name, c.step.unwrap_or(0))
                            } else {
                                format!("{} (control flag)", c.name)
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            ExitCode::SUCCESS
        }
        "app" => {
            let Some(spec) = autocheck_apps::app_by_name(target) else {
                eprintln!(
                    "error: unknown app `{target}`; available: {}",
                    autocheck_apps::all_apps()
                        .iter()
                        .map(|a| a.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            };
            match opt("-o") {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, &spec.source) {
                        eprintln!("error: cannot write `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!(
                        "wrote {} ({} lines); main loop at {}:{}-{}",
                        path,
                        spec.loc(),
                        spec.region.function,
                        spec.region.start_line,
                        spec.region.end_line
                    );
                }
                None => print!("{}", spec.source),
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
