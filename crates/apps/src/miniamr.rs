//! miniAMR (ECP) — adaptive-mesh-refinement stencil proxy.
//!
//! Paper Table II reports the longest critical set of the study: dozens of
//! timer/counter accumulators (WAR), the `blocks` mesh (WAR), the extrema
//! trackers `tmax`/`tmin` (WAR), and *two* Index variables — the timestep
//! counter `ts` and the loop-steering flag `done` (the main loop is a
//! `while (!done && ts < N)`). The skeleton keeps a representative subset
//! of the accumulators plus both control variables.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// miniamr (ECP): AMR stencil driver with timers, counters and a done flag
void stencil_calc(float* blocks, int n) {
    for (int i = 0; i < n; i = i + 1) {
        blocks[i] = blocks[i] * 0.6 + (blocks[(i + 1) % n] + blocks[(i + n - 1) % n]) * 0.2;
    }
}
int main() {
    float blocks[@N@];
    float timer_total = 0.0;
    float timer_calc = 0.0;
    float timer_comm = 0.0;
    float timer_refine = 0.0;
    int total_blocks = 0;
    int counter_bc = 0;
    int total_fp_adds = 0;
    int total_red = 0;
    int num_moved = 0;
    float tmax = 0.0;
    float tmin = 1000000.0;
    int done = 0;
    int ts = 0;
    for (int i = 0; i < @N@; i = i + 1) {
        blocks[i] = 1.0 + float(i % 5) * 0.5;
    }
    while (done == 0 && ts < @ITERS@) { // @loop-start
        stencil_calc(blocks, @N@);
        float t = 1.0 + float(ts % 3) * 0.25;
        timer_calc = timer_calc + t;
        timer_comm = timer_comm + t * 0.1;
        timer_refine = timer_refine + t * 0.05;
        timer_total = timer_total + t * 1.15;
        total_blocks = total_blocks + @N@;
        counter_bc = counter_bc + 2;
        total_fp_adds = total_fp_adds + @N@ * 4;
        total_red = total_red + 1;
        num_moved = num_moved + ts % 2;
        tmax = fmax(tmax, t);
        tmin = fmin(tmin, t);
        ts = ts + 1;
        if (blocks[0] < 0.001) {
            done = 1;
        }
    } // @loop-end
    print(timer_total);
    print(timer_calc);
    print(timer_comm);
    print(timer_refine);
    print(total_blocks);
    print(counter_bc);
    print(total_fp_adds);
    print(total_red);
    print(num_moved);
    print(tmax);
    print(tmin);
    print(blocks[0]);
    return 0;
}
";

/// Source with `n` blocks over at most `iters` timesteps.
pub fn source(n: usize, iters: usize) -> String {
    TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@ITERS@", &iters.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(16, 8)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize) -> AppSpec {
    let source = source(n, iters);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "miniamr",
        description: "3D stencil calculation with Adaptive Mesh Refinement (ECP miniAMR)",
        source,
        region,
        expected: vec![
            ("timer_total", DepType::War),
            ("timer_calc", DepType::War),
            ("timer_comm", DepType::War),
            ("timer_refine", DepType::War),
            ("total_blocks", DepType::War),
            ("counter_bc", DepType::War),
            ("total_fp_adds", DepType::War),
            ("total_red", DepType::War),
            ("num_moved", DepType::War),
            ("tmax", DepType::War),
            ("tmin", DepType::War),
            ("blocks", DepType::War),
            ("done", DepType::Index),
            ("ts", DepType::Index),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn both_control_variables_are_index() {
        let run = crate::analyze_app(&spec());
        assert_eq!(
            run.report.critical_by_name("done").unwrap().dep,
            DepType::Index
        );
        assert_eq!(
            run.report.critical_by_name("ts").unwrap().dep,
            DepType::Index
        );
    }
}
