//! BT (NPB) — block tri-diagonal solver skeleton.
//!
//! Paper Table II: `u` (WAR), `step` (Index). The paper's §III singles BT
//! out for its *convoluted data dependencies*: `u` flows through many
//! distinct function invocations. The skeleton keeps that structure — the
//! ADI driver calls down a four-deep chain (`adi` → `x_solve` →
//! `solve_cell`, plus `compute_rhs`/`add`), and every access to `u` inside
//! those callees still resolves to the caller's array through the
//! argument/parameter triplets.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// bt (NPB): ADI with a nested solver call chain
void compute_rhs(float* u, float* rhs, int n) {
    for (int i = 0; i < n; i = i + 1) {
        rhs[i] = (u[(i + 1) % n] - 2.0 * u[i] + u[(i + n - 1) % n]) * 0.2;
    }
}
void solve_cell(float* rhs, float* lhs, int n) {
    for (int i = 0; i < n; i = i + 1) {
        rhs[i] = rhs[i] / lhs[i];
    }
}
void x_solve(float* u, float* rhs, float* lhs, int n) {
    for (int i = 0; i < n; i = i + 1) {
        lhs[i] = 2.0 + fabs(u[i]);
    }
    solve_cell(rhs, lhs, n);
}
void add(float* u, float* rhs, int n) {
    for (int i = 0; i < n; i = i + 1) {
        u[i] = u[i] + rhs[i];
    }
}
void adi(float* u, float* rhs, float* lhs, int n) {
    compute_rhs(u, rhs, n);
    x_solve(u, rhs, lhs, n);
    add(u, rhs, n);
}
int main() {
    float u[@N@];
    float rhs[@N@];
    float lhs[@N@];
    for (int i = 0; i < @N@; i = i + 1) {
        u[i] = 1.0 + float(i % 3) * 0.4;
        rhs[i] = 0.0;
        lhs[i] = 1.0;
    }
    for (int step = 0; step < @ITERS@; step = step + 1) { // @loop-start
        adi(u, rhs, lhs, @N@);
    } // @loop-end
    print(u[0]);
    return 0;
}
";

/// Source at grid size `n`, `iters` time steps.
pub fn source(n: usize, iters: usize) -> String {
    TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@ITERS@", &iters.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(16, 8)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize) -> AppSpec {
    let source = source(n, iters);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "bt",
        description: "Block Tri-diagonal solver (NPB)",
        source,
        region,
        expected: vec![("u", DepType::War), ("step", DepType::Index)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn u_found_despite_callee_only_access_in_loop() {
        // `u` is never touched at region level inside the loop — only
        // through the adi call chain; the Challenge-2 address matching must
        // still recognize it.
        let run = crate::analyze_app(&spec());
        assert!(run.report.mli.iter().any(|m| m.name == "u"));
    }
}
