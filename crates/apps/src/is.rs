//! IS (NPB) — integer sort with random memory access.
//!
//! Paper Table II: `passed_verification` (WAR), `key_array` (RAPO),
//! `bucket_ptrs` (RAPO), `iteration` (Index). Exactly like the original,
//! each iteration *scatters* two keys into `key_array` (partial writes) and
//! then scans the whole array to bucket it — the elements not rewritten
//! this iteration are read stale, which is the Read-After-
//! Partially-Overwritten pattern. The bucket table is likewise updated
//! sparsely and scanned fully by the verification step.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// is (NPB): integer sort ranking skeleton
int main() {
    int key_array[@KA@];
    int bucket_ptrs[@NB@];
    int passed_verification = 0;
    for (int i = 0; i < @KA@; i = i + 1) {
        key_array[i] = (i * 7 + 3) % @MAXKEY@;
    }
    for (int j = 0; j < @NB@; j = j + 1) {
        bucket_ptrs[j] = 0;
    }
    for (int iteration = 1; iteration < @ITP1@; iteration = iteration + 1) { // @loop-start
        key_array[iteration] = iteration;
        key_array[iteration + @ITERS@] = @MAXKEY@ - iteration;
        int hit = key_array[iteration] % @NB@;
        bucket_ptrs[hit] = bucket_ptrs[hit] + 1;
        int chk = 0;
        for (int i = 0; i < @KA@; i = i + 1) {
            chk = chk + key_array[i] % @NB@;
        }
        int bsum = 0;
        for (int j = 0; j < @NB@; j = j + 1) {
            bsum = bsum + bucket_ptrs[j];
        }
        if (chk > 0 && bsum == iteration) {
            passed_verification = passed_verification + 1;
        }
    } // @loop-end
    print(passed_verification);
    int ksum = 0;
    for (int i = 0; i < @KA@; i = i + 1) {
        ksum = ksum + key_array[i] * (i + 1);
    }
    print(ksum);
    int btot = 0;
    for (int j = 0; j < @NB@; j = j + 1) {
        btot = btot + bucket_ptrs[j] * (j + 1);
    }
    print(btot);
    return 0;
}
";

/// Source with `iters` ranking iterations and `nb` buckets.
pub fn source(iters: usize, nb: usize) -> String {
    let ka = 2 * iters + 4;
    TEMPLATE
        .replace("@KA@", &ka.to_string())
        .replace("@NB@", &nb.to_string())
        .replace("@ITP1@", &(iters + 1).to_string())
        .replace("@ITERS@", &iters.to_string())
        .replace("@MAXKEY@", "64")
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(10, 16)
}

/// Spec at a chosen scale.
pub fn spec_scaled(iters: usize, nb: usize) -> AppSpec {
    let source = source(iters, nb);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "is",
        description: "Integer Sort with random memory access (NPB)",
        source,
        region,
        expected: vec![
            ("passed_verification", DepType::War),
            ("key_array", DepType::Rapo),
            ("bucket_ptrs", DepType::Rapo),
            ("iteration", DepType::Index),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn rapo_arrays_are_rapo() {
        let run = crate::analyze_app(&spec());
        assert_eq!(
            run.report.critical_by_name("key_array").unwrap().dep,
            DepType::Rapo
        );
        assert_eq!(
            run.report.critical_by_name("bucket_ptrs").unwrap().dep,
            DepType::Rapo
        );
    }
}
