//! HACC — Hardware Accelerated Cosmology Code (N-body) skeleton.
//!
//! Paper Table II: `particles` (WAR), `step` (Index). The paper's §III
//! names `Particles` alongside CoMD's `sim` as a complicated structure
//! whose few critical components cannot be found by eye. Here `particles`
//! is the flattened phase-space state (positions then velocities) advanced
//! in place each step by a kick-drift integrator over a short-range force
//! kernel.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// hacc: N-body kick-drift integration over a flattened particle state.
// Like the original (whose MCLR sits in driver_hires-local.cxx, not in
// main), the main computation loop lives in a driver function and the
// state is global.
global float particles[@N2@];
global float grid[@N4@];
void force_kernel(int n) {
    for (int i = 0; i < n; i = i + 1) {
        int left = (i + n - 1) % n;
        int right = (i + 1) % n;
        float g = grid[i * 4] + grid[i * 4 + 2];
        float f = ((particles[left] - particles[i]) * 0.01 + (particles[right] - particles[i]) * 0.01) * g;
        particles[n + i] = particles[n + i] + f;
    }
}
void kick_drift(int n) {
    for (int i = 0; i < n; i = i + 1) {
        particles[i] = particles[i] + particles[n + i] * 0.02;
    }
}
void nbody_step(int n) {
    force_kernel(n);
    kick_drift(n);
}
void driver(int n, int nsteps) {
    for (int i = 0; i < n; i = i + 1) {
        particles[i] = float(i) * 0.1;
        particles[n + i] = float(i % 3) * 0.01;
    }
    for (int i = 0; i < n * 4; i = i + 1) {
        grid[i] = 0.5;
    }
    for (int step = 0; step < nsteps; step = step + 1) { // @loop-start
        nbody_step(n);
    } // @loop-end
    print(particles[0]);
    print(particles[n]);
}
int main() {
    driver(@N@, @ITERS@);
    return 0;
}
";

/// Source with `n` particles over `iters` steps.
pub fn source(n: usize, iters: usize) -> String {
    TEMPLATE
        .replace("@N4@", &(4 * n).to_string())
        .replace("@N2@", &(2 * n).to_string())
        .replace("@N@", &n.to_string())
        .replace("@ITERS@", &iters.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(16, 8)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize) -> AppSpec {
    let source = source(n, iters);
    let region = region_from_markers(&source, "driver");
    AppSpec {
        name: "hacc",
        description: "Hardware Accelerated Cosmology Code framework (N-body)",
        source,
        region,
        expected: vec![("particles", DepType::War), ("step", DepType::Index)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn main_loop_lives_outside_main() {
        // HACC's MCLR is in a driver function (driver_hires-local.cxx in
        // the paper's Table II); this app exercises the whole pipeline with
        // region.function != "main".
        let spec = spec();
        assert_eq!(spec.region.function, "driver");
        let run = crate::analyze_app(&spec);
        assert!(run.report.iterations >= 1);
        assert!(run.report.critical_by_name("particles").is_some());
    }
}
