//! MG (NPB) — multigrid on a sequence of meshes.
//!
//! Paper Table II: `u` (WAR), `r` (WAR), `it` (Index). Both the solution
//! `u` and the residual `r` are updated in place each V-cycle (the residual
//! update reads the previous residual, the smoother reads the previous
//! solution); the right-hand side `v` is read-only.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// mg (NPB): multigrid V-cycle sketch on one level
void resid(float* u, float* v, float* r, int n) {
    for (int i = 0; i < n; i = i + 1) {
        r[i] = v[i] - u[i] - 0.2 * r[i];
    }
}
void psinv(float* r, float* u, int n) {
    for (int i = 0; i < n; i = i + 1) {
        u[i] = u[i] + 0.7 * r[i];
    }
}
int main() {
    float u[@N@];
    float v[@N@];
    float r[@N@];
    for (int i = 0; i < @N@; i = i + 1) {
        u[i] = 0.0;
        v[i] = 1.0 + float(i % 4) * 0.5;
        r[i] = v[i];
    }
    for (int it = 0; it < @ITERS@; it = it + 1) { // @loop-start
        resid(u, v, r, @N@);
        psinv(r, u, @N@);
        float norm = 0.0;
        for (int i = 0; i < @N@; i = i + 1) { norm = norm + r[i] * r[i]; }
        print(sqrt(norm));
    } // @loop-end
    print(u[0]);
    return 0;
}
";

/// Source at mesh size `n`, `iters` V-cycles.
pub fn source(n: usize, iters: usize) -> String {
    TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@ITERS@", &iters.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(16, 8)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize) -> AppSpec {
    let source = source(n, iters);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "mg",
        description: "Multi-Grid on a sequence of meshes (NPB)",
        source,
        region,
        expected: vec![
            ("u", DepType::War),
            ("r", DepType::War),
            ("it", DepType::Index),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn rhs_is_read_only() {
        let run = crate::analyze_app(&spec());
        assert!(run
            .report
            .skipped
            .iter()
            .any(|(n, r)| &**n == "v" && *r == autocheck_core::SkipReason::ReadOnlyInLoop));
    }
}
