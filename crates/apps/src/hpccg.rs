//! HPCCG — conjugate-gradient mini-app (Mantevo).
//!
//! Paper Table II: `t1`, `t2`, `t3` (timer accumulators), `r`, `x`, `p`,
//! `rtrans` — all WAR — plus `k` (Index). The CG state vectors are updated
//! in place every iteration (read-then-overwrite), the residual dot-product
//! `rtrans` is consumed for `alpha` before being recomputed, and the timers
//! accumulate across iterations.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// hpccg: conjugate gradient for a 3D chimney domain (1-D operator here)
float ddot(float* x, float* y, int n) {
    float s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + x[i] * y[i];
    }
    return s;
}
void waxpby(float alpha, float* x, float beta, float* y, float* w, int n) {
    for (int i = 0; i < n; i = i + 1) {
        w[i] = alpha * x[i] + beta * y[i];
    }
}
void matvec(float* x, float* y, int n) {
    for (int i = 0; i < n; i = i + 1) {
        y[i] = 2.0 * x[i] - 0.4 * x[(i + 1) % n] - 0.4 * x[(i + n - 1) % n];
    }
}
int main() {
    float x[@N@];
    float r[@N@];
    float p[@N@];
    float ap[@N@];
    float rtrans = 0.0;
    float t1 = 0.0;
    float t2 = 0.0;
    float t3 = 0.0;
    for (int i = 0; i < @N@; i = i + 1) {
        x[i] = 0.0;
        r[i] = 1.0 + float(i % 3) * 0.25;
        p[i] = r[i];
        ap[i] = 0.0;
    }
    for (int i = 0; i < @N@; i = i + 1) {
        rtrans = rtrans + r[i] * r[i];
    }
    for (int k = 0; k < @ITERS@; k = k + 1) { // @loop-start
        t1 = t1 + 1.0;
        matvec(p, ap, @N@);
        float alpha = rtrans / ddot(p, ap, @N@);
        waxpby(1.0, x, alpha, p, x, @N@);
        waxpby(1.0, r, -alpha, ap, r, @N@);
        t2 = t2 + 0.5;
        float oldrtrans = rtrans;
        rtrans = ddot(r, r, @N@);
        float beta = rtrans / oldrtrans;
        waxpby(1.0, r, beta, p, p, @N@);
        t3 = t3 + 0.25;
    } // @loop-end
    print(rtrans);
    print(x[0]);
    print(t1 + t2 + t3);
    return 0;
}
";

/// Source at vector size `n`, `iters` CG iterations.
pub fn source(n: usize, iters: usize) -> String {
    TEMPLATE
        .replace("@N@", &n.to_string())
        .replace("@ITERS@", &iters.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(16, 6)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize) -> AppSpec {
    let source = source(n, iters);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "hpccg",
        description: "Conjugate Gradient benchmark code for a 3D chimney domain",
        source,
        region,
        expected: vec![
            ("t1", DepType::War),
            ("t2", DepType::War),
            ("t3", DepType::War),
            ("r", DepType::War),
            ("x", DepType::War),
            ("p", DepType::War),
            ("rtrans", DepType::War),
            ("k", DepType::Index),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn ap_is_skipped_as_rewritten() {
        let run = crate::analyze_app(&spec());
        assert!(run.report.skipped.iter().any(|(n, _)| &**n == "ap"));
    }
}
