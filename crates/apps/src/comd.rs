//! CoMD (ECP) — molecular-dynamics proxy app.
//!
//! Paper Table II: `sim` (WAR), `perf_timer` (WAR), `iStep` (Index). The
//! paper's §III highlights `sim` (a `SimFlatSt*` holding nested Domain /
//! LinkCell / Atoms / ... structures) as the *complicated data structure*
//! case: only a few components carry critical dependencies, which is
//! impossible to see by eye. Here `sim` is the flattened particle state
//! (positions in the first half, momenta in the second) updated in place by
//! the velocity-Verlet step each iteration.

use crate::spec::{region_from_markers, AppSpec};
use autocheck_core::DepType;

const TEMPLATE: &str = "\
// comd (ECP): velocity-Verlet molecular dynamics on a flattened state
void compute_force(float* sim, float* cells, int n) {
    for (int i = 0; i < n; i = i + 1) {
        int left = (i + n - 1) % n;
        int right = (i + 1) % n;
        float w = cells[i * 4] * 0.25 + cells[i * 4 + 1] * 0.25 + cells[i * 4 + 2] * 0.25 + cells[i * 4 + 3] * 0.25;
        float f = (sim[left] - 2.0 * sim[i] + sim[right]) * 0.3 * w;
        sim[n + i] = sim[n + i] * 0.995 + f;
    }
}
void advance(float* sim, int n) {
    for (int i = 0; i < n; i = i + 1) {
        sim[i] = sim[i] + sim[n + i] * 0.05;
    }
}
void timestep(float* sim, float* cells, int n) {
    compute_force(sim, cells, n);
    advance(sim, n);
}
int main() {
    float sim[@N2@];
    float cells[@N4@];
    float perf_timer = 0.0;
    for (int i = 0; i < @N@; i = i + 1) {
        sim[i] = float(i % 8) * 0.25;
        sim[@N@ + i] = 0.0;
    }
    for (int i = 0; i < @N4@; i = i + 1) {
        cells[i] = 1.0;
    }
    for (int iStep = 0; iStep < @ITERS@; iStep = iStep + 1) { // @loop-start
        timestep(sim, cells, @N@);
        perf_timer = perf_timer + 1.5;
    } // @loop-end
    print(perf_timer);
    print(sim[0]);
    print(sim[@N@]);
    return 0;
}
";

/// Source with `n` particles over `iters` steps.
pub fn source(n: usize, iters: usize) -> String {
    TEMPLATE
        .replace("@N4@", &(4 * n).to_string())
        .replace("@N2@", &(2 * n).to_string())
        .replace("@N@", &n.to_string())
        .replace("@ITERS@", &iters.to_string())
}

/// Default spec.
pub fn spec() -> AppSpec {
    spec_scaled(16, 8)
}

/// Spec at a chosen scale.
pub fn spec_scaled(n: usize, iters: usize) -> AppSpec {
    let source = source(n, iters);
    let region = region_from_markers(&source, "main");
    AppSpec {
        name: "comd",
        description: "Molecular dynamics proxy application (ECP CoMD)",
        source,
        region,
        expected: vec![
            ("sim", DepType::War),
            ("perf_timer", DepType::War),
            ("iStep", DepType::Index),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_paper_critical_variables() {
        let run = crate::analyze_app(&spec());
        assert_eq!(run.report.summary(), spec().expected_summary());
    }

    #[test]
    fn sim_footprint_covers_positions_and_momenta() {
        let run = crate::analyze_app(&spec());
        let sim = run.report.critical_by_name("sim").unwrap();
        assert_eq!(sim.size, 2 * 16 * 8, "both halves of the state");
    }
}
