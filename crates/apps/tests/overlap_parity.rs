//! Acceptance tests for the decode-ahead ingest pipeline: overlapped
//! ingest must be **observably indistinguishable** from serial ingest —
//! byte-identical rendered reports, full DOT, and contracted DOT — on the
//! Fig. 4 worked example and all 14 benchmarks, in both trace formats, at
//! every overlap depth, and composed with sharded folding. The pipeline
//! may only change *when* bytes are decoded, never *what* comes out.

use autocheck_core::{
    contract_ddg, contract_for_mli, index_variables_of, Analyzer, DdgAnalysis, DdgOptions,
    PipelineConfig, Region, StreamAnalyzer, StreamConfig,
};
use autocheck_interp::{BinarySink, ExecOptions, Machine, NoHook, WriterSink};
use autocheck_trace::{binary, AnalysisCtx, TraceSource};

/// Name, MiniLang source, region and index variables for every program the
/// parity tests cover: the Fig. 4 worked example plus the 14 benchmarks.
fn suite() -> Vec<(String, String, Region, Vec<String>)> {
    let fig4_src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/fig4.mc"
    ))
    .expect("examples/fig4.mc exists");
    let mut progs = vec![("fig4".to_string(), fig4_src, Region::new("main", 16, 24))];
    for spec in autocheck_apps::all_apps() {
        progs.push((
            spec.name.to_string(),
            spec.source.clone(),
            spec.region.clone(),
        ));
    }
    progs
        .into_iter()
        .map(|(name, src, region)| {
            let module = autocheck_minilang::compile(&src).expect("compiles");
            let index = index_variables_of(&module, &region);
            (name, src, region, index)
        })
        .collect()
}

/// Execute `src` twice in fresh sessions, once into the text sink and once
/// into the binary sink, returning both serialized traces.
fn traces_of(src: &str) -> (Vec<u8>, Vec<u8>) {
    let module = autocheck_minilang::compile(src).expect("compiles");
    let text = {
        let ctx = AnalysisCtx::session();
        let _guard = ctx.enter();
        let mut sink = WriterSink::new(Vec::new());
        Machine::with_ctx(&module, ExecOptions::default(), ctx.clone())
            .run(&mut sink, &mut NoHook)
            .expect("runs");
        sink.finish().expect("text trace")
    };
    let bin = {
        let ctx = AnalysisCtx::session();
        let _guard = ctx.enter();
        let mut sink = BinarySink::with_ctx(Vec::new(), &ctx);
        Machine::with_ctx(&module, ExecOptions::default(), ctx.clone())
            .run(&mut sink, &mut NoHook)
            .expect("runs");
        sink.finish().expect("binary trace")
    };
    assert!(!binary::is_binary(&text));
    assert!(binary::is_binary(&bin));
    (text, bin)
}

/// Everything user-visible from one batch analysis at the given overlap
/// depth and shard count: rendered report, full DDG DOT, contracted DOT.
/// Ingest goes through a file path — the input kind the decode-ahead
/// pipeline actually serves (in-memory inputs are documented as unaffected
/// by the overlap knob).
fn batch_artifacts(
    path: &std::path::Path,
    region: &Region,
    index: &[String],
    overlap: usize,
    shards: usize,
) -> (String, String, String) {
    let ctx = AnalysisCtx::session();
    let _guard = ctx.enter();
    let analyzer = Analyzer::new(region.clone())
        .with_index_vars(index.to_vec())
        .with_config(PipelineConfig {
            overlap,
            shards,
            ..PipelineConfig::default()
        })
        .with_ctx(ctx.clone());
    let report = analyzer.analyze_path(path).expect("ingests");
    // The DOT renderings fold the same records the report was built from,
    // re-ingested through the same overlap depth.
    let records = TraceSource::from_path(path)
        .ctx(&ctx)
        .overlap(overlap)
        .records()
        .expect("parses");
    let phases = autocheck_core::Phases::compute_in(&records, region, &ctx);
    let graph = DdgAnalysis::fold_in(
        &records,
        &phases,
        &report.mli,
        DdgOptions {
            retain_events: false,
            ..DdgOptions::default()
        },
        &ctx,
        |_| {},
    );
    let full_dot = contract_ddg(&graph, |_| true).to_dot();
    let contracted_dot = contract_for_mli(&graph, &report.mli).to_dot();
    (report.to_string(), full_dot, contracted_dot)
}

/// Batch pipeline: reports, full DOT, and contracted DOT are byte-identical
/// to the serial baseline at overlap {2, 4} × shards {1, 4}, for every
/// program in the suite and both trace formats.
#[test]
fn batch_artifacts_are_byte_identical_at_every_overlap_and_shard_combo() {
    let dir = std::env::temp_dir().join(format!("autocheck-overlap-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    for (name, src, region, index) in suite() {
        let (text, bin) = traces_of(&src);
        for (fmt, bytes) in [("txt", &text), ("bin", &bin)] {
            let path = dir.join(format!("{name}.{fmt}"));
            std::fs::write(&path, bytes).expect("write trace");
            let (report_1, full_1, contracted_1) = batch_artifacts(&path, &region, &index, 1, 1);
            assert!(
                !report_1.is_empty() && contracted_1.starts_with("digraph"),
                "{name}/{fmt}: degenerate baseline"
            );
            for overlap in [2, 4] {
                for shards in [1, 4] {
                    let (report, full, contracted) =
                        batch_artifacts(&path, &region, &index, overlap, shards);
                    assert_eq!(
                        report_1, report,
                        "{name}/{fmt}: report differs at overlap={overlap} shards={shards}"
                    );
                    assert_eq!(
                        full_1, full,
                        "{name}/{fmt}: full DOT differs at overlap={overlap} shards={shards}"
                    );
                    assert_eq!(
                        contracted_1, contracted,
                        "{name}/{fmt}: contracted DOT differs at overlap={overlap} shards={shards}"
                    );
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Streaming pipeline: the report and contracted DOT rendered through
/// `run_read` are byte-identical to serial at every overlap × shard combo,
/// for both formats, on every program in the suite.
#[test]
fn stream_artifacts_are_byte_identical_at_every_overlap_and_shard_combo() {
    for (name, src, region, index) in suite() {
        let (text, bin) = traces_of(&src);
        for (fmt, bytes) in [("text", &text), ("binary", &bin)] {
            let run = |overlap: usize, shards: usize| {
                let ctx = AnalysisCtx::session();
                let _guard = ctx.enter();
                let run = StreamAnalyzer::new(region.clone())
                    .with_index_vars(index.clone())
                    .with_config(StreamConfig {
                        overlap,
                        shards,
                        contracted_dot: true,
                        ..StreamConfig::default()
                    })
                    .with_ctx(ctx.clone())
                    .run_read(&bytes[..])
                    .expect("streams");
                (
                    run.report.to_string(),
                    run.contracted_dot.expect("dot requested"),
                )
            };
            let serial = run(1, 1);
            for overlap in [2, 4] {
                for shards in [1, 4] {
                    let overlapped = run(overlap, shards);
                    assert_eq!(
                        serial, overlapped,
                        "{name}/{fmt}: stream output differs at overlap={overlap} shards={shards}"
                    );
                }
            }
        }
    }
}
