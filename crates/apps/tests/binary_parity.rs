//! Acceptance tests for the binary trace format: ingesting a trace in
//! binary form must be **observably indistinguishable** from ingesting the
//! same trace as text — byte-identical rendered reports and DOT graphs —
//! across all three front doors (batch [`Analyzer`], [`StreamAnalyzer`],
//! and `MultiAnalyzer` jobs), on the Fig. 4 example and all 14 benchmarks.
//! Plus the `mlc convert` CLI round trip: text → binary → text reproduces
//! the original trace byte for byte.

use autocheck_core::{
    contract_for_mli, index_variables_of, AnalysisJob, Analyzer, DdgAnalysis, DdgOptions, JobInput,
    MultiAnalyzer, Phases, Region, StreamAnalyzer,
};
use autocheck_interp::{BinarySink, ExecOptions, Machine, NoHook, WriterSink};
use autocheck_trace::{binary, AnalysisCtx};

/// Name, MiniLang source, region and index variables for every program the
/// parity tests cover: the Fig. 4 worked example plus the 14 benchmarks.
fn suite() -> Vec<(String, String, Region, Vec<String>)> {
    let fig4_src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/fig4.mc"
    ))
    .expect("examples/fig4.mc exists");
    let mut progs = vec![("fig4".to_string(), fig4_src, Region::new("main", 16, 24))];
    for spec in autocheck_apps::all_apps() {
        progs.push((
            spec.name.to_string(),
            spec.source.clone(),
            spec.region.clone(),
        ));
    }
    progs
        .into_iter()
        .map(|(name, src, region)| {
            let module = autocheck_minilang::compile(&src).expect("compiles");
            let index = index_variables_of(&module, &region);
            (name, src, region, index)
        })
        .collect()
}

/// Execute `src` twice in fresh sessions, once into the text sink and once
/// into the binary sink, returning both serialized traces.
fn traces_of(src: &str) -> (Vec<u8>, Vec<u8>) {
    let module = autocheck_minilang::compile(src).expect("compiles");
    let text = {
        let ctx = AnalysisCtx::session();
        let _guard = ctx.enter();
        let mut sink = WriterSink::new(Vec::new());
        Machine::with_ctx(&module, ExecOptions::default(), ctx.clone())
            .run(&mut sink, &mut NoHook)
            .expect("runs");
        sink.finish().expect("text trace")
    };
    let bin = {
        let ctx = AnalysisCtx::session();
        let _guard = ctx.enter();
        let mut sink = BinarySink::with_ctx(Vec::new(), &ctx);
        Machine::with_ctx(&module, ExecOptions::default(), ctx.clone())
            .run(&mut sink, &mut NoHook)
            .expect("runs");
        sink.finish().expect("binary trace")
    };
    assert!(!binary::is_binary(&text));
    assert!(binary::is_binary(&bin));
    (text, bin)
}

/// Batch-analyze `bytes` in a fresh session; return the rendered report and
/// the contracted DOT — everything user-visible.
fn batch_output(bytes: &[u8], region: &Region, index: &[String]) -> (String, String) {
    let ctx = AnalysisCtx::session();
    let _guard = ctx.enter();
    let analyzer = Analyzer::new(region.clone())
        .with_index_vars(index.to_vec())
        .with_ctx(ctx.clone());
    let report = analyzer.analyze_bytes(bytes).expect("ingests");
    let records = autocheck_trace::TraceSource::from_bytes(bytes)
        .ctx(&ctx)
        .records()
        .expect("parses");
    let phases = Phases::compute_in(&records, region, &ctx);
    let graph = DdgAnalysis::fold_in(
        &records,
        &phases,
        &report.mli,
        DdgOptions {
            retain_events: false,
            ..DdgOptions::default()
        },
        &ctx,
        |_| {},
    );
    let dot = contract_for_mli(&graph, &report.mli).to_dot();
    (report.to_string(), dot)
}

/// Binary and text ingest must render byte-identical reports and DOT
/// through the batch pipeline, for every program in the suite.
#[test]
fn batch_reports_and_dot_are_byte_identical_across_formats() {
    for (name, src, region, index) in suite() {
        let (text, bin) = traces_of(&src);
        let (report_t, dot_t) = batch_output(&text, &region, &index);
        let (report_b, dot_b) = batch_output(&bin, &region, &index);
        assert_eq!(report_t, report_b, "{name}: batch report bytes differ");
        assert_eq!(dot_t, dot_b, "{name}: batch DOT bytes differ");
        assert!(
            !report_t.is_empty() && dot_t.starts_with("digraph"),
            "{name}"
        );
    }
}

/// The streaming pipeline reads both formats from a plain reader
/// (auto-detected) and renders the identical report either way.
#[test]
fn stream_reports_are_byte_identical_across_formats() {
    for (name, src, region, index) in suite() {
        let (text, bin) = traces_of(&src);
        let run = |bytes: &[u8]| {
            let ctx = AnalysisCtx::session();
            let _guard = ctx.enter();
            StreamAnalyzer::new(region.clone())
                .with_index_vars(index.clone())
                .with_ctx(ctx.clone())
                .analyze_read(bytes)
                .expect("streams")
                .to_string()
        };
        let from_text = run(&text);
        let from_bin = run(&bin);
        assert_eq!(from_text, from_bin, "{name}: stream report bytes differ");
        // And streaming agrees with batch on the same bytes.
        let (batch, _) = batch_output(&bin, &region, &index);
        assert_eq!(batch, from_bin, "{name}: stream diverges from batch");
    }
}

/// `MultiAnalyzer` jobs pointed at a binary trace file produce the same
/// rendered sessions as jobs pointed at the text version (auto-detect via
/// `JobInput::TracePath`).
#[test]
fn multianalyzer_jobs_are_byte_identical_across_formats() {
    let dir = std::env::temp_dir().join(format!("autocheck-binary-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let suite = suite();
    let jobs_for = |ext: &str| -> Vec<AnalysisJob> {
        suite
            .iter()
            .map(|(name, _, region, index)| {
                let path = dir.join(format!("{name}.{ext}"));
                AnalysisJob::new(
                    name.clone(),
                    JobInput::TracePath(path.to_string_lossy().into_owned()),
                    region.clone(),
                )
                .with_index_vars(index.clone())
                .with_dot(true)
            })
            .collect()
    };
    for (name, src, _, _) in &suite {
        let (text, bin) = traces_of(src);
        std::fs::write(dir.join(format!("{name}.txt")), &text).expect("write text");
        std::fs::write(dir.join(format!("{name}.bin")), &bin).expect("write binary");
    }
    let from_text = MultiAnalyzer::new(4).run(jobs_for("txt"));
    let from_bin = MultiAnalyzer::new(4).run(jobs_for("bin"));
    assert!(from_text.failures.is_empty(), "{:?}", from_text.failures);
    assert!(from_bin.failures.is_empty(), "{:?}", from_bin.failures);
    assert_eq!(from_text.sessions.len(), suite.len());
    for (t, b) in from_text.sessions.iter().zip(&from_bin.sessions) {
        assert_eq!(t.name, b.name);
        assert_eq!(t.rendered, b.rendered, "{}: session report differs", t.name);
        assert_eq!(t.dot, b.dot, "{}: session DOT differs", t.name);
        assert_eq!(t.summary, b.summary, "{}", t.name);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `mlc convert` round trip against the real binary: trace Fig. 4 as text,
/// convert text → binary → text, and the final text must equal the original
/// byte for byte. The directly-emitted binary trace (`--format binary`)
/// must equal the converted one too.
#[test]
fn mlc_convert_round_trips_fig4_byte_identically() {
    let fig4 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/fig4.mc");
    let dir = std::env::temp_dir().join(format!("autocheck-mlc-convert-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let p = |n: &str| dir.join(n).to_string_lossy().into_owned();
    let mlc = |args: &[&str]| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_mlc"))
            .args(args)
            .output()
            .expect("mlc runs");
        assert!(
            out.status.success(),
            "mlc {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    mlc(&["trace", fig4, "-o", &p("t.txt"), "--format", "text"]);
    mlc(&["trace", fig4, "-o", &p("t.bin"), "--format", "binary"]);
    mlc(&["convert", &p("t.txt"), &p("conv.bin")]);
    mlc(&["convert", &p("conv.bin"), &p("conv.txt")]);
    // Explicit --to overrides the flip-by-default direction.
    mlc(&["convert", &p("t.txt"), &p("same.txt"), "--to", "text"]);

    let orig_text = std::fs::read(p("t.txt")).unwrap();
    let orig_bin = std::fs::read(p("t.bin")).unwrap();
    let conv_bin = std::fs::read(p("conv.bin")).unwrap();
    let conv_text = std::fs::read(p("conv.txt")).unwrap();
    let same_text = std::fs::read(p("same.txt")).unwrap();
    assert!(binary::is_binary(&conv_bin));
    assert_eq!(
        orig_text, conv_text,
        "text -> binary -> text must round-trip byte-identically"
    );
    assert_eq!(
        orig_bin, conv_bin,
        "converted binary must equal the directly-emitted binary trace"
    );
    assert_eq!(orig_text, same_text, "--to text is the identity on text");
    let _ = std::fs::remove_dir_all(&dir);
}
