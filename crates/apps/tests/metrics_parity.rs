//! Acceptance tests for the observability layer's cardinal rule: metrics
//! NEVER change analysis output. Reports and DOT renderings must be
//! byte-identical with the registry enabled and disabled — on the Fig. 4
//! example and on all 14 benchmarks, through both the batch and the
//! streaming pipeline. The captured ledgers must also agree with the
//! reports they rode along with (record counts, iteration counts, symbol
//! counts, peak live windows).

use autocheck_core::{
    capture_ledger, index_variables_of, AnalysisJob, Analyzer, JobInput, MultiAnalyzer, Region,
    StreamAnalyzer, StreamConfig,
};
use autocheck_interp::{ExecOptions, Machine, NoHook, VecSink};
use autocheck_obs::{CounterId, GaugeId, Metrics, TimerId};
use autocheck_trace::{AnalysisCtx, Record};

fn trace_of(source: &str) -> (autocheck_ir::Module, Vec<Record>) {
    let module = autocheck_minilang::compile(source).expect("compiles");
    let mut sink = VecSink::default();
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    (module, sink.records)
}

/// Render one batch analysis in its own session, with or without metrics,
/// returning `(rendered report, ctx)`.
fn batch_rendering(
    records: &[Record],
    region: &Region,
    index: &[String],
    metrics: bool,
) -> (String, AnalysisCtx) {
    // The records were interned via the thread-current space (the machine
    // in `trace_of` ran without a session), so analysis must resolve in
    // that same space — metrics ride the current ctx, not a fresh session.
    let mut ctx = AnalysisCtx::current();
    if metrics {
        ctx = ctx.with_metrics(Metrics::enabled());
    }
    let report = Analyzer::new(region.clone())
        .with_index_vars(index.to_vec())
        .with_ctx(ctx.clone())
        .analyze(records);
    (report.to_string(), ctx)
}

/// Render one streaming analysis (report + contracted DOT) in its own
/// session, with or without metrics.
fn stream_rendering(
    records: &[Record],
    region: &Region,
    index: &[String],
    metrics: bool,
) -> (String, String, AnalysisCtx) {
    let mut ctx = AnalysisCtx::current();
    if metrics {
        ctx = ctx.with_metrics(Metrics::enabled());
    }
    let analyzer = StreamAnalyzer::new(region.clone())
        .with_index_vars(index.to_vec())
        .with_config(StreamConfig {
            contracted_dot: true,
            ..StreamConfig::default()
        })
        .with_ctx(ctx.clone());
    let mut session = analyzer.session();
    for r in records {
        session.push(r).expect("no bound configured");
    }
    let run = session.finish();
    (
        run.report.to_string(),
        run.contracted_dot.expect("dot requested"),
        ctx,
    )
}

#[test]
fn fig4_batch_output_is_byte_identical_with_metrics_on() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/fig4.mc"
    ))
    .expect("examples/fig4.mc exists");
    let (module, records) = trace_of(&src);
    let region = Region::new("main", 16, 24);
    let index = index_variables_of(&module, &region);
    let (off, _) = batch_rendering(&records, &region, &index, false);
    let (on, ctx) = batch_rendering(&records, &region, &index, true);
    assert_eq!(off, on, "fig4: metrics changed the rendered report");
    // Guard against comparing two degenerate reports: the paper's critical
    // set must actually be in there.
    for name in ["a", "it", "r", "sum"] {
        assert!(on.contains(name), "fig4 report names `{name}`:\n{on}");
    }
    assert!(on.contains("checkpoint"));

    // The ledger that rode along agrees with what the report says.
    let ledger = capture_ledger("fig4", &ctx);
    assert!(ledger.gauge(GaugeId::DdgNodes).0 > 0);
    assert!(ledger.gauge(GaugeId::Symbols).0 > 0);
    assert!(ledger.gauge(GaugeId::ArenaBytes).0 > 0);
    assert!(ledger.timer(TimerId::Preprocess).0 > 0);
    assert_eq!(ledger.timer(TimerId::Contract).1, 1, "one contract span");
}

#[test]
fn fig4_streaming_output_and_dot_are_byte_identical_with_metrics_on() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/fig4.mc"
    ))
    .expect("examples/fig4.mc exists");
    let (module, records) = trace_of(&src);
    let region = Region::new("main", 16, 24);
    let index = index_variables_of(&module, &region);
    let (report_off, dot_off, _) = stream_rendering(&records, &region, &index, false);
    let (report_on, dot_on, ctx) = stream_rendering(&records, &region, &index, true);
    assert_eq!(report_off, report_on, "fig4: metrics changed the report");
    assert_eq!(dot_off, dot_on, "fig4: metrics changed the DOT rendering");

    let ledger = capture_ledger("fig4", &ctx);
    assert_eq!(
        ledger.counter(CounterId::EngineRecords),
        records.len() as u64
    );
    assert!(ledger.gauge(GaugeId::LiveRecords).1 > 0, "peak tracked");
    assert!(ledger.counter(CounterId::ContractWorklistSteps) > 0);
}

#[test]
fn all_fourteen_apps_byte_identical_with_metrics_batch_and_stream() {
    for streaming in [false, true] {
        let make_jobs = || -> Vec<AnalysisJob> {
            autocheck_apps::all_apps()
                .into_iter()
                .map(|spec| {
                    AnalysisJob::new(
                        spec.name,
                        JobInput::MiniLang(spec.source.clone()),
                        spec.region.clone(),
                    )
                    .streaming(streaming)
                    .with_dot(true)
                })
                .collect()
        };
        let off = MultiAnalyzer::new(2).run(make_jobs());
        let on = MultiAnalyzer::new(2).with_metrics(true).run(make_jobs());
        assert!(off.failures.is_empty(), "{:?}", off.failures);
        assert!(on.failures.is_empty(), "{:?}", on.failures);
        assert_eq!(off.sessions.len(), 14);
        assert!(off.ledger.is_none());
        let batch_ledger = on.ledger.as_ref().expect("metrics run has a ledger");
        assert_eq!(batch_ledger.sessions.len(), 14);
        for (a, b) in off.sessions.iter().zip(&on.sessions) {
            assert_eq!(
                a.rendered, b.rendered,
                "{} (stream={streaming}): metrics changed the report",
                a.name
            );
            assert_eq!(
                a.dot, b.dot,
                "{} (stream={streaming}): metrics changed the DOT",
                a.name
            );
            assert_eq!(a.summary, b.summary);
            // The session ledger agrees with the session report.
            let l = b.ledger.as_ref().expect("session ledger present");
            assert_eq!(l.name, b.name);
            assert_eq!(l.gauge(GaugeId::Symbols).0, b.symbols as u64);
            assert!(l.timer(TimerId::SessionWall).0 > 0);
            if streaming {
                assert_eq!(l.counter(CounterId::EngineRecords), b.records);
                assert_eq!(
                    l.gauge(GaugeId::LiveRecords).1,
                    b.peak_live_records.expect("streamed") as u64,
                    "{}: ledger peak and StreamStats peak are one number",
                    b.name
                );
            }
        }
    }
}

#[test]
fn session_ledgers_round_trip_through_json() {
    // Every app's captured ledger survives serialize → parse unchanged
    // (the proptest in autocheck-obs covers arbitrary ledgers; this pins
    // the real ones the pipelines actually produce).
    let jobs: Vec<AnalysisJob> = autocheck_apps::all_apps()
        .into_iter()
        .take(4)
        .map(|spec| {
            AnalysisJob::new(
                spec.name,
                JobInput::MiniLang(spec.source.clone()),
                spec.region.clone(),
            )
            .streaming(true)
        })
        .collect();
    let out = MultiAnalyzer::new(2).with_metrics(true).run(jobs);
    assert!(out.failures.is_empty(), "{:?}", out.failures);
    let batch = out.ledger.as_ref().unwrap();
    let parsed = autocheck_obs::ledger::BatchLedger::from_json(&batch.to_json()).expect("parses");
    assert_eq!(&parsed, batch);
    for s in &out.sessions {
        let l = s.ledger.as_ref().unwrap();
        let parsed = autocheck_obs::ledger::Ledger::from_json(&l.to_json()).expect("parses");
        assert_eq!(&parsed, l);
    }
}
