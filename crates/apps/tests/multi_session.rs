//! Concurrency stress test for session-scoped analysis: all 14 benchmark
//! analyses run as parallel `MultiAnalyzer` sessions, and every rendered
//! report and DOT graph must be **byte-identical** to the serial run.
//!
//! This is the acceptance property of the per-session symbol-space design:
//! concurrent sessions intern symbols in interleaved, nondeterministic
//! orders, each into its own space — if any symbol id (whose numeric value
//! depends on that interleaving) leaked into output, or any session
//! observed another session's ids, some byte of some report would differ
//! between the serial and parallel runs.

use autocheck_apps::all_apps;
use autocheck_core::{AnalysisJob, BatchOutcome, JobInput, MultiAnalyzer};
use autocheck_trace::{AnalysisCtx, SymbolSpace};

fn suite_jobs(untrusted: bool) -> Vec<AnalysisJob> {
    all_apps()
        .into_iter()
        .map(|spec| {
            AnalysisJob::new(
                spec.name,
                JobInput::MiniLang(spec.source.clone()),
                spec.region.clone(),
            )
            .with_dot(true)
            .untrusted(untrusted)
        })
        .collect()
}

fn assert_byte_identical(serial: &BatchOutcome, parallel: &BatchOutcome) {
    assert!(serial.failures.is_empty(), "{:?}", serial.failures);
    assert!(parallel.failures.is_empty(), "{:?}", parallel.failures);
    assert_eq!(serial.sessions.len(), 14);
    assert_eq!(parallel.sessions.len(), 14);
    for (s, p) in serial.sessions.iter().zip(&parallel.sessions) {
        assert_eq!(s.name, p.name, "submission order preserved");
        assert_eq!(
            s.rendered, p.rendered,
            "{}: report bytes differ between serial and parallel sessions",
            s.name
        );
        assert_eq!(
            s.dot, p.dot,
            "{}: DOT bytes differ between serial and parallel sessions",
            s.name
        );
        assert_eq!(s.summary, p.summary, "{}", s.name);
        assert_eq!(
            s.symbols, p.symbols,
            "{}: per-session symbol count must not depend on concurrency",
            s.name
        );
    }
}

/// All 14 apps, serial sessions vs 8-way concurrent sessions: reports and
/// DOT byte-identical, and both match the paper's expected critical sets.
#[test]
fn parallel_sessions_render_byte_identical_reports_and_dot() {
    let serial = MultiAnalyzer::new(1).run(suite_jobs(false));
    let parallel = MultiAnalyzer::new(8).run(suite_jobs(false));
    assert_byte_identical(&serial, &parallel);
    for (spec, session) in all_apps().iter().zip(&parallel.sessions) {
        assert_eq!(
            session.summary,
            spec.expected_summary(),
            "{}: concurrent session must reproduce Table II",
            spec.name
        );
        assert!(session.dot.as_deref().unwrap().starts_with("digraph"));
        assert!(session.symbols > 0);
    }
}

/// The same property with untrusted sessions: every session hashes its
/// address-keyed maps with a different random seed, and output still does
/// not move by a byte.
#[test]
fn untrusted_sessions_with_random_seeds_keep_output_stable() {
    let serial = MultiAnalyzer::new(1).run(suite_jobs(false));
    let untrusted = MultiAnalyzer::new(8).run(suite_jobs(true));
    assert!(untrusted.failures.is_empty(), "{:?}", untrusted.failures);
    for (s, u) in serial.sessions.iter().zip(&untrusted.sessions) {
        assert_eq!(
            s.rendered, u.rendered,
            "{}: seeded hashing must not change any output byte",
            s.name
        );
        assert_eq!(s.dot, u.dot, "{}", s.name);
    }
}

/// Sessions match the classic single-analysis pipeline in the global
/// space: the per-session refactor changed symbol *lifetimes*, not output.
#[test]
fn sessions_match_the_global_space_pipeline_byte_for_byte() {
    let sessions = MultiAnalyzer::new(4).run(suite_jobs(false));
    assert!(sessions.failures.is_empty(), "{:?}", sessions.failures);
    for (spec, session) in all_apps().iter().zip(&sessions.sessions) {
        let run = autocheck_apps::analyze_app(spec);
        assert_eq!(
            run.report.to_string(),
            session.rendered,
            "{}: session rendering must equal the global-space pipeline's",
            spec.name
        );
    }
}

/// Two concurrent analyses of *different* programs never observe each
/// other's symbol ids: each session's space stays dense over its own
/// symbols only, no matter how the other session grows.
#[test]
fn concurrent_sessions_never_observe_each_others_ids() {
    let apps = all_apps();
    let small = &apps[6]; // ep: few symbols
    let big = &apps[10]; // comd: many symbols
    let out = MultiAnalyzer::new(2).run(vec![
        AnalysisJob::new(
            small.name,
            JobInput::MiniLang(small.source.clone()),
            small.region.clone(),
        ),
        AnalysisJob::new(
            big.name,
            JobInput::MiniLang(big.source.clone()),
            big.region.clone(),
        ),
    ]);
    assert!(out.failures.is_empty(), "{:?}", out.failures);
    let alone: Vec<usize> = [small, big]
        .iter()
        .map(|spec| {
            let solo = MultiAnalyzer::new(1).run(vec![AnalysisJob::new(
                spec.name,
                JobInput::MiniLang(spec.source.clone()),
                spec.region.clone(),
            )]);
            solo.sessions[0].symbols
        })
        .collect();
    assert_eq!(
        out.sessions[0].symbols, alone[0],
        "ep's space must be exactly as big alone as next to comd"
    );
    assert_eq!(out.sessions[1].symbols, alone[1]);
    assert_ne!(
        out.sessions[0].symbols, out.sessions[1].symbols,
        "sanity: the two programs have different symbol counts"
    );
}

/// The space primitive itself, under concurrency: ids interned in parallel
/// sessions are dense per space and resolve only in their own space.
#[test]
fn symbol_spaces_stay_isolated_under_concurrent_interning() {
    let spaces: Vec<SymbolSpace> = (0..4).map(|_| SymbolSpace::new()).collect();
    std::thread::scope(|scope| {
        for (t, space) in spaces.iter().enumerate() {
            scope.spawn(move || {
                let ctx = AnalysisCtx::with_space(space.clone());
                for i in 0..200 {
                    let id = ctx.intern(&format!("t{t}_sym{i}"));
                    assert_eq!(id.index(), i, "ids are dense per space");
                }
            });
        }
    });
    for (t, space) in spaces.iter().enumerate() {
        assert_eq!(space.len(), 200);
        let id = space.intern(&format!("t{t}_sym0"));
        assert_eq!(id.index(), 0);
        assert_eq!(space.resolve(id), format!("t{t}_sym0").as_str());
    }
    // An id minted past another space's range does not resolve there.
    let big = spaces[0].intern("t0_extra");
    let fresh = SymbolSpace::new();
    assert_eq!(fresh.try_resolve(big), None);
}
