//! Acceptance tests for the streaming analysis engine:
//!
//! * streaming and batch pipelines produce identical reports on the
//!   Fig. 4 example and on all 14 benchmarks;
//! * streaming memory is bounded: on multi-iteration traces the peak
//!   live-record count stays strictly below the total record count, and
//!   below `max_live_records` when one is set;
//! * the interpreter→analyzer direct mode works with no intermediate trace
//!   file (`mlc trace --stream` smoke test against the real binary).

use autocheck_core::{index_variables_of, Analyzer, Region, Report, StreamAnalyzer, StreamConfig};
use autocheck_interp::{ExecOptions, FnSink, Machine, NoHook, VecSink};
use autocheck_trace::Record;

fn trace_of(source: &str) -> (autocheck_ir::Module, Vec<Record>) {
    let module = autocheck_minilang::compile(source).expect("compiles");
    let mut sink = VecSink::default();
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    (module, sink.records)
}

fn assert_reports_match(name: &str, batch: &Report, stream: &Report) {
    assert_eq!(batch.mli, stream.mli, "{name}: MLI sets differ");
    assert_eq!(
        batch.critical, stream.critical,
        "{name}: critical sets differ"
    );
    assert_eq!(batch.skipped, stream.skipped, "{name}: skip sets differ");
    assert_eq!(
        batch.iterations, stream.iterations,
        "{name}: iterations differ"
    );
    assert_eq!(
        batch.records, stream.records,
        "{name}: record counts differ"
    );
    assert_eq!(
        batch.checkpoint_bytes(),
        stream.checkpoint_bytes(),
        "{name}: checkpoint byte sizes differ"
    );
}

#[test]
fn fig4_streaming_equals_batch() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/fig4.mc"
    ))
    .expect("examples/fig4.mc exists");
    let (module, records) = trace_of(&src);
    let region = Region::new("main", 16, 24);
    let index = index_variables_of(&module, &region);
    let batch = Analyzer::new(region.clone())
        .with_index_vars(index.clone())
        .analyze(&records);
    let stream = StreamAnalyzer::new(region)
        .with_index_vars(index)
        .analyze(&records)
        .expect("streams");
    assert_reports_match("fig4", &batch, &stream);
    // And the paper's critical set comes out of the streaming path.
    let names: Vec<String> = stream.summary().iter().map(|(n, _)| n.clone()).collect();
    assert_eq!(names, vec!["a", "it", "r", "sum"]);
}

#[test]
fn all_fourteen_apps_streaming_equals_batch() {
    for spec in autocheck_apps::all_apps() {
        let (module, records) = trace_of(&spec.source);
        let index = index_variables_of(&module, &spec.region);
        let batch = Analyzer::new(spec.region.clone())
            .with_index_vars(index.clone())
            .analyze(&records);
        let stream = StreamAnalyzer::new(spec.region.clone())
            .with_index_vars(index)
            .analyze(&records)
            .expect("streams");
        assert_reports_match(spec.name, &batch, &stream);
    }
}

#[test]
fn streaming_memory_is_bounded_on_multi_iteration_traces() {
    // Every benchmark trace has multiple iterations; on each, the live
    // window must undercut the trace length — that is the whole point of
    // the streaming engine.
    for spec in autocheck_apps::all_apps() {
        let (module, records) = trace_of(&spec.source);
        let index = index_variables_of(&module, &spec.region);
        let analyzer = StreamAnalyzer::new(spec.region.clone()).with_index_vars(index);
        let mut session = analyzer.session();
        for r in &records {
            session.push(r).expect("no bound configured");
        }
        let peak = session.peak_live_records();
        let run = session.finish();
        assert!(
            run.report.iterations > 1,
            "{}: needs a multi-iteration trace",
            spec.name
        );
        assert!(
            (peak as u64) < run.report.records,
            "{}: peak live {} must be strictly below total records {}",
            spec.name,
            peak,
            run.report.records
        );

        // With a cap set above the observed peak, the bound holds and the
        // peak stays below it; with a cap below the peak, push fails fast.
        let capped = StreamAnalyzer::new(spec.region.clone()).with_config(StreamConfig {
            max_live_records: Some(peak + 1),
            ..StreamConfig::default()
        });
        let mut session = capped.session();
        for r in &records {
            session.push(r).expect("cap sits above the true peak");
        }
        let capped_run = session.finish();
        assert!(
            capped_run.stats.peak_live_records < peak + 2,
            "{}: peak under cap",
            spec.name
        );
        assert_eq!(capped_run.stats.live_bound, Some(peak + 1));

        if peak > 1 {
            let tight = StreamAnalyzer::new(spec.region.clone()).with_config(StreamConfig {
                max_live_records: Some(peak - 1),
                ..StreamConfig::default()
            });
            let mut session = tight.session();
            let mut tripped = false;
            for r in &records {
                if session.push(r).is_err() {
                    tripped = true;
                    break;
                }
            }
            assert!(tripped, "{}: cap below peak must trip", spec.name);
        }
    }
}

#[test]
fn interpreter_to_analyzer_direct_mode_needs_no_trace_file() {
    // The push path end to end, in process: records flow from the machine
    // through FnSink into the session; nothing is buffered or written.
    let spec = autocheck_apps::app_by_name("cg").expect("cg exists");
    let (module, records) = trace_of(&spec.source);
    let index = index_variables_of(&module, &spec.region);
    let batch = Analyzer::new(spec.region.clone())
        .with_index_vars(index.clone())
        .analyze(&records);

    let analyzer = StreamAnalyzer::new(spec.region.clone()).with_index_vars(index);
    let mut session = analyzer.session();
    let mut sink = FnSink::new(|rec| {
        session
            .push(&rec)
            .map_err(|e| autocheck_interp::ExecError::Sink {
                message: e.to_string(),
            })
    });
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    let run = session.finish();
    assert_reports_match("cg (direct)", &batch, &run.report);
    assert!((run.stats.peak_live_records as u64) < run.report.records);
}

/// `mlc trace <file> --stream` smoke test against the real binary: analyzes
/// online, prints the report and the live-record footer, and writes no
/// trace file.
#[test]
fn mlc_stream_smoke_test() {
    let fig4 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/fig4.mc");
    // Process-unique scratch dir: concurrent test runs must not share (or
    // delete) each other's working directory.
    let dir =
        std::env::temp_dir().join(format!("autocheck-mlc-stream-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_mlc"))
        .args(["trace", fig4, "--stream", "--function", "main"])
        .args(["--start", "16", "--end", "24"])
        .args(["--max-live-records", "4096"])
        .current_dir(&dir)
        .output()
        .expect("mlc runs");
    assert!(
        out.status.success(),
        "mlc --stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("checkpoint a"),
        "report lists `a`:\n{stdout}"
    );
    assert!(stdout.contains("Index"), "report lists the Index class");
    assert!(
        stdout.contains("peak") && stdout.contains("live records"),
        "footer shows the live-record bound:\n{stdout}"
    );
    assert!(stdout.contains("no trace file written"));
    // Nothing was written next to us (the non-stream default would create
    // `<input>.trace` in the working directory).
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("scratch dir readable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".trace"))
        .collect();
    assert!(leftovers.is_empty(), "stray trace files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
