//! Hostile-trace corpus sweep: the fail-safe acceptance bar.
//!
//! Every file in `tests/hostile/` (repo root) goes through all three front
//! doors — the batch ingest (`TraceSource::records`), the streaming engine
//! (`StreamAnalyzer::run_read`), and `MultiAnalyzer` jobs — in untrusted
//! sessions with resource ceilings set. The bar: **no panic, typed errors
//! only, no allocation driven by lying headers**, and a failing job never
//! disturbs its neighbours. The corpus files are documented in
//! `tests/hostile/README.md`; the seeded fault sweep additionally perturbs
//! well-formed traces with `FaultReader` so short reads, injected I/O
//! errors, truncation, and bit flips all land on the same bar.

use autocheck_core::{
    AnalysisJob, JobInput, MultiAnalyzer, Region, StreamAnalyzer, StreamConfig, StreamError,
};
use autocheck_trace::{AnalysisCtx, FaultPlan, ResourceKind, ResourceLimits, TraceSource};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/hostile")
}

/// Every corpus input (both formats), sorted for deterministic ordering.
fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("txt") | Some("bin")
            )
        })
        .collect();
    files.sort();
    assert!(files.len() >= 9, "corpus went missing: {files:?}");
    files
}

/// Ceilings generous enough for the one well-formed corpus file
/// (`adversarial_symbols.txt`: 400 records, ~50 KiB of symbol bytes) while
/// still bounding what any lying header can make us do.
fn corpus_limits() -> ResourceLimits {
    ResourceLimits::new()
        .max_trace_records(10_000)
        .max_trace_bytes(1 << 20)
        .max_symbols(4_096)
        .max_arena_bytes(1 << 20)
}

fn untrusted_ctx() -> AnalysisCtx {
    AnalysisCtx::session()
        .untrusted()
        .with_limits(corpus_limits())
}

#[test]
fn batch_ingest_survives_every_corpus_file() {
    for path in corpus_files() {
        let ctx = untrusted_ctx();
        let result = TraceSource::from_path(&path).ctx(&ctx).records();
        match result {
            // The resource-shaped files parse clean under these ceilings;
            // anything syntactically hostile must fail typed.
            Ok(recs) => assert!(
                recs.len() <= 10_000,
                "{}: parsed past the record ceiling",
                path.display()
            ),
            Err(e) => {
                let msg = e.to_string();
                assert!(!msg.is_empty(), "{}: empty diagnostic", path.display());
            }
        }
    }
}

#[test]
fn streaming_ingest_survives_every_corpus_file() {
    for path in corpus_files() {
        let ctx = untrusted_ctx();
        // Rendering/sorting resolves symbols via the thread-current space.
        let _guard = ctx.enter();
        let bytes = std::fs::read(&path).expect("corpus file readable");
        let analyzer = StreamAnalyzer::new(Region::new("main", 3, 6))
            .with_config(StreamConfig::default())
            .with_ctx(ctx.clone());
        match analyzer.run_read(&bytes[..]) {
            Ok(run) => assert!(run.report.records <= 10_000, "{}", path.display()),
            Err(e) => match e {
                StreamError::Source(_) | StreamError::Resource(_) | StreamError::LiveBound(_) => {
                    assert!(!e.to_string().is_empty());
                }
            },
        }
    }
}

#[test]
fn multi_analyzer_degrades_gracefully_over_the_corpus() {
    // All corpus files as one batch: hostile jobs fail typed and isolated,
    // and the one well-formed file still analyzes.
    let jobs: Vec<AnalysisJob> = corpus_files()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            AnalysisJob::new(
                p.file_name().unwrap().to_string_lossy().to_string(),
                JobInput::TracePath(p.display().to_string()),
                Region::new("main", 3, 6),
            )
            .untrusted(true)
            .streaming(i % 2 == 0)
            .with_limits(corpus_limits())
        })
        .collect();
    let n = jobs.len();
    let out = MultiAnalyzer::new(4).run(jobs);
    assert_eq!(out.sessions.len() + out.failures.len(), n, "no job lost");
    for f in &out.failures {
        assert!(!f.message.is_empty(), "{}: empty failure message", f.name);
        assert!(
            !f.message.starts_with("panic:"),
            "{}: panicked instead of failing typed: {}",
            f.name,
            f.message
        );
    }
    let ok_names: Vec<&str> = out.sessions.iter().map(|s| s.name.as_str()).collect();
    assert!(
        ok_names.contains(&"adversarial_symbols.txt"),
        "the well-formed file must analyze; got {ok_names:?} / {:?}",
        out.failures
    );
}

#[test]
fn tight_ceilings_trip_typed_on_the_resource_hostile_file() {
    let path = corpus_dir().join("adversarial_symbols.txt");
    for (limits, kind) in [
        (ResourceLimits::new().max_symbols(16), ResourceKind::Symbols),
        (
            ResourceLimits::new().max_trace_records(100),
            ResourceKind::TraceRecords,
        ),
        (
            ResourceLimits::new().max_trace_bytes(4_096),
            ResourceKind::TraceBytes,
        ),
        (
            ResourceLimits::new().max_arena_bytes(1_024),
            ResourceKind::ArenaBytes,
        ),
    ] {
        let ctx = AnalysisCtx::session().untrusted().with_limits(limits);
        let err = TraceSource::from_path(&path)
            .ctx(&ctx)
            .records()
            .expect_err("ceiling must trip");
        match err {
            autocheck_trace::reader::TraceReadError::Resource(e) => {
                assert_eq!(e.kind, kind, "wrong axis tripped");
                assert!(e.used > e.limit);
            }
            other => panic!("{kind}: expected Resource, got {other}"),
        }
    }
}

#[test]
fn lying_binary_headers_do_not_drive_allocation() {
    // The header claims u64::MAX records over ~5 KiB of body. A byte
    // ceiling far below any such allocation must be enough: the read is
    // bounded by real input size, and the failure is typed.
    let path = corpus_dir().join("lying_header.bin");
    let ctx = AnalysisCtx::session()
        .untrusted()
        .with_limits(ResourceLimits::new().max_trace_bytes(1 << 20));
    let err = TraceSource::from_path(&path)
        .ctx(&ctx)
        .records()
        .expect_err("the record shortfall is an error");
    assert!(!err.to_string().is_empty());
}

/// One batch-ingest outcome, rendered for cross-depth comparison: the
/// record count on success, the full diagnostic on failure. Overlapped
/// ingest must reproduce the serial outcome byte for byte — same typed
/// error, same message, same record count.
fn batch_outcome(result: Result<Vec<autocheck_trace::Record>, impl std::fmt::Display>) -> String {
    match result {
        Ok(recs) => format!("ok:{}", recs.len()),
        Err(e) => format!("err:{e}"),
    }
}

#[test]
fn overlapped_batch_ingest_matches_serial_over_the_corpus() {
    // Every hostile file, at every decode-ahead depth: the outcome —
    // success or typed diagnostic — is byte-identical to the serial path.
    for path in corpus_files() {
        let run = |depth: usize| {
            let ctx = untrusted_ctx();
            batch_outcome(
                TraceSource::from_path(&path)
                    .ctx(&ctx)
                    .overlap(depth)
                    .records(),
            )
        };
        let serial = run(1);
        for depth in [2, 4] {
            assert_eq!(
                run(depth),
                serial,
                "{}: overlap {depth} diverged from serial",
                path.display()
            );
        }
    }
}

#[test]
fn overlapped_streaming_survives_the_corpus_with_serial_error_classes() {
    // The streaming front door under overlap: success renders the
    // identical report; failure lands in the same typed error class the
    // serial stream produces. (Exact error text is not compared here —
    // the serial stream reads in small chunks while the pipeline reads in
    // windows, so byte counters embedded in resource diagnostics may
    // legitimately differ.)
    for path in corpus_files() {
        let bytes = std::fs::read(&path).expect("corpus file readable");
        let run = |depth: usize| {
            let ctx = untrusted_ctx();
            let _guard = ctx.enter();
            let analyzer = StreamAnalyzer::new(Region::new("main", 3, 6))
                .with_config(StreamConfig {
                    overlap: depth,
                    ..StreamConfig::default()
                })
                .with_ctx(ctx.clone());
            match analyzer.analyze_read(&bytes[..]) {
                Ok(report) => format!("ok:{report}"),
                Err(StreamError::Source(_)) => "err:source".to_string(),
                Err(StreamError::Resource(_)) => "err:resource".to_string(),
                Err(StreamError::LiveBound(_)) => "err:livebound".to_string(),
            }
        };
        let serial = run(1);
        for depth in [2, 4] {
            assert_eq!(
                run(depth),
                serial,
                "{}: streaming overlap {depth} diverged from serial",
                path.display()
            );
        }
    }
}

#[test]
fn seeded_faults_stay_typed_and_match_serial_under_overlap() {
    // The PR 8 fault harness, pointed at the decode-ahead pipeline:
    // 64 deterministic plans of short reads, injected I/O errors,
    // truncation, and bit flips, each run serially and at overlap 2 and 4.
    // A fault that hits the producer thread must surface to the consumer
    // as the same typed error the serial path reports — never a poisoned
    // channel, never a panic.
    let bytes = std::fs::read(corpus_dir().join("adversarial_symbols.txt")).unwrap();
    for seed in 0..64u64 {
        let batch = |depth: usize| {
            let ctx = untrusted_ctx();
            let plan = FaultPlan::from_seed(seed, bytes.len() as u64);
            batch_outcome(
                TraceSource::from_reader(plan.reader(&bytes[..]))
                    .ctx(&ctx)
                    .overlap(depth)
                    .records(),
            )
        };
        let serial = batch(1);
        for depth in [2, 4] {
            assert_eq!(
                batch(depth),
                serial,
                "seed {seed}: batch overlap {depth} diverged from serial"
            );
        }

        // Streaming front door under the same plan and depths: identical
        // report on success, same error class on failure.
        let stream = |depth: usize| {
            let ctx = untrusted_ctx();
            let _guard = ctx.enter();
            let plan = FaultPlan::from_seed(seed, bytes.len() as u64);
            let analyzer = StreamAnalyzer::new(Region::new("main", 3, 6))
                .with_config(StreamConfig {
                    overlap: depth,
                    ..StreamConfig::default()
                })
                .with_ctx(ctx.clone());
            match analyzer.analyze_read(plan.reader(&bytes[..])) {
                Ok(report) => format!("ok:{report}"),
                Err(StreamError::Source(_)) => "err:source".to_string(),
                Err(StreamError::Resource(_)) => "err:resource".to_string(),
                Err(StreamError::LiveBound(_)) => "err:livebound".to_string(),
            }
        };
        let stream_serial = stream(1);
        for depth in [2, 4] {
            assert_eq!(
                stream(depth),
                stream_serial,
                "seed {seed}: streaming overlap {depth} diverged from serial"
            );
        }
    }
}

#[test]
fn seeded_faults_over_well_formed_traces_stay_typed() {
    // Perturb the well-formed corpus file under 64 deterministic fault
    // plans, through both front doors. Whatever the fault, the outcome is
    // Ok or a typed error — and the same seed gives the same outcome.
    let bytes = std::fs::read(corpus_dir().join("adversarial_symbols.txt")).unwrap();
    for seed in 0..64u64 {
        let outcome = |()| -> String {
            let ctx = untrusted_ctx();
            let plan = FaultPlan::from_seed(seed, bytes.len() as u64);
            let result = TraceSource::from_reader(plan.reader(&bytes[..]))
                .ctx(&ctx)
                .records();
            match result {
                Ok(recs) => format!("ok:{}", recs.len()),
                Err(e) => format!("err:{e}"),
            }
        };
        let first = outcome(());
        let second = outcome(());
        // Injected-error text embeds only seed/offset, so equality here
        // means the whole pipeline is deterministic under a given plan.
        assert_eq!(first, second, "seed {seed} diverged");

        // Stream front door under the same plan.
        let ctx = untrusted_ctx();
        let _guard = ctx.enter();
        let plan = FaultPlan::from_seed(seed, bytes.len() as u64);
        let analyzer = StreamAnalyzer::new(Region::new("main", 3, 6)).with_ctx(ctx.clone());
        let _ = analyzer.run_read(plan.reader(&bytes[..]));
    }
}
