//! The binary trace format: fixed-width records behind a per-file symbol
//! table.
//!
//! The textual format (see the crate docs) spends most of its ingest budget
//! re-tokenizing and re-hashing the same handful of strings millions of
//! times. The binary format removes both costs:
//!
//! * **every symbol appears exactly once**, in a string table at the head
//!   of the file, and is interned into the session's
//!   [`SymbolSpace`](crate::SymbolSpace) once at open — records refer to
//!   symbols by dense file-local index, resolved with an array lookup;
//! * **records are fixed-width** (a 32-byte header plus 19 bytes per
//!   operand), so decoding is a handful of `from_le_bytes` copies straight
//!   out of the input buffer — no per-record string materialization at all.
//!
//! # Layout
//!
//! All integers are little-endian.
//!
//! ```text
//! header (24 bytes)
//!   0   4  magic           B7 41 43 54  ("\xB7ACT"; 0xB7 is never a
//!                          valid leading UTF-8 byte, so text traces can
//!                          never collide and auto-detection is one byte)
//!   4   2  version         currently 1
//!   6   2  reserved        0
//!   8   8  record count
//!   16  4  string count
//!   20  4  string-table length in bytes
//! string table (one entry per symbol, in first-use order)
//!   0   2  byte length
//!   2   n  UTF-8 bytes
//! records (record count of them, then end of file)
//!   0   4  src_line (i32)
//!   4   4  func            (string-table index)
//!   8   4  bb line
//!   12  4  bb col
//!   16  4  bb_label        (string-table index)
//!   20  2  opcode
//!   22  2  bit 15: has-result flag; bits 0–14: operand count
//!   24  8  dyn_id
//! operand entries (operand count + has-result of them, 19 bytes each;
//! the result entry, when present, comes last)
//!   0   1  tag kind        0 = positional, 1 = param (`f`), 2 = result (`r`)
//!   1   1  position        1-based operand id for positional tags, else 0
//!   2   2  bits
//!   4   1  is_reg          0 or 1
//!   5   1  name kind       0 = none, 1 = temp, 2 = symbol
//!   6   4  name payload    temp number or string-table index, else 0
//!   10  1  value kind      0 = none, 1 = int, 2 = float, 3 = pointer
//!   11  8  value payload   i64 / f64 bit pattern / u64, else 0
//! iteration-index footer (version 2 only, after the last record)
//!   0   4  index magic     41 49 58 31 ("AIX1")
//!   4   4  boundary count  u32
//!   8   8n boundaries      record indices where a new region iteration
//!                          starts, u64 each, strictly increasing,
//!                          each in (0, record count)
//!   ..  4  boundary count  repeated (backward parse)
//!   ..  4  index magic     repeated (backward parse)
//! ```
//!
//! The footer makes shard planning ([`crate::shard`]) O(index): a seekable
//! reader parses it straight off the end of the file, and the streaming
//! reader consumes it after the declared records. Version-1 files carry no
//! footer and remain byte-identical to what earlier writers emitted.
//!
//! The writer is **buffered**: record bytes and the growing string table
//! accumulate in memory and the complete file — header, then string table,
//! then records — is emitted at [`BinaryWriter::finish`]. That is what lets
//! the string table live *ahead* of the records (so readers, including
//! purely streaming ones, intern everything once up front) while symbols
//! are still discovered on the fly during writing.
//!
//! Readers validate everything before trusting it: magic, version, that
//! the declared string table fits its section, that every symbol index is
//! in range, and that exactly the declared record count is present.
//! Allocations are bounded by bytes actually read, never by header-declared
//! sizes — a hostile header cannot make a reader over-allocate (the
//! `--untrusted-trace` hardening contract; see the fuzz tests).

use crate::ctx::AnalysisCtx;
use crate::intern::{SymId, SymStr};
use crate::name::Name;
use crate::reader::TraceReadError;
use crate::record::{OpTag, Operand, Record, TraceValue};
use fxhash::FxHashMap;
use std::io::{self, Read, Write};

/// The four magic bytes opening every binary trace file.
pub const MAGIC: [u8; 4] = [0xB7, b'A', b'C', b'T'];

/// The current format version.
pub const VERSION: u16 = 1;

/// Format version for files carrying the optional iteration-index footer
/// (see the module docs). Files without a footer keep [`VERSION`] and stay
/// byte-identical to what older writers produced; version-1 readers reject
/// version-2 files rather than misread the footer as trailing garbage.
pub const VERSION_INDEXED: u16 = 2;

/// Magic bytes framing the iteration-index footer at **both** ends, so it
/// parses forward (streaming readers, after the declared records) and
/// backward (seekable readers, from end of file) without a scan.
pub const INDEX_MAGIC: [u8; 4] = *b"AIX1";

/// Fixed footer overhead: leading magic + count, trailing count + magic.
const INDEX_FRAME_BYTES: usize = 16;

/// Header size in bytes.
pub const HEADER_BYTES: usize = 24;

/// Fixed record-header size in bytes.
pub const RECORD_BYTES: usize = 32;

/// Fixed per-operand entry size in bytes.
pub const OPERAND_BYTES: usize = 19;

/// Largest encodable operand count (bits 0–14 of the packed field).
const MAX_OPERANDS: usize = 0x7FFF;

/// A malformed binary trace, with the byte offset where decoding stopped.
#[derive(Clone, Debug, PartialEq)]
pub struct BinaryError {
    /// Byte offset into the file/stream where the problem was found.
    pub offset: u64,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BinaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "binary trace error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for BinaryError {}

fn berr(offset: u64, message: impl Into<String>) -> TraceReadError {
    TraceReadError::Binary(BinaryError {
        offset,
        message: message.into(),
    })
}

/// True when `bytes` begin with the binary-trace magic (the auto-detection
/// probe used by [`crate::TraceSource`] and the CLIs).
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Buffered binary trace writer over any [`Write`].
///
/// Mirrors [`TraceWriter`](crate::TraceWriter)'s API (write records, counters,
/// `finish`). Symbols resolve through the writer's [`AnalysisCtx`], so
/// records must come from the same session. Nothing reaches the underlying
/// writer until [`finish`](Self::finish) — see the module docs for why.
pub struct BinaryWriter<W: Write> {
    out: W,
    ctx: AnalysisCtx,
    /// String-table entries in first-use order (= file-local index order).
    /// Owned handles — the writer stays valid even if the session space
    /// that interned them drops first.
    strings: Vec<SymStr>,
    /// Session `SymId` index → file-local string-table index.
    sym_index: FxHashMap<usize, u32>,
    /// Accumulated record-section bytes.
    records: Vec<u8>,
    record_count: u64,
    /// Iteration boundaries to emit as a version-2 footer, when set.
    index: Option<Vec<u64>>,
}

impl<W: Write> BinaryWriter<W> {
    /// Wrap `out`, resolving symbols through the thread's current space.
    pub fn new(out: W) -> Self {
        Self::with_ctx(out, &AnalysisCtx::current())
    }

    /// Wrap `out`, resolving symbols through `ctx`'s space.
    pub fn with_ctx(out: W, ctx: &AnalysisCtx) -> Self {
        BinaryWriter {
            out,
            ctx: ctx.clone(),
            strings: Vec::new(),
            sym_index: FxHashMap::default(),
            records: Vec::new(),
            record_count: 0,
            index: None,
        }
    }

    /// Emit an iteration-index footer at [`finish`](Self::finish) and stamp
    /// the file [`VERSION_INDEXED`]. `bounds` are the record indices where
    /// a new region iteration starts — strictly increasing, each within
    /// the records actually written (checked at `finish`, where the final
    /// record count is known).
    pub fn set_iteration_index(&mut self, bounds: Vec<u64>) {
        self.index = Some(bounds);
    }

    fn file_sym(&mut self, id: SymId) -> io::Result<u32> {
        if let Some(&ix) = self.sym_index.get(&id.index()) {
            return Ok(ix);
        }
        let s = self.ctx.resolve(id);
        if s.len() > u16::MAX as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "symbol of {} bytes exceeds the format's 64 KiB cap",
                    s.len()
                ),
            ));
        }
        let ix = u32::try_from(self.strings.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many symbols"))?;
        self.strings.push(s);
        self.sym_index.insert(id.index(), ix);
        Ok(ix)
    }

    fn encode_operand(&mut self, op: &Operand) -> io::Result<()> {
        let (kind, pos) = match op.tag {
            OpTag::Pos(i) => (0u8, i),
            OpTag::Param => (1, 0),
            OpTag::Result => (2, 0),
        };
        let (name_kind, name_payload) = match op.name {
            Name::None => (0u8, 0u32),
            Name::Temp(n) => (1, n),
            Name::Sym(s) => (2, self.file_sym(s)?),
        };
        let (value_kind, value_payload) = match op.value {
            TraceValue::None => (0u8, 0u64),
            TraceValue::I(v) => (1, v as u64),
            TraceValue::F(v) => (2, v.to_bits()),
            TraceValue::Ptr(p) => (3, p),
        };
        let b = &mut self.records;
        b.push(kind);
        b.push(pos);
        b.extend_from_slice(&op.bits.to_le_bytes());
        b.push(op.is_reg as u8);
        b.push(name_kind);
        b.extend_from_slice(&name_payload.to_le_bytes());
        b.push(value_kind);
        b.extend_from_slice(&value_payload.to_le_bytes());
        Ok(())
    }

    /// Serialize one record (into the writer's buffer).
    pub fn write_record(&mut self, r: &Record) -> io::Result<()> {
        if r.operands.len() > MAX_OPERANDS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record with {} operands exceeds the format's cap",
                    r.operands.len()
                ),
            ));
        }
        let func = self.file_sym(r.func)?;
        let label = self.file_sym(r.bb_label)?;
        let packed = r.operands.len() as u16 | if r.result.is_some() { 0x8000 } else { 0 };
        let b = &mut self.records;
        b.extend_from_slice(&r.src_line.to_le_bytes());
        b.extend_from_slice(&func.to_le_bytes());
        b.extend_from_slice(&r.bb.0.to_le_bytes());
        b.extend_from_slice(&r.bb.1.to_le_bytes());
        b.extend_from_slice(&label.to_le_bytes());
        b.extend_from_slice(&r.opcode.to_le_bytes());
        b.extend_from_slice(&packed.to_le_bytes());
        b.extend_from_slice(&r.dyn_id.to_le_bytes());
        for op in &r.operands {
            self.encode_operand(op)?;
        }
        if let Some(res) = &r.result {
            self.encode_operand(res)?;
        }
        self.record_count += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.record_count
    }

    /// Size of the complete file as buffered so far (header + string table
    /// + records + any pending iteration-index footer), in bytes.
    pub fn bytes_written(&self) -> u64 {
        let strtab: usize = self.strings.iter().map(|s| 2 + s.len()).sum();
        let footer = self
            .index
            .as_ref()
            .map(|b| INDEX_FRAME_BYTES + b.len() * 8)
            .unwrap_or(0);
        (HEADER_BYTES + strtab + self.records.len() + footer) as u64
    }

    /// Emit header, string table, records and (when set) the
    /// iteration-index footer; flush; return the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(bounds) = &self.index {
            check_boundaries(bounds, self.record_count, 0).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("iteration index: {e}"))
            })?;
        }
        let strtab_len: usize = self.strings.iter().map(|s| 2 + s.len()).sum();
        let strtab_len = u32::try_from(strtab_len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "string table exceeds 4 GiB")
        })?;
        let version = if self.index.is_some() {
            VERSION_INDEXED
        } else {
            VERSION
        };
        let mut head = Vec::with_capacity(HEADER_BYTES + strtab_len as usize);
        head.extend_from_slice(&MAGIC);
        head.extend_from_slice(&version.to_le_bytes());
        head.extend_from_slice(&0u16.to_le_bytes());
        head.extend_from_slice(&self.record_count.to_le_bytes());
        head.extend_from_slice(&(self.strings.len() as u32).to_le_bytes());
        head.extend_from_slice(&strtab_len.to_le_bytes());
        for s in &self.strings {
            head.extend_from_slice(&(s.len() as u16).to_le_bytes());
            head.extend_from_slice(s.as_bytes());
        }
        self.out.write_all(&head)?;
        self.out.write_all(&self.records)?;
        if let Some(bounds) = &self.index {
            self.out.write_all(&encode_footer(bounds))?;
        }
        self.out.flush()?;
        Ok(self.out)
    }

    /// Mutable access to the underlying writer.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.out
    }
}

/// Serialize a slice of records to a complete binary trace (convenience
/// mirror of [`crate::writer::to_string`]).
pub fn to_bytes(records: &[Record], ctx: &AnalysisCtx) -> Vec<u8> {
    // SAFETY of the expects: the sink is a `Vec<u8>`, whose `Write` impl is
    // infallible — no untrusted input is involved on the encode path.
    let mut w = BinaryWriter::with_ctx(Vec::new(), ctx);
    for r in records {
        w.write_record(r).expect("in-memory binary encode");
    }
    w.finish().expect("in-memory binary encode")
}

/// Like [`to_bytes`], with an iteration-index footer (version-2 file).
/// Panics on an invalid index — callers computing boundaries from a real
/// record scan cannot produce one.
pub fn to_bytes_with_index(records: &[Record], bounds: Vec<u64>, ctx: &AnalysisCtx) -> Vec<u8> {
    let mut w = BinaryWriter::with_ctx(Vec::new(), ctx);
    for r in records {
        w.write_record(r).expect("in-memory binary encode");
    }
    w.set_iteration_index(bounds);
    w.finish().expect("in-memory binary encode")
}

// ---------------------------------------------------------------------------
// Shared decode helpers
// ---------------------------------------------------------------------------

fn parse_header_fields(h: &[u8; HEADER_BYTES]) -> Result<(u16, u64, u32, u32), TraceReadError> {
    if h[..4] != MAGIC {
        return Err(berr(0, "not a binary trace (bad magic bytes)"));
    }
    let version = u16::from_le_bytes([h[4], h[5]]);
    if version != VERSION && version != VERSION_INDEXED {
        return Err(berr(4, format!("unsupported format version {version}")));
    }
    // SAFETY of unwraps: `h` is a fixed `[u8; HEADER_BYTES]` array, so these
    // constant subranges always have exactly the width the conversion needs —
    // no hostile input reaches them with a different length.
    let record_count = u64::from_le_bytes(h[8..16].try_into().unwrap());
    let string_count = u32::from_le_bytes(h[16..20].try_into().unwrap());
    let strtab_len = u32::from_le_bytes(h[20..24].try_into().unwrap());
    // Every entry takes at least its 2-byte length prefix, so a count that
    // cannot fit the declared section is a lie — reject it before any
    // count-derived work happens.
    if (string_count as u64) * 2 > strtab_len as u64 {
        return Err(berr(16, "string count does not fit the string table"));
    }
    Ok((version, record_count, string_count, strtab_len))
}

/// Validate one decoded boundary sequence (shared by both parse
/// directions): strictly increasing record indices in `(0, record_count)`.
fn check_boundaries(bounds: &[u64], record_count: u64, offset: u64) -> Result<(), TraceReadError> {
    let mut prev = 0u64;
    for &b in bounds {
        if b <= prev {
            return Err(berr(offset, "iteration index is not strictly increasing"));
        }
        if b >= record_count {
            return Err(berr(
                offset,
                format!("iteration boundary {b} outside (0, {record_count})"),
            ));
        }
        prev = b;
    }
    Ok(())
}

/// Parse the iteration-index footer **backward** from the end of `bytes`.
/// `floor` is the first byte offset the footer may occupy (just past the
/// string table — a hostile footer may not swallow header bytes). Returns
/// the boundaries and the footer's total length.
fn parse_footer_tail(
    bytes: &[u8],
    floor: usize,
    record_count: u64,
) -> Result<(Vec<u64>, usize), TraceReadError> {
    let len = bytes.len();
    if len < floor + INDEX_FRAME_BYTES {
        return Err(berr(len as u64, "file too short for the iteration index"));
    }
    if bytes[len - 4..] != INDEX_MAGIC {
        return Err(berr(
            (len - 4) as u64,
            "missing iteration-index trailer magic",
        ));
    }
    // SAFETY of the unwraps: constant-width subranges of a slice whose
    // length was checked above.
    let count = u32::from_le_bytes(bytes[len - 8..len - 4].try_into().unwrap()) as usize;
    let footer_len = INDEX_FRAME_BYTES + count * 8;
    if len < floor + footer_len {
        return Err(berr(
            (len - 8) as u64,
            "iteration-index count overruns the file",
        ));
    }
    let start = len - footer_len;
    if bytes[start..start + 4] != INDEX_MAGIC {
        return Err(berr(start as u64, "missing iteration-index header magic"));
    }
    let lead = u32::from_le_bytes(bytes[start + 4..start + 8].try_into().unwrap()) as usize;
    if lead != count {
        return Err(berr(
            (start + 4) as u64,
            "iteration-index counts disagree front to back",
        ));
    }
    let mut bounds = Vec::with_capacity(count);
    let mut at = start + 8;
    for _ in 0..count {
        bounds.push(u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()));
        at += 8;
    }
    check_boundaries(&bounds, record_count, (start + 8) as u64)?;
    Ok((bounds, footer_len))
}

/// Encode the iteration-index footer.
fn encode_footer(bounds: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(INDEX_FRAME_BYTES + bounds.len() * 8);
    out.extend_from_slice(&INDEX_MAGIC);
    out.extend_from_slice(&(bounds.len() as u32).to_le_bytes());
    for &b in bounds {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out.extend_from_slice(&(bounds.len() as u32).to_le_bytes());
    out.extend_from_slice(&INDEX_MAGIC);
    out
}

/// Read the iteration-index footer off a complete in-memory binary trace
/// without decoding any record: `Ok(Some(...))` for version-2 files,
/// `Ok(None)` for version-1 files (no footer). O(footer), no symbol
/// interning — this is what shard planning calls first.
pub fn iteration_index(bytes: &[u8]) -> Result<Option<Vec<u64>>, TraceReadError> {
    let head: &[u8; HEADER_BYTES] = bytes
        .get(..HEADER_BYTES)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| berr(bytes.len() as u64, "truncated header"))?;
    let (version, record_count, _, strtab_len) = parse_header_fields(head)?;
    if version != VERSION_INDEXED {
        return Ok(None);
    }
    let floor = HEADER_BYTES + strtab_len as usize;
    let (bounds, _) = parse_footer_tail(bytes, floor, record_count)?;
    Ok(Some(bounds))
}

/// Decode + intern one string-table section. `base` is the section's byte
/// offset (error reporting only). Allocation is bounded by `bytes.len()`,
/// which callers guarantee is real data, not a header claim.
fn intern_strtab(
    bytes: &[u8],
    string_count: u32,
    base: u64,
    ctx: &AnalysisCtx,
) -> Result<Vec<SymId>, TraceReadError> {
    let mut syms = Vec::with_capacity(string_count as usize);
    let mut at = 0usize;
    for _ in 0..string_count {
        let off = base + at as u64;
        let len = bytes
            .get(at..at + 2)
            .map(|b| u16::from_le_bytes([b[0], b[1]]) as usize)
            .ok_or_else(|| berr(off, "truncated string table"))?;
        let s = bytes
            .get(at + 2..at + 2 + len)
            .ok_or_else(|| berr(off, "string entry overruns the string table"))?;
        let s = std::str::from_utf8(s).map_err(|_| berr(off, "string entry is not UTF-8"))?;
        syms.push(ctx.intern(s));
        at += 2 + len;
    }
    if at != bytes.len() {
        return Err(berr(
            base + at as u64,
            "trailing bytes after the last string-table entry",
        ));
    }
    Ok(syms)
}

/// Decode the record whose header starts at `bytes[at..]`; returns the
/// record and the offset just past it. `base` rebases error offsets onto
/// the whole file.
fn decode_record(
    bytes: &[u8],
    at: usize,
    base: u64,
    syms: &[SymId],
) -> Result<(Record, usize), TraceReadError> {
    let off = |rel: usize| base + (at + rel) as u64;
    // SAFETY of the `try_into().unwrap()`s below: the length-checked `get`
    // calls guarantee `h` spans RECORD_BYTES and `o` spans OPERAND_BYTES, so
    // every constant subrange is in bounds with exactly the converted width.
    // Truncated input fails the `get`, never the conversion.
    let h = bytes
        .get(at..at + RECORD_BYTES)
        .ok_or_else(|| berr(off(0), "truncated record header"))?;
    let sym = |rel: usize, what: &str| -> Result<SymId, TraceReadError> {
        let ix = u32::from_le_bytes(h[rel..rel + 4].try_into().unwrap());
        syms.get(ix as usize)
            .copied()
            .ok_or_else(|| berr(off(rel), format!("{what} index {ix} out of range")))
    };
    let packed = u16::from_le_bytes([h[22], h[23]]);
    let n_ops = (packed & 0x7FFF) as usize;
    let has_result = packed & 0x8000 != 0;
    let mut rec = Record {
        src_line: i32::from_le_bytes(h[0..4].try_into().unwrap()),
        func: sym(4, "function symbol")?,
        bb: (
            u32::from_le_bytes(h[8..12].try_into().unwrap()),
            u32::from_le_bytes(h[12..16].try_into().unwrap()),
        ),
        bb_label: sym(16, "block-label symbol")?,
        opcode: u16::from_le_bytes([h[20], h[21]]),
        dyn_id: u64::from_le_bytes(h[24..32].try_into().unwrap()),
        operands: Vec::with_capacity(n_ops),
        result: None,
    };
    let mut at = at + RECORD_BYTES;
    for i in 0..n_ops + has_result as usize {
        let o = bytes
            .get(at..at + OPERAND_BYTES)
            .ok_or_else(|| berr(base + at as u64, "truncated operand entry"))?;
        let ooff = |rel: usize| base + (at + rel) as u64;
        let tag = match (o[0], o[1]) {
            (0, p) if p >= 1 => OpTag::Pos(p),
            (0, _) => return Err(berr(ooff(1), "positional operand id 0")),
            (1, _) => OpTag::Param,
            (2, _) => OpTag::Result,
            (k, _) => return Err(berr(ooff(0), format!("unknown operand tag kind {k}"))),
        };
        let is_reg = match o[4] {
            0 => false,
            1 => true,
            b => return Err(berr(ooff(4), format!("bad is_reg byte {b}"))),
        };
        let name_payload = u32::from_le_bytes(o[6..10].try_into().unwrap());
        let name = match o[5] {
            0 => Name::None,
            1 => Name::Temp(name_payload),
            2 => Name::Sym(syms.get(name_payload as usize).copied().ok_or_else(|| {
                berr(
                    ooff(6),
                    format!("name symbol index {name_payload} out of range"),
                )
            })?),
            b => return Err(berr(ooff(5), format!("unknown name kind {b}"))),
        };
        let value_payload = u64::from_le_bytes(o[11..19].try_into().unwrap());
        let value = match o[10] {
            0 => TraceValue::None,
            1 => TraceValue::I(value_payload as i64),
            2 => TraceValue::F(f64::from_bits(value_payload)),
            3 => TraceValue::Ptr(value_payload),
            b => return Err(berr(ooff(10), format!("unknown value kind {b}"))),
        };
        let op = Operand {
            tag,
            bits: u16::from_le_bytes([o[2], o[3]]),
            value,
            is_reg,
            name,
        };
        if has_result && i == n_ops {
            rec.result = Some(op);
        } else {
            rec.operands.push(op);
        }
        at += OPERAND_BYTES;
    }
    Ok((rec, at))
}

/// Byte length of the record starting at `bytes[at..]` without decoding it
/// (header peek only) — the record-aligned analogue of the text format's
/// `\n0,` boundary scan, used to cut parallel chunks.
fn record_len(bytes: &[u8], at: usize, base: u64) -> Result<usize, TraceReadError> {
    let h = bytes
        .get(at..at + RECORD_BYTES)
        .ok_or_else(|| berr(base + at as u64, "truncated record header"))?;
    let packed = u16::from_le_bytes([h[22], h[23]]);
    let entries = (packed & 0x7FFF) as usize + (packed >> 15) as usize;
    Ok(RECORD_BYTES + entries * OPERAND_BYTES)
}

// ---------------------------------------------------------------------------
// Zero-copy reader
// ---------------------------------------------------------------------------

/// Zero-copy binary trace reader over an in-memory byte buffer (a read-in
/// or memory-mapped file).
///
/// Opening parses the header and interns the whole string table into the
/// ctx's space — **once per symbol**. Iteration then decodes fixed-width
/// records straight out of the buffer: no string is ever materialized or
/// hashed per record.
pub struct BinaryReader<'a> {
    bytes: &'a [u8],
    syms: Vec<SymId>,
    record_count: u64,
    /// Next record's byte offset.
    at: usize,
    /// End of the record section (`bytes.len()` minus any footer).
    body_end: usize,
    /// Iteration boundaries from the version-2 footer, when present.
    index: Option<Vec<u64>>,
    yielded: u64,
    failed: bool,
}

impl<'a> BinaryReader<'a> {
    /// Parse the header, intern the string table, and (for version-2
    /// files) validate the iteration-index footer.
    pub fn open(bytes: &'a [u8], ctx: &AnalysisCtx) -> Result<BinaryReader<'a>, TraceReadError> {
        let head: &[u8; HEADER_BYTES] =
            bytes
                .get(..HEADER_BYTES)
                .and_then(|b| b.try_into().ok())
                .ok_or_else(|| berr(bytes.len() as u64, "truncated header"))?;
        let (version, record_count, string_count, strtab_len) = parse_header_fields(head)?;
        let strtab = bytes
            .get(HEADER_BYTES..HEADER_BYTES + strtab_len as usize)
            .ok_or_else(|| berr(HEADER_BYTES as u64, "string table overruns the file"))?;
        let syms = intern_strtab(strtab, string_count, HEADER_BYTES as u64, ctx)?;
        let at = HEADER_BYTES + strtab_len as usize;
        let (index, body_end) = if version == VERSION_INDEXED {
            let (bounds, footer_len) = parse_footer_tail(bytes, at, record_count)?;
            (Some(bounds), bytes.len() - footer_len)
        } else {
            (None, bytes.len())
        };
        Ok(BinaryReader {
            bytes,
            syms,
            record_count,
            at,
            body_end,
            index,
            yielded: 0,
            failed: false,
        })
    }

    /// Records the header declares.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// The interned symbol table (file order).
    pub fn symbols(&self) -> &[SymId] {
        &self.syms
    }

    /// The iteration-index footer's boundaries, when the file carries one.
    pub fn iteration_index(&self) -> Option<&[u64]> {
        self.index.as_deref()
    }

    /// Decode every record serially.
    pub fn read_all(mut self) -> Result<Vec<Record>, TraceReadError> {
        // Bound the pre-allocation by what the buffer could possibly hold,
        // not by the header's claim.
        let cap = (self.record_count as usize).min((self.body_end - self.at) / RECORD_BYTES);
        let mut out = Vec::with_capacity(cap);
        for item in &mut self {
            out.push(item?);
        }
        Ok(out)
    }

    /// Decode every record with `threads` workers over record-aligned
    /// chunks — the binary analogue of the text format's block-aligned
    /// parallel parse. Record order equals serial order.
    pub fn read_all_parallel(self, threads: usize) -> Result<Vec<Record>, TraceReadError> {
        let threads = threads.max(1);
        if threads == 1 {
            return self.read_all();
        }
        // Phase 1: a header-peek walk cuts the record section into
        // contiguous record-aligned ranges (over-decomposed, like the text
        // chunker, so no worker holds the join hostage).
        let target_chunks = threads * 8;
        let body = &self.bytes[self.at..self.body_end];
        let base = self.at as u64;
        let mut bounds = vec![0usize];
        let mut at = 0usize;
        let mut n: u64 = 0;
        let chunk_step = (body.len() / target_chunks.max(1)).max(1);
        while n < self.record_count {
            at += record_len(body, at, base)?;
            n += 1;
            if at >= bounds.len() * chunk_step && n < self.record_count {
                bounds.push(at);
            }
        }
        if at != body.len() {
            return Err(berr(
                base + at as u64,
                "trailing bytes after the last record",
            ));
        }
        bounds.push(at);
        // Phase 2: decode each range on the worker pool.
        let ranges: Vec<(usize, usize)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();
        let syms = &self.syms;
        let slots = std::sync::Mutex::new({
            let mut v = Vec::new();
            v.resize_with(ranges.len(), || None);
            v
        });
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(ranges.len()) {
                let ranges = &ranges;
                let next = &next;
                let slots = &slots;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= ranges.len() {
                        break;
                    }
                    let (start, end) = ranges[i];
                    let mut part = Vec::new();
                    let mut at = start;
                    let mut res = Ok(());
                    while at < end {
                        match decode_record(body, at, base, syms) {
                            Ok((rec, next_at)) => {
                                part.push(rec);
                                at = next_at;
                            }
                            Err(e) => {
                                res = Err(e);
                                break;
                            }
                        }
                    }
                    slots.lock().expect("slots poisoned")[i] = Some(res.map(|()| part));
                });
            }
        });
        // SAFETY of the expects: the mutex is only poisoned if a worker
        // panicked (decode_record returns typed errors, it does not panic
        // on hostile bytes), and the claim loop above visits every index in
        // `0..ranges.len()`, so each slot was filled exactly once.
        let mut out = Vec::with_capacity(self.record_count as usize);
        for slot in slots.into_inner().expect("slots poisoned") {
            out.extend(slot.expect("every chunk decoded")?);
        }
        Ok(out)
    }
}

impl Iterator for BinaryReader<'_> {
    type Item = Result<Record, TraceReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.yielded == self.record_count {
            if self.at != self.body_end {
                self.failed = true;
                return Some(Err(berr(
                    self.at as u64,
                    "trailing bytes after the last record",
                )));
            }
            return None;
        }
        match decode_record(&self.bytes[..self.body_end], self.at, 0, &self.syms) {
            Ok((rec, at)) => {
                self.at = at;
                self.yielded += 1;
                Some(Ok(rec))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming reader
// ---------------------------------------------------------------------------

/// Streaming binary trace reader over any [`Read`], with bounded memory:
/// the string table (read and interned once at open) plus one record.
///
/// The counterpart of the text format's [`RecordReader`](crate::RecordReader);
/// [`crate::TraceSource::stream`] picks between the two by magic bytes.
pub struct BinaryStreamReader<R: Read> {
    inner: R,
    syms: Vec<SymId>,
    record_count: u64,
    /// Format version (2 = an iteration-index footer follows the records).
    version: u16,
    /// Footer already consumed and validated.
    footer_done: bool,
    yielded: u64,
    /// Absolute byte offset of the next unread byte (error reporting).
    offset: u64,
    /// Reusable per-record scratch buffer.
    scratch: Vec<u8>,
    failed: bool,
}

impl<R: Read> BinaryStreamReader<R> {
    /// Read the header and string table; intern every symbol once.
    pub fn open(mut inner: R, ctx: &AnalysisCtx) -> Result<BinaryStreamReader<R>, TraceReadError> {
        let mut head = [0u8; HEADER_BYTES];
        read_exact_at(&mut inner, &mut head, 0, "header")?;
        let (version, record_count, string_count, strtab_len) = parse_header_fields(&head)?;
        // Pull the string table incrementally: allocation tracks bytes the
        // stream actually delivers, so a hostile length cannot force an
        // up-front over-allocation.
        let mut strtab = Vec::new();
        let mut remaining = strtab_len as usize;
        let mut chunk = [0u8; 4096];
        while remaining > 0 {
            let want = remaining.min(chunk.len());
            let n = self::read_some(
                &mut inner,
                &mut chunk[..want],
                HEADER_BYTES as u64 + strtab.len() as u64,
            )?;
            if n == 0 {
                return Err(berr(
                    HEADER_BYTES as u64 + strtab.len() as u64,
                    "truncated string table",
                ));
            }
            strtab.extend_from_slice(&chunk[..n]);
            remaining -= n;
        }
        let syms = intern_strtab(&strtab, string_count, HEADER_BYTES as u64, ctx)?;
        Ok(BinaryStreamReader {
            inner,
            syms,
            record_count,
            version,
            footer_done: false,
            yielded: 0,
            offset: HEADER_BYTES as u64 + strtab_len as u64,
            scratch: Vec::new(),
            failed: false,
        })
    }

    /// Consume and validate the version-2 iteration-index footer after the
    /// last declared record. Allocation is capped by the record count (a
    /// valid index can never hold more boundaries than records), so a
    /// hostile count cannot force an over-allocation.
    fn read_footer(&mut self) -> Result<(), TraceReadError> {
        let mut frame = [0u8; 8];
        read_exact_at(&mut self.inner, &mut frame, self.offset, "index header")?;
        if frame[..4] != INDEX_MAGIC {
            return Err(berr(self.offset, "missing iteration-index header magic"));
        }
        let count = u32::from_le_bytes(frame[4..8].try_into().unwrap()) as u64;
        if count > self.record_count {
            return Err(berr(
                self.offset + 4,
                "iteration-index count exceeds the record count",
            ));
        }
        self.offset += 8;
        let mut bounds = Vec::with_capacity(count as usize);
        let mut entry = [0u8; 8];
        for _ in 0..count {
            read_exact_at(&mut self.inner, &mut entry, self.offset, "index entry")?;
            bounds.push(u64::from_le_bytes(entry));
            self.offset += 8;
        }
        check_boundaries(&bounds, self.record_count, self.offset)?;
        read_exact_at(&mut self.inner, &mut frame, self.offset, "index trailer")?;
        let tail_count = u32::from_le_bytes(frame[..4].try_into().unwrap()) as u64;
        if tail_count != count {
            return Err(berr(
                self.offset,
                "iteration-index counts disagree front to back",
            ));
        }
        if frame[4..] != INDEX_MAGIC {
            return Err(berr(
                self.offset + 4,
                "missing iteration-index trailer magic",
            ));
        }
        self.offset += 8;
        Ok(())
    }

    /// Records the header declares.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    fn read_record(&mut self) -> Result<Record, TraceReadError> {
        self.scratch.resize(RECORD_BYTES, 0);
        let mut tmp = std::mem::take(&mut self.scratch);
        let r = (|| {
            read_exact_at(
                &mut self.inner,
                &mut tmp[..RECORD_BYTES],
                self.offset,
                "record header",
            )?;
            let packed = u16::from_le_bytes([tmp[22], tmp[23]]);
            let entries = (packed & 0x7FFF) as usize + (packed >> 15) as usize;
            let total = RECORD_BYTES + entries * OPERAND_BYTES;
            tmp.resize(total, 0);
            read_exact_at(
                &mut self.inner,
                &mut tmp[RECORD_BYTES..total],
                self.offset + RECORD_BYTES as u64,
                "operand entries",
            )?;
            let (rec, end) = decode_record(&tmp[..total], 0, self.offset, &self.syms)?;
            debug_assert_eq!(end, total);
            self.offset += total as u64;
            Ok(rec)
        })();
        self.scratch = tmp;
        r
    }
}

impl<R: Read> Iterator for BinaryStreamReader<R> {
    type Item = Result<Record, TraceReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.yielded == self.record_count {
            if self.version == VERSION_INDEXED && !self.footer_done {
                if let Err(e) = self.read_footer() {
                    self.failed = true;
                    return Some(Err(e));
                }
                self.footer_done = true;
            }
            // Exactly the declared records (and footer), then end of stream.
            let mut probe = [0u8; 1];
            return match read_some(&mut self.inner, &mut probe, self.offset) {
                Ok(0) => None,
                Ok(_) => {
                    self.failed = true;
                    Some(Err(berr(
                        self.offset,
                        "trailing bytes after the last record",
                    )))
                }
                Err(e) => {
                    self.failed = true;
                    Some(Err(e))
                }
            };
        }
        match self.read_record() {
            Ok(rec) => {
                self.yielded += 1;
                Some(Ok(rec))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// `read` retrying on `Interrupted` (error offsets stay meaningful).
fn read_some<R: Read>(r: &mut R, buf: &mut [u8], _offset: u64) -> Result<usize, TraceReadError> {
    loop {
        match r.read(buf) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TraceReadError::Io(e)),
        }
    }
}

/// `read_exact` that reports truncation as a [`BinaryError`] at `offset`.
fn read_exact_at<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    offset: u64,
    what: &str,
) -> Result<(), TraceReadError> {
    let mut done = 0;
    while done < buf.len() {
        let n = read_some(r, &mut buf[done..], offset + done as u64)?;
        if n == 0 {
            return Err(berr(offset + done as u64, format!("truncated {what}")));
        }
        done += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::opcodes;
    use crate::writer;

    fn sample_records(ctx: &AnalysisCtx) -> Vec<Record> {
        let mut recs = Vec::new();
        for i in 0..50u64 {
            recs.push(Record {
                src_line: if i % 7 == 0 { -1 } else { i as i32 },
                func: ctx.intern(if i % 3 == 0 { "main" } else { "foo" }),
                bb: (i as u32 % 9, 1),
                bb_label: ctx.intern("11"),
                opcode: if i % 2 == 0 {
                    opcodes::LOAD
                } else {
                    opcodes::CALL
                },
                dyn_id: i,
                operands: vec![
                    Operand::reg(OpTag::Pos(1), 64, TraceValue::Ptr(0x1000 + i * 8), {
                        let _g = ctx.enter();
                        Name::sym("p")
                    }),
                    Operand::imm(OpTag::Pos(2), 32, TraceValue::I(i as i64 - 3)),
                    Operand {
                        tag: OpTag::Param,
                        bits: 64,
                        value: TraceValue::F(0.25 * i as f64),
                        is_reg: true,
                        name: Name::Sym(ctx.intern("q")),
                    },
                ],
                result: (i % 4 != 0).then(|| {
                    Operand::reg(
                        OpTag::Result,
                        64,
                        TraceValue::I(i as i64),
                        Name::Temp(i as u32),
                    )
                }),
            });
        }
        recs
    }

    #[test]
    fn round_trips_through_bytes() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let bytes = to_bytes(&recs, &ctx);
        assert!(is_binary(&bytes));
        let reader = BinaryReader::open(&bytes, &ctx).unwrap();
        assert_eq!(reader.record_count(), recs.len() as u64);
        let back = reader.read_all().unwrap();
        assert_eq!(recs, back);
    }

    #[test]
    fn round_trips_through_a_fresh_session() {
        // Decoding into a *different* space still resolves to the same
        // strings (ids differ, resolved text matches).
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let bytes = to_bytes(&recs, &ctx);
        let other = AnalysisCtx::session();
        let back = BinaryReader::open(&bytes, &other)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(recs.len(), back.len());
        for (a, b) in recs.iter().zip(&back) {
            assert_eq!(ctx.resolve(a.func), other.resolve(b.func));
            assert_eq!(ctx.resolve(a.bb_label), other.resolve(b.bb_label));
            assert_eq!(a.dyn_id, b.dyn_id);
        }
    }

    #[test]
    fn streaming_reader_matches_zero_copy() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let bytes = to_bytes(&recs, &ctx);
        let streamed: Vec<Record> = BinaryStreamReader::open(&bytes[..], &ctx)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(recs, streamed);
    }

    #[test]
    fn parallel_decode_matches_serial() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let bytes = to_bytes(&recs, &ctx);
        for threads in [1, 2, 3, 7] {
            let par = BinaryReader::open(&bytes, &ctx)
                .unwrap()
                .read_all_parallel(threads)
                .unwrap();
            assert_eq!(recs, par, "threads = {threads}");
        }
    }

    #[test]
    fn symbols_intern_exactly_once_at_open() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let bytes = to_bytes(&recs, &ctx);
        let fresh = AnalysisCtx::session();
        let reader = BinaryReader::open(&bytes, &fresh).unwrap();
        // Only the file's distinct symbols: main, foo, "11", p, q.
        assert_eq!(reader.symbols().len(), 5);
        assert_eq!(fresh.space().len(), 5);
        let _ = reader.read_all().unwrap();
        // Decoding interned nothing further.
        assert_eq!(fresh.space().len(), 5);
    }

    #[test]
    fn floats_are_bit_exact() {
        // The textual format prints floats lossily (`%.6f`); the binary
        // format must not.
        let ctx = AnalysisCtx::session();
        let v = 1.000000001234_f64;
        let rec = Record {
            src_line: 1,
            func: ctx.intern("main"),
            bb: (1, 1),
            bb_label: ctx.intern("0"),
            opcode: opcodes::FADD,
            dyn_id: 0,
            operands: vec![Operand::imm(OpTag::Pos(1), 64, TraceValue::F(v))],
            result: None,
        };
        let bytes = to_bytes(std::slice::from_ref(&rec), &ctx);
        let back = BinaryReader::open(&bytes, &ctx)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(back[0].operands[0].value, TraceValue::F(v));
    }

    #[test]
    fn text_and_binary_decode_identically() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let text = {
            let _g = ctx.enter();
            writer::to_string(&recs)
        };
        let bytes = to_bytes(&recs, &ctx);
        let from_text = crate::parser::parse_str_core(&text, &ctx).unwrap();
        let from_bin = BinaryReader::open(&bytes, &ctx)
            .unwrap()
            .read_all()
            .unwrap();
        // Floats in this sample are representable in %.6f, so even the
        // lossy text path agrees.
        assert_eq!(from_text, from_bin);
    }

    #[test]
    fn empty_trace_round_trips() {
        let ctx = AnalysisCtx::session();
        let bytes = to_bytes(&[], &ctx);
        assert_eq!(bytes.len(), HEADER_BYTES);
        let back = BinaryReader::open(&bytes, &ctx)
            .unwrap()
            .read_all()
            .unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let ctx = AnalysisCtx::session();
        let good = to_bytes(&sample_records(&ctx), &ctx);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'0';
        assert!(BinaryReader::open(&bad_magic, &ctx).is_err());

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        let e = BinaryReader::open(&bad_version, &ctx)
            .map(|_| ())
            .unwrap_err();
        assert!(e.to_string().contains("version"));

        for cut in [0, 3, HEADER_BYTES - 1, good.len() - 1, good.len() - 20] {
            let r = BinaryReader::open(&good[..cut], &ctx).and_then(|r| r.read_all());
            assert!(r.is_err(), "cut = {cut}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let ctx = AnalysisCtx::session();
        let mut bytes = to_bytes(&sample_records(&ctx), &ctx);
        bytes.extend_from_slice(b"junk");
        let e = BinaryReader::open(&bytes, &ctx)
            .and_then(|r| r.read_all())
            .unwrap_err();
        assert!(e.to_string().contains("trailing"));
        let e = BinaryStreamReader::open(&bytes[..], &ctx)
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(e.to_string().contains("trailing"));
    }

    #[test]
    fn hostile_string_count_cannot_over_allocate() {
        // Header claims u32::MAX strings in a tiny table: the count/length
        // cross-check fires before any count-derived allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        let ctx = AnalysisCtx::session().untrusted();
        let e = BinaryReader::open(&bytes, &ctx).map(|_| ()).unwrap_err();
        assert!(e.to_string().contains("string count"));
        let e = BinaryStreamReader::open(&bytes[..], &ctx)
            .map(|_| ())
            .unwrap_err();
        assert!(e.to_string().contains("string count"));
    }

    #[test]
    fn writer_counters_track_output() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let mut w = BinaryWriter::with_ctx(Vec::new(), &ctx);
        for r in &recs {
            w.write_record(r).unwrap();
        }
        assert_eq!(w.records_written(), recs.len() as u64);
        let predicted = w.bytes_written();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len() as u64, predicted);
    }

    #[test]
    fn iteration_index_round_trips_on_every_reader() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let bounds = vec![7u64, 19, 23, 41];
        let bytes = to_bytes_with_index(&recs, bounds.clone(), &ctx);
        // O(footer) standalone probe.
        assert_eq!(iteration_index(&bytes).unwrap(), Some(bounds.clone()));
        // Zero-copy reader: exposes the index and still decodes all records.
        let reader = BinaryReader::open(&bytes, &ctx).unwrap();
        assert_eq!(reader.iteration_index(), Some(&bounds[..]));
        assert_eq!(reader.read_all().unwrap(), recs);
        // Parallel decode ends at the footer, not the file end.
        let par = BinaryReader::open(&bytes, &ctx)
            .unwrap()
            .read_all_parallel(3)
            .unwrap();
        assert_eq!(par, recs);
        // Streaming reader consumes and validates the footer, then EOF.
        let streamed: Vec<Record> = BinaryStreamReader::open(&bytes[..], &ctx)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, recs);
    }

    #[test]
    fn version1_files_carry_no_index_and_stay_byte_identical() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let bytes = to_bytes(&recs, &ctx);
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION);
        assert_eq!(iteration_index(&bytes).unwrap(), None);
        assert_eq!(
            BinaryReader::open(&bytes, &ctx).unwrap().iteration_index(),
            None
        );
    }

    #[test]
    fn empty_iteration_index_is_valid() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let bytes = to_bytes_with_index(&recs, Vec::new(), &ctx);
        assert_eq!(iteration_index(&bytes).unwrap(), Some(Vec::new()));
        assert_eq!(
            BinaryReader::open(&bytes, &ctx)
                .unwrap()
                .read_all()
                .unwrap(),
            recs
        );
        let streamed: Vec<Record> = BinaryStreamReader::open(&bytes[..], &ctx)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, recs);
    }

    #[test]
    fn writer_rejects_invalid_iteration_index() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        for bad in [vec![5u64, 5], vec![9, 3], vec![0], vec![recs.len() as u64]] {
            let mut w = BinaryWriter::with_ctx(Vec::new(), &ctx);
            for r in &recs {
                w.write_record(r).unwrap();
            }
            w.set_iteration_index(bad.clone());
            assert!(w.finish().is_err(), "index {bad:?} must be rejected");
        }
    }

    #[test]
    fn hostile_footers_are_rejected_by_both_readers() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let good = to_bytes_with_index(&recs, vec![7, 19], &ctx);
        let footer_start = good.len() - (INDEX_FRAME_BYTES + 2 * 8);

        let mut bad_magic = good.clone();
        bad_magic[footer_start] ^= 0xFF;
        let mut bad_tail_magic = good.clone();
        let n = bad_tail_magic.len();
        bad_tail_magic[n - 1] ^= 0xFF;
        let mut count_mismatch = good.clone();
        count_mismatch[footer_start + 4] = 1;
        let mut not_increasing = good.clone();
        // Overwrite the second boundary with the first.
        not_increasing[footer_start + 16..footer_start + 24].copy_from_slice(&7u64.to_le_bytes());
        let mut out_of_range = good.clone();
        out_of_range[footer_start + 16..footer_start + 24]
            .copy_from_slice(&(recs.len() as u64).to_le_bytes());
        // A count claiming more entries than the file holds.
        let mut count_overrun = good.clone();
        let n = count_overrun.len();
        count_overrun[n - 8..n - 4].copy_from_slice(&u32::MAX.to_le_bytes());

        for (what, bytes) in [
            ("bad header magic", &bad_magic),
            ("bad trailer magic", &bad_tail_magic),
            ("count mismatch", &count_mismatch),
            ("not increasing", &not_increasing),
            ("out of range", &out_of_range),
            ("count overrun", &count_overrun),
        ] {
            let ctx = AnalysisCtx::session().untrusted();
            assert!(
                BinaryReader::open(bytes, &ctx)
                    .and_then(|r| r.read_all())
                    .is_err(),
                "zero-copy reader must reject: {what}"
            );
            assert!(
                BinaryStreamReader::open(&bytes[..], &ctx)
                    .and_then(|r| r.collect::<Result<Vec<_>, _>>())
                    .is_err(),
                "streaming reader must reject: {what}"
            );
        }
    }

    #[test]
    fn file_size_is_exactly_the_documented_layout() {
        let ctx = AnalysisCtx::session();
        let recs = sample_records(&ctx);
        let bytes = to_bytes(&recs, &ctx);
        let strtab: usize = ["main", "foo", "11", "p", "q"]
            .iter()
            .map(|s| 2 + s.len())
            .sum();
        let entries: usize = recs
            .iter()
            .map(|r| r.operands.len() + r.result.is_some() as usize)
            .sum();
        assert_eq!(
            bytes.len(),
            HEADER_BYTES + strtab + recs.len() * RECORD_BYTES + entries * OPERAND_BYTES
        );
    }
}
