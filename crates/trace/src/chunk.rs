//! Block-aligned chunking of trace text for parallel parsing.
//!
//! Mirrors the paper's §V-A: "the master thread partitions the input file
//! stream into sub-file-streams *while not breaking individual instruction
//! blocks* into two sub-file-streams". A block boundary is a line starting
//! with `0,` (operand tags are `1..=n`, `f`, or `r`, never `0`), so the
//! splitter only needs to find the next `\n0,` after each tentative cut.

/// Compute `n` chunk boundaries over `data`, each starting at a block
/// header. Returns byte ranges covering the entire input; fewer than `n`
/// ranges are returned when the input is too small to split further.
pub fn chunk_boundaries(data: &[u8], n: usize) -> Vec<std::ops::Range<usize>> {
    let len = data.len();
    if len == 0 || n <= 1 {
        // One chunk: the whole input (a single Range element, not 0..len
        // expanded — spelled via `once` to keep clippy's
        // `single_range_in_vec_init` from reading it as a mistake).
        return std::iter::once(0..len).collect();
    }
    let approx = len / n;
    let mut starts = vec![0usize];
    for i in 1..n {
        let tentative = i * approx;
        if let Some(next) = next_block_start(data, tentative) {
            // SAFETY of unwrap: `starts` is seeded with 0 above and only
            // ever pushed to, so it is never empty.
            if *starts.last().unwrap() < next && next < len {
                starts.push(next);
            }
        }
    }
    let mut ranges = Vec::with_capacity(starts.len());
    for (i, &s) in starts.iter().enumerate() {
        let e = starts.get(i + 1).copied().unwrap_or(len);
        ranges.push(s..e);
    }
    ranges
}

/// The offset of the first block header at or after `from`.
pub fn next_block_start(data: &[u8], from: usize) -> Option<usize> {
    if from >= data.len() {
        return None;
    }
    // The very beginning of the input is a block start if it begins with "0,".
    if from == 0 && data.starts_with(b"0,") {
        return Some(0);
    }
    let mut i = from.saturating_sub(1);
    while i < data.len() {
        match memchr(data, b'\n', i) {
            Some(nl) => {
                let cand = nl + 1;
                if data[cand..].starts_with(b"0,") {
                    return Some(cand);
                }
                i = cand;
            }
            None => return None,
        }
    }
    None
}

fn memchr(data: &[u8], needle: u8, from: usize) -> Option<usize> {
    data[from..]
        .iter()
        .position(|&b| b == needle)
        .map(|p| p + from)
}

/// Split `data` into block-aligned string slices (UTF-8 is guaranteed by the
/// writer; invalid UTF-8 is a caller bug surfaced as a panic here).
pub fn split_blocks(data: &str, n: usize) -> Vec<&str> {
    chunk_boundaries(data.as_bytes(), n)
        .into_iter()
        .map(|r| &data[r])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = "0,3,foo,6:1,11,27,215,\n\
                         1,64,0x7ffcf3f25a70,1,p,\n\
                         r,32,1,1,8,\n\
                         0,3,foo,6:1,12,12,216,\n\
                         1,32,2,1,8,\n\
                         2,32,2,0,,\n\
                         r,32,4,1,9,\n\
                         0,4,foo,6:1,13,28,217,\n\
                         1,32,4,1,9,\n\
                         2,64,0x7ffcf3f25a80,1,q,\n";

    #[test]
    fn chunks_cover_input_exactly() {
        for n in 1..=8 {
            let ranges = chunk_boundaries(TRACE.as_bytes(), n);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, TRACE.len());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn every_chunk_starts_at_a_header() {
        for n in 2..=6 {
            for part in split_blocks(TRACE, n) {
                if !part.is_empty() {
                    assert!(
                        part.starts_with("0,"),
                        "chunk does not start at a block header: {part:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_parse_equals_whole_parse() {
        let whole = crate::parser::parse_str_core(TRACE, &crate::AnalysisCtx::current()).unwrap();
        for n in 1..=6 {
            let mut merged = Vec::new();
            for part in split_blocks(TRACE, n) {
                merged.extend(
                    crate::parser::parse_str_core(part, &crate::AnalysisCtx::current()).unwrap(),
                );
            }
            assert_eq!(whole, merged, "n = {n}");
        }
    }

    #[test]
    fn tiny_input_yields_single_chunk() {
        let ranges = chunk_boundaries(b"0,1,f,1:1,0,2,0,\n", 8);
        assert_eq!(ranges.len(), 1);
    }

    #[test]
    fn empty_input() {
        assert_eq!(chunk_boundaries(b"", 4), vec![0..0]);
    }

    #[test]
    fn next_block_start_finds_headers_not_operands() {
        let data = TRACE.as_bytes();
        // From offset 1, the next header is the *second* block, not the
        // operand line `1,64,...`.
        let s = next_block_start(data, 1).unwrap();
        assert!(data[s..].starts_with(b"0,3,foo,6:1,12"));
    }
}
