//! Resource quotas for one analysis session: [`ResourceLimits`] and the
//! typed [`ResourceExceeded`] error.
//!
//! The ROADMAP's north star is a long-running multi-tenant service, and the
//! survivability contract for that shape is simple: *no single session may
//! grow any process resource without bound*. Every axis a hostile or merely
//! oversized trace can push on — record count, raw bytes ingested, distinct
//! symbols, per-session string-arena bytes, DDG nodes/edges, and the
//! streaming live window — gets an optional ceiling here, carried on the
//! session's [`AnalysisCtx`](crate::AnalysisCtx) and enforced by the layer
//! that owns the resource:
//!
//! * `TraceSource` (batch and streaming ingest) enforces
//!   [`TraceRecords`](ResourceKind::TraceRecords),
//!   [`TraceBytes`](ResourceKind::TraceBytes),
//!   [`Symbols`](ResourceKind::Symbols) and
//!   [`ArenaBytes`](ResourceKind::ArenaBytes);
//! * the streaming `Engine` enforces
//!   [`DdgNodes`](ResourceKind::DdgNodes),
//!   [`DdgEdges`](ResourceKind::DdgEdges) and — unless overridden by its
//!   own config — [`LiveRecords`](ResourceKind::LiveRecords);
//! * `MultiAnalyzer` applies a job's limits to its session ctx, so one
//!   quota-tripped tenant fails with a typed error while the rest of the
//!   batch completes untouched.
//!
//! A violation is **never** a panic and never silent truncation: it is a
//! [`ResourceExceeded`] value naming the axis, the observed usage, and the
//! configured ceiling, and it books one `session.limit_exceeded` obs
//! counter tick so ledgers can alert on quota pressure.

use std::fmt;

/// Which resource axis a limit (or a violation) refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Total records ingested from one trace source.
    TraceRecords,
    /// Raw bytes read from one trace source (pre-parse).
    TraceBytes,
    /// Distinct symbols interned in the session's `SymbolSpace`.
    Symbols,
    /// String bytes owned by the session's `SymbolSpace`.
    ArenaBytes,
    /// Nodes in the streaming engine's dependency graph.
    DdgNodes,
    /// Edges in the streaming engine's dependency graph.
    DdgEdges,
    /// Live (unretired) records in the streaming window.
    LiveRecords,
}

impl ResourceKind {
    /// Stable lowercase label used in diagnostics, CLI `--limit` flags, and
    /// ledger annotations.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::TraceRecords => "trace-records",
            ResourceKind::TraceBytes => "trace-bytes",
            ResourceKind::Symbols => "symbols",
            ResourceKind::ArenaBytes => "arena-bytes",
            ResourceKind::DdgNodes => "ddg-nodes",
            ResourceKind::DdgEdges => "ddg-edges",
            ResourceKind::LiveRecords => "live-records",
        }
    }

    /// Parse a CLI label back into a kind (inverse of [`label`](Self::label)).
    pub fn from_label(s: &str) -> Option<ResourceKind> {
        Some(match s {
            "trace-records" => ResourceKind::TraceRecords,
            "trace-bytes" => ResourceKind::TraceBytes,
            "symbols" => ResourceKind::Symbols,
            "arena-bytes" => ResourceKind::ArenaBytes,
            "ddg-nodes" => ResourceKind::DdgNodes,
            "ddg-edges" => ResourceKind::DdgEdges,
            "live-records" => ResourceKind::LiveRecords,
            _ => return None,
        })
    }

    /// All kinds, in `--limit` help order.
    pub const ALL: [ResourceKind; 7] = [
        ResourceKind::TraceRecords,
        ResourceKind::TraceBytes,
        ResourceKind::Symbols,
        ResourceKind::ArenaBytes,
        ResourceKind::DdgNodes,
        ResourceKind::DdgEdges,
        ResourceKind::LiveRecords,
    ];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A session crossed one of its configured [`ResourceLimits`].
///
/// `used` is the observed usage at the moment the check tripped (it may
/// slightly exceed `limit` — enforcement is at record/chunk granularity,
/// never mid-symbol), `limit` the configured ceiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceExceeded {
    /// Which axis tripped.
    pub kind: ResourceKind,
    /// Observed usage when the check fired.
    pub used: u64,
    /// The configured ceiling.
    pub limit: u64,
}

impl fmt::Display for ResourceExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resource limit exceeded: {} {} > limit {}",
            self.kind, self.used, self.limit
        )
    }
}

impl std::error::Error for ResourceExceeded {}

/// Per-session resource ceilings. `None` everywhere by default (unlimited —
/// the exact pre-quota behavior); builder methods set individual axes.
///
/// `Copy` and tiny: it rides every [`AnalysisCtx`](crate::AnalysisCtx)
/// clone by value.
///
/// ```
/// use autocheck_trace::{AnalysisCtx, ResourceLimits};
/// let ctx = AnalysisCtx::session().with_limits(
///     ResourceLimits::new()
///         .max_trace_records(1_000_000)
///         .max_symbols(65_536),
/// );
/// assert_eq!(ctx.limits().max_trace_records, Some(1_000_000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Ceiling on records ingested per trace source.
    pub max_trace_records: Option<u64>,
    /// Ceiling on raw bytes read per trace source.
    pub max_trace_bytes: Option<u64>,
    /// Ceiling on distinct symbols in the session's space.
    pub max_symbols: Option<u64>,
    /// Ceiling on string bytes owned by the session's space.
    pub max_arena_bytes: Option<u64>,
    /// Ceiling on streaming DDG nodes.
    pub max_ddg_nodes: Option<u64>,
    /// Ceiling on streaming DDG edges.
    pub max_ddg_edges: Option<u64>,
    /// Ceiling on the streaming live window (same bound
    /// `EngineConfig::max_live_records` has always offered; an explicit
    /// engine-config value wins over this one).
    pub max_live_records: Option<u64>,
}

impl ResourceLimits {
    /// No limits (identical to `Default`).
    pub fn new() -> ResourceLimits {
        ResourceLimits::default()
    }

    /// True when every axis is unlimited.
    pub fn is_unlimited(&self) -> bool {
        *self == ResourceLimits::default()
    }

    /// Set the ceiling for `kind` by value (the CLI `--limit kind=N` path).
    pub fn set(mut self, kind: ResourceKind, limit: u64) -> ResourceLimits {
        let slot = match kind {
            ResourceKind::TraceRecords => &mut self.max_trace_records,
            ResourceKind::TraceBytes => &mut self.max_trace_bytes,
            ResourceKind::Symbols => &mut self.max_symbols,
            ResourceKind::ArenaBytes => &mut self.max_arena_bytes,
            ResourceKind::DdgNodes => &mut self.max_ddg_nodes,
            ResourceKind::DdgEdges => &mut self.max_ddg_edges,
            ResourceKind::LiveRecords => &mut self.max_live_records,
        };
        *slot = Some(limit);
        self
    }

    /// The configured ceiling for `kind`, if any.
    pub fn get(&self, kind: ResourceKind) -> Option<u64> {
        match kind {
            ResourceKind::TraceRecords => self.max_trace_records,
            ResourceKind::TraceBytes => self.max_trace_bytes,
            ResourceKind::Symbols => self.max_symbols,
            ResourceKind::ArenaBytes => self.max_arena_bytes,
            ResourceKind::DdgNodes => self.max_ddg_nodes,
            ResourceKind::DdgEdges => self.max_ddg_edges,
            ResourceKind::LiveRecords => self.max_live_records,
        }
    }

    /// Ceiling on records ingested per trace source.
    pub fn max_trace_records(self, n: u64) -> ResourceLimits {
        self.set(ResourceKind::TraceRecords, n)
    }

    /// Ceiling on raw bytes read per trace source.
    pub fn max_trace_bytes(self, n: u64) -> ResourceLimits {
        self.set(ResourceKind::TraceBytes, n)
    }

    /// Ceiling on distinct symbols in the session's space.
    pub fn max_symbols(self, n: u64) -> ResourceLimits {
        self.set(ResourceKind::Symbols, n)
    }

    /// Ceiling on string bytes owned by the session's space.
    pub fn max_arena_bytes(self, n: u64) -> ResourceLimits {
        self.set(ResourceKind::ArenaBytes, n)
    }

    /// Ceiling on streaming DDG nodes.
    pub fn max_ddg_nodes(self, n: u64) -> ResourceLimits {
        self.set(ResourceKind::DdgNodes, n)
    }

    /// Ceiling on streaming DDG edges.
    pub fn max_ddg_edges(self, n: u64) -> ResourceLimits {
        self.set(ResourceKind::DdgEdges, n)
    }

    /// Ceiling on the streaming live window.
    pub fn max_live_records(self, n: u64) -> ResourceLimits {
        self.set(ResourceKind::LiveRecords, n)
    }

    /// Check `used` against the ceiling for `kind`, producing the typed
    /// error when the ceiling exists and is crossed.
    #[inline]
    pub fn check(&self, kind: ResourceKind, used: u64) -> Result<(), ResourceExceeded> {
        match self.get(kind) {
            Some(limit) if used > limit => Err(ResourceExceeded { kind, used, limit }),
            _ => Ok(()),
        }
    }
}

/// Parse a CLI `--limit` argument of the form `kind=N` (e.g.
/// `trace-records=1000000`). Returns a human-readable message on bad input.
pub fn parse_limit_arg(arg: &str) -> Result<(ResourceKind, u64), String> {
    let (kind_str, num_str) = arg
        .split_once('=')
        .ok_or_else(|| format!("bad --limit `{arg}`: expected <kind>=<N>"))?;
    let kind = ResourceKind::from_label(kind_str).ok_or_else(|| {
        let labels: Vec<&str> = ResourceKind::ALL.iter().map(|k| k.label()).collect();
        format!(
            "bad --limit kind `{kind_str}`: expected one of {}",
            labels.join(", ")
        )
    })?;
    let limit: u64 = num_str
        .parse()
        .map_err(|_| format!("bad --limit value `{num_str}`: expected a non-negative integer"))?;
    Ok((kind, limit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited_and_checks_pass() {
        let l = ResourceLimits::new();
        assert!(l.is_unlimited());
        for kind in ResourceKind::ALL {
            assert_eq!(l.get(kind), None);
            assert_eq!(l.check(kind, u64::MAX), Ok(()));
        }
    }

    #[test]
    fn set_get_round_trips_every_kind() {
        let mut l = ResourceLimits::new();
        for (i, kind) in ResourceKind::ALL.into_iter().enumerate() {
            l = l.set(kind, i as u64 + 10);
        }
        assert!(!l.is_unlimited());
        for (i, kind) in ResourceKind::ALL.into_iter().enumerate() {
            assert_eq!(l.get(kind), Some(i as u64 + 10));
        }
    }

    #[test]
    fn check_trips_only_past_the_ceiling() {
        let l = ResourceLimits::new().max_trace_records(5);
        assert_eq!(l.check(ResourceKind::TraceRecords, 5), Ok(()));
        let err = l.check(ResourceKind::TraceRecords, 6).unwrap_err();
        assert_eq!(err.kind, ResourceKind::TraceRecords);
        assert_eq!(err.used, 6);
        assert_eq!(err.limit, 5);
        assert_eq!(
            err.to_string(),
            "resource limit exceeded: trace-records 6 > limit 5"
        );
    }

    #[test]
    fn labels_round_trip() {
        for kind in ResourceKind::ALL {
            assert_eq!(ResourceKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(ResourceKind::from_label("nonsense"), None);
    }

    #[test]
    fn parse_limit_arg_accepts_and_rejects() {
        assert_eq!(
            parse_limit_arg("symbols=4096"),
            Ok((ResourceKind::Symbols, 4096))
        );
        assert!(parse_limit_arg("symbols").unwrap_err().contains("expected"));
        assert!(parse_limit_arg("bogus=1").unwrap_err().contains("bogus"));
        assert!(parse_limit_arg("symbols=-1")
            .unwrap_err()
            .contains("non-negative"));
    }
}
