//! Parallel trace parsing — the reproduction of the paper's §V-A
//! "Trace analysis optimization".
//!
//! The paper parallelizes trace-file pre-processing with OpenMP: the master
//! thread partitions the input into block-aligned sub-streams and worker
//! threads parse them concurrently (48 threads, ≈16× average speedup in the
//! paper's evaluation). We reproduce the same structure with `std::thread`
//! scoped threads: [`crate::chunk::chunk_boundaries`]
//! plays the master's role, and each worker runs an independent
//! [`TraceParser`](crate::parser::TraceParser) over its chunk. Results are
//! concatenated in chunk order, which preserves global record order because
//! chunks are contiguous and non-overlapping.

use crate::chunk::chunk_boundaries;
use crate::parser::{parse_str, ParseError};
use crate::record::Record;

/// Configuration for the parallel reader.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Number of worker threads. `1` degenerates to the serial parser (the
    /// paper's "without optimization" configuration).
    pub threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Parse a whole trace with `cfg.threads` workers.
///
/// Record order in the result equals serial parse order.
pub fn parse_parallel(input: &str, cfg: ParallelConfig) -> Result<Vec<Record>, ParseError> {
    let threads = cfg.threads.max(1);
    if threads == 1 {
        return parse_str(input);
    }
    // Over-decompose: many more chunks than workers, pulled from a shared
    // queue. A static one-chunk-per-thread split would let one slow or
    // throttled core hold the whole parse hostage; fine-grained chunks keep
    // every worker busy until the end (the same reason the paper's OpenMP
    // reader uses many sub-file-streams).
    let ranges = chunk_boundaries(input.as_bytes(), threads * 8);
    if ranges.len() == 1 {
        return parse_str(input);
    }
    let mut slots: Vec<Result<Vec<Record>, ParseError>> = Vec::with_capacity(ranges.len());
    for _ in 0..ranges.len() {
        slots.push(Ok(Vec::new()));
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Hand each worker an independent view of the slots through raw
    // indexing: each index is claimed exactly once via `next`, so no two
    // workers touch the same slot.
    let slot_ptr = SlotsPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(ranges.len()) {
            let ranges = &ranges;
            let next = &next;
            let slot_ptr = &slot_ptr;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= ranges.len() {
                    break;
                }
                let part = &input[ranges[i].clone()];
                // SAFETY: `i` is unique to this worker (claimed from the
                // atomic counter) and in-bounds; slots outlives the scope.
                unsafe {
                    *slot_ptr.0.add(i) = parse_str(part);
                }
            });
        }
    });

    let mut out = Vec::new();
    for slot in slots {
        out.extend(slot?);
    }
    Ok(out)
}

/// Send+Sync wrapper for the slot base pointer (disjoint writes only).
struct SlotsPtr(*mut Result<Vec<Record>, ParseError>);
unsafe impl Send for SlotsPtr {}
unsafe impl Sync for SlotsPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;
    use crate::record::{opcodes, OpTag, Operand, TraceValue};
    use crate::writer;
    use std::sync::Arc;

    fn synth_trace(blocks: usize) -> String {
        let mut recs = Vec::with_capacity(blocks);
        for i in 0..blocks {
            recs.push(Record {
                src_line: (i % 90 + 1) as i32,
                func: Arc::from(if i % 3 == 0 { "main" } else { "foo" }),
                bb: (1, 1),
                bb_label: Arc::from("0"),
                opcode: if i % 2 == 0 {
                    opcodes::LOAD
                } else {
                    opcodes::MUL
                },
                dyn_id: i as u64,
                operands: vec![Operand::reg(
                    OpTag::Pos(1),
                    64,
                    TraceValue::Ptr(0x1000 + i as u64 * 8),
                    Name::sym("p"),
                )],
                result: Some(Operand::reg(
                    OpTag::Result,
                    64,
                    TraceValue::I(i as i64),
                    Name::Temp(i as u32),
                )),
            });
        }
        writer::to_string(&recs)
    }

    #[test]
    fn parallel_equals_serial() {
        let text = synth_trace(1000);
        let serial = parse_str(&text).unwrap();
        for threads in [2, 3, 4, 7] {
            let par = parse_parallel(&text, ParallelConfig { threads }).unwrap();
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn single_thread_matches_serial_path() {
        let text = synth_trace(10);
        assert_eq!(
            parse_parallel(&text, ParallelConfig { threads: 1 }).unwrap(),
            parse_str(&text).unwrap()
        );
    }

    #[test]
    fn errors_propagate_from_workers() {
        let mut text = synth_trace(100);
        text.push_str("0,zz,broken,1:1,0,27,9,\n");
        let err = parse_parallel(&text, ParallelConfig { threads: 4 }).unwrap_err();
        assert!(err.message.contains("src line"));
    }

    #[test]
    fn order_is_preserved() {
        let text = synth_trace(500);
        let par = parse_parallel(&text, ParallelConfig { threads: 5 }).unwrap();
        for (i, r) in par.iter().enumerate() {
            assert_eq!(r.dyn_id, i as u64);
        }
    }
}
