//! Parallel trace parsing — the reproduction of the paper's §V-A
//! "Trace analysis optimization".
//!
//! The paper parallelizes trace-file pre-processing with OpenMP: the master
//! thread partitions the input into block-aligned sub-streams and worker
//! threads parse them concurrently (48 threads, ≈16× average speedup in the
//! paper's evaluation). We reproduce the same structure with `std::thread`
//! scoped threads: [`crate::chunk::chunk_boundaries`]
//! plays the master's role, and each worker runs an independent
//! [`TraceParser`](crate::parser::TraceParser) over its chunk. Results are
//! concatenated in chunk order, which preserves global record order because
//! chunks are contiguous and non-overlapping.

use crate::chunk::chunk_boundaries;
use crate::ctx::AnalysisCtx;
use crate::parser::{parse_str_core, ParseError};
use crate::reader::TraceReadError;
use crate::record::Record;
use std::io::Read;

/// Default bounded-lookahead window for [`parse_parallel_read`] (bytes).
pub const DEFAULT_WINDOW_BYTES: usize = 8 * 1024 * 1024;

/// Configuration for the parallel reader.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Number of worker threads. `1` degenerates to the serial parser (the
    /// paper's "without optimization" configuration).
    pub threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Parse a whole trace held in memory with `cfg.threads` workers — a thin
/// wrapper over the same block-aligned chunk machinery
/// [`parse_parallel_read`] applies to each lookahead window.
///
/// Record order in the result equals serial parse order.
#[deprecated(
    since = "0.6.0",
    note = "use TraceSource::from_str(input).parallel(cfg).records()"
)]
pub fn parse_parallel(input: &str, cfg: ParallelConfig) -> Result<Vec<Record>, ParseError> {
    parse_chunks(input, cfg.threads, &AnalysisCtx::current())
}

/// [`parse_parallel`], interning symbols into `ctx`'s space. Workers build
/// their parsers from clones of `ctx`, so a session's parallel parse never
/// touches any other session's symbol table.
#[deprecated(
    since = "0.6.0",
    note = "use TraceSource::from_str(input).ctx(ctx).parallel(cfg).records()"
)]
pub fn parse_parallel_in(
    input: &str,
    cfg: ParallelConfig,
    ctx: &AnalysisCtx,
) -> Result<Vec<Record>, ParseError> {
    parse_chunks(input, cfg.threads, ctx)
}

/// Parse a trace from any [`Read`] with `cfg.threads` workers and the
/// default bounded lookahead ([`DEFAULT_WINDOW_BYTES`]).
///
/// Unlike [`parse_parallel`], the full trace never has to fit in memory as
/// text: bytes are pulled into a window, the window is cut at the last
/// block-header boundary, and the complete-block prefix is parsed in
/// parallel while the partial tail carries into the next window.
#[deprecated(
    since = "0.6.0",
    note = "use TraceSource::from_reader(reader).parallel(cfg).records()"
)]
pub fn parse_parallel_read<R: Read>(
    reader: R,
    cfg: ParallelConfig,
) -> Result<Vec<Record>, TraceReadError> {
    parse_windowed_core(
        reader,
        cfg.threads,
        DEFAULT_WINDOW_BYTES,
        &AnalysisCtx::current(),
    )
}

/// [`parse_parallel_read`], interning symbols into `ctx`'s space.
#[deprecated(
    since = "0.6.0",
    note = "use TraceSource::from_reader(reader).ctx(ctx).parallel(cfg).records()"
)]
pub fn parse_parallel_read_in<R: Read>(
    reader: R,
    cfg: ParallelConfig,
    ctx: &AnalysisCtx,
) -> Result<Vec<Record>, TraceReadError> {
    parse_windowed_core(reader, cfg.threads, DEFAULT_WINDOW_BYTES, ctx)
}

/// [`parse_parallel_read`] with an explicit lookahead window size. The
/// window grows past `window_bytes` only when a single trace block is
/// larger than the window (blocks are a handful of lines, so in practice
/// the bound holds).
#[deprecated(
    since = "0.6.0",
    note = "use TraceSource::from_reader(reader).parallel(cfg).window(n).records()"
)]
pub fn parse_parallel_read_with_window<R: Read>(
    reader: R,
    cfg: ParallelConfig,
    window_bytes: usize,
) -> Result<Vec<Record>, TraceReadError> {
    parse_windowed_core(reader, cfg.threads, window_bytes, &AnalysisCtx::current())
}

/// [`parse_parallel_read_with_window`], interning symbols into `ctx`'s
/// space.
#[deprecated(
    since = "0.6.0",
    note = "use TraceSource::from_reader(reader).ctx(ctx).parallel(cfg).window(n).records()"
)]
pub fn parse_parallel_read_with_window_in<R: Read>(
    reader: R,
    cfg: ParallelConfig,
    window_bytes: usize,
    ctx: &AnalysisCtx,
) -> Result<Vec<Record>, TraceReadError> {
    parse_windowed_core(reader, cfg.threads, window_bytes, ctx)
}

/// The bounded-lookahead windowed parallel text parse behind
/// [`crate::TraceSource::records`] for reader inputs: bytes are pulled into
/// a window, the window is cut at the last block-header boundary, and the
/// complete-block prefix is parsed in parallel while the partial tail
/// carries into the next window.
pub(crate) fn parse_windowed_core<R: Read>(
    mut reader: R,
    threads: usize,
    window_bytes: usize,
    ctx: &AnalysisCtx,
) -> Result<Vec<Record>, TraceReadError> {
    let window_bytes = window_bytes.max(64);
    let mut out = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; window_bytes.clamp(4096, 1 << 20)];
    let mut target = window_bytes;
    // `buf[..scanned]` is known to contain no block-header split, so each
    // header search only covers newly read bytes (minus the 2-byte pattern
    // overlap). Without this, a block larger than the window would rescan
    // the whole buffer on every refill — quadratic in the block size.
    let mut scanned = 0usize;
    // Lines already parsed out of earlier windows, so in-window parse-error
    // line numbers can be reported as absolute positions in the stream —
    // matching what the serial `RecordReader` reports for the same trace.
    let mut lines_done = 0u64;
    let mut eof = false;
    loop {
        while buf.len() < target && !eof {
            let n = reader.read(&mut chunk)?;
            if n == 0 {
                eof = true;
            } else {
                buf.extend_from_slice(&chunk[..n]);
            }
        }
        if ctx.metrics().is_enabled() {
            // The resident ingest footprint: the lookahead window plus the
            // read scratch — what path-based ingest holds regardless of
            // trace size (the peak is the RSS-shaped figure the bounded
            // ingest tests pin).
            ctx.metrics().gauge_set(
                autocheck_obs::GaugeId::IngestBufferBytes,
                (buf.capacity() + chunk.capacity()) as u64,
            );
        }
        if eof {
            if !buf.is_empty() {
                let text = window_text(&buf).map_err(|e| offset_lines(e, lines_done))?;
                let recs =
                    parse_chunks(text, threads, ctx).map_err(|e| offset_lines(e, lines_done))?;
                out.extend(recs);
            }
            return Ok(out);
        }
        // Cut at the start of the last block header: everything before it
        // is complete blocks; the tail may continue beyond the window.
        let from = scanned.saturating_sub(2);
        match last_block_header(&buf[from..]).map(|cut| cut + from) {
            Some(cut) if cut > 0 => {
                let text = window_text(&buf[..cut]).map_err(|e| offset_lines(e, lines_done))?;
                let recs =
                    parse_chunks(text, threads, ctx).map_err(|e| offset_lines(e, lines_done))?;
                out.extend(recs);
                lines_done += buf[..cut].iter().filter(|&&b| b == b'\n').count() as u64;
                buf.drain(..cut);
                scanned = 0;
                target = window_bytes;
            }
            _ => {
                // No interior split point yet — keep reading until the next
                // block header shows up.
                scanned = buf.len();
                target = buf.len() + window_bytes;
            }
        }
    }
}

/// Offset just past the last `\n` that is followed by a block header.
pub(crate) fn last_block_header(buf: &[u8]) -> Option<usize> {
    buf.windows(3).rposition(|w| w == b"\n0,").map(|i| i + 1)
}

/// Validate one window's bytes; the error line is window-relative (the
/// caller rebases it with [`offset_lines`]).
fn window_text(buf: &[u8]) -> Result<&str, ParseError> {
    crate::reader::utf8_text(buf)
}

/// Rebase a window-relative parse error onto the whole stream.
pub(crate) fn offset_lines(mut e: ParseError, lines_before: u64) -> TraceReadError {
    e.line += lines_before;
    TraceReadError::Parse(e)
}

/// The shared block-aligned parallel parse over in-memory text (the engine
/// behind [`crate::TraceSource::records`] for textual inputs).
pub(crate) fn parse_chunks(
    input: &str,
    threads: usize,
    ctx: &AnalysisCtx,
) -> Result<Vec<Record>, ParseError> {
    let threads = threads.max(1);
    if threads == 1 {
        return parse_str_core(input, ctx);
    }
    // Over-decompose: many more chunks than workers, pulled from a shared
    // queue. A static one-chunk-per-thread split would let one slow or
    // throttled core hold the whole parse hostage; fine-grained chunks keep
    // every worker busy until the end (the same reason the paper's OpenMP
    // reader uses many sub-file-streams).
    let ranges = chunk_boundaries(input.as_bytes(), threads * 8);
    if ranges.len() == 1 {
        return parse_str_core(input, ctx);
    }
    let mut slots: Vec<Result<Vec<Record>, ParseError>> = Vec::with_capacity(ranges.len());
    for _ in 0..ranges.len() {
        slots.push(Ok(Vec::new()));
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Hand each worker an independent view of the slots through raw
    // indexing: each index is claimed exactly once via `next`, so no two
    // workers touch the same slot.
    let slot_ptr = SlotsPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(ranges.len()) {
            let ranges = &ranges;
            let next = &next;
            let slot_ptr = &slot_ptr;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= ranges.len() {
                    break;
                }
                let part = &input[ranges[i].clone()];
                // SAFETY: `i` is unique to this worker (claimed from the
                // atomic counter) and in-bounds; slots outlives the scope.
                unsafe {
                    *slot_ptr.0.add(i) = parse_str_core(part, ctx);
                }
            });
        }
    });

    let mut out = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Ok(recs) => out.extend(recs),
            Err(mut e) => {
                // Workers parse their chunk with a fresh parser, so the
                // error line is chunk-relative; rebase it onto the input
                // (error path only — the scan is never paid on success).
                let before = input.as_bytes()[..ranges[i].start]
                    .iter()
                    .filter(|&&b| b == b'\n')
                    .count() as u64;
                e.line += before;
                return Err(e);
            }
        }
    }
    Ok(out)
}

/// Send+Sync wrapper for the slot base pointer (disjoint writes only).
struct SlotsPtr(*mut Result<Vec<Record>, ParseError>);
unsafe impl Send for SlotsPtr {}
unsafe impl Sync for SlotsPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::SymId;
    use crate::name::Name;
    use crate::parser::parse_str_core;
    use crate::record::{opcodes, OpTag, Operand, TraceValue};
    use crate::writer;

    // Test shorthands for the current-space entry points (shadowing the
    // deprecated free functions of the same names).
    fn parse_str(input: &str) -> Result<Vec<Record>, ParseError> {
        parse_str_core(input, &AnalysisCtx::current())
    }

    fn parse_parallel(input: &str, cfg: ParallelConfig) -> Result<Vec<Record>, ParseError> {
        parse_chunks(input, cfg.threads, &AnalysisCtx::current())
    }

    fn parse_parallel_read<R: Read>(
        reader: R,
        cfg: ParallelConfig,
    ) -> Result<Vec<Record>, TraceReadError> {
        parse_windowed_core(
            reader,
            cfg.threads,
            DEFAULT_WINDOW_BYTES,
            &AnalysisCtx::current(),
        )
    }

    fn parse_parallel_read_with_window<R: Read>(
        reader: R,
        cfg: ParallelConfig,
        window_bytes: usize,
    ) -> Result<Vec<Record>, TraceReadError> {
        parse_windowed_core(reader, cfg.threads, window_bytes, &AnalysisCtx::current())
    }

    fn synth_trace(blocks: usize) -> String {
        let mut recs = Vec::with_capacity(blocks);
        for i in 0..blocks {
            recs.push(Record {
                src_line: (i % 90 + 1) as i32,
                func: SymId::intern(if i % 3 == 0 { "main" } else { "foo" }),
                bb: (1, 1),
                bb_label: SymId::intern("0"),
                opcode: if i % 2 == 0 {
                    opcodes::LOAD
                } else {
                    opcodes::MUL
                },
                dyn_id: i as u64,
                operands: vec![Operand::reg(
                    OpTag::Pos(1),
                    64,
                    TraceValue::Ptr(0x1000 + i as u64 * 8),
                    Name::sym("p"),
                )],
                result: Some(Operand::reg(
                    OpTag::Result,
                    64,
                    TraceValue::I(i as i64),
                    Name::Temp(i as u32),
                )),
            });
        }
        writer::to_string(&recs)
    }

    #[test]
    fn parallel_equals_serial() {
        let text = synth_trace(1000);
        let serial = parse_str(&text).unwrap();
        for threads in [2, 3, 4, 7] {
            let par = parse_parallel(&text, ParallelConfig { threads }).unwrap();
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn single_thread_matches_serial_path() {
        let text = synth_trace(10);
        assert_eq!(
            parse_parallel(&text, ParallelConfig { threads: 1 }).unwrap(),
            parse_str(&text).unwrap()
        );
    }

    #[test]
    fn errors_propagate_from_workers() {
        let mut text = synth_trace(100);
        text.push_str("0,zz,broken,1:1,0,27,9,\n");
        let err = parse_parallel(&text, ParallelConfig { threads: 4 }).unwrap_err();
        assert!(err.message.contains("src line"));
    }

    #[test]
    fn order_is_preserved() {
        let text = synth_trace(500);
        let par = parse_parallel(&text, ParallelConfig { threads: 5 }).unwrap();
        for (i, r) in par.iter().enumerate() {
            assert_eq!(r.dyn_id, i as u64);
        }
    }

    #[test]
    fn reader_entry_point_equals_serial_at_every_window() {
        let text = synth_trace(400);
        let serial = parse_str(&text).unwrap();
        for window in [64, 100, 1000, 1 << 22] {
            for threads in [1, 4] {
                let par = parse_parallel_read_with_window(
                    text.as_bytes(),
                    ParallelConfig { threads },
                    window,
                )
                .unwrap();
                assert_eq!(serial, par, "window = {window}, threads = {threads}");
            }
        }
    }

    #[test]
    fn reader_entry_point_defaults_work() {
        let text = synth_trace(50);
        let par = parse_parallel_read(text.as_bytes(), ParallelConfig { threads: 3 }).unwrap();
        assert_eq!(par, parse_str(&text).unwrap());
    }

    #[test]
    fn reader_entry_point_propagates_parse_errors() {
        let mut text = synth_trace(100);
        text.push_str("0,zz,broken,1:1,0,27,9,\n");
        let err =
            parse_parallel_read_with_window(text.as_bytes(), ParallelConfig { threads: 4 }, 128)
                .unwrap_err();
        assert!(err.to_string().contains("src line"));
    }

    #[test]
    fn parse_error_lines_are_absolute_in_every_entry_point() {
        // The broken line lands well past the first window/chunk, so a
        // window- or chunk-relative count would report a much smaller
        // number than the serial parser does.
        let mut text = synth_trace(100);
        let bad_line = text.lines().count() as u64 + 1;
        text.push_str("0,zz,broken,1:1,0,27,9,\n");

        let serial = parse_str(&text).unwrap_err();
        assert_eq!(serial.line, bad_line);

        let parallel = parse_parallel(&text, ParallelConfig { threads: 4 }).unwrap_err();
        assert_eq!(parallel.line, bad_line);

        let windowed =
            parse_parallel_read_with_window(text.as_bytes(), ParallelConfig { threads: 4 }, 256)
                .unwrap_err();
        let TraceReadError::Parse(windowed) = windowed else {
            panic!("expected a parse error");
        };
        assert_eq!(windowed.line, bad_line);
    }

    #[test]
    fn window_grows_when_one_block_exceeds_it() {
        // A single block with many operand lines, far larger than the
        // 64-byte minimum window: the reader must keep growing its
        // lookahead instead of mis-splitting the block.
        let mut text = String::from("0,3,foo,6:1,11,49,0,\n");
        for i in 0..64 {
            text.push_str(&format!("{},64,{},0,,\n", i + 1, i));
        }
        let recs =
            parse_parallel_read_with_window(text.as_bytes(), ParallelConfig { threads: 2 }, 64)
                .unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].positional().count(), 64);
    }
}
