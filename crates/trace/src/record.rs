//! In-memory representation of trace records.

use crate::intern::SymId;
use crate::name::Name;
use std::fmt;

/// A dynamic operand value as traced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceValue {
    /// Integer (also used for booleans: 0/1).
    I(i64),
    /// Double, printed as `%.6f` like LLVM-Tracer (lossy — the analysis
    /// never depends on float payloads).
    F(f64),
    /// Pointer / memory address, printed `0x…`.
    Ptr(u64),
    /// No value (e.g. a `void` call result placeholder).
    None,
}

impl TraceValue {
    /// The address payload, if this is a pointer.
    pub fn as_ptr(&self) -> Option<u64> {
        match self {
            TraceValue::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            TraceValue::I(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for TraceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceValue::I(v) => write!(f, "{v}"),
            TraceValue::F(v) => write!(f, "{v:.6}"),
            TraceValue::Ptr(p) => write!(f, "0x{p:x}"),
            TraceValue::None => write!(f, " "),
        }
    }
}

/// Which line of the block an operand appeared on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpTag {
    /// Positional operand `1..=n`.
    Pos(u8),
    /// Function-parameter line (`f` tag, Call form 2).
    Param,
    /// Result line (`r` tag).
    Result,
}

impl fmt::Display for OpTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpTag::Pos(i) => write!(f, "{i}"),
            OpTag::Param => write!(f, "f"),
            OpTag::Result => write!(f, "r"),
        }
    }
}

/// One operand line.
#[derive(Clone, Debug, PartialEq)]
pub struct Operand {
    /// Line tag.
    pub tag: OpTag,
    /// Operand width in bits (64/32/1).
    pub bits: u16,
    /// Dynamic value.
    pub value: TraceValue,
    /// True when the operand names a register.
    pub is_reg: bool,
    /// Register/variable name (`Name::None` for immediates).
    pub name: Name,
}

impl Operand {
    /// A register operand.
    pub fn reg(tag: OpTag, bits: u16, value: TraceValue, name: Name) -> Operand {
        Operand {
            tag,
            bits,
            value,
            is_reg: true,
            name,
        }
    }

    /// An immediate operand.
    pub fn imm(tag: OpTag, bits: u16, value: TraceValue) -> Operand {
        Operand {
            tag,
            bits,
            value,
            is_reg: false,
            name: Name::None,
        }
    }
}

/// One trace block: an executed dynamic instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Source line (−1 for synthetic instructions).
    pub src_line: i32,
    /// Enclosing function name (interned).
    pub func: SymId,
    /// Basic block id (`line:col` of the block's first statement).
    pub bb: (u32, u32),
    /// Basic block label (interned). For `Alloca` records this carries the
    /// variable name instead, as in paper Fig. 6(c).
    pub bb_label: SymId,
    /// Numeric LLVM 3.4 opcode.
    pub opcode: u16,
    /// Dynamic instruction id (execution order, 0-based).
    pub dyn_id: u64,
    /// Positional operands followed by any `f`-tagged parameter operands.
    pub operands: Vec<Operand>,
    /// The `r`-tagged result operand, if the instruction produces a value.
    pub result: Option<Operand>,
}

impl Record {
    /// Positional operands only (excluding `f`-tagged parameter lines).
    pub fn positional(&self) -> impl Iterator<Item = &Operand> + '_ {
        self.operands
            .iter()
            .filter(|o| matches!(o.tag, OpTag::Pos(_)))
    }

    /// The `f`-tagged parameter operands (Call form 2).
    pub fn params(&self) -> impl Iterator<Item = &Operand> + '_ {
        self.operands
            .iter()
            .filter(|o| matches!(o.tag, OpTag::Param))
    }

    /// True for the arithmetic opcode family (LLVM binary operators 8–25).
    pub fn is_arithmetic(&self) -> bool {
        (8..=25).contains(&self.opcode)
    }

    /// Convenience: the first positional operand.
    pub fn op1(&self) -> Option<&Operand> {
        self.positional().next()
    }

    /// Convenience: the second positional operand.
    pub fn op2(&self) -> Option<&Operand> {
        self.positional().nth(1)
    }
}

/// Well-known opcode numbers, re-declared here so the trace crate does not
/// depend on the IR crate (the analysis pipeline consumes traces alone).
pub mod opcodes {
    /// `Ret`.
    pub const RET: u16 = 1;
    /// `Br`.
    pub const BR: u16 = 2;
    /// `Add`.
    pub const ADD: u16 = 8;
    /// `FAdd`.
    pub const FADD: u16 = 9;
    /// `Sub`.
    pub const SUB: u16 = 10;
    /// `FSub`.
    pub const FSUB: u16 = 11;
    /// `Mul`.
    pub const MUL: u16 = 12;
    /// `FMul`.
    pub const FMUL: u16 = 13;
    /// `UDiv`.
    pub const UDIV: u16 = 14;
    /// `SDiv`.
    pub const SDIV: u16 = 15;
    /// `FDiv`.
    pub const FDIV: u16 = 16;
    /// `Alloca`.
    pub const ALLOCA: u16 = 26;
    /// `Load`.
    pub const LOAD: u16 = 27;
    /// `Store`.
    pub const STORE: u16 = 28;
    /// `GetElementPtr`.
    pub const GETELEMENTPTR: u16 = 29;
    /// `ZExt`.
    pub const ZEXT: u16 = 34;
    /// `FPToSI`.
    pub const FPTOSI: u16 = 37;
    /// `SIToFP`.
    pub const SITOFP: u16 = 39;
    /// `BitCast`.
    pub const BITCAST: u16 = 44;
    /// `ICmp`.
    pub const ICMP: u16 = 46;
    /// `FCmp`.
    pub const FCMP: u16 = 47;
    /// `Call`.
    pub const CALL: u16 = 49;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            src_line: 3,
            func: SymId::intern("foo"),
            bb: (6, 1),
            bb_label: SymId::intern("11"),
            opcode: opcodes::LOAD,
            dyn_id: 215,
            operands: vec![Operand::reg(
                OpTag::Pos(1),
                64,
                TraceValue::Ptr(0x7ffc_f3f2_5a70),
                Name::sym("p"),
            )],
            result: Some(Operand::reg(
                OpTag::Result,
                32,
                TraceValue::I(1),
                Name::Temp(8),
            )),
        }
    }

    #[test]
    fn positional_vs_param_split() {
        let mut r = sample();
        r.operands.push(Operand::reg(
            OpTag::Param,
            64,
            TraceValue::Ptr(0xdead),
            Name::sym("q"),
        ));
        assert_eq!(r.positional().count(), 1);
        assert_eq!(r.params().count(), 1);
        assert_eq!(r.op1().unwrap().name, Name::sym("p"));
        assert!(r.op2().is_none());
    }

    #[test]
    fn arithmetic_family() {
        let mut r = sample();
        assert!(!r.is_arithmetic());
        r.opcode = opcodes::FMUL;
        assert!(r.is_arithmetic());
    }

    #[test]
    fn trace_value_accessors() {
        assert_eq!(TraceValue::Ptr(16).as_ptr(), Some(16));
        assert_eq!(TraceValue::I(5).as_ptr(), None);
        assert_eq!(TraceValue::I(5).as_int(), Some(5));
    }

    #[test]
    fn value_display_matches_paper_style() {
        assert_eq!(TraceValue::F(44.0).to_string(), "44.000000");
        assert_eq!(TraceValue::Ptr(0x4009e0).to_string(), "0x4009e0");
        assert_eq!(TraceValue::I(-3).to_string(), "-3");
    }
}
