//! Iteration-aligned shard planning for single-trace parallel analysis.
//!
//! A trace can be analyzed by several workers at once **only** if no loop
//! iteration straddles two workers: the per-variable statistics fold
//! retires its element window exactly at iteration boundaries, so a split
//! mid-iteration would retire a half-window and change the result. The
//! planner therefore cuts only at *iteration boundaries* — record indices
//! where the region tracker's iteration counter advances (the paper's
//! region function makes these explicit).
//!
//! Boundaries come from one of two places:
//!
//! * the binary format's optional iteration-index footer
//!   ([`crate::binary::iteration_index`]) — O(index) with no record scan;
//! * a replayed `RegionTracker` pass over the records (text traces, or
//!   binary files written without the footer) — one cheap annotation scan.
//!
//! [`plan_shards`] then picks, for each ideal cut point `k·n/N`, the
//! nearest available boundary. When boundaries are scarcer than requested
//! shards (more workers than iterations), duplicate picks collapse and the
//! plan gracefully degrades to fewer shards — callers never need to guard
//! the shard count against the iteration count.

use std::ops::Range;

/// Partition `record_count` records into at most `target` contiguous,
/// iteration-aligned ranges.
///
/// `boundaries` must be sorted ascending record indices at which a new
/// iteration starts (exclusive of 0 and `record_count`; out-of-range
/// entries are ignored). The returned ranges are non-empty, contiguous,
/// and cover `0..record_count` exactly; their concatenation order is trace
/// order, which is the order a deterministic merge must fold them in.
pub fn plan_shards(record_count: usize, boundaries: &[u64], target: usize) -> Vec<Range<usize>> {
    let target = target.max(1);
    if target == 1 || record_count == 0 {
        // A one-element plan covering the whole trace is the intent here,
        // not a mistyped `(0..n).collect()`.
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..record_count];
    }
    let mut cuts: Vec<usize> = Vec::with_capacity(target - 1);
    for k in 1..target {
        // Ideal cut for an even split, snapped to the nearest boundary.
        let ideal = (record_count as u64).saturating_mul(k as u64) / target as u64;
        let i = boundaries.partition_point(|&b| b < ideal);
        let below = i.checked_sub(1).map(|j| boundaries[j]);
        let above = boundaries.get(i).copied();
        let pick = match (below, above) {
            (Some(lo), Some(hi)) => {
                if ideal - lo <= hi - ideal {
                    lo
                } else {
                    hi
                }
            }
            (Some(lo), None) => lo,
            (None, Some(hi)) => hi,
            (None, None) => continue,
        };
        let pick = pick as usize;
        // Ideals are non-decreasing, so picks are non-decreasing: a repeat
        // of the previous cut (boundaries scarcer than shards) collapses.
        if pick > 0 && pick < record_count && cuts.last() != Some(&pick) {
            cuts.push(pick);
        }
    }
    let mut ranges = Vec::with_capacity(cuts.len() + 1);
    let mut start = 0usize;
    for cut in cuts {
        if cut > start {
            ranges.push(start..cut);
            start = cut;
        }
    }
    ranges.push(start..record_count);
    ranges
}

/// Resolve a shard-count request: `0` means "auto" (the machine's
/// available parallelism), anything else passes through.
pub fn resolve_shard_count(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(ranges: &[Range<usize>], n: usize) {
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, n);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "contiguous");
        }
        assert!(ranges.iter().all(|r| !r.is_empty() || n == 0));
    }

    #[test]
    fn single_shard_is_the_whole_trace() {
        assert_eq!(plan_shards(100, &[10, 20], 1), vec![0..100]);
        assert_eq!(plan_shards(0, &[], 4), vec![0..0]);
    }

    #[test]
    fn cuts_land_on_boundaries() {
        let bounds = [10u64, 20, 30, 40, 50, 60, 70, 80, 90];
        let ranges = plan_shards(100, &bounds, 4);
        covers(&ranges, 100);
        assert_eq!(ranges.len(), 4);
        for r in &ranges[1..] {
            assert!(bounds.contains(&(r.start as u64)), "cut at {}", r.start);
        }
    }

    #[test]
    fn picks_nearest_boundary() {
        // One boundary at 42; ideal cut for 2 shards of 100 is 50 → snap
        // down to 42.
        assert_eq!(plan_shards(100, &[42], 2), vec![0..42, 42..100]);
        // Boundary only above the ideal.
        assert_eq!(plan_shards(100, &[77], 2), vec![0..77, 77..100]);
    }

    #[test]
    fn more_shards_than_boundaries_degrades_gracefully() {
        let ranges = plan_shards(100, &[50], 8);
        covers(&ranges, 100);
        assert_eq!(ranges, vec![0..50, 50..100]);
        let ranges = plan_shards(100, &[], 8);
        assert_eq!(ranges, vec![0..100]);
    }

    #[test]
    fn out_of_range_boundaries_are_ignored() {
        let ranges = plan_shards(10, &[0, 5, 10, 99], 2);
        covers(&ranges, 10);
        assert_eq!(ranges, vec![0..5, 5..10]);
    }

    #[test]
    fn many_boundaries_split_evenly() {
        let bounds: Vec<u64> = (1..1000).collect();
        for target in [2usize, 3, 4, 8, 16] {
            let ranges = plan_shards(1000, &bounds, target);
            covers(&ranges, 1000);
            assert_eq!(ranges.len(), target);
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            assert!(max - min <= 1, "even split at target {target}");
        }
    }

    #[test]
    fn resolve_shard_count_auto_and_passthrough() {
        assert!(resolve_shard_count(0) >= 1);
        assert_eq!(resolve_shard_count(1), 1);
        assert_eq!(resolve_shard_count(7), 7);
    }
}
