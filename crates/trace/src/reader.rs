//! Pull-based streaming trace reading from any [`io::Read`].
//!
//! The batch pipeline requires the whole trace as one in-memory `String`
//! before parsing can begin. [`RecordReader`] removes that requirement: it
//! reads fixed-size byte chunks into a bounded carry buffer, splits them at
//! line boundaries, and feeds complete lines through the incremental
//! [`TraceParser`] — yielding records one at a time. Peak memory is the
//! chunk size plus one partial line plus the records completed by the
//! current chunk, regardless of trace length.

use crate::ctx::AnalysisCtx;
use crate::parser::{ParseError, TraceParser};
use crate::record::Record;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read};

/// Default read-chunk size (bytes).
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// A failure while streaming records from a reader: the underlying I/O
/// failed, the trace text did not parse, a binary trace was malformed, or
/// the session crossed one of its [`ResourceLimits`](crate::ResourceLimits).
#[derive(Debug)]
pub enum TraceReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The trace text is malformed.
    Parse(ParseError),
    /// The binary trace is malformed.
    Binary(crate::binary::BinaryError),
    /// The session crossed a configured resource ceiling.
    Resource(crate::limits::ResourceExceeded),
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read error: {e}"),
            TraceReadError::Parse(e) => write!(f, "{e}"),
            TraceReadError::Binary(e) => write!(f, "{e}"),
            TraceReadError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            TraceReadError::Parse(e) => Some(e),
            TraceReadError::Binary(e) => Some(e),
            TraceReadError::Resource(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

impl From<ParseError> for TraceReadError {
    fn from(e: ParseError) -> Self {
        TraceReadError::Parse(e)
    }
}

impl From<crate::binary::BinaryError> for TraceReadError {
    fn from(e: crate::binary::BinaryError) -> Self {
        TraceReadError::Binary(e)
    }
}

impl From<crate::limits::ResourceExceeded> for TraceReadError {
    fn from(e: crate::limits::ResourceExceeded) -> Self {
        TraceReadError::Resource(e)
    }
}

/// Streaming record iterator over any [`Read`] with bounded buffering.
pub struct RecordReader<R: Read> {
    inner: R,
    parser: TraceParser,
    /// Bytes read but not yet consumed (at most one partial line after each
    /// refill).
    carry: Vec<u8>,
    chunk: usize,
    ready: VecDeque<Record>,
    /// Lines already fed to the parser, so a UTF-8 failure can be reported
    /// at its absolute line like any parse error.
    lines_fed: u64,
    eof: bool,
    failed: bool,
}

impl<R: Read> RecordReader<R> {
    /// Stream records from `inner` with the default chunk size.
    pub fn new(inner: R) -> RecordReader<R> {
        RecordReader::with_chunk_size(inner, DEFAULT_CHUNK_BYTES)
    }

    /// Stream records from `inner`, interning symbols into `ctx`'s space.
    pub fn with_ctx(inner: R, ctx: &AnalysisCtx) -> RecordReader<R> {
        let mut r = RecordReader::with_chunk_size(inner, DEFAULT_CHUNK_BYTES);
        r.parser = TraceParser::with_ctx(ctx.clone());
        r
    }

    /// Stream records from `inner`, reading `chunk` bytes at a time.
    pub fn with_chunk_size(inner: R, chunk: usize) -> RecordReader<R> {
        RecordReader {
            inner,
            parser: TraceParser::new(),
            carry: Vec::new(),
            chunk: chunk.max(1),
            ready: VecDeque::new(),
            lines_fed: 0,
            eof: false,
            failed: false,
        }
    }

    /// Validate one line's bytes, rebasing a UTF-8 failure onto the stream.
    fn line_str<'a>(&self, raw: &'a [u8]) -> Result<&'a str, ParseError> {
        utf8_text(raw).map_err(|mut e| {
            e.line += self.lines_fed;
            e
        })
    }

    /// Read one more chunk and feed every complete line through the parser.
    fn refill(&mut self) -> Result<(), TraceReadError> {
        let start = self.carry.len();
        self.carry.resize(start + self.chunk, 0);
        let n = self.inner.read(&mut self.carry[start..])?;
        self.carry.truncate(start + n);
        if n == 0 {
            self.eof = true;
            // Flush: the carry holds at most one final unterminated line.
            let tail = std::mem::take(&mut self.carry);
            if !tail.is_empty() {
                let line = self.line_str(&tail)?;
                self.lines_fed += 1;
                if let Some(rec) = self.parser.feed_line(line)? {
                    self.ready.push_back(rec);
                }
            }
            if let Some(rec) = self.parser.finish() {
                self.ready.push_back(rec);
            }
            return Ok(());
        }
        // Consume every complete line; keep the trailing partial line.
        let Some(last_nl) = self.carry.iter().rposition(|&b| b == b'\n') else {
            return Ok(());
        };
        let rest = self.carry.split_off(last_nl + 1);
        let complete = std::mem::replace(&mut self.carry, rest);
        // `complete` ends with '\n'; strip it before splitting so the line
        // sequence (including interior blank lines) matches `str::lines`,
        // keeping parse-error line numbers identical to the batch parser.
        for raw in complete[..complete.len() - 1].split(|&b| b == b'\n') {
            let line = self.line_str(raw)?;
            self.lines_fed += 1;
            if let Some(rec) = self.parser.feed_line(line)? {
                self.ready.push_back(rec);
            }
        }
        Ok(())
    }
}

/// Shared UTF-8 gate for streamed trace bytes — one copy of the error
/// contract for both the serial [`RecordReader`] and the parallel windowed
/// reader. The error's line number is the 1-based line of the first invalid
/// byte *within `raw`*; callers add the lines already consumed before `raw`
/// to keep the number absolute.
pub(crate) fn utf8_text(raw: &[u8]) -> Result<&str, ParseError> {
    std::str::from_utf8(raw).map_err(|e| ParseError {
        line: raw[..e.valid_up_to()]
            .iter()
            .filter(|&&b| b == b'\n')
            .count() as u64
            + 1,
        message: "trace is not valid UTF-8".into(),
    })
}

impl<R: Read> Iterator for RecordReader<R> {
    type Item = Result<Record, TraceReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(rec) = self.ready.pop_front() {
                return Some(Ok(rec));
            }
            if self.eof {
                return None;
            }
            if let Err(e) = self.refill() {
                self.failed = true;
                return Some(Err(e));
            }
        }
    }
}

/// Read and parse a complete trace from `reader` (serial).
#[deprecated(
    since = "0.6.0",
    note = "use TraceSource::from_reader(reader).records()"
)]
pub fn parse_read<R: Read>(reader: R) -> Result<Vec<Record>, TraceReadError> {
    RecordReader::new(reader).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_str_core;
    use crate::record::{opcodes, OpTag, Operand, TraceValue};
    use crate::{writer, AnalysisCtx, Name, SymId};

    // Test shorthands for the current-space entry points (shadowing the
    // deprecated free functions of the same names).
    fn parse_str(input: &str) -> Result<Vec<Record>, ParseError> {
        parse_str_core(input, &AnalysisCtx::current())
    }

    fn parse_read<R: Read>(reader: R) -> Result<Vec<Record>, TraceReadError> {
        RecordReader::new(reader).collect()
    }

    fn synth_trace(blocks: usize) -> String {
        let mut recs = Vec::with_capacity(blocks);
        for i in 0..blocks {
            recs.push(Record {
                src_line: (i % 90 + 1) as i32,
                func: SymId::intern(if i % 3 == 0 { "main" } else { "foo" }),
                bb: (1, 1),
                bb_label: SymId::intern("0"),
                opcode: if i % 2 == 0 {
                    opcodes::LOAD
                } else {
                    opcodes::MUL
                },
                dyn_id: i as u64,
                operands: vec![Operand::reg(
                    OpTag::Pos(1),
                    64,
                    TraceValue::Ptr(0x1000 + i as u64 * 8),
                    Name::sym("p"),
                )],
                result: Some(Operand::reg(
                    OpTag::Result,
                    64,
                    TraceValue::I(i as i64),
                    Name::Temp(i as u32),
                )),
            });
        }
        writer::to_string(&recs)
    }

    #[test]
    fn reader_equals_parse_str_at_every_chunk_size() {
        let text = synth_trace(200);
        let whole = parse_str(&text).unwrap();
        for chunk in [1, 7, 64, 4096, 1 << 20] {
            let streamed: Vec<Record> = RecordReader::with_chunk_size(text.as_bytes(), chunk)
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(whole, streamed, "chunk = {chunk}");
        }
    }

    #[test]
    fn unterminated_final_line_is_parsed() {
        let mut text = synth_trace(3);
        text.pop(); // drop the final newline
        let streamed = parse_read(text.as_bytes()).unwrap();
        assert_eq!(streamed, parse_str(&text).unwrap());
        assert_eq!(streamed.len(), 3);
    }

    #[test]
    fn crlf_traces_match_the_batch_parser() {
        // The reader splits on raw b'\n' and hands the parser lines with a
        // trailing '\r'; feed_line trims both, so CRLF files must parse
        // identically to LF files in every mode (batch uses str::lines,
        // which strips the '\r' itself).
        let lf = synth_trace(20);
        let crlf = lf.replace('\n', "\r\n");
        let want = parse_str(&lf).unwrap();
        assert_eq!(parse_str(&crlf).unwrap(), want);
        for chunk in [1, 7, 4096] {
            let streamed: Vec<Record> = RecordReader::with_chunk_size(crlf.as_bytes(), chunk)
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(streamed, want, "chunk = {chunk}");
        }
        // EOF-flush path: final CRLF line without its '\n'.
        let mut cut = crlf.clone();
        cut.pop();
        assert_eq!(parse_read(cut.as_bytes()).unwrap(), want);
    }

    #[test]
    fn parse_errors_surface_once_then_stop() {
        let mut text = synth_trace(5);
        text.push_str("0,zz,broken,1:1,0,27,9,\n");
        let mut reader = RecordReader::new(text.as_bytes());
        let mut seen_err = false;
        let mut after_err = 0;
        for item in &mut reader {
            match item {
                Ok(_) => {
                    assert!(!seen_err);
                }
                Err(TraceReadError::Parse(e)) => {
                    assert!(e.message.contains("src line"));
                    seen_err = true;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
            if seen_err {
                after_err += 1;
            }
        }
        assert!(seen_err);
        assert_eq!(after_err, 1, "iterator fuses after the error");
    }

    #[test]
    fn empty_reader_is_empty_trace() {
        assert_eq!(parse_read(&b""[..]).unwrap(), vec![]);
    }

    #[test]
    fn invalid_utf8_is_a_parse_error_at_the_right_line() {
        let bytes: &[u8] = b"0,3,foo,6:1,11,27,215,\n1,64,\xff\xfe,1,p,\n";
        let err = parse_read(bytes).unwrap_err();
        assert!(err.to_string().contains("UTF-8"));
        let TraceReadError::Parse(e) = err else {
            panic!("expected a parse error");
        };
        assert_eq!(e.line, 2, "the invalid byte sits on line 2");
    }

    #[test]
    fn io_errors_propagate() {
        struct Failing;
        impl Read for Failing {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
        }
        let err = parse_read(Failing).unwrap_err();
        assert!(matches!(err, TraceReadError::Io(_)));
        assert!(err.to_string().contains("disk on fire"));
    }
}
