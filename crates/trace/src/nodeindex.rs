//! Dense per-kind node interning for dependency graphs.
//!
//! The shared DDG (`autocheck_stream::graph`) interns two kinds of node:
//! variables, identified by `(name, base address)`, and registers,
//! identified by a [`Name`]. The pre-unification implementations keyed one
//! `HashMap<NodeKind, usize>` on an enum holding `Arc<str>`s — every
//! lookup re-hashed a string. This index replaces that with per-kind
//! tables indexed by the interned integers themselves:
//!
//! * registers — a [`NameMap`] over the dense/overflow per-kind layout
//!   (one copy of that machinery, shared with the reg-var maps);
//! * variables — a per-symbol list of `(base, node)` pairs kept sorted by
//!   base and binary-searched: a symbol usually has one base, recursion
//!   gives it one per live frame, and ordered search keeps lookups
//!   O(log bases) without hashing attacker-chosen addresses.
//!
//! Node ids are assigned in first-intern order, exactly like the map-based
//! implementations, so graph serialization (DOT node numbering) is
//! unchanged byte-for-byte.

use crate::{Name, NameMap, SymId};

/// Dense node-id interner for variable and register nodes.
#[derive(Clone, Debug, Default)]
pub struct NodeIndex {
    /// `(base, node)` pairs per variable symbol, sorted by base.
    var: Vec<Vec<(u64, u32)>>,
    /// Node per register name.
    reg: NameMap<u32>,
    count: u32,
}

impl NodeIndex {
    /// A fresh index.
    pub fn new() -> NodeIndex {
        NodeIndex::default()
    }

    /// Number of nodes interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True when nothing has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Intern the variable node `(name, base)`; returns `(id, inserted)`.
    #[inline]
    pub fn var_node(&mut self, name: SymId, base: u64) -> (u32, bool) {
        let i = name.index();
        if self.var.len() <= i {
            self.var.resize_with(i + 1, Vec::new);
        }
        let bases = &mut self.var[i];
        match bases.binary_search_by_key(&base, |&(b, _)| b) {
            Ok(pos) => (bases[pos].1, false),
            Err(pos) => {
                let id = self.count;
                self.count += 1;
                bases.insert(pos, (base, id));
                (id, true)
            }
        }
    }

    /// Intern the register node `name`; returns `(id, inserted)`.
    #[inline]
    pub fn reg_node(&mut self, name: Name) -> (u32, bool) {
        if let Some(&id) = self.reg.get(name) {
            return (id, false);
        }
        let id = self.count;
        self.count += 1;
        self.reg.insert(name, id);
        (id, true)
    }

    /// Look a variable node up without interning.
    pub fn find_var(&self, name: SymId, base: u64) -> Option<u32> {
        let bases = self.var.get(name.index())?;
        bases
            .binary_search_by_key(&base, |&(b, _)| b)
            .ok()
            .map(|pos| bases[pos].1)
    }

    /// Look a register node up without interning.
    pub fn find_reg(&self, name: Name) -> Option<u32> {
        self.reg.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_in_intern_order() {
        let mut ix = NodeIndex::new();
        let a = SymId::intern("nodeindex_a");
        assert_eq!(ix.var_node(a, 0x100), (0, true));
        assert_eq!(ix.reg_node(Name::Temp(8)), (1, true));
        assert_eq!(ix.var_node(a, 0x200), (2, true), "same name, new base");
        assert_eq!(ix.var_node(a, 0x100), (0, false));
        assert_eq!(ix.reg_node(Name::Temp(8)), (1, false));
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn register_kinds_do_not_collide() {
        let mut ix = NodeIndex::new();
        let s = SymId::intern("nodeindex_p");
        let (t, _) = ix.reg_node(Name::Temp(0));
        let (r, _) = ix.reg_node(Name::Sym(s));
        let (n, _) = ix.reg_node(Name::None);
        let (v, _) = ix.var_node(s, 0x10);
        assert_eq!(
            std::collections::HashSet::from([t, r, n, v]).len(),
            4,
            "distinct node kinds must get distinct ids"
        );
        assert_eq!(ix.find_reg(Name::Sym(s)), Some(r));
        assert_eq!(ix.find_reg(Name::None), Some(n));
        assert_eq!(ix.find_var(s, 0x10), Some(v));
        assert_eq!(ix.find_var(s, 0x11), None);
    }

    #[test]
    fn overflow_temps_spill() {
        let mut ix = NodeIndex::new();
        let big = crate::namemap::DENSE_TEMP_LIMIT + 7;
        let (id, fresh) = ix.reg_node(Name::Temp(big));
        assert!(fresh);
        assert_eq!(ix.find_reg(Name::Temp(big)), Some(id));
        assert_eq!(ix.reg_node(Name::Temp(big)), (id, false));
    }

    #[test]
    fn many_bases_per_symbol_stay_searchable() {
        // Recursion-style workload: one name, many frame addresses, in a
        // shuffled insertion order. Lookups must stay exact (sorted +
        // binary search), and ids keep first-intern order.
        let mut ix = NodeIndex::new();
        let s = SymId::intern("nodeindex_frame_local");
        let bases: Vec<u64> = (0..200u64)
            .map(|k| 0x7f00_0000_0000 + (k * 37) % 200 * 8)
            .collect();
        let mut ids = std::collections::HashMap::new();
        for &b in &bases {
            let (id, fresh) = ix.var_node(s, b);
            assert!(fresh);
            ids.insert(b, id);
        }
        for (&b, &id) in &ids {
            assert_eq!(ix.find_var(s, b), Some(id));
            assert_eq!(ix.var_node(s, b), (id, false));
        }
        assert_eq!(ix.len(), bases.len());
    }

    #[test]
    fn find_on_empty_index_is_none() {
        let ix = NodeIndex::new();
        assert!(ix.is_empty());
        assert_eq!(ix.find_reg(Name::Temp(0)), None);
        assert_eq!(ix.find_reg(Name::None), None);
        assert_eq!(ix.find_var(SymId::intern("nodeindex_missing"), 0), None);
    }
}
