//! Trace statistics — the "trace size" / record-census numbers reported in
//! the paper's Table II.

use crate::record::Record;
use std::collections::BTreeMap;

/// Aggregate statistics over a trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Number of records (dynamic instructions).
    pub records: u64,
    /// Total text size in bytes (as written).
    pub bytes: u64,
    /// Record count per opcode.
    pub per_opcode: BTreeMap<u16, u64>,
    /// Record count per function.
    pub per_function: BTreeMap<String, u64>,
}

impl TraceStats {
    /// Collect stats from parsed records plus the known byte size of the
    /// textual form.
    pub fn from_records(records: &[Record], bytes: u64) -> TraceStats {
        let mut s = TraceStats {
            records: records.len() as u64,
            bytes,
            ..TraceStats::default()
        };
        for r in records {
            *s.per_opcode.entry(r.opcode).or_insert(0) += 1;
            *s.per_function.entry(r.func.to_string()).or_insert(0) += 1;
        }
        s
    }

    /// Human-readable size, e.g. `52M`, matching the paper's Table II style.
    pub fn human_size(&self) -> String {
        human_bytes(self.bytes)
    }
}

/// Format a byte count the way the paper's tables do (`2.6M`, `1.3G`, ...).
pub fn human_bytes(bytes: u64) -> String {
    const K: f64 = 1024.0;
    let b = bytes as f64;
    if b >= K * K * K {
        format!("{:.1}G", b / (K * K * K))
    } else if b >= K * K {
        format!("{:.1}M", b / (K * K))
    } else if b >= K {
        format!("{:.1}K", b / K)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_str_core;

    fn parse_str(input: &str) -> Result<Vec<crate::Record>, crate::ParseError> {
        parse_str_core(input, &crate::AnalysisCtx::current())
    }

    #[test]
    fn counts_opcodes_and_functions() {
        let input = "0,3,foo,6:1,11,27,0,\n0,3,foo,6:1,11,12,1,\n0,5,main,1:1,0,27,2,\n";
        let recs = parse_str(input).unwrap();
        let stats = TraceStats::from_records(&recs, input.len() as u64);
        assert_eq!(stats.records, 3);
        assert_eq!(stats.per_opcode[&27], 2);
        assert_eq!(stats.per_opcode[&12], 1);
        assert_eq!(stats.per_function["foo"], 2);
        assert_eq!(stats.per_function["main"], 1);
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0K");
        assert_eq!(human_bytes(54 * 1024 * 1024), "54.0M");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024 + 1024), "3.0G");
    }
}
