//! The dynamic instruction execution trace format.
//!
//! AutoCheck consumes a *dynamic trace*: one text block per executed
//! instruction, carrying its source location, function, basic block, opcode,
//! dynamic instruction id, and the dynamic values/names of its operands.
//! This crate defines that format — mirroring the LLVM-Tracer output shown
//! in the paper's Figures 1 and 6 — together with a writer, a streaming
//! parser, a block-aligned chunk splitter, and a parallel reader (the
//! reproduction of the paper's §V-A OpenMP trace-processing optimization).
//!
//! # Format
//!
//! Each executed instruction produces one *block* of comma-terminated lines:
//!
//! ```text
//! 0,<line>,<function>,<bb_line>:<bb_col>,<bb_label>,<opcode>,<dyn_id>,
//! <op_id>,<bits>,<value>,<is_reg>,<name>,
//! ...
//! f,<bits>,<value>,<is_reg>,<name>,        (parameter lines, Call form 2 only)
//! r,<bits>,<value>,<is_reg>,<name>,        (result line, if any)
//! ```
//!
//! * the header always starts with `0` (operand ids start at 1, so a leading
//!   `0,` unambiguously marks a block boundary — this is what makes parallel
//!   chunking safe);
//! * `<opcode>` is the numeric LLVM 3.4 opcode (`Load` = 27, `Alloca` = 26,
//!   `Call` = 49, ...);
//! * `<line>` is `-1` for compiler-generated instructions (entry-block
//!   allocas, Fig. 6(c));
//! * `f`-tagged lines carry the *parameters* of a called function, following
//!   the argument operands — the "parameter indicator" of Fig. 6(b);
//! * `<value>` is a decimal integer, a `%.6f` float, or a `0x…` pointer;
//!   `<is_reg>` is `1` when the operand names a register (then `<name>` is
//!   the register/variable name) and `0` for immediates (empty name).

pub mod binary;
pub mod chunk;
pub mod ctx;
pub mod fault;
pub mod intern;
pub mod limits;
pub mod name;
pub mod namemap;
pub mod nodeindex;
pub mod overlap;
pub mod parallel;
pub mod parser;
pub mod reader;
pub mod record;
pub mod shard;
pub mod source;
pub mod stats;
pub mod writer;

pub use binary::{BinaryError, BinaryReader, BinaryStreamReader, BinaryWriter};
pub use chunk::{chunk_boundaries, split_blocks};
pub use ctx::AnalysisCtx;
pub use fault::{FaultPlan, FaultReader};
pub use intern::{SpaceGuard, SymId, SymStr, SymbolSpace};
pub use limits::{parse_limit_arg, ResourceExceeded, ResourceKind, ResourceLimits};
pub use name::Name;
pub use namemap::{NameMap, NameSet};
pub use nodeindex::NodeIndex;
pub use overlap::{resolve_overlap_depth, BatchStream};
#[allow(deprecated)]
pub use parallel::{
    parse_parallel, parse_parallel_in, parse_parallel_read, parse_parallel_read_in, ParallelConfig,
};
#[allow(deprecated)]
pub use parser::{parse_str, parse_str_in, ParseError, TraceParser};
#[allow(deprecated)]
pub use reader::{parse_read, RecordReader, TraceReadError};
pub use record::{OpTag, Operand, Record, TraceValue};
pub use shard::{plan_shards, resolve_shard_count};
pub use source::{TraceFormat, TraceSource, TraceStream};
pub use stats::TraceStats;
pub use writer::TraceWriter;
