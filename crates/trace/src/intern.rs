//! Symbol interning: [`SymId`] is a dense `u32` handle into a
//! [`SymbolSpace`] — a per-analysis string table.
//!
//! Real traces repeat the same handful of symbolic names (function names,
//! block labels, variable names) millions of times. The analysis data plane
//! keys every hot map on those names, so the representation of a name
//! decides the cost of every reg-var/reg-reg map operation (paper §IV-B).
//! Interning turns each name into a `Copy` 4-byte id:
//!
//! * equality and hashing are integer operations — no string re-hashing, no
//!   `Arc` refcount traffic on the hot path;
//! * ids are **dense** (0, 1, 2, …) *within their space*, so maps keyed by
//!   symbol can be plain vectors ([`crate::namemap::NameMap`]);
//! * the id → string direction ([`SymId::as_str`]) is only needed at the
//!   edges (report rendering, DOT output, trace serialization), never
//!   inside the per-record loops.
//!
//! # Spaces: session-scoped symbol lifetimes
//!
//! The table used to be process-global and append-only — right for the
//! one-process-per-analysis CLI (the paper's usage), but a long-running
//! multi-tenant service would accumulate the union of all tenants' symbol
//! sets and grow every dense sym-indexed table to the global id high-water
//! mark. A [`SymbolSpace`] scopes that lifetime to one analysis session:
//!
//! * every space assigns its own dense ids starting at 0, so per-session
//!   tables ([`crate::namemap::NameMap`], the DDG node indexes) are sized
//!   by the *session's* symbol count, not the process's;
//! * two analyses in different spaces never observe each other's ids — a
//!   burst of interning in one session cannot inflate another session's
//!   dense tables;
//! * dropping a session space frees **everything** it interned: the lookup
//!   map, the id vector, *and the string bytes*, which session spaces own
//!   directly (`Box<str>` storage pinned for the life of the space). Only
//!   the **global default space** still deduplicates through the
//!   process-wide leak arena — right for the one-process-per-analysis CLI
//!   shape, where symbols live as long as the process anyway. A service
//!   hosting unbounded tenant streams therefore has bounded string memory:
//!   each tenant's bytes die with its session, observable live via
//!   [`arena_bytes`] (which now counts session bytes up *and down*).
//!
//! **When is the default global space still appropriate?** Whenever one
//! process runs one analysis: the CLI tools, tests, benches, and any
//! embedder that doesn't multiplex tenants. `SymId::intern`/`as_str` keep
//! working unchanged against the default space, and the global table is
//! exactly as cheap as before. Reach for per-session spaces
//! (`AnalysisCtx::session()`, the `MultiAnalyzer` service layer) when one
//! process hosts many unrelated analyses.
//!
//! # Resolution and the current space
//!
//! A `SymId` is 4 bytes and does not carry its space, so the space-less
//! conveniences — [`SymId::intern`], [`SymId::as_str`], `Display`, `Ord` —
//! resolve through a **thread-local current space** (the same pattern
//! rustc uses for its session-scoped `Symbol`s). The current space
//! defaults to the global one; [`SymbolSpace::enter`] installs another for
//! a lexical scope via an RAII guard. Components that belong to one
//! analysis (parser, interpreter, engines) do not rely on the thread-local
//! at all: they hold an [`crate::ctx::AnalysisCtx`] and intern/resolve
//! through it explicitly. The guard exists for the *output edges* (report
//! `Display`, DOT, trace serialization), which render via `as_str`.
//!
//! Mixing ids across spaces is a logic error: resolving a `SymId` under a
//! space that never produced it panics when the id is out of range and
//! otherwise names the wrong string. The multi-session tests assert that
//! rendered output is byte-identical across interleavings precisely
//! because no id ever crosses a space boundary.
//!
//! Determinism note: the numeric value of a [`SymId`] depends on
//! first-come interning order, which differs between serial and parallel
//! parses of the same trace. Ids therefore must never leak into output or
//! into orderings that reach output — [`SymId`]'s `Ord` compares the
//! *resolved strings* so that sorting by name stays byte-identical to the
//! pre-interning code, and the property tests assert report/DOT
//! byte-identity across parse modes.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// A handle to an interned symbol string.
///
/// `Copy`, 4 bytes, integer equality/hash. Obtain via [`SymId::intern`] (or
/// [`SymbolSpace::intern`]), resolve via [`SymId::as_str`] (or
/// [`SymbolSpace::resolve`]). Within one space, two `SymId`s are equal iff
/// their strings are equal (each space's table is a bijection); ids from
/// different spaces are unrelated and must not be mixed.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymId(u32);

struct Interner {
    // Deliberately SipHash (std's seeded default), NOT FxHash: this is the
    // one map keyed by *untrusted strings* from the trace file, and FxHash
    // is deterministic and collision-craftable. The integer-keyed hot maps
    // downstream are where Fx pays; this table is hit once per symbol
    // occurrence at most (and far less behind the per-parser memo).
    map: HashMap<&'static str, u32>,
    strs: Vec<&'static str>,
    /// Owned backing storage — session spaces only. Each `Box<str>` pins a
    /// heap allocation whose address never moves (pushing into the `Vec`
    /// moves the *box*, not the string bytes), which is what makes the
    /// `&'static str` views in `map`/`strs` stable for the space's
    /// lifetime. The global space leaves this empty and leans on
    /// [`arena_leak`] instead.
    owned: Vec<Box<str>>,
    /// Total bytes in `owned`; mirrored into [`SESSION_BYTES`] and given
    /// back on drop.
    owned_bytes: usize,
}

impl Interner {
    fn empty() -> Interner {
        Interner {
            map: HashMap::new(),
            strs: Vec::new(),
            owned: Vec::new(),
            owned_bytes: 0,
        }
    }
}

/// The process-wide deduplicating string arena — **global space only**.
///
/// Strings interned in the default global space are leaked to
/// `&'static str` exactly once per distinct string: in the
/// one-process-per-analysis CLI shape these live as long as the process
/// regardless, and the leak is bounded by the number of distinct symbols
/// ever observed (program identifiers — not trace length). Session spaces
/// do **not** touch this arena; they own their bytes and free them on drop.
fn arena_leak(s: &str) -> &'static str {
    static ARENA: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let arena = ARENA.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = arena.lock().expect("string arena poisoned");
    if let Some(&leaked) = set.get(s) {
        return leaked;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    ARENA_BYTES.fetch_add(s.len(), Ordering::Relaxed);
    leaked
}

/// String bytes leaked into the process-wide arena so far (global space
/// only). This is the footprint of the deliberate dedup leak (bounded by
/// distinct symbols ever seen): monotonic by design.
static ARENA_BYTES: AtomicUsize = AtomicUsize::new(0);

/// String bytes currently owned by live session spaces. Goes up on session
/// interning and back down when a space drops — the reclamation the soak
/// test pins.
static SESSION_BYTES: AtomicUsize = AtomicUsize::new(0);

/// Current process-wide interned-string footprint in bytes (string payload
/// only; map/set overhead is excluded): the monotonic global-space leak
/// arena plus the bytes owned by live session spaces. No longer monotonic —
/// dropping a session space reclaims its contribution. Published per
/// session as the `intern.arena_bytes` ledger gauge.
pub fn arena_bytes() -> usize {
    ARENA_BYTES.load(Ordering::Relaxed) + SESSION_BYTES.load(Ordering::Relaxed)
}

struct SpaceInner {
    /// Process-unique tag, for diagnostics (`{:?}` of a space names it).
    /// Tag 0 is the global space — the only one backed by the leak arena.
    tag: u64,
    table: RwLock<Interner>,
}

impl Drop for SpaceInner {
    fn drop(&mut self) {
        // Give the session's bytes back to the process-wide gauge. The
        // `Box<str>` storage itself frees with the `Interner`. (The global
        // space lives in a `OnceLock` and never drops; its `owned_bytes`
        // is 0 regardless.)
        if let Ok(t) = self.table.get_mut() {
            SESSION_BYTES.fetch_sub(t.owned_bytes, Ordering::Relaxed);
        }
    }
}

/// A session-scoped symbol table. Cheap to clone (an `Arc` handle); all
/// clones address the same table.
#[derive(Clone)]
pub struct SymbolSpace {
    inner: Arc<SpaceInner>,
}

thread_local! {
    static CURRENT: RefCell<SymbolSpace> = RefCell::new(SymbolSpace::global());
}

impl SymbolSpace {
    /// A fresh, empty space with its own dense id sequence.
    pub fn new() -> SymbolSpace {
        static NEXT_TAG: AtomicU64 = AtomicU64::new(1);
        SymbolSpace {
            inner: Arc::new(SpaceInner {
                tag: NEXT_TAG.fetch_add(1, Ordering::Relaxed),
                table: RwLock::new(Interner::empty()),
            }),
        }
    }

    /// The default process-wide space — what [`SymId::intern`] uses when no
    /// other space has been [`enter`](SymbolSpace::enter)ed. Tag 0.
    pub fn global() -> SymbolSpace {
        static GLOBAL: OnceLock<SymbolSpace> = OnceLock::new();
        GLOBAL
            .get_or_init(|| SymbolSpace {
                inner: Arc::new(SpaceInner {
                    tag: 0,
                    table: RwLock::new(Interner::empty()),
                }),
            })
            .clone()
    }

    /// The thread's current space (the global one unless a guard is live).
    pub fn current() -> SymbolSpace {
        CURRENT.with(|c| c.borrow().clone())
    }

    /// Install this space as the thread's current space until the returned
    /// guard drops (restoring the previous one — guards nest).
    ///
    /// Resolution-only conveniences ([`SymId::as_str`], `Display`, `Ord`)
    /// go through the current space; a session must hold its guard across
    /// every output edge that renders its ids.
    #[must_use = "the space is only current while the guard is alive"]
    pub fn enter(&self) -> SpaceGuard {
        let prev = CURRENT.with(|c| c.replace(self.clone()));
        SpaceGuard { prev }
    }

    /// Intern `s` in this space, returning its dense id. One hash lookup on
    /// the hit path. On the miss path the global space deduplicates through
    /// the process-wide leak arena; a session space copies the bytes into
    /// its own storage (freed when the space drops).
    pub fn intern(&self, s: &str) -> SymId {
        if let Some(&id) = self
            .inner
            .table
            .read()
            .expect("interner poisoned")
            .map
            .get(s)
        {
            return SymId(id);
        }
        if self.inner.tag == 0 {
            let leaked = arena_leak(s);
            let mut w = self.inner.table.write().expect("interner poisoned");
            // Double-check: another thread may have interned between the locks.
            if let Some(&id) = w.map.get(leaked) {
                return SymId(id);
            }
            Self::push_entry(&mut w, leaked)
        } else {
            let mut w = self.inner.table.write().expect("interner poisoned");
            if let Some(&id) = w.map.get(s) {
                return SymId(id);
            }
            let boxed: Box<str> = s.into();
            // SAFETY: the `'static` here is a private fiction scoped to this
            // space. The view points into a `Box<str>` heap allocation whose
            // address never changes (moving the box moves a pointer, not the
            // bytes), and the box lives in `owned` until the `Interner` —
            // and with it `map`/`strs`, the only holders of the view —
            // drops. Resolution conveniences (`SymId::as_str`) can only
            // reach this space through a live handle, so no view outlives
            // the storage it borrows from. See the module docs: a resolved
            // `&'static str` from a session space must not be stashed past
            // the session, which is the same contract `SymId`s themselves
            // already carry.
            let stored: &'static str = unsafe { &*(boxed.as_ref() as *const str) };
            w.owned.push(boxed);
            w.owned_bytes += s.len();
            SESSION_BYTES.fetch_add(s.len(), Ordering::Relaxed);
            Self::push_entry(&mut w, stored)
        }
    }

    /// Append `stored` to the table, assigning the next dense id.
    fn push_entry(w: &mut Interner, stored: &'static str) -> SymId {
        // `expect` is unreachable from hostile input in practice: 4G
        // distinct symbols would require ≥4 GiB of distinct trace bytes,
        // and bounded deployments trip `ResourceLimits::max_symbols` long
        // before. Kept as an expect because a wrapped id would silently
        // alias two symbols — corruption, not an error state.
        let id = u32::try_from(w.strs.len()).expect("interner overflow: > 4G distinct symbols");
        w.strs.push(stored);
        w.map.insert(stored, id);
        SymId(id)
    }

    /// The string for `id`, which must have been interned in this space.
    ///
    /// # Panics
    ///
    /// Panics when `id` was interned in a space with more symbols than this
    /// one — the detectable half of cross-space id mixing.
    pub fn resolve(&self, id: SymId) -> &'static str {
        self.try_resolve(id).unwrap_or_else(|| {
            panic!(
                "SymId({}) is not from {:?} ({} symbols): symbol ids must be \
                 resolved in the space that interned them",
                id.0,
                self,
                self.len()
            )
        })
    }

    /// The string for `id`, or `None` when the id is out of this space's
    /// range.
    pub fn try_resolve(&self, id: SymId) -> Option<&'static str> {
        self.inner
            .table
            .read()
            .expect("interner poisoned")
            .strs
            .get(id.0 as usize)
            .copied()
    }

    /// Number of distinct symbols interned in this space.
    pub fn len(&self) -> usize {
        self.inner
            .table
            .read()
            .expect("interner poisoned")
            .strs
            .len()
    }

    /// True when nothing has been interned in this space.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// String bytes owned by this space — the memory reclaimed when the
    /// space drops. Always 0 for the global space (its strings live in the
    /// process-wide leak arena). This is the figure per-session
    /// `max_arena_bytes` limits are checked against.
    pub fn owned_bytes(&self) -> usize {
        self.inner
            .table
            .read()
            .expect("interner poisoned")
            .owned_bytes
    }

    /// True when `self` and `other` are handles to the same table.
    pub fn same_space(&self, other: &SymbolSpace) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Default for SymbolSpace {
    fn default() -> Self {
        SymbolSpace::new()
    }
}

impl fmt::Debug for SymbolSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.tag == 0 {
            write!(f, "SymbolSpace(global)")
        } else {
            write!(f, "SymbolSpace(#{})", self.inner.tag)
        }
    }
}

/// RAII guard from [`SymbolSpace::enter`]; restores the previous current
/// space on drop.
pub struct SpaceGuard {
    prev: SymbolSpace,
}

impl Drop for SpaceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.clone());
    }
}

impl SymId {
    /// Intern `s` in the thread's current space (the global one unless a
    /// session guard is live). Components owned by one analysis should
    /// prefer `ctx.intern(..)` / [`SymbolSpace::intern`].
    pub fn intern(s: &str) -> SymId {
        CURRENT.with(|c| c.borrow().intern(s))
    }

    /// The interned string, resolved in the thread's current space.
    ///
    /// The `&'static` lifetime is literal for global-space symbols (leak
    /// arena) and a session-scoped fiction for session spaces: the bytes
    /// are owned by the space and freed when it drops, so a resolved string
    /// must not be stashed beyond the session — the same non-mixing
    /// contract `SymId`s themselves carry.
    pub fn as_str(self) -> &'static str {
        CURRENT.with(|c| c.borrow().resolve(self))
    }

    /// The raw dense index (0-based interning order within the id's space).
    /// For building dense tables; never meaningful across processes or
    /// spaces, and never ordered — interning order differs between serial
    /// and parallel parses.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The id alone is meaningless in test output; show the string.
        write!(f, "{:?}", self.as_str())
    }
}

/// String order, **not** id order: sorting interned names must produce the
/// same byte-identical reports the `Arc<str>` representation did, and id
/// order varies with parse parallelism. Only used at the output edges.
impl Ord for SymId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl PartialOrd for SymId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<&str> for SymId {
    fn from(s: &str) -> SymId {
        SymId::intern(s)
    }
}

impl PartialEq<str> for SymId {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SymId {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_bijective() {
        let a = SymId::intern("intern_test_sum");
        let b = SymId::intern("intern_test_sum");
        let c = SymId::intern("intern_test_other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "intern_test_sum");
        assert_eq!(c.as_str(), "intern_test_other");
    }

    #[test]
    fn round_trips_through_strings() {
        for s in ["p", "key_array", "0", "main", "κλειδί", ""] {
            assert_eq!(SymId::intern(s).as_str(), s);
            assert_eq!(SymId::intern(SymId::intern(s).as_str()), SymId::intern(s));
        }
    }

    #[test]
    fn order_is_string_order_not_id_order() {
        // Intern in reverse lexicographic order so id order and string
        // order disagree.
        let z = SymId::intern("intern_test_zzz");
        let a = SymId::intern("intern_test_aaa");
        assert!(a < z, "Ord must compare strings");
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_and_str_equality() {
        let s = SymId::intern("intern_test_disp");
        assert_eq!(s.to_string(), "intern_test_disp");
        assert!(s == "intern_test_disp");
        assert!(s != "intern_test_di");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<SymId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| SymId::intern("intern_test_racy")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn spaces_assign_independent_dense_ids() {
        let a = SymbolSpace::new();
        let b = SymbolSpace::new();
        // Interleave interning across the spaces: each space's ids must be
        // dense from 0, entirely unaffected by the other's activity.
        let a_x = a.intern("space_test_x");
        let b_y = b.intern("space_test_y");
        let b_z = b.intern("space_test_z");
        let a_w = a.intern("space_test_w");
        assert_eq!(a_x.index(), 0);
        assert_eq!(a_w.index(), 1);
        assert_eq!(b_y.index(), 0);
        assert_eq!(b_z.index(), 1);
        // Same string, different spaces: ids are per-space, and each
        // session space owns its *own* copy of the bytes (no cross-session
        // sharing — that's what makes drop reclaim them).
        let a_y = a.intern("space_test_y");
        assert_eq!(a_y.index(), 2);
        assert_eq!(a.resolve(a_y), b.resolve(b_y));
        assert!(!std::ptr::eq(a.resolve(a_y), b.resolve(b_y)));
    }

    #[test]
    fn spaces_never_observe_each_others_ids() {
        let a = SymbolSpace::new();
        let b = SymbolSpace::new();
        // Grow b far past a.
        for i in 0..100 {
            b.intern(&format!("space_iso_{i}"));
        }
        let only_a = a.intern("space_iso_lone");
        assert_eq!(only_a.index(), 0, "b's interning must not shift a's ids");
        assert_eq!(a.len(), 1);
        // An id b produced beyond a's range cannot resolve in a.
        let big_b = b.intern("space_iso_99_again");
        assert_eq!(a.try_resolve(big_b), None);
        let panicked = std::panic::catch_unwind(|| a.resolve(big_b));
        assert!(panicked.is_err(), "cross-space resolve must panic");
    }

    #[test]
    fn enter_guard_redirects_and_restores() {
        let session = SymbolSpace::new();
        let before = SymId::intern("guard_test_global");
        {
            let _g = session.enter();
            assert!(SymbolSpace::current().same_space(&session));
            let inside = SymId::intern("guard_test_session");
            assert_eq!(inside.index(), 0, "fresh space starts at id 0");
            assert_eq!(inside.as_str(), "guard_test_session");
        }
        assert!(SymbolSpace::current().same_space(&SymbolSpace::global()));
        assert_eq!(before.as_str(), "guard_test_global");
        assert_eq!(session.len(), 1);
    }

    #[test]
    fn guards_nest() {
        let outer = SymbolSpace::new();
        let inner = SymbolSpace::new();
        let _go = outer.enter();
        {
            let _gi = inner.enter();
            assert!(SymbolSpace::current().same_space(&inner));
        }
        assert!(SymbolSpace::current().same_space(&outer));
    }

    #[test]
    fn dropping_a_space_keeps_other_spaces_intact() {
        let keep = SymbolSpace::new();
        let kept = keep.intern("space_drop_kept");
        {
            let gone = SymbolSpace::new();
            gone.intern("space_drop_gone");
        }
        assert_eq!(keep.resolve(kept), "space_drop_kept");
    }

    #[test]
    fn arena_bytes_counts_global_growth_and_session_bytes() {
        let s = "arena_bytes_test_distinct_string";
        let before = arena_bytes();
        let space = SymbolSpace::new();
        space.intern(s);
        assert!(
            arena_bytes() >= before + s.len(),
            "a live session's bytes must show in the gauge"
        );
        // Re-interning in the same space is free.
        let owned = space.owned_bytes();
        space.intern(s);
        assert_eq!(space.owned_bytes(), owned);
        // Global-space interning grows the (monotonic) leak arena.
        let g_before = arena_bytes();
        SymbolSpace::global().intern("arena_bytes_test_global_only_sym");
        assert!(arena_bytes() >= g_before + "arena_bytes_test_global_only_sym".len());
    }

    #[test]
    fn dropping_a_session_space_reclaims_its_bytes() {
        let syms: Vec<String> = (0..64).map(|i| format!("arena_reclaim_test_{i}")).collect();
        let total: usize = syms.iter().map(|s| s.len()).sum();
        let space = SymbolSpace::new();
        for s in &syms {
            space.intern(s);
        }
        assert_eq!(space.owned_bytes(), total);
        let while_live = arena_bytes();
        drop(space);
        // Other tests intern concurrently, so compare against the lower
        // bound: the gauge must have given this space's bytes back.
        assert!(
            arena_bytes() <= while_live - total + 4096,
            "dropping the space must reclaim its {total} owned bytes"
        );
    }

    #[test]
    fn global_space_owns_no_bytes() {
        SymbolSpace::global().intern("global_owned_bytes_probe");
        assert_eq!(SymbolSpace::global().owned_bytes(), 0);
    }

    #[test]
    fn global_space_is_one_table() {
        let a = SymbolSpace::global();
        let b = SymbolSpace::global();
        assert!(a.same_space(&b));
        let id = a.intern("global_test_shared");
        assert_eq!(b.resolve(id), "global_test_shared");
    }
}
