//! Symbol interning: [`SymId`] is a dense `u32` handle into a
//! [`SymbolSpace`] — a per-analysis string table.
//!
//! Real traces repeat the same handful of symbolic names (function names,
//! block labels, variable names) millions of times. The analysis data plane
//! keys every hot map on those names, so the representation of a name
//! decides the cost of every reg-var/reg-reg map operation (paper §IV-B).
//! Interning turns each name into a `Copy` 4-byte id:
//!
//! * equality and hashing are integer operations — no string re-hashing, no
//!   `Arc` refcount traffic on the hot path;
//! * ids are **dense** (0, 1, 2, …) *within their space*, so maps keyed by
//!   symbol can be plain vectors ([`crate::namemap::NameMap`]);
//! * the id → string direction ([`SymId::as_str`]) is only needed at the
//!   edges (report rendering, DOT output, trace serialization), never
//!   inside the per-record loops.
//!
//! # Spaces: session-scoped symbol lifetimes
//!
//! The table used to be process-global and append-only — right for the
//! one-process-per-analysis CLI (the paper's usage), but a long-running
//! multi-tenant service would accumulate the union of all tenants' symbol
//! sets and grow every dense sym-indexed table to the global id high-water
//! mark. A [`SymbolSpace`] scopes that lifetime to one analysis session:
//!
//! * every space assigns its own dense ids starting at 0, so per-session
//!   tables ([`crate::namemap::NameMap`], the DDG node indexes) are sized
//!   by the *session's* symbol count, not the process's;
//! * two analyses in different spaces never observe each other's ids — a
//!   burst of interning in one session cannot inflate another session's
//!   dense tables;
//! * dropping a session space frees **everything** it interned: the lookup
//!   map, the id vector, and — once every outstanding [`SymStr`] resolved
//!   from it is gone — the string bytes. Storage is refcounted
//!   (`Arc<str>`): the space holds one reference per string, resolution
//!   hands out clones, and the bytes free when the last holder drops. A
//!   service hosting unbounded tenant streams therefore has bounded string
//!   memory: each tenant's bytes die with its session, observable live via
//!   [`arena_bytes`] (which counts session bytes up *and down*). Only the
//!   **global default space** is permanent — it lives in a `OnceLock` and
//!   never drops, so its bytes are monotonic for the life of the process:
//!   the right shape for the one-process-per-analysis CLI, where symbols
//!   live as long as the process anyway.
//!
//! **When is the default global space still appropriate?** Whenever one
//! process runs one analysis: the CLI tools, tests, benches, and any
//! embedder that doesn't multiplex tenants. `SymId::intern`/`as_str` keep
//! working unchanged against the default space, and the global table is
//! exactly as cheap as before. Reach for per-session spaces
//! (`AnalysisCtx::session()`, the `MultiAnalyzer` service layer) when one
//! process hosts many unrelated analyses.
//!
//! # Resolution and the current space
//!
//! Resolution returns a [`SymStr`] — an owned, refcounted handle that
//! derefs to `str`. The handle keeps the bytes alive by itself, so there is
//! no lifetime tie between a resolved string and the space it came from:
//! stashing a `SymStr` past its session is safe (it just pins those bytes
//! until it drops). This is what makes the API sound — session spaces free
//! their storage on drop, so resolution can never hand out a borrow that
//! outlives the table. The refcount traffic is confined to the output
//! edges; the per-record loops only ever touch `SymId`s.
//!
//! A `SymId` is 4 bytes and does not carry its space, so the space-less
//! conveniences — [`SymId::intern`], [`SymId::as_str`], `Display`, `Ord` —
//! resolve through a **thread-local current space** (the same pattern
//! rustc uses for its session-scoped `Symbol`s). The current space
//! defaults to the global one; [`SymbolSpace::enter`] installs another for
//! a lexical scope via an RAII guard. Components that belong to one
//! analysis (parser, interpreter, engines) do not rely on the thread-local
//! at all: they hold an [`crate::ctx::AnalysisCtx`] and intern/resolve
//! through it explicitly. The guard exists for the *output edges* (report
//! `Display`, DOT, trace serialization), which render via `as_str`.
//!
//! Mixing ids across spaces is a logic error: resolving a `SymId` under a
//! space that never produced it panics when the id is out of range and
//! otherwise names the wrong string. The multi-session tests assert that
//! rendered output is byte-identical across interleavings precisely
//! because no id ever crosses a space boundary.
//!
//! Determinism note: the numeric value of a [`SymId`] depends on
//! first-come interning order, which differs between serial and parallel
//! parses of the same trace. Ids therefore must never leak into output or
//! into orderings that reach output — [`SymId`]'s `Ord` compares the
//! *resolved strings* so that sorting by name stays byte-identical to the
//! pre-interning code, and the property tests assert report/DOT
//! byte-identity across parse modes.

use std::borrow::Borrow;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A handle to an interned symbol string.
///
/// `Copy`, 4 bytes, integer equality/hash. Obtain via [`SymId::intern`] (or
/// [`SymbolSpace::intern`]), resolve via [`SymId::as_str`] (or
/// [`SymbolSpace::resolve`]). Within one space, two `SymId`s are equal iff
/// their strings are equal (each space's table is a bijection); ids from
/// different spaces are unrelated and must not be mixed.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymId(u32);

/// An owned, refcounted handle to a resolved symbol string.
///
/// What [`SymbolSpace::resolve`] and [`SymId::as_str`] return. Derefs to
/// `str` (and implements `Display`, `AsRef<str>`, `Borrow<str>`, string
/// comparisons), so it drops into most `&str` positions with at most a `&`.
/// The handle owns a reference to the bytes: holding it keeps the string
/// alive even after the [`SymbolSpace`] that interned it drops, which is
/// what lets session spaces reclaim storage without any dangling-borrow
/// hazard. Cloning is a refcount bump.
#[derive(Clone)]
pub struct SymStr(Arc<str>);

impl SymStr {
    /// View as a plain string slice (borrowing from this handle).
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Unwrap into the shared `Arc<str>` (no copy — the same allocation the
    /// space holds).
    #[inline]
    pub fn into_arc(self) -> Arc<str> {
        self.0
    }
}

impl Deref for SymStr {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for SymStr {
    #[inline]
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for SymStr {
    #[inline]
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<SymStr> for Arc<str> {
    fn from(s: SymStr) -> Arc<str> {
        s.0
    }
}

impl fmt::Display for SymStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for SymStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl PartialEq for SymStr {
    fn eq(&self, other: &Self) -> bool {
        // Arc pointer equality short-circuits the common same-space case.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for SymStr {}

/// Hashes as the underlying `str` (required to agree with `Borrow<str>` so
/// maps keyed by `SymStr` can be probed with `&str`).
impl Hash for SymStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl PartialOrd for SymStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SymStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl PartialEq<str> for SymStr {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for SymStr {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for SymStr {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<SymStr> for &str {
    fn eq(&self, other: &SymStr) -> bool {
        *self == &*other.0
    }
}

struct Interner {
    // Deliberately SipHash (std's seeded default), NOT FxHash: this is the
    // one map keyed by *untrusted strings* from the trace file, and FxHash
    // is deterministic and collision-craftable. The integer-keyed hot maps
    // downstream are where Fx pays; this table is hit once per symbol
    // occurrence at most (and far less behind the per-parser memo).
    // `Arc<str>: Borrow<str>` lets the hit path probe with a plain `&str`.
    map: HashMap<Arc<str>, u32>,
    strs: Vec<Arc<str>>,
}

impl Interner {
    fn empty() -> Interner {
        Interner {
            map: HashMap::new(),
            strs: Vec::new(),
        }
    }
}

/// String bytes owned by the never-dropped global space. Monotonic by
/// construction: the global space lives in a `OnceLock` for the life of the
/// process and only ever appends.
static ARENA_BYTES: AtomicUsize = AtomicUsize::new(0);

/// String bytes currently owned by live session spaces. Goes up on session
/// interning and back down when a space drops — the reclamation the soak
/// test pins. (Outstanding [`SymStr`] handles can keep individual strings
/// alive past their space, but the gauge tracks *space* ownership: what a
/// tenant's table pins.)
static SESSION_BYTES: AtomicUsize = AtomicUsize::new(0);

/// Current process-wide interned-string footprint in bytes (string payload
/// only; map/set overhead is excluded): the monotonic global-space table
/// plus the bytes owned by live session spaces. Not monotonic — dropping a
/// session space reclaims its contribution. Published per session as the
/// `intern.arena_bytes` ledger gauge.
pub fn arena_bytes() -> usize {
    ARENA_BYTES.load(Ordering::Relaxed) + SESSION_BYTES.load(Ordering::Relaxed)
}

struct SpaceInner {
    /// Process-unique tag, for diagnostics (`{:?}` of a space names it).
    /// Tag 0 is the global space — the only one that never drops.
    tag: u64,
    table: RwLock<Interner>,
    /// String bytes this space's table holds (what dropping the space gives
    /// back). Atomic so [`SymbolSpace::owned_bytes`] and the drop
    /// accounting never touch the table lock — a panic mid-intern (poisoned
    /// lock) cannot drift the process-wide gauges.
    owned_bytes: AtomicUsize,
}

impl Drop for SpaceInner {
    fn drop(&mut self) {
        // Give the session's bytes back to the process-wide gauge. The
        // `Arc<str>` storage itself frees with the `Interner` (modulo
        // strings still pinned by outstanding `SymStr` handles). The global
        // space lives in a `OnceLock` and never drops.
        if self.tag != 0 {
            SESSION_BYTES.fetch_sub(self.owned_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

/// A session-scoped symbol table. Cheap to clone (an `Arc` handle); all
/// clones address the same table.
#[derive(Clone)]
pub struct SymbolSpace {
    inner: Arc<SpaceInner>,
}

thread_local! {
    static CURRENT: RefCell<SymbolSpace> = RefCell::new(SymbolSpace::global());
}

impl SymbolSpace {
    /// A fresh, empty space with its own dense id sequence.
    pub fn new() -> SymbolSpace {
        static NEXT_TAG: AtomicU64 = AtomicU64::new(1);
        SymbolSpace {
            inner: Arc::new(SpaceInner {
                tag: NEXT_TAG.fetch_add(1, Ordering::Relaxed),
                table: RwLock::new(Interner::empty()),
                owned_bytes: AtomicUsize::new(0),
            }),
        }
    }

    /// The default process-wide space — what [`SymId::intern`] uses when no
    /// other space has been [`enter`](SymbolSpace::enter)ed. Tag 0.
    pub fn global() -> SymbolSpace {
        static GLOBAL: OnceLock<SymbolSpace> = OnceLock::new();
        GLOBAL
            .get_or_init(|| SymbolSpace {
                inner: Arc::new(SpaceInner {
                    tag: 0,
                    table: RwLock::new(Interner::empty()),
                    owned_bytes: AtomicUsize::new(0),
                }),
            })
            .clone()
    }

    /// The thread's current space (the global one unless a guard is live).
    pub fn current() -> SymbolSpace {
        CURRENT.with(|c| c.borrow().clone())
    }

    /// Install this space as the thread's current space until the returned
    /// guard drops (restoring the previous one — guards nest).
    ///
    /// Resolution-only conveniences ([`SymId::as_str`], `Display`, `Ord`)
    /// go through the current space; a session must hold its guard across
    /// every output edge that renders its ids.
    #[must_use = "the space is only current while the guard is alive"]
    pub fn enter(&self) -> SpaceGuard {
        let prev = CURRENT.with(|c| c.replace(self.clone()));
        SpaceGuard { prev }
    }

    /// Intern `s` in this space, returning its dense id. One hash lookup on
    /// the hit path. On the miss path the bytes are copied once into the
    /// space's refcounted storage — freed when the space drops (session
    /// spaces) or never (the global space, which lives for the process).
    pub fn intern(&self, s: &str) -> SymId {
        if let Some(&id) = self
            .inner
            .table
            .read()
            .expect("interner poisoned")
            .map
            .get(s)
        {
            return SymId(id);
        }
        let mut w = self.inner.table.write().expect("interner poisoned");
        // Double-check: another thread may have interned between the locks.
        if let Some(&id) = w.map.get(s) {
            return SymId(id);
        }
        let stored: Arc<str> = Arc::from(s);
        self.inner.owned_bytes.fetch_add(s.len(), Ordering::Relaxed);
        if self.inner.tag == 0 {
            ARENA_BYTES.fetch_add(s.len(), Ordering::Relaxed);
        } else {
            SESSION_BYTES.fetch_add(s.len(), Ordering::Relaxed);
        }
        // `expect` is unreachable from hostile input in practice: 4G
        // distinct symbols would require ≥4 GiB of distinct trace bytes,
        // and bounded deployments trip `ResourceLimits::max_symbols` long
        // before. Kept as an expect because a wrapped id would silently
        // alias two symbols — corruption, not an error state.
        let id = u32::try_from(w.strs.len()).expect("interner overflow: > 4G distinct symbols");
        w.strs.push(stored.clone());
        w.map.insert(stored, id);
        SymId(id)
    }

    /// The string for `id`, which must have been interned in this space.
    /// The returned handle owns the bytes — see [`SymStr`].
    ///
    /// # Panics
    ///
    /// Panics when `id` was interned in a space with more symbols than this
    /// one — the detectable half of cross-space id mixing.
    pub fn resolve(&self, id: SymId) -> SymStr {
        self.try_resolve(id).unwrap_or_else(|| {
            panic!(
                "SymId({}) is not from {:?} ({} symbols): symbol ids must be \
                 resolved in the space that interned them",
                id.0,
                self,
                self.len()
            )
        })
    }

    /// The string for `id`, or `None` when the id is out of this space's
    /// range.
    pub fn try_resolve(&self, id: SymId) -> Option<SymStr> {
        self.inner
            .table
            .read()
            .expect("interner poisoned")
            .strs
            .get(id.0 as usize)
            .cloned()
            .map(SymStr)
    }

    /// Number of distinct symbols interned in this space.
    pub fn len(&self) -> usize {
        self.inner
            .table
            .read()
            .expect("interner poisoned")
            .strs
            .len()
    }

    /// True when nothing has been interned in this space.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// String bytes owned by this space — the memory a session gives back
    /// when it drops. For the global space this is the process-lifetime
    /// footprint (never reclaimed — the space never drops), which is why
    /// per-session `max_arena_bytes`/`max_symbols` ceilings should be
    /// checked against a *session* space (`AnalysisCtx::session()`), not
    /// the global one.
    pub fn owned_bytes(&self) -> usize {
        self.inner.owned_bytes.load(Ordering::Relaxed)
    }

    /// True when `self` and `other` are handles to the same table.
    pub fn same_space(&self, other: &SymbolSpace) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Default for SymbolSpace {
    fn default() -> Self {
        SymbolSpace::new()
    }
}

impl fmt::Debug for SymbolSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.tag == 0 {
            write!(f, "SymbolSpace(global)")
        } else {
            write!(f, "SymbolSpace(#{})", self.inner.tag)
        }
    }
}

/// RAII guard from [`SymbolSpace::enter`]; restores the previous current
/// space on drop.
pub struct SpaceGuard {
    prev: SymbolSpace,
}

impl Drop for SpaceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.clone());
    }
}

impl SymId {
    /// Intern `s` in the thread's current space (the global one unless a
    /// session guard is live). Components owned by one analysis should
    /// prefer `ctx.intern(..)` / [`SymbolSpace::intern`].
    pub fn intern(s: &str) -> SymId {
        CURRENT.with(|c| c.borrow().intern(s))
    }

    /// The interned string, resolved in the thread's current space. The
    /// returned [`SymStr`] owns the bytes: it stays valid even if the
    /// session space that interned it drops first.
    pub fn as_str(self) -> SymStr {
        CURRENT.with(|c| c.borrow().resolve(self))
    }

    /// The raw dense index (0-based interning order within the id's space).
    /// For building dense tables; never meaningful across processes or
    /// spaces, and never ordered — interning order differs between serial
    /// and parallel parses.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_str())
    }
}

impl fmt::Debug for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The id alone is meaningless in test output; show the string.
        write!(f, "{:?}", self.as_str())
    }
}

/// String order, **not** id order: sorting interned names must produce the
/// same byte-identical reports the `Arc<str>` representation did, and id
/// order varies with parse parallelism. Only used at the output edges.
impl Ord for SymId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(&other.as_str())
    }
}

impl PartialOrd for SymId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<&str> for SymId {
    fn from(s: &str) -> SymId {
        SymId::intern(s)
    }
}

impl PartialEq<str> for SymId {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SymId {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_bijective() {
        let a = SymId::intern("intern_test_sum");
        let b = SymId::intern("intern_test_sum");
        let c = SymId::intern("intern_test_other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "intern_test_sum");
        assert_eq!(c.as_str(), "intern_test_other");
    }

    #[test]
    fn round_trips_through_strings() {
        for s in ["p", "key_array", "0", "main", "κλειδί", ""] {
            assert_eq!(SymId::intern(s).as_str(), s);
            assert_eq!(SymId::intern(&SymId::intern(s).as_str()), SymId::intern(s));
        }
    }

    #[test]
    fn order_is_string_order_not_id_order() {
        // Intern in reverse lexicographic order so id order and string
        // order disagree.
        let z = SymId::intern("intern_test_zzz");
        let a = SymId::intern("intern_test_aaa");
        assert!(a < z, "Ord must compare strings");
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_and_str_equality() {
        let s = SymId::intern("intern_test_disp");
        assert_eq!(s.to_string(), "intern_test_disp");
        assert!(s == "intern_test_disp");
        assert!(s != "intern_test_di");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<SymId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| SymId::intern("intern_test_racy")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn spaces_assign_independent_dense_ids() {
        let a = SymbolSpace::new();
        let b = SymbolSpace::new();
        // Interleave interning across the spaces: each space's ids must be
        // dense from 0, entirely unaffected by the other's activity.
        let a_x = a.intern("space_test_x");
        let b_y = b.intern("space_test_y");
        let b_z = b.intern("space_test_z");
        let a_w = a.intern("space_test_w");
        assert_eq!(a_x.index(), 0);
        assert_eq!(a_w.index(), 1);
        assert_eq!(b_y.index(), 0);
        assert_eq!(b_z.index(), 1);
        // Same string, different spaces: ids are per-space, and each
        // session space owns its *own* copy of the bytes (no cross-session
        // sharing — that's what makes drop reclaim them).
        let a_y = a.intern("space_test_y");
        assert_eq!(a_y.index(), 2);
        assert_eq!(a.resolve(a_y), b.resolve(b_y));
        assert!(!Arc::ptr_eq(
            &a.resolve(a_y).into_arc(),
            &b.resolve(b_y).into_arc()
        ));
    }

    #[test]
    fn spaces_never_observe_each_others_ids() {
        let a = SymbolSpace::new();
        let b = SymbolSpace::new();
        // Grow b far past a.
        for i in 0..100 {
            b.intern(&format!("space_iso_{i}"));
        }
        let only_a = a.intern("space_iso_lone");
        assert_eq!(only_a.index(), 0, "b's interning must not shift a's ids");
        assert_eq!(a.len(), 1);
        // An id b produced beyond a's range cannot resolve in a.
        let big_b = b.intern("space_iso_99_again");
        assert_eq!(a.try_resolve(big_b), None);
        let panicked = std::panic::catch_unwind(|| a.resolve(big_b));
        assert!(panicked.is_err(), "cross-space resolve must panic");
    }

    #[test]
    fn enter_guard_redirects_and_restores() {
        let session = SymbolSpace::new();
        let before = SymId::intern("guard_test_global");
        {
            let _g = session.enter();
            assert!(SymbolSpace::current().same_space(&session));
            let inside = SymId::intern("guard_test_session");
            assert_eq!(inside.index(), 0, "fresh space starts at id 0");
            assert_eq!(inside.as_str(), "guard_test_session");
        }
        assert!(SymbolSpace::current().same_space(&SymbolSpace::global()));
        assert_eq!(before.as_str(), "guard_test_global");
        assert_eq!(session.len(), 1);
    }

    #[test]
    fn guards_nest() {
        let outer = SymbolSpace::new();
        let inner = SymbolSpace::new();
        let _go = outer.enter();
        {
            let _gi = inner.enter();
            assert!(SymbolSpace::current().same_space(&inner));
        }
        assert!(SymbolSpace::current().same_space(&outer));
    }

    #[test]
    fn dropping_a_space_keeps_other_spaces_intact() {
        let keep = SymbolSpace::new();
        let kept = keep.intern("space_drop_kept");
        {
            let gone = SymbolSpace::new();
            gone.intern("space_drop_gone");
        }
        assert_eq!(keep.resolve(kept), "space_drop_kept");
    }

    #[test]
    fn resolved_strings_outlive_their_space() {
        // The soundness contract SymStr exists for: a resolved string is
        // owned, so safe code stashing it past the session reads valid
        // bytes (it pins them), never freed memory.
        let space = SymbolSpace::new();
        let id = space.intern("space_outlive_probe");
        let resolved = space.resolve(id);
        drop(space);
        assert_eq!(resolved, "space_outlive_probe");
        assert_eq!(resolved.as_str().len(), "space_outlive_probe".len());
    }

    #[test]
    fn arena_bytes_counts_global_growth_and_session_bytes() {
        let s = "arena_bytes_test_distinct_string";
        let before = arena_bytes();
        let space = SymbolSpace::new();
        space.intern(s);
        assert!(
            arena_bytes() >= before + s.len(),
            "a live session's bytes must show in the gauge"
        );
        // Re-interning in the same space is free.
        let owned = space.owned_bytes();
        space.intern(s);
        assert_eq!(space.owned_bytes(), owned);
        // Global-space interning grows the (monotonic) global table.
        let g_before = arena_bytes();
        SymbolSpace::global().intern("arena_bytes_test_global_only_sym");
        assert!(arena_bytes() >= g_before + "arena_bytes_test_global_only_sym".len());
    }

    #[test]
    fn dropping_a_session_space_reclaims_its_bytes() {
        let syms: Vec<String> = (0..64).map(|i| format!("arena_reclaim_test_{i}")).collect();
        let total: usize = syms.iter().map(|s| s.len()).sum();
        let space = SymbolSpace::new();
        for s in &syms {
            space.intern(s);
        }
        assert_eq!(space.owned_bytes(), total);
        let while_live = arena_bytes();
        drop(space);
        // Other tests intern concurrently, so compare against the lower
        // bound: the gauge must have given this space's bytes back.
        assert!(
            arena_bytes() <= while_live - total + 4096,
            "dropping the space must reclaim its {total} owned bytes"
        );
    }

    #[test]
    fn global_space_bytes_are_monotonic_process_footprint() {
        let before = SymbolSpace::global().owned_bytes();
        let probe = "global_owned_bytes_probe";
        SymbolSpace::global().intern(probe);
        let after = SymbolSpace::global().owned_bytes();
        assert!(
            after >= before && after >= probe.len(),
            "the global space reports its own (never-reclaimed) footprint"
        );
    }

    #[test]
    fn symstr_works_as_a_string_in_maps_and_comparisons() {
        let space = SymbolSpace::new();
        let s = space.resolve(space.intern("symstr_test_key"));
        // Borrow<str> + Hash agreement: probe a SymStr-keyed map with &str.
        let mut m: HashMap<SymStr, u32> = HashMap::new();
        m.insert(s.clone(), 7);
        assert_eq!(m.get("symstr_test_key"), Some(&7));
        // Deref / AsRef / Display / ordering.
        assert_eq!(&s[0..6], "symstr");
        assert_eq!(s.as_ref(), "symstr_test_key");
        assert_eq!(s.to_string(), "symstr_test_key");
        assert_eq!(s, "symstr_test_key".to_string());
        let t = space.resolve(space.intern("symstr_test_zzz"));
        assert!(s < t);
    }

    #[test]
    fn global_space_is_one_table() {
        let a = SymbolSpace::global();
        let b = SymbolSpace::global();
        assert!(a.same_space(&b));
        let id = a.intern("global_test_shared");
        assert_eq!(b.resolve(id), "global_test_shared");
    }
}
