//! Process-wide symbol interning: [`SymId`] is a dense `u32` handle to a
//! shared string table.
//!
//! Real traces repeat the same handful of symbolic names (function names,
//! block labels, variable names) millions of times. The analysis data plane
//! keys every hot map on those names, so the representation of a name
//! decides the cost of every reg-var/reg-reg map operation (paper §IV-B).
//! Interning turns each name into a `Copy` 4-byte id:
//!
//! * equality and hashing are integer operations — no string re-hashing, no
//!   `Arc` refcount traffic on the hot path;
//! * ids are **dense** (0, 1, 2, …), so maps keyed by symbol can be plain
//!   vectors ([`crate::namemap::NameMap`]);
//! * the id → string direction ([`SymId::as_str`]) is only needed at the
//!   edges (report rendering, DOT output, trace serialization), never
//!   inside the per-record loops.
//!
//! The table is global and append-only: interned strings are leaked into
//! `&'static str`s. The leak is bounded by the number of *distinct* symbols
//! ever observed (program identifiers — not trace length), which is the
//! same lifetime the previous per-parser `Arc<str>` interners effectively
//! had over an analysis run, minus one allocation and one map per parser.
//!
//! Trade-off for long-running embedders: because the table is process-wide,
//! memory grows monotonically with the union of all symbol sets ever
//! analyzed, and the dense sym-indexed tables
//! ([`crate::namemap::NameMap`], the DDG node index) size themselves to
//! the highest id they touch. For the analysis CLI (one process per
//! analysis — the paper's usage) this is strictly cheaper than the old
//! per-parser interners; a service embedding thousands of unrelated
//! analyses in one process would want an epoch/generation scheme (noted in
//! ROADMAP.md).
//!
//! Determinism note: the numeric value of a [`SymId`] depends on first-come
//! interning order, which differs between serial and parallel parses of the
//! same trace. Ids therefore must never leak into output or into orderings
//! that reach output — [`SymId`]'s `Ord` compares the *resolved strings* so
//! that sorting by name stays byte-identical to the pre-interning code, and
//! the property tests assert report/DOT byte-identity across parse modes.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A handle to an interned symbol string.
///
/// `Copy`, 4 bytes, integer equality/hash. Obtain via [`SymId::intern`],
/// resolve via [`SymId::as_str`]. Two `SymId`s are equal iff their strings
/// are equal (the table is a bijection).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymId(u32);

struct Interner {
    // Deliberately SipHash (std's seeded default), NOT FxHash: this is the
    // one map keyed by *untrusted strings* from the trace file, and FxHash
    // is deterministic and collision-craftable. The integer-keyed hot maps
    // downstream are where Fx pays; this table is hit once per symbol
    // occurrence at most (and far less behind the per-parser memo).
    map: HashMap<&'static str, u32>,
    strs: Vec<&'static str>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strs: Vec::new(),
        })
    })
}

impl SymId {
    /// Intern `s`, returning its id. One hash lookup on the hit path (the
    /// overwhelmingly common case in traces); one allocation — total, ever —
    /// per distinct symbol on the miss path.
    pub fn intern(s: &str) -> SymId {
        let t = table();
        if let Some(&id) = t.read().expect("interner poisoned").map.get(s) {
            return SymId(id);
        }
        let mut w = t.write().expect("interner poisoned");
        // Double-check: another thread may have interned between the locks.
        if let Some(&id) = w.map.get(s) {
            return SymId(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(w.strs.len()).expect("interner overflow: > 4G distinct symbols");
        w.strs.push(leaked);
        w.map.insert(leaked, id);
        SymId(id)
    }

    /// The interned string. `&'static` because the table is append-only.
    pub fn as_str(self) -> &'static str {
        table().read().expect("interner poisoned").strs[self.0 as usize]
    }

    /// The raw dense index (0-based interning order). For building dense
    /// tables; never meaningful across processes and never ordered —
    /// interning order differs between serial and parallel parses.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The id alone is meaningless in test output; show the string.
        write!(f, "{:?}", self.as_str())
    }
}

/// String order, **not** id order: sorting interned names must produce the
/// same byte-identical reports the `Arc<str>` representation did, and id
/// order varies with parse parallelism. Only used at the output edges.
impl Ord for SymId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl PartialOrd for SymId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<&str> for SymId {
    fn from(s: &str) -> SymId {
        SymId::intern(s)
    }
}

impl PartialEq<str> for SymId {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SymId {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_bijective() {
        let a = SymId::intern("intern_test_sum");
        let b = SymId::intern("intern_test_sum");
        let c = SymId::intern("intern_test_other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "intern_test_sum");
        assert_eq!(c.as_str(), "intern_test_other");
    }

    #[test]
    fn round_trips_through_strings() {
        for s in ["p", "key_array", "0", "main", "κλειδί", ""] {
            assert_eq!(SymId::intern(s).as_str(), s);
            assert_eq!(SymId::intern(SymId::intern(s).as_str()), SymId::intern(s));
        }
    }

    #[test]
    fn order_is_string_order_not_id_order() {
        // Intern in reverse lexicographic order so id order and string
        // order disagree.
        let z = SymId::intern("intern_test_zzz");
        let a = SymId::intern("intern_test_aaa");
        assert!(a < z, "Ord must compare strings");
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_and_str_equality() {
        let s = SymId::intern("intern_test_disp");
        assert_eq!(s.to_string(), "intern_test_disp");
        assert!(s == "intern_test_disp");
        assert!(s != "intern_test_di");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<SymId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| SymId::intern("intern_test_racy")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
