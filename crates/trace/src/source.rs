//! [`TraceSource`]: the one front door for trace ingest.
//!
//! Ingest used to be an eight-function zoo (`parse_str[_in]`,
//! `parse_parallel[_in]`, `parse_parallel_read[_with_window][_in]`, plus
//! `parse_read`) — one function per (input kind × parallelism × ctx)
//! combination, and the binary format would have doubled it again. The
//! builder collapses every combination into one entry point:
//!
//! ```
//! use autocheck_trace::{AnalysisCtx, ParallelConfig, TraceSource};
//!
//! let ctx = AnalysisCtx::session();
//! let records = TraceSource::from_str("0,3,foo,6:1,11,27,215,\n")
//!     .ctx(&ctx)
//!     .parallel(ParallelConfig { threads: 4 })
//!     .records()
//!     .unwrap();
//! assert_eq!(records.len(), 1);
//! ```
//!
//! * **Input**: [`from_str`](TraceSource::from_str) /
//!   [`from_bytes`](TraceSource::from_bytes) /
//!   [`from_path`](TraceSource::from_path) /
//!   [`from_reader`](TraceSource::from_reader).
//! * **Format**: text and binary traces both enter here.
//!   [`TraceFormat::Auto`] (the default) detects binary by its magic bytes —
//!   the magic's first byte is never valid UTF-8, so no text trace can
//!   shadow it (and a `&str` source is provably text).
//! * **Output**: [`records`](TraceSource::records) materializes the whole
//!   trace (optionally in parallel), [`stream`](TraceSource::stream) pulls
//!   records one at a time with bounded memory.
//!
//! Symbols intern into the ctx given via [`ctx`](TraceSource::ctx), or the
//! thread's current space when none is given — the same contract every
//! replaced function had.

use crate::binary::{self, BinaryReader, BinaryStreamReader};
use crate::ctx::AnalysisCtx;
use crate::limits::{ResourceExceeded, ResourceKind};
use crate::overlap::{resolve_overlap_depth, run_pipeline, BatchStream, IngestErrorClass};
use crate::parallel::{parse_chunks, parse_windowed_core, ParallelConfig, DEFAULT_WINDOW_BYTES};
use crate::reader::{utf8_text, RecordReader, TraceReadError};
use crate::record::Record;
use autocheck_obs::{CounterId, Metrics, TimerId};
use std::io::Read;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The boxed reader every adapter in the ingest stack wraps. `Send` so the
/// decode-ahead pipeline can move the stack onto a producer thread.
type BoxedReader<'a> = Box<dyn Read + Send + 'a>;

/// Which on-disk trace format to expect.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// Detect by magic bytes (the default): a trace starting with the
    /// binary magic is binary, anything else is text.
    #[default]
    Auto,
    /// Force the textual format.
    Text,
    /// Force the binary format.
    Binary,
}

enum Input<'a> {
    Str(&'a str),
    Bytes(&'a [u8]),
    Path(PathBuf),
    Reader(BoxedReader<'a>),
}

/// Builder-style trace ingest over any input, either format, serial or
/// parallel. See the [module docs](self).
pub struct TraceSource<'a> {
    input: Input<'a>,
    ctx: AnalysisCtx,
    parallel: Option<ParallelConfig>,
    window: usize,
    format: TraceFormat,
    overlap: usize,
}

impl<'a> TraceSource<'a> {
    fn new(input: Input<'a>) -> TraceSource<'a> {
        TraceSource {
            input,
            ctx: AnalysisCtx::current(),
            parallel: None,
            window: DEFAULT_WINDOW_BYTES,
            format: TraceFormat::Auto,
            overlap: 1,
        }
    }

    /// Ingest from in-memory text. (A `&str` can never be a binary trace —
    /// the magic is invalid UTF-8 — so this is always the textual format.)
    // The inherent name mirrors `from_bytes`/`from_path`/`from_reader`; a
    // `FromStr` impl could not carry the input's lifetime.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &'a str) -> TraceSource<'a> {
        TraceSource::new(Input::Str(s))
    }

    /// Ingest from in-memory bytes (either format; binary decodes
    /// zero-copy straight out of the buffer).
    pub fn from_bytes(bytes: &'a [u8]) -> TraceSource<'a> {
        TraceSource::new(Input::Bytes(bytes))
    }

    /// Ingest from a file (either format, detected from the first bytes).
    pub fn from_path(path: impl Into<PathBuf>) -> TraceSource<'a> {
        TraceSource::new(Input::Path(path.into()))
    }

    /// Ingest from any [`Read`] (either format, detected by peeking the
    /// first bytes). `Send` so ingest can be moved onto a decode-ahead
    /// producer thread when [`overlap`](Self::overlap) asks for one.
    pub fn from_reader(reader: impl Read + Send + 'a) -> TraceSource<'a> {
        TraceSource::new(Input::Reader(Box::new(reader)))
    }

    /// Intern symbols into `ctx`'s space (default: the thread's current
    /// space, snapshotted when the source was constructed).
    pub fn ctx(mut self, ctx: &AnalysisCtx) -> TraceSource<'a> {
        self.ctx = ctx.clone();
        self
    }

    /// Parse with `cfg.threads` workers in [`records`](Self::records)
    /// (default: serial). Streaming is unaffected.
    pub fn parallel(mut self, cfg: ParallelConfig) -> TraceSource<'a> {
        self.parallel = Some(cfg);
        self
    }

    /// Bounded-lookahead window in bytes for parallel text parsing from a
    /// reader (default: [`DEFAULT_WINDOW_BYTES`]).
    pub fn window(mut self, bytes: usize) -> TraceSource<'a> {
        self.window = bytes;
        self
    }

    /// Expect a specific format instead of auto-detecting (default:
    /// [`TraceFormat::Auto`]).
    pub fn format(mut self, format: TraceFormat) -> TraceSource<'a> {
        self.format = format;
        self
    }

    /// Decode-ahead depth for [`records`](Self::records) and
    /// [`overlapped`](Self::overlapped) on path/reader inputs: `0` = auto
    /// (serial on single-core hosts), `1` = serial (the default), `n >= 2`
    /// = read and decode on background threads, `n` batches ahead of the
    /// consumer. In-memory inputs and [`stream`](Self::stream) are
    /// unaffected. See [`resolve_overlap_depth`].
    pub fn overlap(mut self, depth: usize) -> TraceSource<'a> {
        self.overlap = depth;
        self
    }

    /// Parse the whole trace into a `Vec<Record>`.
    ///
    /// In-memory and file inputs parse with the configured parallelism in
    /// both formats (block-aligned chunks for text, record-aligned chunks
    /// for binary). Reader inputs parse text through the bounded-lookahead
    /// windowed parser and binary through the streaming decoder.
    pub fn records(self) -> Result<Vec<Record>, TraceReadError> {
        let threads = self.parallel.map(|c| c.threads.max(1)).unwrap_or(1);
        let metrics = self.ctx.metrics().clone();
        let span = metrics.span(TimerId::Ingest);
        let result = match self.input {
            Input::Str(s) => records_from_bytes(s.as_bytes(), self.format, threads, &self.ctx),
            Input::Bytes(b) => records_from_bytes(b, self.format, threads, &self.ctx),
            Input::Path(p) => open_path(&p, &self.ctx).and_then(|file| {
                records_from_reader(
                    file,
                    self.format,
                    threads,
                    self.window,
                    self.overlap,
                    &self.ctx,
                    &metrics,
                )
            }),
            Input::Reader(r) => records_from_reader(
                r,
                self.format,
                threads,
                self.window,
                self.overlap,
                &self.ctx,
                &metrics,
            ),
        };
        drop(span);
        match &result {
            Err(TraceReadError::Parse(_)) | Err(TraceReadError::Binary(_)) => {
                metrics.count(CounterId::ParseErrors, 1);
            }
            Err(TraceReadError::Resource(_)) => {
                metrics.count(CounterId::LimitExceeded, 1);
            }
            _ => {}
        }
        result
    }

    /// Run `consume` against a decode-ahead pipeline: trace bytes are read
    /// and decoded on background threads while `consume` pulls finished
    /// record batches from the [`BatchStream`] — so the caller's fold runs
    /// concurrently with ingest.
    ///
    /// The pipeline is always built, whatever the configured overlap depth
    /// (the depth only sizes the bounded channel); callers that want the
    /// serial path at depth 1 branch before calling this. Producer-side
    /// failures — I/O errors, parse errors, resource ceilings, even worker
    /// panics — surface through the stream as the same typed
    /// [`TraceReadError`]s serial ingest returns. Errors the producers hit
    /// *before* the pipeline exists (opening the file, peeking the format)
    /// surface as this function's own `Err`.
    pub fn overlapped<T>(
        self,
        consume: impl FnOnce(&mut BatchStream) -> T,
    ) -> Result<T, TraceReadError> {
        let threads = self.parallel.map(|c| c.threads.max(1)).unwrap_or(1);
        let metrics = self.ctx.metrics().clone();
        let reader: BoxedReader<'a> = match self.input {
            Input::Str(s) => Box::new(s.as_bytes()),
            Input::Bytes(b) => Box::new(b),
            Input::Path(p) => open_path(&p, &self.ctx)?,
            Input::Reader(r) => r,
        };
        let (format, reader) = peek_format(reader, self.format)?;
        let (reader, read_bytes) = MeteredReader::wrap(reader);
        let reader = ByteLimitReader::wrap(reader, &self.ctx);
        let depth = resolve_overlap_depth(self.overlap).max(1);
        let (out, summary) = run_pipeline(
            reader,
            format,
            threads,
            self.window,
            depth,
            &self.ctx,
            &read_bytes,
            consume,
        );
        // Book what the serial streaming path would have booked: ingest
        // volume per delivered record (bytes as of the last delivery), and
        // the error-kind counter if the consumer was handed an error.
        if summary.records > 0 {
            note_ingest(
                &metrics,
                format,
                summary.bytes_at_last_batch,
                summary.records,
            );
        }
        match summary.error {
            Some(IngestErrorClass::Parse) => metrics.count(CounterId::ParseErrors, 1),
            Some(IngestErrorClass::Resource) => metrics.count(CounterId::LimitExceeded, 1),
            Some(IngestErrorClass::Io) | None => {}
        }
        Ok(out)
    }

    /// Pull records one at a time with bounded memory (text: chunked line
    /// reader; binary: string table plus one record).
    pub fn stream(self) -> Result<TraceStream<'a>, TraceReadError> {
        let ctx = self.ctx;
        let (format, reader): (TraceFormat, BoxedReader<'a>) = match self.input {
            Input::Str(s) => (
                resolve_format(s.as_bytes(), self.format),
                Box::new(s.as_bytes()),
            ),
            Input::Bytes(b) => (resolve_format(b, self.format), Box::new(b)),
            Input::Path(p) => {
                let file = std::io::BufReader::new(std::fs::File::open(&p)?);
                peek_format(Box::new(file), self.format)?
            }
            Input::Reader(r) => peek_format(r, self.format)?,
        };
        let metrics = ctx.metrics().clone();
        let (reader, read_bytes) = MeteredReader::wrap(reader);
        let reader = ByteLimitReader::wrap(reader, &ctx);
        let inner = match format {
            TraceFormat::Binary => match BinaryStreamReader::open(reader, &ctx) {
                Ok(r) => StreamInner::Binary(r),
                Err(e) => {
                    // The open path reads the string table, so a byte
                    // ceiling can trip before the stream even exists.
                    let e = unsmuggle_limit(e);
                    if matches!(e, TraceReadError::Resource(_)) {
                        metrics.count(CounterId::LimitExceeded, 1);
                    }
                    return Err(e);
                }
            },
            _ => StreamInner::Text(Box::new(RecordReader::with_ctx(reader, &ctx))),
        };
        Ok(TraceStream {
            inner,
            metrics,
            format,
            read_bytes,
            reported_bytes: 0,
            ctx,
            records_seen: 0,
            limit_tripped: false,
        })
    }
}

/// Open a file for chunked ingest, pre-checking the byte ceiling against
/// its length so an oversized file is rejected without reading a byte.
///
/// Path ingest is O(window) resident by construction: the file feeds the
/// same bounded-lookahead machinery as reader inputs, so the whole trace
/// is never materialized in memory.
fn open_path<'a>(
    path: &std::path::Path,
    ctx: &AnalysisCtx,
) -> Result<BoxedReader<'a>, TraceReadError> {
    if ctx.limits().get(ResourceKind::TraceBytes).is_some() {
        let len = std::fs::metadata(path)?.len();
        ctx.limits().check(ResourceKind::TraceBytes, len)?;
    }
    Ok(Box::new(std::io::BufReader::new(std::fs::File::open(
        path,
    )?)))
}

/// The reader-input body of [`TraceSource::records`]: wrap the metering
/// and limit stack, then parse serially (overlap depth 1) or through the
/// decode-ahead pipeline. Error *counter* bookkeeping stays with the
/// caller, which books it off the returned `Result` either way.
#[allow(clippy::too_many_arguments)]
fn records_from_reader(
    r: BoxedReader<'_>,
    format: TraceFormat,
    threads: usize,
    window: usize,
    overlap: usize,
    ctx: &AnalysisCtx,
    metrics: &Metrics,
) -> Result<Vec<Record>, TraceReadError> {
    let (format, reader) = peek_format(r, format)?;
    let (reader, read_bytes) = MeteredReader::wrap(reader);
    let reader = ByteLimitReader::wrap(reader, ctx);
    let depth = resolve_overlap_depth(overlap);
    let result = if depth > 1 {
        let (folded, _summary) = run_pipeline(
            reader,
            format,
            threads,
            window,
            depth,
            ctx,
            &read_bytes,
            |batches| {
                let mut out: Vec<Record> = Vec::new();
                while let Some(batch) = batches.next_batch() {
                    out.extend(batch?);
                }
                Ok(out)
            },
        );
        // The batch stream already applied `unsmuggle_limit` and the
        // per-batch ceiling checks; by the final batch they cover the
        // whole trace, so no trailing re-check is needed.
        folded
    } else {
        match format {
            TraceFormat::Binary => BinaryStreamReader::open(reader, ctx).and_then(|r| r.collect()),
            _ => parse_windowed_core(reader, threads, window, ctx),
        }
        .map_err(unsmuggle_limit)
        .and_then(|recs| {
            check_ingest_limits(ctx, recs.len() as u64, read_bytes.load(Ordering::Relaxed))?;
            Ok(recs)
        })
    };
    if let Ok(recs) = &result {
        note_ingest(
            metrics,
            format,
            read_bytes.load(Ordering::Relaxed),
            recs.len() as u64,
        );
    }
    result
}

/// Check the ingest-side resource ceilings for one source: records and raw
/// bytes for this trace, plus the session-wide symbol count and owned
/// string bytes (which grow only through interning — i.e. through ingest).
pub(crate) fn check_ingest_limits(
    ctx: &AnalysisCtx,
    records: u64,
    bytes: u64,
) -> Result<(), ResourceExceeded> {
    let limits = ctx.limits();
    limits.check(ResourceKind::TraceRecords, records)?;
    limits.check(ResourceKind::TraceBytes, bytes)?;
    limits.check(ResourceKind::Symbols, ctx.space().len() as u64)?;
    limits.check(ResourceKind::ArenaBytes, ctx.space().owned_bytes() as u64)?;
    Ok(())
}

/// Recover a [`ResourceExceeded`] that [`ByteLimitReader`] smuggled through
/// the `io::Error` channel (the only error type a [`Read`] can raise).
pub(crate) fn unsmuggle_limit(e: TraceReadError) -> TraceReadError {
    let TraceReadError::Io(io_err) = &e else {
        return e;
    };
    match io_err
        .get_ref()
        .and_then(|inner| inner.downcast_ref::<ResourceExceeded>())
    {
        Some(r) => TraceReadError::Resource(*r),
        None => e,
    }
}

/// A [`Read`] adapter enforcing `max_trace_bytes` *during* the read — the
/// guard that stops an unbounded (or lying-header) stream before downstream
/// buffers can over-allocate. The violation travels as an `io::Error`
/// wrapping the typed [`ResourceExceeded`]; [`unsmuggle_limit`] restores it
/// at the `TraceSource` boundary.
struct ByteLimitReader<'a> {
    inner: BoxedReader<'a>,
    served: u64,
    limit: u64,
}

impl<'a> ByteLimitReader<'a> {
    fn wrap(inner: BoxedReader<'a>, ctx: &AnalysisCtx) -> BoxedReader<'a> {
        match ctx.limits().get(ResourceKind::TraceBytes) {
            Some(limit) => Box::new(ByteLimitReader {
                inner,
                served: 0,
                limit,
            }),
            None => inner,
        }
    }
}

impl Read for ByteLimitReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        // Serve at most one byte past the ceiling: crossing it (rather than
        // reaching it exactly) is what constitutes the violation. Saturate:
        // at limit == u64::MAX the `+ 1` would otherwise wrap to a
        // zero-length read, silently treating the trace as empty.
        let remaining = (self.limit - self.served.min(self.limit)).saturating_add(1);
        let want = (buf.len() as u64).min(remaining) as usize;
        let n = self.inner.read(&mut buf[..want])?;
        self.served += n as u64;
        if self.served > self.limit {
            return Err(std::io::Error::other(ResourceExceeded {
                kind: ResourceKind::TraceBytes,
                used: self.served,
                limit: self.limit,
            }));
        }
        Ok(n)
    }
}

/// Book ingested volume under the resolved format's counters.
fn note_ingest(metrics: &Metrics, format: TraceFormat, bytes: u64, records: u64) {
    let (rec_id, byte_id) = match format {
        TraceFormat::Binary => (CounterId::IngestRecordsBinary, CounterId::IngestBytesBinary),
        _ => (CounterId::IngestRecordsText, CounterId::IngestBytesText),
    };
    metrics.count(rec_id, records);
    metrics.count(byte_id, bytes);
}

/// A [`Read`] adapter that tallies consumed bytes into a shared counter —
/// how reader inputs (where no one knows the length up front) feed the
/// ingest byte counters.
struct MeteredReader<'a> {
    inner: BoxedReader<'a>,
    bytes: Arc<AtomicU64>,
}

impl<'a> MeteredReader<'a> {
    fn wrap(inner: BoxedReader<'a>) -> (BoxedReader<'a>, Arc<AtomicU64>) {
        let bytes = Arc::new(AtomicU64::new(0));
        (
            Box::new(MeteredReader {
                inner,
                bytes: Arc::clone(&bytes),
            }),
            bytes,
        )
    }
}

impl Read for MeteredReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

/// The pull iterator behind [`TraceSource::stream`]. Yields records until
/// the first error, then fuses.
pub struct TraceStream<'a> {
    inner: StreamInner<'a>,
    metrics: Metrics,
    format: TraceFormat,
    read_bytes: Arc<AtomicU64>,
    reported_bytes: u64,
    /// The session whose limits this stream enforces per record.
    ctx: AnalysisCtx,
    records_seen: u64,
    /// Set when a resource ceiling tripped: the stream fuses (the inner
    /// readers fuse themselves after their own errors, but a limit
    /// violation replaces an otherwise-good record).
    limit_tripped: bool,
}

enum StreamInner<'a> {
    // Boxed: the text reader's line-carry buffers dwarf the binary variant.
    Text(Box<RecordReader<BoxedReader<'a>>>),
    Binary(BinaryStreamReader<BoxedReader<'a>>),
}

impl TraceStream<'_> {
    /// True when the underlying trace is binary.
    pub fn is_binary(&self) -> bool {
        matches!(self.inner, StreamInner::Binary(_))
    }
}

impl Iterator for TraceStream<'_> {
    type Item = Result<Record, TraceReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.limit_tripped {
            return None;
        }
        let item = match &mut self.inner {
            StreamInner::Text(r) => r.next(),
            StreamInner::Binary(r) => r.next(),
        };
        // Per-record limit enforcement: each delivered record re-checks the
        // session's ingest ceilings, so a violation surfaces within one
        // record of crossing the line — bounded growth by construction.
        let item = match item {
            Some(Ok(rec)) => {
                self.records_seen += 1;
                let bytes = self.read_bytes.load(Ordering::Relaxed);
                match check_ingest_limits(&self.ctx, self.records_seen, bytes) {
                    Ok(()) => Some(Ok(rec)),
                    Err(limit) => {
                        self.limit_tripped = true;
                        Some(Err(TraceReadError::Resource(limit)))
                    }
                }
            }
            Some(Err(e)) => Some(Err(unsmuggle_limit(e))),
            None => None,
        };
        match &item {
            Some(Ok(_)) if self.metrics.is_enabled() => {
                let seen = self.read_bytes.load(Ordering::Relaxed);
                note_ingest(&self.metrics, self.format, seen - self.reported_bytes, 1);
                self.reported_bytes = seen;
            }
            Some(Err(TraceReadError::Parse(_))) | Some(Err(TraceReadError::Binary(_))) => {
                self.metrics.count(CounterId::ParseErrors, 1);
            }
            Some(Err(TraceReadError::Resource(_))) => {
                self.metrics.count(CounterId::LimitExceeded, 1);
            }
            _ => {}
        }
        item
    }
}

/// Resolve [`TraceFormat::Auto`] against the input's first bytes.
fn resolve_format(head: &[u8], format: TraceFormat) -> TraceFormat {
    match format {
        TraceFormat::Auto => {
            if binary::is_binary(head) {
                TraceFormat::Binary
            } else {
                TraceFormat::Text
            }
        }
        other => other,
    }
}

/// Peek up to four bytes off `r` to resolve the format, returning a reader
/// that replays the peeked bytes first.
fn peek_format<'a>(
    mut r: BoxedReader<'a>,
    format: TraceFormat,
) -> Result<(TraceFormat, BoxedReader<'a>), TraceReadError> {
    let mut head = [0u8; 4];
    let mut got = 0;
    while got < head.len() {
        match r.read(&mut head[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TraceReadError::Io(e)),
        }
    }
    let format = resolve_format(&head[..got], format);
    let replay = std::io::Cursor::new(head).take(got as u64);
    Ok((format, Box::new(replay.chain(r))))
}

fn records_from_bytes(
    bytes: &[u8],
    format: TraceFormat,
    threads: usize,
    ctx: &AnalysisCtx,
) -> Result<Vec<Record>, TraceReadError> {
    // The byte ceiling gates the parse up front: everything downstream
    // (record count, interned symbols, owned arena bytes) is bounded by the
    // input's byte length, so the post-parse checks below can never observe
    // more than one bounded input's worth of growth.
    ctx.limits()
        .check(ResourceKind::TraceBytes, bytes.len() as u64)?;
    let format = resolve_format(bytes, format);
    let result = match format {
        TraceFormat::Binary => BinaryReader::open(bytes, ctx)?.read_all_parallel(threads),
        _ => {
            let text = utf8_text(bytes)?;
            parse_chunks(text, threads, ctx).map_err(TraceReadError::Parse)
        }
    }
    .and_then(|recs| {
        check_ingest_limits(ctx, recs.len() as u64, bytes.len() as u64)?;
        Ok(recs)
    });
    if let Ok(recs) = &result {
        note_ingest(ctx.metrics(), format, bytes.len() as u64, recs.len() as u64);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::to_bytes;
    use crate::name::Name;
    use crate::record::{opcodes, OpTag, Operand, TraceValue};
    use crate::writer;

    fn synth(ctx: &AnalysisCtx, blocks: usize) -> Vec<Record> {
        (0..blocks)
            .map(|i| Record {
                src_line: (i % 90 + 1) as i32,
                func: ctx.intern(if i % 3 == 0 { "main" } else { "foo" }),
                bb: (1, 1),
                bb_label: ctx.intern("0"),
                opcode: if i % 2 == 0 {
                    opcodes::LOAD
                } else {
                    opcodes::MUL
                },
                dyn_id: i as u64,
                operands: vec![Operand::reg(
                    OpTag::Pos(1),
                    64,
                    TraceValue::Ptr(0x1000 + i as u64 * 8),
                    Name::Sym(ctx.intern("p")),
                )],
                result: Some(Operand::reg(
                    OpTag::Result,
                    64,
                    TraceValue::I(i as i64),
                    Name::Temp(i as u32),
                )),
            })
            .collect()
    }

    fn text_of(ctx: &AnalysisCtx, recs: &[Record]) -> String {
        let _g = ctx.enter();
        writer::to_string(recs)
    }

    #[test]
    fn every_input_kind_parses_text() {
        let ctx = AnalysisCtx::session();
        let recs = synth(&ctx, 100);
        let text = text_of(&ctx, &recs);

        let from_str = TraceSource::from_str(&text).ctx(&ctx).records().unwrap();
        let from_bytes = TraceSource::from_bytes(text.as_bytes())
            .ctx(&ctx)
            .records()
            .unwrap();
        let from_reader = TraceSource::from_reader(text.as_bytes())
            .ctx(&ctx)
            .records()
            .unwrap();
        assert_eq!(recs, from_str);
        assert_eq!(recs, from_bytes);
        assert_eq!(recs, from_reader);
    }

    #[test]
    fn every_input_kind_parses_binary() {
        let ctx = AnalysisCtx::session();
        let recs = synth(&ctx, 100);
        let bytes = to_bytes(&recs, &ctx);

        let from_bytes = TraceSource::from_bytes(&bytes).ctx(&ctx).records().unwrap();
        let from_reader = TraceSource::from_reader(&bytes[..])
            .ctx(&ctx)
            .records()
            .unwrap();
        assert_eq!(recs, from_bytes);
        assert_eq!(recs, from_reader);
    }

    #[test]
    fn paths_parse_both_formats() {
        let ctx = AnalysisCtx::session();
        let recs = synth(&ctx, 50);
        let dir = std::env::temp_dir().join(format!("autocheck-source-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let text_path = dir.join("t.txt");
        let bin_path = dir.join("t.bin");
        std::fs::write(&text_path, text_of(&ctx, &recs)).unwrap();
        std::fs::write(&bin_path, to_bytes(&recs, &ctx)).unwrap();

        for p in [&text_path, &bin_path] {
            let batch = TraceSource::from_path(p).ctx(&ctx).records().unwrap();
            assert_eq!(recs, batch, "batch {}", p.display());
            let streamed: Vec<Record> = TraceSource::from_path(p)
                .ctx(&ctx)
                .stream()
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(recs, streamed, "stream {}", p.display());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_matches_serial_in_both_formats() {
        let ctx = AnalysisCtx::session();
        let recs = synth(&ctx, 400);
        let text = text_of(&ctx, &recs);
        let bytes = to_bytes(&recs, &ctx);
        for threads in [2, 4, 7] {
            let cfg = ParallelConfig { threads };
            let t = TraceSource::from_str(&text)
                .ctx(&ctx)
                .parallel(cfg)
                .records()
                .unwrap();
            let b = TraceSource::from_bytes(&bytes)
                .ctx(&ctx)
                .parallel(cfg)
                .records()
                .unwrap();
            assert_eq!(recs, t, "text, threads = {threads}");
            assert_eq!(recs, b, "binary, threads = {threads}");
        }
    }

    #[test]
    fn streams_detect_format_and_match_batch() {
        let ctx = AnalysisCtx::session();
        let recs = synth(&ctx, 120);
        let text = text_of(&ctx, &recs);
        let bytes = to_bytes(&recs, &ctx);

        let ts = TraceSource::from_reader(text.as_bytes())
            .ctx(&ctx)
            .stream()
            .unwrap();
        assert!(!ts.is_binary());
        let streamed: Vec<Record> = ts.collect::<Result<_, _>>().unwrap();
        assert_eq!(recs, streamed);

        let bs = TraceSource::from_reader(&bytes[..])
            .ctx(&ctx)
            .stream()
            .unwrap();
        assert!(bs.is_binary());
        let streamed: Vec<Record> = bs.collect::<Result<_, _>>().unwrap();
        assert_eq!(recs, streamed);
    }

    #[test]
    fn forced_format_overrides_detection() {
        let ctx = AnalysisCtx::session();
        let recs = synth(&ctx, 5);
        let bytes = to_bytes(&recs, &ctx);
        // Forcing text on a binary trace fails the UTF-8 gate (the magic is
        // deliberately invalid UTF-8).
        let err = TraceSource::from_bytes(&bytes)
            .ctx(&ctx)
            .format(TraceFormat::Text)
            .records()
            .unwrap_err();
        assert!(err.to_string().contains("UTF-8"));
        // Forcing binary on a text trace fails the magic check.
        let text = text_of(&ctx, &recs);
        let err = TraceSource::from_str(&text)
            .ctx(&ctx)
            .format(TraceFormat::Binary)
            .records()
            .unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn empty_inputs_are_empty_traces() {
        let ctx = AnalysisCtx::session();
        assert!(TraceSource::from_str("")
            .ctx(&ctx)
            .records()
            .unwrap()
            .is_empty());
        let streamed: Vec<Record> = TraceSource::from_reader(&b""[..])
            .ctx(&ctx)
            .stream()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(streamed.is_empty());
    }

    #[test]
    fn tiny_reader_inputs_survive_the_format_peek() {
        // Shorter than the 4-byte magic: must still parse as text.
        let ctx = AnalysisCtx::session();
        let streamed: Vec<Record> = TraceSource::from_reader(&b"\n"[..])
            .ctx(&ctx)
            .stream()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(streamed.is_empty());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = TraceSource::from_path("/nonexistent/trace.bin")
            .records()
            .unwrap_err();
        assert!(matches!(err, TraceReadError::Io(_)));
    }

    #[test]
    fn window_and_threads_compose_on_readers() {
        let ctx = AnalysisCtx::session();
        let recs = synth(&ctx, 300);
        let text = text_of(&ctx, &recs);
        let parsed = TraceSource::from_reader(text.as_bytes())
            .ctx(&ctx)
            .parallel(ParallelConfig { threads: 4 })
            .window(256)
            .records()
            .unwrap();
        assert_eq!(recs, parsed);
    }

    /// The deprecated free functions must keep working verbatim until
    /// removal — they are thin wrappers over the same cores.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_the_same_cores() {
        let ctx = AnalysisCtx::session();
        let recs = synth(&ctx, 30);
        let text = text_of(&ctx, &recs);
        let cfg = ParallelConfig { threads: 2 };
        assert_eq!(crate::parser::parse_str_in(&text, &ctx).unwrap(), recs);
        assert_eq!(
            crate::parallel::parse_parallel_in(&text, cfg, &ctx).unwrap(),
            recs
        );
        assert_eq!(
            crate::parallel::parse_parallel_read_in(text.as_bytes(), cfg, &ctx).unwrap(),
            recs
        );
        assert_eq!(
            crate::parallel::parse_parallel_read_with_window_in(text.as_bytes(), cfg, 128, &ctx)
                .unwrap(),
            recs
        );
        let _g = ctx.enter();
        assert_eq!(crate::parser::parse_str(&text).unwrap(), recs);
        assert_eq!(crate::parallel::parse_parallel(&text, cfg).unwrap(), recs);
        assert_eq!(
            crate::parallel::parse_parallel_read(text.as_bytes(), cfg).unwrap(),
            recs
        );
        assert_eq!(
            crate::parallel::parse_parallel_read_with_window(text.as_bytes(), cfg, 128).unwrap(),
            recs
        );
        assert_eq!(crate::reader::parse_read(text.as_bytes()).unwrap(), recs);
    }

    #[test]
    fn ingest_counters_track_records_bytes_and_errors() {
        use autocheck_obs::{CounterId, Metrics};
        let base = AnalysisCtx::session();
        let recs = synth(&base, 40);
        let text = text_of(&base, &recs);
        let bin = to_bytes(&recs, &base);

        // Batch text: record + byte counters under the text ids.
        let ctx = AnalysisCtx::session().with_metrics(Metrics::enabled());
        TraceSource::from_str(&text).ctx(&ctx).records().unwrap();
        let m = ctx.metrics();
        assert_eq!(m.counter(CounterId::IngestRecordsText), 40);
        assert_eq!(m.counter(CounterId::IngestBytesText), text.len() as u64);
        assert_eq!(m.counter(CounterId::IngestRecordsBinary), 0);
        assert_eq!(m.counter(CounterId::ParseErrors), 0);
        let (ns, spans) = m.timer(autocheck_obs::TimerId::Ingest);
        assert_eq!(spans, 1);
        assert!(ns > 0);

        // Batch binary from a reader: bytes metered through the adapter.
        let ctx = AnalysisCtx::session().with_metrics(Metrics::enabled());
        TraceSource::from_reader(&bin[..])
            .ctx(&ctx)
            .records()
            .unwrap();
        assert_eq!(ctx.metrics().counter(CounterId::IngestRecordsBinary), 40);
        assert_eq!(
            ctx.metrics().counter(CounterId::IngestBytesBinary),
            bin.len() as u64
        );

        // Streaming text: per-record counting adds up to the same totals.
        let ctx = AnalysisCtx::session().with_metrics(Metrics::enabled());
        let n = TraceSource::from_reader(text.as_bytes())
            .ctx(&ctx)
            .stream()
            .unwrap()
            .filter(|r| r.is_ok())
            .count();
        assert_eq!(n, 40);
        assert_eq!(ctx.metrics().counter(CounterId::IngestRecordsText), 40);
        assert_eq!(
            ctx.metrics().counter(CounterId::IngestBytesText),
            text.len() as u64
        );

        // A malformed trace books one parse error, batch and stream alike.
        let ctx = AnalysisCtx::session().with_metrics(Metrics::enabled());
        TraceSource::from_str("0,zz,broken,1:1,0,27,9,\n")
            .ctx(&ctx)
            .records()
            .unwrap_err();
        assert_eq!(ctx.metrics().counter(CounterId::ParseErrors), 1);
        let errs = TraceSource::from_str("0,zz,broken,1:1,0,27,9,\n")
            .ctx(&ctx)
            .stream()
            .unwrap()
            .filter(|r| r.is_err())
            .count();
        assert_eq!(errs, 1);
        assert_eq!(ctx.metrics().counter(CounterId::ParseErrors), 2);
    }

    #[test]
    fn limits_trip_typed_errors_on_every_input_kind() {
        use crate::limits::{ResourceKind, ResourceLimits};
        let base = AnalysisCtx::session();
        let recs = synth(&base, 50);
        let text = text_of(&base, &recs);
        let bin = to_bytes(&recs, &base);

        // Record ceiling, in-memory text.
        let ctx = AnalysisCtx::session().with_limits(ResourceLimits::new().max_trace_records(10));
        let err = TraceSource::from_str(&text)
            .ctx(&ctx)
            .records()
            .unwrap_err();
        let TraceReadError::Resource(r) = err else {
            panic!("expected a resource error");
        };
        assert_eq!(r.kind, ResourceKind::TraceRecords);
        assert_eq!(r.limit, 10);

        // Byte ceiling, binary from a reader: trips mid-read.
        let ctx = AnalysisCtx::session().with_limits(ResourceLimits::new().max_trace_bytes(64));
        let err = TraceSource::from_reader(&bin[..])
            .ctx(&ctx)
            .records()
            .unwrap_err();
        let TraceReadError::Resource(r) = err else {
            panic!("expected a resource error, not {err}");
        };
        assert_eq!(r.kind, ResourceKind::TraceBytes);

        // Symbol ceiling, in-memory binary.
        let ctx = AnalysisCtx::session().with_limits(ResourceLimits::new().max_symbols(2));
        let err = TraceSource::from_bytes(&bin)
            .ctx(&ctx)
            .records()
            .unwrap_err();
        let TraceReadError::Resource(r) = err else {
            panic!("expected a resource error, not {err}");
        };
        assert_eq!(r.kind, ResourceKind::Symbols);

        // Arena-byte ceiling.
        let ctx = AnalysisCtx::session().with_limits(ResourceLimits::new().max_arena_bytes(3));
        let err = TraceSource::from_str(&text)
            .ctx(&ctx)
            .records()
            .unwrap_err();
        let TraceReadError::Resource(r) = err else {
            panic!("expected a resource error, not {err}");
        };
        assert_eq!(r.kind, ResourceKind::ArenaBytes);

        // Path input: an oversized file is rejected before being read.
        let dir = std::env::temp_dir().join(format!("autocheck-limits-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("big.txt");
        std::fs::write(&p, &text).unwrap();
        let ctx = AnalysisCtx::session().with_limits(ResourceLimits::new().max_trace_bytes(10));
        let err = TraceSource::from_path(&p).ctx(&ctx).records().unwrap_err();
        assert!(matches!(err, TraceReadError::Resource(_)));
        std::fs::remove_dir_all(&dir).ok();

        // Unlimited ctx still parses everything (no behavior change).
        let ctx = AnalysisCtx::session();
        assert_eq!(
            TraceSource::from_str(&text)
                .ctx(&ctx)
                .records()
                .unwrap()
                .len(),
            50
        );
    }

    #[test]
    fn byte_limit_of_u64_max_reads_everything() {
        use crate::limits::ResourceLimits;
        // `--limit trace-bytes=18446744073709551615` parses as a valid u64;
        // the one-past-the-ceiling arithmetic must saturate instead of
        // wrapping to a zero-length read (which would silently treat every
        // trace as empty).
        let ctx =
            AnalysisCtx::session().with_limits(ResourceLimits::new().max_trace_bytes(u64::MAX));
        let base = AnalysisCtx::session();
        let recs = synth(&base, 10);
        let text = text_of(&base, &recs);
        assert_eq!(
            TraceSource::from_reader(text.as_bytes())
                .ctx(&ctx)
                .records()
                .unwrap()
                .len(),
            10
        );
    }

    #[test]
    fn streams_enforce_limits_per_record_and_fuse() {
        use crate::limits::{ResourceKind, ResourceLimits};
        use autocheck_obs::Metrics;
        let base = AnalysisCtx::session();
        let recs = synth(&base, 30);
        let text = text_of(&base, &recs);
        let bin = to_bytes(&recs, &base);

        for (name, input) in [("text", text.as_bytes()), ("binary", &bin[..])] {
            let ctx = AnalysisCtx::session()
                .with_metrics(Metrics::enabled())
                .with_limits(ResourceLimits::new().max_trace_records(5));
            let items: Vec<_> = TraceSource::from_reader(input)
                .ctx(&ctx)
                .stream()
                .unwrap()
                .collect();
            assert_eq!(items.len(), 6, "{name}: 5 records then the violation");
            assert!(items[..5].iter().all(|r| r.is_ok()), "{name}");
            let Err(TraceReadError::Resource(r)) = &items[5] else {
                panic!("{name}: expected a resource error, got {:?}", items[5]);
            };
            assert_eq!(r.kind, ResourceKind::TraceRecords);
            assert_eq!(
                ctx.metrics()
                    .counter(autocheck_obs::CounterId::LimitExceeded),
                1,
                "{name}: the violation books the limit counter"
            );
        }

        // Byte ceiling through the streaming path trips as a typed error
        // too (smuggled through the reader stack, restored at the stream).
        let ctx = AnalysisCtx::session().with_limits(ResourceLimits::new().max_trace_bytes(40));
        let items: Vec<_> = TraceSource::from_reader(text.as_bytes())
            .ctx(&ctx)
            .stream()
            .unwrap()
            .collect();
        let last = items.last().unwrap();
        assert!(
            matches!(last, Err(TraceReadError::Resource(r)) if r.kind == ResourceKind::TraceBytes),
            "expected a trace-bytes violation, got {last:?}"
        );
    }

    #[test]
    fn parse_error_lines_stay_absolute() {
        let ctx = AnalysisCtx::session();
        let recs = synth(&ctx, 50);
        let mut text = text_of(&ctx, &recs);
        let bad_line = text.lines().count() as u64 + 1;
        text.push_str("0,zz,broken,1:1,0,27,9,\n");
        for source in [
            TraceSource::from_str(&text).ctx(&ctx),
            TraceSource::from_reader(text.as_bytes())
                .ctx(&ctx)
                .window(128),
        ] {
            let err = source.records().unwrap_err();
            let TraceReadError::Parse(e) = err else {
                panic!("expected a parse error");
            };
            assert_eq!(e.line, bad_line);
        }
    }
}
