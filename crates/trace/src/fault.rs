//! Deterministic fault injection for ingest robustness testing.
//!
//! [`FaultReader`] wraps any [`Read`] and perturbs the byte stream it
//! yields according to a seeded [`FaultPlan`]: short reads (returning fewer
//! bytes than asked, which shakes out buffer-refill logic), an injected
//! [`io::Error`] at a configured offset, hard truncation (premature EOF),
//! and bit flips at chosen offsets. Everything is driven by a small
//! xorshift generator seeded from the plan, so a failing case replays
//! exactly from its seed — the property the proptest suites and the
//! hostile-corpus CI job rely on.
//!
//! The wrapper lives in the library (not the test tree) because all three
//! front doors exercise it: the batch pipeline, the streaming engine, and
//! `MultiAnalyzer` jobs each accept a reader, and the acceptance bar for
//! the survivability layer is "no panic, typed errors only" under any
//! plan. It injects faults strictly *below* the parsing layer, so every
//! failure it provokes must surface as a typed
//! [`TraceReadError`](crate::reader::TraceReadError) — never a panic and
//! never unbounded allocation.

use std::io::{self, Read};

/// What faults to inject, and where. Deterministic given the same plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the internal generator deciding short-read lengths.
    pub seed: u64,
    /// Serve reads in randomly short chunks (1..=7 bytes) instead of
    /// filling the caller's buffer.
    pub short_reads: bool,
    /// Stop yielding bytes at this offset: a premature clean EOF.
    pub truncate_at: Option<u64>,
    /// Return an injected `io::Error` once the stream reaches this offset.
    pub error_at: Option<u64>,
    /// Flip the lowest bit of the byte at each of these offsets.
    pub bit_flips: Vec<u64>,
}

impl FaultPlan {
    /// A plan that passes bytes through untouched.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    /// Derive a varied plan from a bare seed over a payload of `len` bytes:
    /// deterministically picks some combination of short reads, truncation,
    /// an injected error, and bit flips. The workhorse for proptests —
    /// every seed is replayable and every fault lands inside the payload.
    pub fn from_seed(seed: u64, len: u64) -> FaultPlan {
        let mut rng = XorShift::new(seed);
        let mut plan = FaultPlan {
            seed,
            short_reads: rng.next().is_multiple_of(2),
            ..FaultPlan::default()
        };
        if len == 0 {
            return plan;
        }
        match rng.next() % 4 {
            0 => plan.truncate_at = Some(rng.next() % len),
            1 => plan.error_at = Some(rng.next() % len),
            _ => {}
        }
        let flips = rng.next() % 4;
        for _ in 0..flips {
            plan.bit_flips.push(rng.next() % len);
        }
        plan
    }

    /// Builder: enable short reads.
    pub fn with_short_reads(mut self) -> FaultPlan {
        self.short_reads = true;
        self
    }

    /// Builder: truncate the stream at `offset`.
    pub fn truncate_at(mut self, offset: u64) -> FaultPlan {
        self.truncate_at = Some(offset);
        self
    }

    /// Builder: inject an `io::Error` at `offset`.
    pub fn error_at(mut self, offset: u64) -> FaultPlan {
        self.error_at = Some(offset);
        self
    }

    /// Builder: flip the low bit of the byte at `offset`.
    pub fn flip_bit_at(mut self, offset: u64) -> FaultPlan {
        self.bit_flips.push(offset);
        self
    }

    /// Wrap `inner` with this plan.
    pub fn reader<R: Read>(self, inner: R) -> FaultReader<R> {
        FaultReader::new(inner, self)
    }
}

/// A [`Read`] adapter that injects the faults described by a [`FaultPlan`].
pub struct FaultReader<R> {
    inner: R,
    plan: FaultPlan,
    /// Bytes yielded to the caller so far (the stream offset).
    pos: u64,
    rng: XorShift,
    errored: bool,
}

impl<R: Read> FaultReader<R> {
    /// Wrap `inner`, perturbing its bytes per `plan`.
    pub fn new(inner: R, plan: FaultPlan) -> FaultReader<R> {
        let rng = XorShift::new(plan.seed);
        FaultReader {
            inner,
            plan,
            pos: 0,
            rng,
            errored: false,
        }
    }

    /// The wrapped reader's current offset (bytes yielded so far).
    pub fn offset(&self) -> u64 {
        self.pos
    }
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        // Truncation: clean EOF at the configured offset.
        let mut want = buf.len() as u64;
        if let Some(t) = self.plan.truncate_at {
            if self.pos >= t {
                return Ok(0);
            }
            want = want.min(t - self.pos);
        }
        // Injected error: fires once the stream reaches the offset, once.
        if let Some(e) = self.plan.error_at {
            if self.pos >= e && !self.errored {
                self.errored = true;
                return Err(io::Error::other(format!(
                    "injected fault at offset {e} (seed {})",
                    self.plan.seed
                )));
            }
            if self.pos < e {
                want = want.min(e - self.pos);
            }
        }
        // Short reads: serve 1..=7 bytes at a time.
        if self.plan.short_reads {
            want = want.min(1 + self.rng.next() % 7);
        }
        let n = self.inner.read(&mut buf[..want as usize])?;
        // Bit flips inside the window just served.
        for &f in &self.plan.bit_flips {
            if f >= self.pos && f < self.pos + n as u64 {
                buf[(f - self.pos) as usize] ^= 1;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

/// Tiny deterministic xorshift64 generator — no external RNG deps, stable
/// across platforms, good enough to vary short-read lengths.
#[derive(Clone, Debug)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        // Zero is a fixed point of xorshift; dodge it deterministically.
        XorShift((seed ^ 0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn drain(mut r: impl Read) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        r.read_to_end(&mut out)?;
        Ok(out)
    }

    #[test]
    fn clean_plan_passes_bytes_through() {
        let data: Vec<u8> = (0..=255).collect();
        let got = drain(FaultPlan::clean().reader(&data[..])).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn short_reads_preserve_content() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let plan = FaultPlan {
            seed: 42,
            short_reads: true,
            ..FaultPlan::default()
        };
        let got = drain(plan.reader(&data[..])).unwrap();
        assert_eq!(got, data, "short reads must not lose or reorder bytes");
    }

    #[test]
    fn truncation_stops_at_offset() {
        let data = [7u8; 100];
        let got = drain(FaultPlan::clean().truncate_at(33).reader(&data[..])).unwrap();
        assert_eq!(got.len(), 33);
    }

    #[test]
    fn injected_error_fires_at_offset() {
        let data = [7u8; 100];
        let mut r = FaultPlan::clean().error_at(10).reader(&data[..]);
        let mut buf = Vec::new();
        let err = r.read_to_end(&mut buf).unwrap_err();
        assert!(err.to_string().contains("injected fault at offset 10"));
        assert_eq!(buf.len(), 10, "bytes before the fault offset still arrive");
    }

    #[test]
    fn bit_flip_lands_exactly_once() {
        let data = [0u8; 64];
        let got = drain(
            FaultPlan::clean()
                .flip_bit_at(5)
                .with_short_reads()
                .reader(&data[..]),
        )
        .unwrap();
        assert_eq!(got[5], 1);
        assert_eq!(got.iter().filter(|&&b| b != 0).count(), 1);
    }

    #[test]
    fn same_seed_same_stream() {
        let data: Vec<u8> = (0..500).map(|i| (i * 31 % 256) as u8).collect();
        let a = drain(FaultPlan::from_seed(9, data.len() as u64).reader(&data[..]));
        let b = drain(FaultPlan::from_seed(9, data.len() as u64).reader(&data[..]));
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y),
            (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
            other => panic!("same seed diverged: {other:?}"),
        }
    }

    #[test]
    fn from_seed_is_deterministic_and_varied() {
        let plans: Vec<FaultPlan> = (0..256).map(|s| FaultPlan::from_seed(s, 1000)).collect();
        let again: Vec<FaultPlan> = (0..256).map(|s| FaultPlan::from_seed(s, 1000)).collect();
        assert_eq!(plans, again);
        assert!(plans.iter().any(|p| p.short_reads));
        assert!(plans.iter().any(|p| p.truncate_at.is_some()));
        assert!(plans.iter().any(|p| p.error_at.is_some()));
        assert!(plans.iter().any(|p| !p.bit_flips.is_empty()));
    }
}
