//! Serializing records into the textual trace format.

use crate::record::{Operand, Record};
use std::fmt::Write as FmtWrite;
use std::io::{self, Write};

/// Streaming trace writer over any [`io::Write`].
///
/// The writer buffers one block at a time in a reusable `String`, so the
/// per-record allocation cost is amortized away — the trace emitter sits on
/// the interpreter's hot path.
pub struct TraceWriter<W: Write> {
    out: W,
    buf: String,
    records: u64,
    bytes: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Wrap `out`.
    pub fn new(out: W) -> Self {
        TraceWriter {
            out,
            buf: String::with_capacity(256),
            records: 0,
            bytes: 0,
        }
    }

    /// Serialize one record.
    pub fn write_record(&mut self, r: &Record) -> io::Result<()> {
        self.buf.clear();
        format_record(r, &mut self.buf);
        self.records += 1;
        self.bytes += self.buf.len() as u64;
        self.out.write_all(self.buf.as_bytes())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Number of bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flush and return the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }

    /// Mutable access to the underlying writer.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.out
    }
}

/// Append the textual form of `r` to `buf`.
pub fn format_record(r: &Record, buf: &mut String) {
    // Header: 0,<line>,<func>,<bb_line>:<bb_col>,<label>,<opcode>,<dyn_id>,
    let _ = writeln!(
        buf,
        "0,{},{},{}:{},{},{},{},",
        r.src_line, r.func, r.bb.0, r.bb.1, r.bb_label, r.opcode, r.dyn_id
    );
    for op in &r.operands {
        format_operand(op, buf);
    }
    if let Some(res) = &r.result {
        format_operand(res, buf);
    }
}

fn format_operand(op: &Operand, buf: &mut String) {
    let _ = writeln!(
        buf,
        "{},{},{},{},{},",
        op.tag,
        op.bits,
        op.value,
        if op.is_reg { 1 } else { 0 },
        op.name
    );
}

/// Serialize a slice of records to a `String` (convenience for tests and
/// small traces).
pub fn to_string(records: &[Record]) -> String {
    let mut s = String::new();
    for r in records {
        format_record(r, &mut s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::SymId;
    use crate::name::Name;
    use crate::record::{opcodes, OpTag, TraceValue};

    /// The `Load` block from paper Fig. 1, transliterated to our canonical
    /// field order.
    #[test]
    fn formats_load_block() {
        let r = Record {
            src_line: 3,
            func: SymId::intern("foo"),
            bb: (6, 1),
            bb_label: SymId::intern("11"),
            opcode: opcodes::LOAD,
            dyn_id: 215,
            operands: vec![Operand::reg(
                OpTag::Pos(1),
                64,
                TraceValue::Ptr(0x7ffc_f3f2_5a70),
                Name::sym("p"),
            )],
            result: Some(Operand::reg(
                OpTag::Result,
                32,
                TraceValue::I(1),
                Name::Temp(8),
            )),
        };
        let mut s = String::new();
        format_record(&r, &mut s);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "0,3,foo,6:1,11,27,215,");
        assert_eq!(lines[1], "1,64,0x7ffcf3f25a70,1,p,");
        assert_eq!(lines[2], "r,32,1,1,8,");
    }

    #[test]
    fn formats_immediate_operand_with_empty_name() {
        let r = Record {
            src_line: 12,
            func: SymId::intern("foo"),
            bb: (6, 1),
            bb_label: SymId::intern("12"),
            opcode: opcodes::MUL,
            dyn_id: 216,
            operands: vec![
                Operand::reg(OpTag::Pos(1), 32, TraceValue::I(2), Name::Temp(8)),
                Operand::imm(OpTag::Pos(2), 32, TraceValue::I(2)),
            ],
            result: Some(Operand::reg(
                OpTag::Result,
                32,
                TraceValue::I(4),
                Name::Temp(9),
            )),
        };
        let mut s = String::new();
        format_record(&r, &mut s);
        assert!(s.contains("2,32,2,0,,\n"), "immediate line malformed: {s}");
    }

    #[test]
    fn writer_counts_records_and_bytes() {
        let r = Record {
            src_line: 1,
            func: SymId::intern("main"),
            bb: (1, 1),
            bb_label: SymId::intern("0"),
            opcode: opcodes::BR,
            dyn_id: 0,
            operands: vec![],
            result: None,
        };
        let mut w = TraceWriter::new(Vec::new());
        w.write_record(&r).unwrap();
        w.write_record(&r).unwrap();
        assert_eq!(w.records_written(), 2);
        let bytes = w.bytes_written();
        let inner = w.finish().unwrap();
        assert_eq!(inner.len() as u64, bytes);
    }
}
