//! Register and variable names as they appear in trace operand records.

use crate::intern::{SymId, SymStr};
use std::fmt;

/// A register name in the trace.
///
/// LLVM temporaries are plain numbers (`8`, `9`, ...) while named variables
/// keep their symbolic name (`p`, `sum`). AutoCheck's reg-var and reg-reg
/// maps key on these, so the distinction is structural: `Temp` for numbered
/// temporaries, `Sym` for symbolic names, `None` for immediates.
///
/// Symbolic names are interned ([`SymId`]), making `Name` a `Copy` 8-byte
/// value: the maps the analysis updates per record compare and hash plain
/// integers instead of strings.
///
/// MiniLang identifiers cannot start with a digit, so the textual encoding
/// is unambiguous: an all-digit name parses as `Temp`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Name {
    /// Numbered temporary register.
    Temp(u32),
    /// Symbolic (variable, parameter, or function) name.
    Sym(SymId),
    /// No name — the operand is an immediate constant.
    None,
}

impl Name {
    /// Symbolic name from a string slice.
    pub fn sym(s: &str) -> Name {
        Name::Sym(SymId::intern(s))
    }

    /// Parse the textual form (empty → `None`, digits → `Temp`, else `Sym`).
    pub fn parse(s: &str) -> Name {
        if s.is_empty() || s == " " {
            Name::None
        } else if s.bytes().all(|b| b.is_ascii_digit()) {
            match s.parse::<u32>() {
                Ok(n) => Name::Temp(n),
                Err(_) => Name::sym(s),
            }
        } else {
            Name::sym(s)
        }
    }

    /// True when this is a symbolic (variable) name.
    pub fn is_sym(&self) -> bool {
        matches!(self, Name::Sym(_))
    }

    /// The symbolic name, if any (owned — see [`SymStr`]).
    pub fn as_sym(&self) -> Option<SymStr> {
        match self {
            Name::Sym(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Name::Temp(n) => write!(f, "{n}"),
            Name::Sym(s) => fmt::Display::fmt(s, f),
            Name::None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for n in [Name::Temp(0), Name::Temp(81), Name::sym("sum"), Name::None] {
            assert_eq!(Name::parse(&n.to_string()), n);
        }
    }

    #[test]
    fn digits_parse_as_temp() {
        assert_eq!(Name::parse("8"), Name::Temp(8));
        assert_eq!(Name::parse("0"), Name::Temp(0));
    }

    #[test]
    fn identifiers_parse_as_sym() {
        assert_eq!(Name::parse("p"), Name::sym("p"));
        assert_eq!(Name::parse("key_array"), Name::sym("key_array"));
        // Mixed alphanumerics are symbolic.
        assert_eq!(Name::parse("t1"), Name::sym("t1"));
    }

    #[test]
    fn space_and_empty_are_none() {
        assert_eq!(Name::parse(""), Name::None);
        assert_eq!(Name::parse(" "), Name::None);
    }

    #[test]
    fn huge_digit_strings_do_not_panic() {
        // Longer than u32: falls back to Sym rather than panicking.
        let s = "99999999999999999999";
        assert!(matches!(Name::parse(s), Name::Sym(_)));
    }

    #[test]
    fn name_is_copy_and_orders_syms_by_string() {
        let a = Name::sym("name_test_aa");
        let b = a; // Copy
        assert_eq!(a, b);
        // Derived variant order Temp < Sym < None, symbols by string.
        assert!(Name::Temp(u32::MAX) < Name::sym("a"));
        assert!(Name::sym("zz") < Name::None);
        assert!(Name::sym("name_test_aa") < Name::sym("name_test_ab"));
    }

    #[test]
    fn as_sym_resolves() {
        assert_eq!(Name::sym("p").as_sym().as_deref(), Some("p"));
        assert_eq!(Name::Temp(3).as_sym().as_deref(), None);
        assert_eq!(Name::None.as_sym().as_deref(), None);
    }
}
