//! Register and variable names as they appear in trace operand records.

use std::fmt;
use std::sync::Arc;

/// A register name in the trace.
///
/// LLVM temporaries are plain numbers (`8`, `9`, ...) while named variables
/// keep their symbolic name (`p`, `sum`). AutoCheck's reg-var and reg-reg
/// maps key on these, so the distinction is structural: `Temp` for numbered
/// temporaries, `Sym` for symbolic names, `None` for immediates.
///
/// MiniLang identifiers cannot start with a digit, so the textual encoding
/// is unambiguous: an all-digit name parses as `Temp`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Name {
    /// Numbered temporary register.
    Temp(u32),
    /// Symbolic (variable, parameter, or function) name.
    Sym(Arc<str>),
    /// No name — the operand is an immediate constant.
    None,
}

impl Name {
    /// Symbolic name from a string slice.
    pub fn sym(s: &str) -> Name {
        Name::Sym(Arc::from(s))
    }

    /// Parse the textual form (empty → `None`, digits → `Temp`, else `Sym`).
    pub fn parse(s: &str) -> Name {
        if s.is_empty() || s == " " {
            Name::None
        } else if s.bytes().all(|b| b.is_ascii_digit()) {
            match s.parse::<u32>() {
                Ok(n) => Name::Temp(n),
                Err(_) => Name::Sym(Arc::from(s)),
            }
        } else {
            Name::Sym(Arc::from(s))
        }
    }

    /// True when this is a symbolic (variable) name.
    pub fn is_sym(&self) -> bool {
        matches!(self, Name::Sym(_))
    }

    /// The symbolic name, if any.
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Name::Sym(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Name::Temp(n) => write!(f, "{n}"),
            Name::Sym(s) => write!(f, "{s}"),
            Name::None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for n in [Name::Temp(0), Name::Temp(81), Name::sym("sum"), Name::None] {
            assert_eq!(Name::parse(&n.to_string()), n);
        }
    }

    #[test]
    fn digits_parse_as_temp() {
        assert_eq!(Name::parse("8"), Name::Temp(8));
        assert_eq!(Name::parse("0"), Name::Temp(0));
    }

    #[test]
    fn identifiers_parse_as_sym() {
        assert_eq!(Name::parse("p"), Name::sym("p"));
        assert_eq!(Name::parse("key_array"), Name::sym("key_array"));
        // Mixed alphanumerics are symbolic.
        assert_eq!(Name::parse("t1"), Name::sym("t1"));
    }

    #[test]
    fn space_and_empty_are_none() {
        assert_eq!(Name::parse(""), Name::None);
        assert_eq!(Name::parse(" "), Name::None);
    }

    #[test]
    fn huge_digit_strings_do_not_panic() {
        // Longer than u32: falls back to Sym rather than panicking.
        let s = "99999999999999999999";
        assert!(matches!(Name::parse(s), Name::Sym(_)));
    }
}
