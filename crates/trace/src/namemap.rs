//! Dense maps keyed by register/variable [`Name`]s — the hot-path
//! replacement for `HashMap<Name, V>` in the analysis data plane.
//!
//! Both kinds of name are integer-shaped after interning: temporaries are
//! compiler-assigned sequential numbers and symbols are dense
//! [`SymId`](crate::SymId)s, so the reg-var/reg-reg maps that the paper's
//! §IV-B updates per record become two vectors indexed directly by those
//! integers — a bounds check and a load instead of a hash, probe, and
//! string compare.
//!
//! Temporary numbers come from the trace and are *not* guaranteed dense
//! (a hand-written trace may name a register `4000000000`), so temps above
//! [`DENSE_TEMP_LIMIT`] spill into an `FxHashMap` instead of growing the
//! vector — the dense fast path stays allocation-bounded by the program,
//! never by a hostile input.

use crate::name::Name;
use fxhash::FxHashMap;

/// Temps with numbers below this index into the dense table; larger ones
/// use the overflow map. The compiler numbers temporaries per function
/// (sequential from 0), so real traces sit far below this; the limit only
/// caps what a hand-written trace can make a dense table allocate
/// (64Ki slots ≈ 1 MB per map at worst).
pub const DENSE_TEMP_LIMIT: u32 = 1 << 16;

/// A map from [`Name`] to `V` with O(1) vector-indexed access for the
/// dense key shapes (interned symbols, sequentially-numbered temps).
#[derive(Clone, Debug)]
pub struct NameMap<V> {
    temps: Vec<Option<V>>,
    temp_overflow: FxHashMap<u32, V>,
    syms: Vec<Option<V>>,
    none: Option<V>,
}

impl<V> Default for NameMap<V> {
    fn default() -> Self {
        NameMap {
            temps: Vec::new(),
            temp_overflow: FxHashMap::default(),
            syms: Vec::new(),
            none: None,
        }
    }
}

impl<V> NameMap<V> {
    /// An empty map.
    pub fn new() -> NameMap<V> {
        NameMap::default()
    }

    /// Look `name` up.
    #[inline]
    pub fn get(&self, name: Name) -> Option<&V> {
        match name {
            Name::Temp(n) if n < DENSE_TEMP_LIMIT => {
                self.temps.get(n as usize).and_then(|s| s.as_ref())
            }
            Name::Temp(n) => self.temp_overflow.get(&n),
            Name::Sym(s) => self.syms.get(s.index()).and_then(|s| s.as_ref()),
            Name::None => self.none.as_ref(),
        }
    }

    /// Insert, returning the previous value.
    #[inline]
    pub fn insert(&mut self, name: Name, value: V) -> Option<V> {
        match name {
            Name::Temp(n) if n >= DENSE_TEMP_LIMIT => self.temp_overflow.insert(n, value),
            _ => self.dense_slot(name).replace(value),
        }
    }

    /// Insert only if absent (the `entry(..).or_insert(..)` idiom).
    #[inline]
    pub fn insert_if_absent(&mut self, name: Name, value: V) {
        match name {
            Name::Temp(n) if n >= DENSE_TEMP_LIMIT => {
                self.temp_overflow.entry(n).or_insert(value);
            }
            _ => {
                let slot = self.dense_slot(name);
                if slot.is_none() {
                    *slot = Some(value);
                }
            }
        }
    }

    /// True when `name` has a value.
    #[inline]
    pub fn contains(&self, name: Name) -> bool {
        self.get(name).is_some()
    }

    /// Slot for the vector-backed key shapes; overflow temps are excluded
    /// by the callers above.
    #[inline]
    fn dense_slot(&mut self, name: Name) -> &mut Option<V> {
        match name {
            Name::Temp(n) => {
                debug_assert!(n < DENSE_TEMP_LIMIT);
                let i = n as usize;
                if self.temps.len() <= i {
                    self.temps.resize_with(i + 1, || None);
                }
                &mut self.temps[i]
            }
            Name::Sym(s) => {
                let i = s.index();
                if self.syms.len() <= i {
                    self.syms.resize_with(i + 1, || None);
                }
                &mut self.syms[i]
            }
            Name::None => &mut self.none,
        }
    }
}

/// A set of [`Name`]s with the same dense representation.
#[derive(Clone, Debug, Default)]
pub struct NameSet {
    inner: NameMap<()>,
}

impl NameSet {
    /// An empty set.
    pub fn new() -> NameSet {
        NameSet::default()
    }

    /// Insert `name`; returns true when it was not present.
    #[inline]
    pub fn insert(&mut self, name: Name) -> bool {
        self.inner.insert(name, ()).is_none()
    }

    /// True when `name` is present.
    #[inline]
    pub fn contains(&self, name: Name) -> bool {
        self.inner.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymId;

    #[test]
    fn all_key_shapes_round_trip() {
        let mut m: NameMap<u64> = NameMap::new();
        let keys = [
            Name::Temp(0),
            Name::Temp(8),
            Name::Temp(DENSE_TEMP_LIMIT + 5),
            Name::Sym(SymId::intern("namemap_test_p")),
            Name::None,
        ];
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.get(k), None);
            assert_eq!(m.insert(k, i as u64), None);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.get(k), Some(&(i as u64)));
            assert!(m.contains(k));
        }
        assert_eq!(m.insert(keys[1], 99), Some(1), "replace returns previous");
        assert_eq!(m.get(keys[1]), Some(&99));
    }

    #[test]
    fn insert_if_absent_keeps_first_binding() {
        let mut m: NameMap<&str> = NameMap::new();
        let k = Name::Sym(SymId::intern("namemap_test_frozen"));
        m.insert_if_absent(k, "first");
        m.insert_if_absent(k, "second");
        assert_eq!(m.get(k), Some(&"first"));
        let hot = Name::Temp(DENSE_TEMP_LIMIT + 1);
        m.insert_if_absent(hot, "of1");
        m.insert_if_absent(hot, "of2");
        assert_eq!(m.get(hot), Some(&"of1"));
    }

    #[test]
    fn huge_temp_numbers_do_not_allocate_dense_tables() {
        let mut m: NameMap<u8> = NameMap::new();
        m.insert(Name::Temp(u32::MAX), 1);
        assert!(m.temps.is_empty(), "hostile temp ids must spill to the map");
        assert_eq!(m.get(Name::Temp(u32::MAX)), Some(&1));
    }

    #[test]
    fn name_set_semantics() {
        let mut s = NameSet::new();
        let k = Name::Sym(SymId::intern("namemap_test_set"));
        assert!(s.insert(k));
        assert!(!s.insert(k));
        assert!(s.contains(k));
        assert!(!s.contains(Name::Temp(3)));
    }
}
