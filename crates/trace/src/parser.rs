//! Streaming parser for the textual trace format.
//!
//! The parser is written for throughput: it works line-by-line over borrowed
//! bytes, splits fields manually (no regex), and interns every symbol
//! (function names, block labels, operand names) through its
//! [`AnalysisCtx`]'s [`SymbolSpace`](crate::SymbolSpace) — the default
//! ctx's global space unless the parser was built for a session — so the
//! canonical allocation per distinct symbol happens once per space, not
//! (as the old per-parser interner did) twice per symbol for a separate
//! `String` key and `Arc<str>` value.
//!
//! The space's table sits behind a lock, so each parser keeps a private
//! *memo* (`str → SymId`): symbols repeat millions of times in real traces,
//! and the memo turns all repeat lookups into a private hash probe —
//! parallel-parse workers touch the shared table only on first sight of a
//! symbol, which is what keeps parallel parsing off the space's lock.

use crate::ctx::AnalysisCtx;
use crate::intern::{SymId, SymStr};
use crate::name::Name;
use crate::record::{OpTag, Operand, Record, TraceValue};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with the 1-based line number where it occurred.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: u64,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Incremental trace parser. Feed it lines; finished records come out.
pub struct TraceParser {
    /// The session this parser interns into (default: the thread's
    /// current space — the global one unless a session guard is live).
    ctx: AnalysisCtx,
    /// Parser-private memo onto the ctx's space (see module docs). Keyed by
    /// the refcounted [`SymStr`] the space hands back, so the memo shares
    /// the space's allocation per symbol instead of copying. SipHash (std
    /// default), not FxHash: these are untrusted strings straight from the
    /// trace, the same reason the space's table avoids Fx (see `intern.rs`).
    memo: HashMap<SymStr, SymId>,
    current: Option<Record>,
    line_no: u64,
}

impl Default for TraceParser {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceParser {
    /// A fresh parser interning into the thread's current space.
    pub fn new() -> Self {
        Self::with_ctx(AnalysisCtx::current())
    }

    /// A parser interning into `ctx`'s symbol space.
    pub fn with_ctx(ctx: AnalysisCtx) -> Self {
        TraceParser {
            ctx,
            memo: HashMap::new(),
            current: None,
            line_no: 0,
        }
    }

    /// Intern through the memo: repeat symbols never touch the space lock.
    fn intern(&mut self, s: &str) -> SymId {
        if let Some(&id) = self.memo.get(s) {
            return id;
        }
        let id = self.ctx.intern(s);
        self.memo.insert(self.ctx.resolve(id), id);
        id
    }

    /// Like [`Name::parse`], but interning through the parser's memo.
    fn parse_name(&mut self, s: &str) -> Name {
        if s.is_empty() || s == " " {
            Name::None
        } else if s.bytes().all(|b| b.is_ascii_digit()) {
            match s.parse::<u32>() {
                Ok(n) => Name::Temp(n),
                Err(_) => Name::Sym(self.intern(s)),
            }
        } else {
            Name::Sym(self.intern(s))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line_no,
            message: message.into(),
        }
    }

    /// Feed one line. Returns a completed record when the line *starts a new
    /// block* and a previous block was in flight.
    pub fn feed_line(&mut self, line: &str) -> Result<Option<Record>, ParseError> {
        self.line_no += 1;
        let line = line.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            return Ok(None);
        }
        let mut fields = FieldIter::new(line);
        let tag = fields.next().ok_or_else(|| self.err("empty line"))?;
        if tag == "0" {
            let done = self.current.take();
            let rec = self.parse_header(&mut fields)?;
            self.current = Some(rec);
            Ok(done)
        } else {
            let op = self.parse_operand(tag, &mut fields)?;
            if self.current.is_none() {
                return Err(self.err("operand line before any header"));
            }
            if op.tag == OpTag::Result && self.current.as_ref().is_some_and(|c| c.result.is_some())
            {
                return Err(self.err("duplicate result line"));
            }
            // The is_none check above returned already, so a record is in
            // flight — no unwrap on the hostile-input path.
            if let Some(current) = self.current.as_mut() {
                if op.tag == OpTag::Result {
                    current.result = Some(op);
                } else {
                    current.operands.push(op);
                }
            }
            Ok(None)
        }
    }

    /// Flush the final in-flight record at end of input.
    pub fn finish(&mut self) -> Option<Record> {
        self.current.take()
    }

    fn parse_header(&mut self, fields: &mut FieldIter<'_>) -> Result<Record, ParseError> {
        let src_line: i32 = self.take_parse(fields, "src line")?;
        let func = {
            let f = fields.next().ok_or_else(|| self.err("missing function"))?;
            self.intern(f)
        };
        let bb_str = fields.next().ok_or_else(|| self.err("missing bb id"))?;
        let bb = {
            let (l, c) = bb_str
                .split_once(':')
                .ok_or_else(|| self.err(format!("malformed bb id `{bb_str}`")))?;
            (
                l.parse::<u32>()
                    .map_err(|_| self.err(format!("bad bb line `{l}`")))?,
                c.parse::<u32>()
                    .map_err(|_| self.err(format!("bad bb col `{c}`")))?,
            )
        };
        let bb_label = {
            let l = fields.next().ok_or_else(|| self.err("missing bb label"))?;
            self.intern(l)
        };
        let opcode: u16 = self.take_parse(fields, "opcode")?;
        let dyn_id: u64 = self.take_parse(fields, "dyn id")?;
        Ok(Record {
            src_line,
            func,
            bb,
            bb_label,
            opcode,
            dyn_id,
            operands: Vec::new(),
            result: None,
        })
    }

    fn take_parse<T: std::str::FromStr>(
        &self,
        fields: &mut FieldIter<'_>,
        what: &str,
    ) -> Result<T, ParseError> {
        let f = fields
            .next()
            .ok_or_else(|| self.err(format!("missing {what}")))?;
        f.parse::<T>()
            .map_err(|_| self.err(format!("bad {what} `{f}`")))
    }

    fn parse_operand(
        &mut self,
        tag: &str,
        fields: &mut FieldIter<'_>,
    ) -> Result<Operand, ParseError> {
        let tag = match tag {
            "r" => OpTag::Result,
            "f" => OpTag::Param,
            d => {
                let i: u8 = d
                    .parse()
                    .map_err(|_| self.err(format!("bad operand tag `{d}`")))?;
                if i == 0 {
                    return Err(self.err("operand id 0 is reserved for headers"));
                }
                OpTag::Pos(i)
            }
        };
        let bits: u16 = self.take_parse(fields, "operand bits")?;
        let value_str = fields
            .next()
            .ok_or_else(|| self.err("missing operand value"))?;
        let value = parse_value(value_str)
            .ok_or_else(|| self.err(format!("bad operand value `{value_str}`")))?;
        let is_reg_str = fields.next().ok_or_else(|| self.err("missing is_reg"))?;
        let is_reg = match is_reg_str {
            "1" => true,
            "0" => false,
            other => return Err(self.err(format!("bad is_reg `{other}`"))),
        };
        let name = self.parse_name(fields.next().unwrap_or(""));
        Ok(Operand {
            tag,
            bits,
            value,
            is_reg,
            name,
        })
    }
}

/// Parse an operand value field.
pub fn parse_value(s: &str) -> Option<TraceValue> {
    if s.is_empty() || s == " " {
        return Some(TraceValue::None);
    }
    if let Some(hex) = s.strip_prefix("0x") {
        return u64::from_str_radix(hex, 16).ok().map(TraceValue::Ptr);
    }
    if s.bytes()
        .all(|b| b.is_ascii_digit() || b == b'-' || b == b'+')
    {
        if let Ok(i) = s.parse::<i64>() {
            return Some(TraceValue::I(i));
        }
    }
    s.parse::<f64>().ok().map(TraceValue::F)
}

/// Iterator over comma-separated fields, ignoring a single trailing comma.
struct FieldIter<'a> {
    rest: &'a str,
}

impl<'a> FieldIter<'a> {
    fn new(s: &'a str) -> Self {
        FieldIter {
            rest: s.strip_suffix(',').unwrap_or(s),
        }
    }
}

impl<'a> Iterator for FieldIter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        if self.rest.is_empty() {
            return None;
        }
        match self.rest.split_once(',') {
            Some((head, tail)) => {
                self.rest = tail;
                Some(head)
            }
            None => {
                let head = self.rest;
                self.rest = "";
                Some(head)
            }
        }
    }
}

/// Parse a complete trace held in a string (default/global symbol space).
#[deprecated(since = "0.6.0", note = "use TraceSource::from_str(input).records()")]
pub fn parse_str(input: &str) -> Result<Vec<Record>, ParseError> {
    parse_str_core(input, &AnalysisCtx::current())
}

/// Parse a complete trace held in a string, interning symbols into `ctx`'s
/// space.
#[deprecated(
    since = "0.6.0",
    note = "use TraceSource::from_str(input).ctx(ctx).records()"
)]
pub fn parse_str_in(input: &str, ctx: &AnalysisCtx) -> Result<Vec<Record>, ParseError> {
    parse_str_core(input, ctx)
}

/// The serial in-memory text parse behind [`crate::TraceSource`] and the
/// parallel chunk workers.
pub(crate) fn parse_str_core(input: &str, ctx: &AnalysisCtx) -> Result<Vec<Record>, ParseError> {
    let mut p = TraceParser::with_ctx(ctx.clone());
    let mut out = Vec::new();
    for line in input.lines() {
        if let Some(r) = p.feed_line(line)? {
            out.push(r);
        }
    }
    if let Some(r) = p.finish() {
        out.push(r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::opcodes;
    use crate::writer;

    /// Test shorthand for the current-space serial parse (shadows the
    /// deprecated free function of the same name).
    fn parse_str(input: &str) -> Result<Vec<Record>, ParseError> {
        parse_str_core(input, &AnalysisCtx::current())
    }

    const FIG1: &str = "0,3,foo,6:1,11,27,215,\n1,64,0x7ffcf3f25a70,1,p,\nr,32,1,1,8,\n0,3,foo,6:1,12,12,216,\n1,32,2,1,8,\n2,32,2,0,,\nr,32,4,1,9,\n";

    #[test]
    fn parses_fig1_blocks() {
        let recs = parse_str(FIG1).unwrap();
        assert_eq!(recs.len(), 2);
        let load = &recs[0];
        assert_eq!(load.opcode, opcodes::LOAD);
        assert_eq!(load.func.as_str(), "foo");
        assert_eq!(load.bb, (6, 1));
        assert_eq!(load.dyn_id, 215);
        assert_eq!(load.op1().unwrap().name, Name::sym("p"));
        assert_eq!(load.op1().unwrap().value, TraceValue::Ptr(0x7ffcf3f25a70));
        assert_eq!(load.result.as_ref().unwrap().name, Name::Temp(8));

        let mul = &recs[1];
        assert_eq!(mul.opcode, opcodes::MUL);
        assert!(mul.is_arithmetic());
        assert!(!mul.op2().unwrap().is_reg);
        assert_eq!(mul.result.as_ref().unwrap().name, Name::Temp(9));
    }

    #[test]
    fn write_then_parse_round_trips() {
        let recs = parse_str(FIG1).unwrap();
        let text = writer::to_string(&recs);
        let again = parse_str(&text).unwrap();
        assert_eq!(recs, again);
    }

    #[test]
    fn interner_shares_function_names() {
        let recs = parse_str(FIG1).unwrap();
        // Repeated function names intern to the same id — and resolve to
        // literally the same shared allocation.
        assert_eq!(recs[0].func, recs[1].func);
        assert!(std::sync::Arc::ptr_eq(
            &recs[0].func.as_str().into_arc(),
            &recs[1].func.as_str().into_arc()
        ));
    }

    #[test]
    fn rejects_operand_before_header() {
        let err = parse_str("1,64,0x10,1,p,\n").unwrap_err();
        assert!(err.message.contains("before any header"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_garbage_header() {
        let err = parse_str("0,xx,foo,1:1,0,27,1,\n").unwrap_err();
        assert!(err.message.contains("src line"));
    }

    #[test]
    fn rejects_duplicate_result() {
        let input = "0,3,foo,6:1,11,27,215,\nr,32,1,1,8,\nr,32,1,1,9,\n";
        let err = parse_str(input).unwrap_err();
        assert!(err.message.contains("duplicate result"));
    }

    #[test]
    fn value_parsing_variants() {
        assert_eq!(parse_value("42"), Some(TraceValue::I(42)));
        assert_eq!(parse_value("-7"), Some(TraceValue::I(-7)));
        assert_eq!(parse_value("0x10"), Some(TraceValue::Ptr(16)));
        assert_eq!(parse_value("44.000000"), Some(TraceValue::F(44.0)));
        assert_eq!(parse_value(""), Some(TraceValue::None));
        assert_eq!(parse_value(" "), Some(TraceValue::None));
        assert_eq!(parse_value("0xzz"), None);
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert_eq!(parse_str("").unwrap(), vec![]);
        assert_eq!(parse_str("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn call_form2_param_lines() {
        // Paper Fig. 6(b): call with two args + two `f`-tagged params.
        let input = "0,17,main,21:1,49,49,199,\n\
                     1,64,0x7ffec14b0db0,1,6,\n\
                     2,64,0x7ffec14b0d80,1,7,\n\
                     f,64,0x7ffec14b0db0,1,p,\n\
                     f,64,0x7ffec14b0d80,1,q,\n";
        let recs = parse_str(input).unwrap();
        assert_eq!(recs.len(), 1);
        let call = &recs[0];
        assert_eq!(call.opcode, opcodes::CALL);
        assert_eq!(call.positional().count(), 2);
        let params: Vec<_> = call.params().collect();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].name, Name::sym("p"));
        assert_eq!(params[1].name, Name::sym("q"));
    }
}
