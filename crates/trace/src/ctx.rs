//! [`AnalysisCtx`]: everything that scopes one analysis session.
//!
//! The data plane used to lean on two process-wide facts: the global symbol
//! interner and deterministic FxHash on address-keyed maps. Both are wrong
//! for a process hosting many unrelated analyses — symbol ids would
//! accumulate across tenants (growing every dense sym-indexed table to the
//! process high-water mark), and a deterministic hash lets one tenant's
//! crafted trace degrade another's run. `AnalysisCtx` packages the
//! session-scoped replacements:
//!
//! * a [`SymbolSpace`] — the session's own dense symbol ids (see
//!   [`crate::intern`] for the space model);
//! * an **address-hash seed** — per-session seeding for maps keyed by
//!   trace-supplied addresses, non-zero only when the trace source is
//!   marked untrusted (seed 0 is bit-identical to plain FxHash, so trusted
//!   runs pay nothing);
//! * a **trust flag** recording that choice.
//!
//! Every component of the data plane (`TraceParser`, the parallel readers,
//! the interpreter's `Machine`, the streaming `Engine`, the batch and
//! streaming analyzers) accepts a ctx at construction and resolves symbols
//! through it from then on. [`AnalysisCtx::default`] addresses the global
//! space with deterministic hashing — the exact pre-session behavior — so
//! single-analysis embedders never have to name a ctx at all.

use crate::intern::{SpaceGuard, SymId, SymStr, SymbolSpace};
use crate::limits::ResourceLimits;
use autocheck_obs::Metrics;
use fxhash::{FxSeededHashMap, FxSeededState};
use std::collections::hash_map::RandomState;
use std::hash::BuildHasher;

/// The scope of one analysis: symbol space, address-hash seed, trust, and
/// the session's [`Metrics`] registry.
///
/// Cheap to clone; clones share the same symbol space and registry.
#[derive(Clone, Debug)]
pub struct AnalysisCtx {
    space: SymbolSpace,
    addr_seed: u64,
    trusted: bool,
    metrics: Metrics,
    limits: ResourceLimits,
}

impl Default for AnalysisCtx {
    /// The process-default scope: global symbol space, deterministic
    /// hashing, trusted input, metrics off. Behaviorally identical to the
    /// pre-session code path.
    fn default() -> Self {
        AnalysisCtx {
            space: SymbolSpace::global(),
            addr_seed: 0,
            trusted: true,
            metrics: Metrics::disabled(),
            limits: ResourceLimits::default(),
        }
    }
}

impl AnalysisCtx {
    /// A fresh session: its own empty [`SymbolSpace`], deterministic
    /// hashing, trusted input, metrics off. The starting point for every
    /// `MultiAnalyzer` session.
    pub fn session() -> AnalysisCtx {
        AnalysisCtx {
            space: SymbolSpace::new(),
            addr_seed: 0,
            trusted: true,
            metrics: Metrics::disabled(),
            limits: ResourceLimits::default(),
        }
    }

    /// A ctx over an explicit space (shared with every clone).
    pub fn with_space(space: SymbolSpace) -> AnalysisCtx {
        AnalysisCtx {
            space,
            addr_seed: 0,
            trusted: true,
            metrics: Metrics::disabled(),
            limits: ResourceLimits::default(),
        }
    }

    /// A ctx over the thread's **current** space ([`SymbolSpace::current`]):
    /// the global space normally, or the session space while a
    /// [`SymbolSpace::enter`] guard is live. Default constructors across
    /// the data plane (`TraceParser::new`, `Machine::new`, `Engine::new`,
    /// the analyzers) snapshot this, so legacy ctx-less call sites follow
    /// an entered session instead of silently escaping to the global
    /// space. The snapshot is taken once — handing the ctx to worker
    /// threads keeps them in the same space.
    pub fn current() -> AnalysisCtx {
        AnalysisCtx {
            space: SymbolSpace::current(),
            addr_seed: 0,
            trusted: true,
            metrics: Metrics::disabled(),
            limits: ResourceLimits::default(),
        }
    }

    /// Mark the trace source untrusted: address-keyed maps switch to
    /// per-session seeded hashing so a crafted trace cannot aim
    /// precomputed hash-collision chains at this process (the
    /// `--untrusted-trace` flag).
    pub fn untrusted(mut self) -> AnalysisCtx {
        self.trusted = false;
        if self.addr_seed == 0 {
            self.addr_seed = random_seed();
        }
        self
    }

    /// Pin the address-hash seed (tests; 0 restores determinism).
    pub fn with_addr_seed(mut self, seed: u64) -> AnalysisCtx {
        self.addr_seed = seed;
        self
    }

    /// Attach a metrics registry: every component constructed over this ctx
    /// (parser, engines, analyzers) records into it. The registry rides the
    /// ctx the same way the symbol space does — session-scoped, shared by
    /// clones. Pass [`Metrics::enabled()`] to start collecting; the default
    /// everywhere is [`Metrics::disabled()`], which records nothing and
    /// costs one predicted branch per would-be sample.
    pub fn with_metrics(mut self, metrics: Metrics) -> AnalysisCtx {
        self.metrics = metrics;
        self
    }

    /// The session's metrics handle (disabled unless
    /// [`with_metrics`](Self::with_metrics) installed a registry).
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Attach per-session resource ceilings. Enforced by every layer that
    /// ingests or accumulates for this session — `TraceSource` (records,
    /// bytes, symbols, arena bytes), the streaming `Engine` (DDG size,
    /// live window), and `MultiAnalyzer` (which threads a job's limits
    /// here). Default is unlimited on every axis.
    pub fn with_limits(mut self, limits: ResourceLimits) -> AnalysisCtx {
        self.limits = limits;
        self
    }

    /// The session's resource ceilings (unlimited unless
    /// [`with_limits`](Self::with_limits) set some).
    #[inline]
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    /// The session's symbol space.
    pub fn space(&self) -> &SymbolSpace {
        &self.space
    }

    /// Intern `s` in the session's space.
    #[inline]
    pub fn intern(&self, s: &str) -> SymId {
        self.space.intern(s)
    }

    /// Resolve `id` in the session's space. The returned [`SymStr`] owns
    /// the bytes, so it stays valid even after the session drops.
    #[inline]
    pub fn resolve(&self, id: SymId) -> SymStr {
        self.space.resolve(id)
    }

    /// Install the session's space as the thread-current space (for the
    /// output edges — report rendering, DOT, trace serialization — which
    /// resolve via [`SymId::as_str`]).
    #[must_use = "the space is only current while the guard is alive"]
    pub fn enter(&self) -> SpaceGuard {
        self.space.enter()
    }

    /// The seed for address-keyed maps (0 = deterministic).
    pub fn addr_seed(&self) -> u64 {
        self.addr_seed
    }

    /// False when the trace source was marked untrusted.
    pub fn is_trusted(&self) -> bool {
        self.trusted
    }

    /// The build-hasher for maps keyed by trace-supplied addresses.
    #[inline]
    pub fn addr_state(&self) -> FxSeededState {
        FxSeededState::with_seed(self.addr_seed)
    }

    /// An empty map for trace-supplied address keys, hashed with the
    /// session's seed.
    #[inline]
    pub fn addr_map<K, V>(&self) -> FxSeededHashMap<K, V> {
        FxSeededHashMap::with_hasher(self.addr_state())
    }
}

/// A per-call random 64-bit seed. Derived from std's `RandomState` (the
/// only entropy source available without extra dependencies): each
/// `RandomState::new()` draws fresh per-instance keys from the thread's
/// OS-seeded generator, so distinct sessions get distinct seeds.
fn random_seed() -> u64 {
    let s = RandomState::new().hash_one(0xa1a1_5151_u64);
    // Seed 0 means "deterministic"; dodge it.
    if s == 0 {
        1
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ctx_is_global_space_deterministic_trusted() {
        let ctx = AnalysisCtx::default();
        assert!(ctx.space().same_space(&SymbolSpace::global()));
        assert_eq!(ctx.addr_seed(), 0);
        assert!(ctx.is_trusted());
        assert_eq!(ctx.addr_state(), FxSeededState::with_seed(0));
    }

    #[test]
    fn session_ctx_is_a_fresh_space() {
        let a = AnalysisCtx::session();
        let b = AnalysisCtx::session();
        assert!(!a.space().same_space(b.space()));
        assert!(!a.space().same_space(&SymbolSpace::global()));
        assert_eq!(a.intern("ctx_test_v").index(), 0);
        assert_eq!(b.intern("ctx_test_other").index(), 0);
        assert_eq!(a.resolve(a.intern("ctx_test_v")), "ctx_test_v");
    }

    #[test]
    fn clones_share_the_space() {
        let a = AnalysisCtx::session();
        let b = a.clone();
        let id = a.intern("ctx_test_shared");
        assert_eq!(b.resolve(id), "ctx_test_shared");
    }

    #[test]
    fn untrusted_sessions_get_distinct_nonzero_seeds() {
        let a = AnalysisCtx::session().untrusted();
        let b = AnalysisCtx::session().untrusted();
        assert!(!a.is_trusted());
        assert_ne!(a.addr_seed(), 0);
        assert_ne!(b.addr_seed(), 0);
        // Distinct with overwhelming probability; equality would mean the
        // entropy source is broken.
        assert_ne!(a.addr_seed(), b.addr_seed());
        // An explicitly pinned seed survives `untrusted()`.
        let pinned = AnalysisCtx::session().with_addr_seed(42).untrusted();
        assert_eq!(pinned.addr_seed(), 42);
    }

    #[test]
    fn addr_maps_work_at_any_seed() {
        for seed in [0u64, 7, u64::MAX] {
            let ctx = AnalysisCtx::session().with_addr_seed(seed);
            let mut m = ctx.addr_map::<u64, u32>();
            m.insert(0x7f00_0000_0000, 9);
            m.insert(0, 1);
            assert_eq!(m.get(&0x7f00_0000_0000), Some(&9));
            assert_eq!(m.get(&0), Some(&1));
        }
    }

    #[test]
    fn metrics_ride_the_ctx_and_are_shared_by_clones() {
        use autocheck_obs::{CounterId, Metrics};
        let off = AnalysisCtx::session();
        assert!(!off.metrics().is_enabled(), "metrics default to disabled");
        let on = AnalysisCtx::session().with_metrics(Metrics::enabled());
        let clone = on.clone();
        on.metrics().count(CounterId::ParseErrors, 1);
        clone.metrics().count(CounterId::ParseErrors, 2);
        assert_eq!(on.metrics().counter(CounterId::ParseErrors), 3);
    }

    #[test]
    fn limits_ride_the_ctx_and_default_unlimited() {
        use crate::limits::{ResourceKind, ResourceLimits};
        let ctx = AnalysisCtx::session();
        assert!(ctx.limits().is_unlimited());
        let bounded = AnalysisCtx::session()
            .with_limits(ResourceLimits::new().max_symbols(3).max_trace_bytes(100));
        assert_eq!(bounded.limits().get(ResourceKind::Symbols), Some(3));
        assert_eq!(bounded.limits().get(ResourceKind::TraceBytes), Some(100));
        // Clones share the same (Copy) limits.
        assert_eq!(bounded.clone().limits(), bounded.limits());
    }

    #[test]
    fn enter_scopes_the_thread_current_space() {
        let ctx = AnalysisCtx::session();
        let id = {
            let _g = ctx.enter();
            SymId::intern("ctx_test_scoped")
        };
        assert_eq!(ctx.resolve(id), "ctx_test_scoped");
        assert!(SymbolSpace::current().same_space(&SymbolSpace::global()));
    }
}
