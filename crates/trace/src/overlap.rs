//! Decode-ahead ingest pipeline — overlapping trace I/O and decode with
//! the analysis fold.
//!
//! The serial ingest paths (`crate::parallel::parse_windowed_core`, the
//! streaming [`crate::TraceSource::stream`]) interleave reading, decoding
//! and consuming on one thread: the DDG/MLI/stats fold only runs after the
//! bytes that feed it have been read *and* parsed. This module splits those
//! stages onto background threads so they overlap:
//!
//! ```text
//!   text:    [reader thread] --windows--> [decoder thread] --batches--+
//!              pooled buffers               parse_chunks              |
//!   binary:  [producer thread: BinaryStreamReader] ------batches-----+
//!                                                                    v
//!                                       [consumer: BatchStream::next_batch]
//! ```
//!
//! Invariants the pipeline preserves relative to the serial paths:
//!
//! * **Bounded memory.** Window buffers cycle through a fixed pool of
//!   `depth + 2` buffers (reader-owned, decoder-owned, plus the channel's
//!   slack); record batches travel through a `sync_channel` bounded at
//!   `depth`. Nothing ever holds the whole trace.
//! * **Typed errors.** Producer-side `io::Error`s, parse errors, binary
//!   framing errors, smuggled [`ResourceExceeded`](crate::ResourceExceeded)
//!   violations, and even producer panics all surface to the consumer as
//!   ordinary [`TraceReadError`] values in stream order — never a poisoned
//!   channel or a propagated panic.
//! * **Identical cut points.** The text reader cuts windows at exactly the
//!   block-header boundaries the serial windowed parser uses, and rebases
//!   error lines the same way, so errors and records are byte-for-byte the
//!   ones serial ingest produces.
//! * **Backpressure respects limits.** Producers read through the same
//!   [`ByteLimitReader`](crate::TraceSource) stack as serial ingest, and
//!   the consumer re-checks the session's ingest ceilings per batch, so a
//!   violation surfaces within one batch of crossing the line.

use crate::binary::BinaryStreamReader;
use crate::ctx::AnalysisCtx;
use crate::parallel::{last_block_header, offset_lines, parse_chunks};
use crate::reader::{utf8_text, TraceReadError};
use crate::record::Record;
use crate::source::{check_ingest_limits, unsmuggle_limit, TraceFormat};
use autocheck_obs::{GaugeId, Metrics, TimerId};
use std::io::Read;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

/// Records per batch the binary producer hands downstream. Small enough to
/// keep the consumer busy early, large enough to amortize channel traffic.
const BINARY_BATCH_RECORDS: usize = 4096;

/// Resolve an overlap-depth request: `0` means "auto" — serial on
/// single-core hosts (a pipeline would only add handoffs there), otherwise
/// up to four in-flight batches, capped by the core count. Any explicit
/// request passes through: `1` is the serial path, `n >= 2` always builds
/// the pipeline (even on one core — parity tests rely on that).
pub fn resolve_overlap_depth(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores <= 1 {
        1
    } else {
        cores.min(4)
    }
}

/// How an ingest error surfaced, for the wrapper's counter bookkeeping
/// (mirrors what the serial paths count on the same failure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum IngestErrorClass {
    /// Text parse or binary framing error → `parse.errors`.
    Parse,
    /// A resource ceiling tripped → `limits.exceeded`.
    Resource,
    /// Plain I/O failure (no counter, same as serial).
    Io,
}

fn classify(e: &TraceReadError) -> IngestErrorClass {
    match e {
        TraceReadError::Parse(_) | TraceReadError::Binary(_) => IngestErrorClass::Parse,
        TraceReadError::Resource(_) => IngestErrorClass::Resource,
        TraceReadError::Io(_) => IngestErrorClass::Io,
    }
}

/// What the pipeline delivered, reported to the caller after the consumer
/// returns so it can book the same ingest counters the serial paths book.
#[derive(Clone, Copy, Debug)]
pub(crate) struct IngestSummary {
    /// Records delivered to the consumer (across all batches).
    pub records: u64,
    /// The metered byte count as of the last delivered batch — the figure
    /// serial streaming ingest would have booked by its last record.
    pub bytes_at_last_batch: u64,
    /// Set when the consumer was handed an error (even if it swallowed it).
    pub error: Option<IngestErrorClass>,
}

/// One decoded-ahead batch plus the metered byte count when its last
/// record was produced.
type BatchMsg = Result<(Vec<Record>, u64), TraceReadError>;

/// The consumer's view of a decode-ahead pipeline: pull record batches
/// with [`next_batch`](BatchStream::next_batch) until `None`.
///
/// The stream fuses after the first error and enforces the session's
/// ingest ceilings per batch, exactly as [`crate::TraceStream`] does per
/// record.
pub struct BatchStream {
    rx: Option<Receiver<BatchMsg>>,
    metrics: Metrics,
    ctx: AnalysisCtx,
    read_bytes: Arc<AtomicU64>,
    records_seen: u64,
    last_bytes: u64,
    error: Option<IngestErrorClass>,
    done: bool,
}

impl BatchStream {
    /// Next decoded batch, in trace order. Blocks while the producers are
    /// behind (the wait is metered as `ingest.queue_wait`); returns `None`
    /// once the trace is exhausted or after the first error.
    pub fn next_batch(&mut self) -> Option<Result<Vec<Record>, TraceReadError>> {
        if self.done {
            return None;
        }
        let Some(rx) = &self.rx else {
            self.done = true;
            return None;
        };
        let item = {
            let _wait = self.metrics.span(TimerId::IngestQueueWait);
            rx.recv()
        };
        let Ok(item) = item else {
            // Producers gone with no error in flight: clean end of trace.
            self.done = true;
            return None;
        };
        self.metrics.gauge_sub(GaugeId::IngestDepth, 1);
        match item {
            Ok((batch, bytes)) => {
                self.records_seen += batch.len() as u64;
                self.last_bytes = bytes;
                // Per-batch limit enforcement: same ceilings, same typed
                // error as the serial paths, within one batch of the line.
                match check_ingest_limits(
                    &self.ctx,
                    self.records_seen,
                    self.read_bytes.load(Ordering::Relaxed),
                ) {
                    Ok(()) => Some(Ok(batch)),
                    Err(limit) => {
                        self.done = true;
                        self.error = Some(IngestErrorClass::Resource);
                        Some(Err(TraceReadError::Resource(limit)))
                    }
                }
            }
            Err(e) => {
                let e = unsmuggle_limit(e);
                self.done = true;
                self.error = Some(classify(&e));
                Some(Err(e))
            }
        }
    }

    /// Records delivered so far.
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    fn summary(&self) -> IngestSummary {
        IngestSummary {
            records: self.records_seen,
            bytes_at_last_batch: self.last_bytes,
            error: self.error,
        }
    }
}

/// Run `consume` against a decode-ahead pipeline over `reader`.
///
/// The reader must already be wrapped in the caller's metering/limit
/// stack (`read_bytes` is the meter's counter). Producer threads live in
/// a [`std::thread::scope`], so they are joined — and their buffers freed
/// — before this returns, even if `consume` exits early or panics
/// (dropping the consumer's receiver unblocks any producer parked on the
/// bounded channel).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pipeline<'env, T>(
    reader: Box<dyn Read + Send + 'env>,
    format: TraceFormat,
    threads: usize,
    window_bytes: usize,
    depth: usize,
    ctx: &AnalysisCtx,
    read_bytes: &Arc<AtomicU64>,
    consume: impl FnOnce(&mut BatchStream) -> T,
) -> (T, IngestSummary) {
    let depth = depth.max(1);
    let metrics = ctx.metrics().clone();
    let (batch_tx, batch_rx) = sync_channel::<BatchMsg>(depth);

    std::thread::scope(|scope| {
        // The stream lives inside the scope so an unwinding consumer drops
        // the receiver, which unblocks (and thus terminates) the producers
        // before the scope joins them — no deadlock on consumer panic.
        let mut stream = BatchStream {
            rx: Some(batch_rx),
            metrics: metrics.clone(),
            ctx: ctx.clone(),
            read_bytes: Arc::clone(read_bytes),
            records_seen: 0,
            last_bytes: 0,
            error: None,
            done: false,
        };

        match format {
            TraceFormat::Binary => {
                let ctx = ctx.clone();
                let metrics = metrics.clone();
                let read_bytes = Arc::clone(read_bytes);
                scope.spawn(move || {
                    let tx = batch_tx;
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        binary_producer(reader, &ctx, &tx, &metrics, &read_bytes)
                    }));
                    if out.is_err() {
                        send_msg(&tx, &metrics, Err(panic_error()));
                    }
                });
            }
            _ => {
                // Stage 1: raw I/O into pooled window buffers, cut at block
                // boundaries. Stage 2: UTF-8 + parallel parse, recycling
                // each buffer back to the pool.
                let (win_tx, win_rx) = sync_channel::<Result<TextWindow, TraceReadError>>(depth);
                let (pool_tx, pool_rx) = sync_channel::<Vec<u8>>(depth + 2);
                for _ in 0..depth + 2 {
                    // Seeded empty: each buffer grows to window size on
                    // first use and keeps that capacity for its whole life.
                    pool_tx
                        .send(Vec::new())
                        .expect("pool channel sized for seed");
                }
                {
                    let metrics = metrics.clone();
                    let read_bytes = Arc::clone(read_bytes);
                    scope.spawn(move || {
                        let tx = win_tx;
                        let out = catch_unwind(AssertUnwindSafe(|| {
                            text_reader_loop(
                                reader,
                                &pool_rx,
                                &tx,
                                window_bytes,
                                &metrics,
                                &read_bytes,
                            )
                        }));
                        match out {
                            Ok(Ok(())) => {}
                            Ok(Err(e)) => {
                                let _ = tx.send(Err(e));
                            }
                            Err(_) => {
                                let _ = tx.send(Err(panic_error()));
                            }
                        }
                    });
                }
                {
                    let ctx = ctx.clone();
                    let metrics = metrics.clone();
                    scope.spawn(move || {
                        let tx = batch_tx;
                        let out = catch_unwind(AssertUnwindSafe(|| {
                            text_decoder_loop(&win_rx, &pool_tx, &tx, threads, &ctx, &metrics)
                        }));
                        if out.is_err() {
                            send_msg(&tx, &metrics, Err(panic_error()));
                        }
                    });
                }
            }
        }

        let out = consume(&mut stream);
        let summary = stream.summary();
        (out, summary)
    })
}

/// The error a producer panic is converted into: a plain typed I/O error,
/// indistinguishable in shape from any other ingest failure.
fn panic_error() -> TraceReadError {
    TraceReadError::Io(std::io::Error::other("trace ingest worker panicked"))
}

/// Send one batch message, keeping the `ingest.depth` gauge equal to the
/// number of in-flight messages (add before send; undo if the consumer is
/// gone). Returns false when the consumer hung up.
fn send_msg(tx: &SyncSender<BatchMsg>, metrics: &Metrics, msg: BatchMsg) -> bool {
    metrics.gauge_add(GaugeId::IngestDepth, 1);
    if tx.send(msg).is_err() {
        metrics.gauge_sub(GaugeId::IngestDepth, 1);
        return false;
    }
    true
}

/// One complete-blocks window of trace text plus the newline count of
/// everything before it (for absolute error lines, as in serial ingest).
struct TextWindow {
    buf: Vec<u8>,
    lines_before: u64,
    /// Metered bytes when this window was cut.
    bytes: u64,
}

/// Stage-1 body: fill pooled buffers from the reader, cut at the last
/// block header (identical logic to the serial windowed parser), pass
/// complete-block windows downstream and carry the partial tail.
///
/// Returns `Ok(())` both on clean EOF and when the decoder hung up; I/O
/// errors bubble up for the caller to forward downstream.
fn text_reader_loop(
    mut reader: impl Read,
    pool_rx: &Receiver<Vec<u8>>,
    win_tx: &SyncSender<Result<TextWindow, TraceReadError>>,
    window_bytes: usize,
    metrics: &Metrics,
    read_bytes: &AtomicU64,
) -> Result<(), TraceReadError> {
    let window_bytes = window_bytes.max(64);
    let mut chunk = vec![0u8; window_bytes.clamp(4096, 1 << 20)];
    // Partial tail of the last window: always a single incomplete block,
    // so it never contains an interior cut point.
    let mut carry: Vec<u8> = Vec::new();
    let mut lines_done = 0u64;
    let mut eof = false;
    while !eof {
        let Ok(mut buf) = pool_rx.recv() else {
            // Decoder gone (error or consumer hangup): stop reading.
            return Ok(());
        };
        buf.clear();
        buf.extend_from_slice(&carry);
        carry.clear();
        let mut scanned = 0usize;
        let mut target = window_bytes;
        loop {
            while buf.len() < target && !eof {
                let n = reader.read(&mut chunk)?;
                if n == 0 {
                    eof = true;
                } else {
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
            let cut = if eof {
                // Final window: ship everything that's left.
                if buf.is_empty() {
                    return Ok(());
                }
                buf.len()
            } else {
                let from = scanned.saturating_sub(2);
                match last_block_header(&buf[from..]).map(|c| c + from) {
                    Some(cut) if cut > 0 => cut,
                    _ => {
                        // No interior split yet — grow the lookahead, as
                        // the serial windowed parser does.
                        scanned = buf.len();
                        target = buf.len() + window_bytes;
                        continue;
                    }
                }
            };
            carry.extend_from_slice(&buf[cut..]);
            buf.truncate(cut);
            let lines = buf.iter().filter(|&&b| b == b'\n').count() as u64;
            metrics.gauge_add(GaugeId::IngestBufferBytes, buf.capacity() as u64);
            let window = TextWindow {
                buf,
                lines_before: lines_done,
                bytes: read_bytes.load(Ordering::Relaxed),
            };
            lines_done += lines;
            if win_tx.send(Ok(window)).is_err() {
                return Ok(());
            }
            break;
        }
    }
    Ok(())
}

/// Stage-2 body: parse each window (same UTF-8 validation, parallel block
/// parse, and error-line rebasing as serial ingest), recycle the buffer,
/// and forward record batches. Exits after forwarding the first error.
fn text_decoder_loop(
    win_rx: &Receiver<Result<TextWindow, TraceReadError>>,
    pool_tx: &SyncSender<Vec<u8>>,
    batch_tx: &SyncSender<BatchMsg>,
    threads: usize,
    ctx: &AnalysisCtx,
    metrics: &Metrics,
) {
    while let Ok(item) = win_rx.recv() {
        let window = match item {
            Ok(w) => w,
            Err(e) => {
                send_msg(batch_tx, metrics, Err(e));
                return;
            }
        };
        let parsed = utf8_text(&window.buf)
            .map_err(|e| offset_lines(e, window.lines_before))
            .and_then(|text| {
                parse_chunks(text, threads, ctx).map_err(|e| offset_lines(e, window.lines_before))
            });
        // Recycle the buffer before shipping the batch: the reader can
        // start on the next window while the consumer folds this one.
        metrics.gauge_sub(GaugeId::IngestBufferBytes, window.buf.capacity() as u64);
        let mut buf = window.buf;
        buf.clear();
        let _ = pool_tx.try_send(buf);
        match parsed {
            Ok(records) => {
                if !send_msg(batch_tx, metrics, Ok((records, window.bytes))) {
                    return;
                }
            }
            Err(e) => {
                send_msg(batch_tx, metrics, Err(e));
                return;
            }
        }
    }
}

/// Binary producer: the framing layer can't be cut without parsing, so one
/// thread runs the incremental [`BinaryStreamReader`] and batches records.
/// Decode still overlaps the consumer's fold, which is where binary ingest
/// time goes (the record decode, not the raw I/O).
fn binary_producer(
    reader: impl Read,
    ctx: &AnalysisCtx,
    batch_tx: &SyncSender<BatchMsg>,
    metrics: &Metrics,
    read_bytes: &AtomicU64,
) {
    let mut stream = match BinaryStreamReader::open(reader, ctx) {
        Ok(s) => s,
        Err(e) => {
            send_msg(batch_tx, metrics, Err(e));
            return;
        }
    };
    let mut batch: Vec<Record> = Vec::with_capacity(BINARY_BATCH_RECORDS);
    // Metered bytes as of the last record pulled — snapshotted per record
    // so the figure excludes trailing footer reads, matching what serial
    // streaming ingest books by its last record.
    let mut bytes_at_last = 0u64;
    loop {
        match stream.next() {
            Some(Ok(record)) => {
                batch.push(record);
                bytes_at_last = read_bytes.load(Ordering::Relaxed);
                if batch.len() >= BINARY_BATCH_RECORDS {
                    let full =
                        std::mem::replace(&mut batch, Vec::with_capacity(BINARY_BATCH_RECORDS));
                    if !send_msg(batch_tx, metrics, Ok((full, bytes_at_last))) {
                        return;
                    }
                }
            }
            Some(Err(e)) => {
                // Records decoded before the error still reach the
                // consumer, exactly as the serial stream yields them.
                if !batch.is_empty() && !send_msg(batch_tx, metrics, Ok((batch, bytes_at_last))) {
                    return;
                }
                send_msg(batch_tx, metrics, Err(e));
                return;
            }
            None => {
                if !batch.is_empty() {
                    send_msg(batch_tx, metrics, Ok((batch, bytes_at_last)));
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSource;

    #[test]
    fn resolve_depth_auto_and_passthrough() {
        let auto = resolve_overlap_depth(0);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores <= 1 {
            assert_eq!(auto, 1, "single-core auto short-circuits to serial");
        } else {
            assert!((2..=4).contains(&auto), "multi-core auto pipelines");
            assert!(auto <= cores);
        }
        assert_eq!(resolve_overlap_depth(1), 1);
        assert_eq!(resolve_overlap_depth(2), 2);
        assert_eq!(resolve_overlap_depth(64), 64);
    }

    #[test]
    fn classify_matches_serial_counters() {
        let io = TraceReadError::Io(std::io::Error::other("x"));
        assert_eq!(classify(&io), IngestErrorClass::Io);
        let parse = TraceReadError::Parse(crate::ParseError {
            line: 1,
            message: "x".into(),
        });
        assert_eq!(classify(&parse), IngestErrorClass::Parse);
    }

    /// A reader that panics mid-stream: the pipeline must convert it into
    /// a typed error, never propagate the panic to the consumer.
    struct PanicReader {
        served: usize,
        body: Vec<u8>,
    }

    impl Read for PanicReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.served >= self.body.len() {
                panic!("reader exploded");
            }
            let n = buf.len().min(self.body.len() - self.served).min(97);
            buf[..n].copy_from_slice(&self.body[self.served..self.served + n]);
            self.served += n;
            Ok(n)
        }
    }

    fn synth_trace_text(blocks: usize) -> String {
        let mut out = String::new();
        for i in 0..blocks {
            out.push_str(&format!("0,3,foo,6:1,11,27,{i},\n"));
            out.push_str(&format!("1,64,0x{:x},1,p,\n", 0x1000 + i * 8));
            out.push_str(&format!("r,64,{i},1,t{i},\n"));
        }
        out
    }

    #[test]
    fn overlapped_records_match_serial_at_every_depth_both_formats() {
        let text = synth_trace_text(500);
        let ctx = AnalysisCtx::session();
        let serial = TraceSource::from_str(&text).ctx(&ctx).records().unwrap();
        let bin = crate::binary::to_bytes(&serial, &ctx);
        for depth in [2usize, 3, 4, 8] {
            let via_text = TraceSource::from_reader(text.as_bytes())
                .ctx(&ctx)
                .overlap(depth)
                .window(256)
                .records()
                .unwrap();
            assert_eq!(via_text, serial, "text, depth {depth}");
            let via_bin = TraceSource::from_reader(&bin[..])
                .ctx(&ctx)
                .overlap(depth)
                .records()
                .unwrap();
            assert_eq!(via_bin, serial, "binary, depth {depth}");
        }
    }

    #[test]
    fn parse_error_lines_match_serial_under_overlap() {
        let mut text = synth_trace_text(300);
        let bad_line = text.lines().count() as u64 + 1;
        text.push_str("0,zz,broken,1:1,0,27,9,\n");
        let ctx = AnalysisCtx::session();
        for depth in [1usize, 2, 4] {
            let err = TraceSource::from_reader(text.as_bytes())
                .ctx(&ctx)
                .overlap(depth)
                .window(256)
                .records()
                .unwrap_err();
            let TraceReadError::Parse(e) = err else {
                panic!("expected parse error at depth {depth}");
            };
            assert_eq!(e.line, bad_line, "depth {depth}");
        }
    }

    /// A reader that fails with an I/O error after serving a prefix.
    struct FailAfter {
        served: usize,
        body: Vec<u8>,
    }

    impl Read for FailAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.served >= self.body.len() {
                return Err(std::io::Error::other("disk on fire"));
            }
            let n = buf.len().min(self.body.len() - self.served).min(113);
            buf[..n].copy_from_slice(&self.body[self.served..self.served + n]);
            self.served += n;
            Ok(n)
        }
    }

    #[test]
    fn mid_stream_io_errors_stay_typed_under_overlap() {
        let body = synth_trace_text(200).into_bytes();
        for depth in [1usize, 3] {
            let err = TraceSource::from_reader(FailAfter {
                served: 0,
                body: body.clone(),
            })
            .overlap(depth)
            .window(128)
            .records()
            .unwrap_err();
            let TraceReadError::Io(io) = err else {
                panic!("expected io error at depth {depth}");
            };
            assert!(io.to_string().contains("disk on fire"), "depth {depth}");
        }
    }

    #[test]
    fn queue_depth_gauge_stays_within_channel_bound() {
        use autocheck_obs::Metrics;
        let text = synth_trace_text(800);
        let depth = 3usize;
        let ctx = AnalysisCtx::session().with_metrics(Metrics::enabled());
        TraceSource::from_reader(text.as_bytes())
            .ctx(&ctx)
            .overlap(depth)
            .window(256)
            .records()
            .unwrap();
        let (value, peak) = ctx.metrics().gauge(GaugeId::IngestDepth);
        assert_eq!(value, 0, "every sent batch was consumed");
        assert!(peak >= 1, "at least one batch was in flight");
        assert!(
            peak <= (depth + 2) as u64,
            "peak {peak} exceeds channel bound + producer/consumer slack"
        );
    }

    #[test]
    fn path_ingest_stays_chunk_resident_at_every_depth() {
        use autocheck_obs::Metrics;
        // A trace far larger than the lookahead window: if `from_path`
        // materialized the file (or the pipeline allocated per chunk
        // instead of recycling), the buffer gauge would reach file size.
        let text = synth_trace_text(20_000);
        let dir = std::env::temp_dir().join(format!("autocheck-overlap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("big.trace");
        std::fs::write(&path, &text).unwrap();
        for depth in [1usize, 2, 4] {
            let ctx = AnalysisCtx::session().with_metrics(Metrics::enabled());
            let records = TraceSource::from_path(&path)
                .ctx(&ctx)
                .overlap(depth)
                .window(4096)
                .records()
                .unwrap();
            assert_eq!(records.len(), 20_000);
            let (_, peak) = ctx.metrics().gauge(GaugeId::IngestBufferBytes);
            assert!(peak >= 1, "gauge was populated at depth {depth}");
            assert!(
                (peak as usize) < text.len() / 4,
                "depth {depth}: resident ingest buffers ({peak} B) should stay \
                 far below the {} B trace",
                text.len()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn producer_panic_surfaces_as_typed_error() {
        let body = synth_trace_text(200).into_bytes();
        let err = TraceSource::from_reader(PanicReader { served: 0, body })
            .overlap(3)
            .records()
            .unwrap_err();
        let TraceReadError::Io(io) = err else {
            panic!("expected a typed io error, got {err:?}");
        };
        assert!(io.to_string().contains("panicked"));
    }
}
