//! Property tests for the trace format: serialization round-trips (text and
//! binary), chunking never splits blocks, and parallel parsing equals serial
//! parsing for arbitrary traces.

use autocheck_trace::{
    binary, chunk_boundaries, split_blocks, writer, AnalysisCtx, FaultPlan, Name, OpTag, Operand,
    ParallelConfig, Record, ResourceLimits, SymId, TraceValue,
};
use autocheck_trace::{ParseError, TraceSource};
use proptest::prelude::*;

/// Serial parse through the front door (current/global space, like the
/// `SymId::intern` calls in the generators).
fn parse_str(text: &str) -> Result<Vec<Record>, ParseError> {
    TraceSource::from_str(text).records().map_err(|e| match e {
        autocheck_trace::reader::TraceReadError::Parse(p) => p,
        other => ParseError {
            line: 0,
            message: other.to_string(),
        },
    })
}

fn arb_name() -> impl Strategy<Value = Name> {
    prop_oneof![
        any::<u32>().prop_map(Name::Temp),
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| Name::sym(&s)),
        Just(Name::None),
    ]
}

fn arb_value() -> impl Strategy<Value = TraceValue> {
    prop_oneof![
        any::<i64>().prop_map(TraceValue::I),
        any::<u64>().prop_map(TraceValue::Ptr),
        Just(TraceValue::None),
        // Floats are serialized %.6f (lossy, like LLVM-Tracer); restrict to
        // values that survive, so equality round-trips.
        (-1_000_000i32..1_000_000).prop_map(|v| TraceValue::F(v as f64 / 64.0)),
    ]
}

fn arb_operand(tag: OpTag) -> impl Strategy<Value = Operand> {
    (arb_value(), any::<bool>(), arb_name()).prop_map(move |(value, is_reg, name)| Operand {
        tag,
        bits: 64,
        value,
        is_reg,
        name,
    })
}

prop_compose! {
    fn arb_record()(
        src_line in -1i32..500,
        func in "[a-z][a-z0-9_]{0,6}",
        bb in (0u32..100, 0u32..10),
        label in 0u32..64,
        opcode in 1u16..60,
        dyn_id in any::<u64>(),
        n_ops in 0usize..3,
        ops in proptest::collection::vec(arb_operand(OpTag::Pos(1)), 0..3),
        has_result in any::<bool>(),
        res in arb_operand(OpTag::Result),
    ) -> Record {
        let mut operands = Vec::new();
        for (i, mut o) in ops.into_iter().take(n_ops).enumerate() {
            o.tag = OpTag::Pos((i + 1) as u8);
            operands.push(o);
        }
        Record {
            src_line,
            func: SymId::intern(&func),
            bb,
            bb_label: SymId::intern(&label.to_string()),
            opcode,
            dyn_id,
            operands,
            result: if has_result { Some(res) } else { None },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_parse_round_trips(records in proptest::collection::vec(arb_record(), 0..40)) {
        let text = writer::to_string(&records);
        let parsed = parse_str(&text).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn chunks_partition_input_and_start_at_headers(
        records in proptest::collection::vec(arb_record(), 1..60),
        n in 1usize..12,
    ) {
        let text = writer::to_string(&records);
        let ranges = chunk_boundaries(text.as_bytes(), n);
        // Partition: contiguous cover of the whole input.
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, text.len());
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // Alignment: every chunk starts at a block header.
        for part in split_blocks(&text, n) {
            if !part.is_empty() {
                prop_assert!(part.starts_with("0,"));
            }
        }
    }

    #[test]
    fn chunked_parse_equals_whole_parse(
        records in proptest::collection::vec(arb_record(), 1..60),
        n in 1usize..10,
    ) {
        let text = writer::to_string(&records);
        let mut merged = Vec::new();
        for part in split_blocks(&text, n) {
            merged.extend(parse_str(part).unwrap());
        }
        prop_assert_eq!(merged, records);
    }

    #[test]
    fn parallel_parse_equals_serial(
        records in proptest::collection::vec(arb_record(), 0..80),
        threads in 1usize..6,
    ) {
        let text = writer::to_string(&records);
        let serial = parse_str(&text).unwrap();
        let parallel = TraceSource::from_str(&text)
            .parallel(ParallelConfig { threads })
            .records()
            .unwrap();
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn canonical_form_is_idempotent(records in proptest::collection::vec(arb_record(), 0..30)) {
        let once = writer::to_string(&records);
        let twice = writer::to_string(&parse_str(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn binary_round_trips_records(records in proptest::collection::vec(arb_record(), 0..40)) {
        let ctx = AnalysisCtx::current();
        let bytes = binary::to_bytes(&records, &ctx);
        let decoded = TraceSource::from_bytes(&bytes).ctx(&ctx).records().unwrap();
        prop_assert_eq!(&decoded, &records);
        let streamed: Vec<Record> = TraceSource::from_reader(&bytes[..])
            .ctx(&ctx)
            .stream()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(streamed, records);
    }

    #[test]
    fn text_to_binary_to_text_is_byte_identical(
        records in proptest::collection::vec(arb_record(), 0..40),
        threads in 1usize..5,
    ) {
        // The conversion contract behind `mlc convert`: render to canonical
        // text, convert to binary, decode, render again — byte-identical.
        let ctx = AnalysisCtx::current();
        let text = writer::to_string(&records);
        let parsed = parse_str(&text).unwrap();
        let bytes = binary::to_bytes(&parsed, &ctx);
        let back = TraceSource::from_bytes(&bytes)
            .ctx(&ctx)
            .parallel(ParallelConfig { threads })
            .records()
            .unwrap();
        prop_assert_eq!(writer::to_string(&back), text);
    }

    #[test]
    fn truncated_binary_always_errors_never_panics(
        records in proptest::collection::vec(arb_record(), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let ctx = AnalysisCtx::current();
        let bytes = binary::to_bytes(&records, &ctx);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let r = TraceSource::from_bytes(&bytes[..cut]).ctx(&ctx).records();
        prop_assert!(r.is_err(), "cut at {} of {} must error", cut, bytes.len());
    }

    #[test]
    fn corrupted_binary_never_panics(
        records in proptest::collection::vec(arb_record(), 1..10),
        flip_at_frac in 0.0f64..1.0,
        flip_bits in 1u8..=255,
    ) {
        // Flip a byte anywhere (header, string table, records): ingest must
        // either error or produce records — never panic, in either reader.
        let ctx = AnalysisCtx::session().untrusted();
        let base = AnalysisCtx::current();
        let mut bytes = binary::to_bytes(&records, &base);
        let at = ((bytes.len() - 1) as f64 * flip_at_frac) as usize;
        bytes[at] ^= flip_bits;
        let _ = TraceSource::from_bytes(&bytes).ctx(&ctx).records();
        let _ = TraceSource::from_reader(&bytes[..])
            .ctx(&ctx)
            .stream()
            .map(|s| s.collect::<Result<Vec<_>, _>>());
    }

    #[test]
    fn faulted_text_ingest_never_panics_and_respects_limits(
        records in proptest::collection::vec(arb_record(), 1..30),
        seed in any::<u64>(),
    ) {
        // A seeded fault plan (short reads, truncation, injected io::Error,
        // bit flips) over a well-formed text trace: ingest yields Ok or a
        // typed error, never a panic — and an Ok result never crosses the
        // session's record ceiling.
        let text = writer::to_string(&records);
        let limit = records.len() as u64;
        let ctx = AnalysisCtx::session().untrusted().with_limits(
            ResourceLimits::new()
                .max_trace_records(limit)
                .max_trace_bytes(text.len() as u64),
        );
        let plan = FaultPlan::from_seed(seed, text.len() as u64);
        let result = TraceSource::from_reader(plan.reader(text.as_bytes()))
            .ctx(&ctx)
            .records();
        if let Ok(recs) = result {
            prop_assert!(recs.len() as u64 <= limit);
        }
    }

    #[test]
    fn faulted_binary_ingest_never_panics_in_either_reader(
        records in proptest::collection::vec(arb_record(), 1..20),
        seed in any::<u64>(),
    ) {
        let base = AnalysisCtx::current();
        let bytes = binary::to_bytes(&records, &base);
        let limits = ResourceLimits::new()
            .max_trace_bytes(bytes.len() as u64)
            .max_symbols(4_096);
        let ctx = AnalysisCtx::session().untrusted().with_limits(limits);
        let plan = FaultPlan::from_seed(seed, bytes.len() as u64);
        let batch = TraceSource::from_reader(plan.clone().reader(&bytes[..]))
            .ctx(&ctx)
            .records();
        if let Ok(recs) = &batch {
            prop_assert!(recs.len() <= records.len());
        }
        // Same plan through the pull-based stream: the two front doors may
        // fail at different offsets (chunked vs record-at-a-time reads) but
        // both must stay typed and bounded.
        let ctx = AnalysisCtx::session().untrusted().with_limits(limits);
        let plan = FaultPlan::from_seed(seed, bytes.len() as u64);
        let _ = TraceSource::from_reader(plan.reader(&bytes[..]))
            .ctx(&ctx)
            .stream()
            .map(|s| s.collect::<Result<Vec<_>, _>>());
    }

    #[test]
    fn faulted_ingest_is_deterministic_per_seed(
        records in proptest::collection::vec(arb_record(), 1..15),
        seed in any::<u64>(),
    ) {
        // The replayability contract: the same seed over the same bytes
        // produces the same outcome (same records or same error text).
        let text = writer::to_string(&records);
        let outcome = || {
            let ctx = AnalysisCtx::session().untrusted();
            let plan = FaultPlan::from_seed(seed, text.len() as u64);
            TraceSource::from_reader(plan.reader(text.as_bytes()))
                .ctx(&ctx)
                .records()
                .map_err(|e| e.to_string())
                .map(|r| r.len())
        };
        prop_assert_eq!(outcome(), outcome());
    }
}
