//! Property tests for the trace format: serialization round-trips, chunking
//! never splits blocks, and parallel parsing equals serial parsing for
//! arbitrary traces.

use autocheck_trace::{
    chunk_boundaries, parse_parallel, parse_str, split_blocks, writer, Name, OpTag, Operand,
    ParallelConfig, Record, SymId, TraceValue,
};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = Name> {
    prop_oneof![
        any::<u32>().prop_map(Name::Temp),
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| Name::sym(&s)),
        Just(Name::None),
    ]
}

fn arb_value() -> impl Strategy<Value = TraceValue> {
    prop_oneof![
        any::<i64>().prop_map(TraceValue::I),
        any::<u64>().prop_map(TraceValue::Ptr),
        Just(TraceValue::None),
        // Floats are serialized %.6f (lossy, like LLVM-Tracer); restrict to
        // values that survive, so equality round-trips.
        (-1_000_000i32..1_000_000).prop_map(|v| TraceValue::F(v as f64 / 64.0)),
    ]
}

fn arb_operand(tag: OpTag) -> impl Strategy<Value = Operand> {
    (arb_value(), any::<bool>(), arb_name()).prop_map(move |(value, is_reg, name)| Operand {
        tag,
        bits: 64,
        value,
        is_reg,
        name,
    })
}

prop_compose! {
    fn arb_record()(
        src_line in -1i32..500,
        func in "[a-z][a-z0-9_]{0,6}",
        bb in (0u32..100, 0u32..10),
        label in 0u32..64,
        opcode in 1u16..60,
        dyn_id in any::<u64>(),
        n_ops in 0usize..3,
        ops in proptest::collection::vec(arb_operand(OpTag::Pos(1)), 0..3),
        has_result in any::<bool>(),
        res in arb_operand(OpTag::Result),
    ) -> Record {
        let mut operands = Vec::new();
        for (i, mut o) in ops.into_iter().take(n_ops).enumerate() {
            o.tag = OpTag::Pos((i + 1) as u8);
            operands.push(o);
        }
        Record {
            src_line,
            func: SymId::intern(&func),
            bb,
            bb_label: SymId::intern(&label.to_string()),
            opcode,
            dyn_id,
            operands,
            result: if has_result { Some(res) } else { None },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_parse_round_trips(records in proptest::collection::vec(arb_record(), 0..40)) {
        let text = writer::to_string(&records);
        let parsed = parse_str(&text).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn chunks_partition_input_and_start_at_headers(
        records in proptest::collection::vec(arb_record(), 1..60),
        n in 1usize..12,
    ) {
        let text = writer::to_string(&records);
        let ranges = chunk_boundaries(text.as_bytes(), n);
        // Partition: contiguous cover of the whole input.
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, text.len());
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // Alignment: every chunk starts at a block header.
        for part in split_blocks(&text, n) {
            if !part.is_empty() {
                prop_assert!(part.starts_with("0,"));
            }
        }
    }

    #[test]
    fn chunked_parse_equals_whole_parse(
        records in proptest::collection::vec(arb_record(), 1..60),
        n in 1usize..10,
    ) {
        let text = writer::to_string(&records);
        let mut merged = Vec::new();
        for part in split_blocks(&text, n) {
            merged.extend(parse_str(part).unwrap());
        }
        prop_assert_eq!(merged, records);
    }

    #[test]
    fn parallel_parse_equals_serial(
        records in proptest::collection::vec(arb_record(), 0..80),
        threads in 1usize..6,
    ) {
        let text = writer::to_string(&records);
        let serial = parse_str(&text).unwrap();
        let parallel = parse_parallel(&text, ParallelConfig { threads }).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn canonical_form_is_idempotent(records in proptest::collection::vec(arb_record(), 0..30)) {
        let once = writer::to_string(&records);
        let twice = writer::to_string(&parse_str(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}
