//! Arena-reclamation soak: session string storage must plateau, not leak.
//!
//! Before per-session ownership, every distinct symbol ever interned —
//! including hostile, never-repeating names from untrusted traces — was
//! leaked into the process-wide arena, so a long-lived service grew without
//! bound. This soak drives ≥1000 sessions over hostile (unique-per-session)
//! symbol sets and asserts the process-wide [`arena_bytes`] gauge returns
//! to its baseline after each wave of sessions drops: the footprint is a
//! plateau, not a ramp.
//!
//! CI runs this in release mode (`cargo test --release --test soak`) so the
//! allocation pattern matches production; it is cheap enough to ride along
//! in the debug tier-1 run too.

use autocheck_trace::intern::arena_bytes;
use autocheck_trace::AnalysisCtx;

/// One hostile session: a fresh space interning `n` long, never-repeating
/// symbol names (the shape an adversarial trace generator produces).
/// Returns the bytes the session's space owned while alive.
fn hostile_session(wave: usize, n: usize) -> usize {
    let ctx = AnalysisCtx::session();
    let mut expect = 0usize;
    for i in 0..n {
        let name = format!("hostile::{wave:08}::{i:08}::{}", "x".repeat(48));
        expect += name.len();
        let sym = ctx.intern(&name);
        let _g = ctx.enter();
        assert_eq!(sym.as_str(), name);
    }
    let owned = ctx.space().owned_bytes();
    assert_eq!(owned, expect, "session owns exactly its interned bytes");
    owned
}

#[test]
fn a_thousand_hostile_sessions_plateau() {
    const SESSIONS: usize = 1200;
    const SYMBOLS_PER_SESSION: usize = 64;

    // Baseline after one throwaway wave so one-time global costs (the
    // default space, lazily-initialized statics) are excluded.
    hostile_session(usize::MAX, SYMBOLS_PER_SESSION);
    let baseline = arena_bytes();

    let mut per_session = 0usize;
    let mut high_water = 0usize;
    for wave in 0..SESSIONS {
        per_session = hostile_session(wave, SYMBOLS_PER_SESSION);
        high_water = high_water.max(arena_bytes());
    }

    let settled = arena_bytes();
    // Plateau, not ramp: after every session has dropped, the arena is back
    // at its baseline. The slack absorbs other tests in this binary (none
    // today) and allocator-side rounding in the counters we track.
    assert!(
        settled <= baseline + per_session,
        "arena did not reclaim: baseline {baseline}, settled {settled} \
         after {SESSIONS} sessions of ~{per_session} bytes each"
    );
    // And while running, the footprint never approached the leak shape:
    // SESSIONS sessions' worth of strings. A tenth of the leak total is a
    // generous ceiling for "a handful of sessions live at once".
    let leak_total = per_session * SESSIONS;
    assert!(
        high_water < baseline + leak_total / 10,
        "arena high-water {high_water} is within an order of the leak \
         shape {leak_total} (baseline {baseline})"
    );
}

#[test]
fn interleaved_sessions_account_independently() {
    // Two live sessions: dropping one reclaims its bytes without touching
    // the other's.
    let before = arena_bytes();
    let a = AnalysisCtx::session();
    let b = AnalysisCtx::session();
    for i in 0..256 {
        a.intern(&format!("left::{i:06}"));
        b.intern(&format!("right::{i:06}::{}", "y".repeat(32)));
    }
    let a_bytes = a.space().owned_bytes();
    let b_bytes = b.space().owned_bytes();
    assert!(a_bytes > 0 && b_bytes > a_bytes);
    let while_both = arena_bytes();
    assert!(while_both >= before + a_bytes + b_bytes);
    drop(a);
    let after_a = arena_bytes();
    assert!(
        after_a <= while_both - a_bytes,
        "dropping `a` must release its {a_bytes} bytes"
    );
    assert_eq!(b.space().owned_bytes(), b_bytes, "b is untouched");
    drop(b);
    assert!(arena_bytes() <= after_a - b_bytes);
}
