//! Property tests for the run ledger: arbitrary ledgers serialize to JSON
//! and parse back field-for-field equal (satellite 3 of the observability
//! PR).

use autocheck_obs::ledger::{BatchLedger, HistSnapshot, Ledger};
use autocheck_obs::{CounterId, GaugeId, HistId, TimerId, HIST_BUCKETS};
use proptest::prelude::*;

prop_compose! {
    fn arb_hist()(sum in any::<u64>(), buckets in proptest::collection::vec(any::<u64>(), HIST_BUCKETS)) -> HistSnapshot {
        HistSnapshot { sum, buckets }
    }
}

prop_compose! {
    fn arb_ledger()(
        name in "[ -~]{0,40}",
        counters in proptest::collection::vec(any::<u64>(), CounterId::COUNT),
        gauges in proptest::collection::vec((any::<u64>(), any::<u64>()), GaugeId::COUNT),
        timers in proptest::collection::vec((any::<u64>(), any::<u64>()), TimerId::COUNT),
        hists in proptest::collection::vec(arb_hist(), HistId::COUNT),
    ) -> Ledger {
        Ledger { name, counters, gauges, timers, hists }
    }
}

proptest! {
    #[test]
    fn session_ledger_round_trips(ledger in arb_ledger()) {
        let json = ledger.to_json();
        let back = Ledger::from_json(&json).expect("serializer output must parse");
        prop_assert_eq!(ledger, back);
    }

    #[test]
    fn session_names_with_escapes_round_trip(name in "\\PC{0,24}") {
        let mut ledger = Ledger::empty("x");
        ledger.name = name;
        let back = Ledger::from_json(&ledger.to_json()).expect("parses");
        prop_assert_eq!(ledger, back);
    }

    #[test]
    fn batch_ledger_round_trips(
        jobs in any::<u64>(),
        wall_ns in any::<u64>(),
        batch in arb_ledger(),
        sessions in proptest::collection::vec(arb_ledger(), 0..4),
    ) {
        let b = BatchLedger { jobs, wall_ns, batch, sessions };
        let json = b.to_json();
        let back = BatchLedger::from_json(&json).expect("serializer output must parse");
        prop_assert_eq!(b, back);
    }
}
