//! Observability core for the AutoCheck data plane.
//!
//! One registry, every layer: trace ingest, the streaming engine, the batch
//! pipeline, DDG construction/contraction, the interner, and the
//! `MultiAnalyzer` service all report through a per-session [`Metrics`]
//! handle that rides on `AnalysisCtx` exactly like the session's
//! `SymbolSpace` does. The paper's analyses run for hours on real HPC
//! traces; knowing where the time and memory go — per stage, per session —
//! is the input every future scheduling/sharding decision consumes.
//!
//! Design constraints, in priority order:
//!
//! * **Near-zero when disabled.** [`Metrics::disabled`] is an empty handle
//!   (`Option<Arc>` = `None`); every operation is one predictable branch,
//!   no clock reads, no atomics. The metrics-parity tests pin that enabling
//!   metrics changes *no output bytes*, and the pipeline bench pins the
//!   enabled overhead (< 2% on the end-to-end analysis).
//! * **Allocation-free on the hot path.** The registry is a fixed set of
//!   atomics — counters, gauges-with-peak, power-of-two-bucket histograms,
//!   and span-fed timers — indexed by small enums ([`CounterId`],
//!   [`GaugeId`], [`TimerId`], [`HistId`]). Enabling metrics allocates the
//!   registry once per session; recording never allocates.
//! * **Machine-readable at the edges.** [`ledger::Ledger`] snapshots a
//!   registry into a versioned JSON object (one per session;
//!   [`ledger::BatchLedger`] aggregates many) with a stable schema that is
//!   validated in CI and round-trips through the crate's own parser.
//!
//! The crate is intentionally zero-dependency: it sits below
//! `autocheck-trace` in the workspace graph so even the parser can report
//! through it.

pub mod ledger;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Declares a metric-id enum plus its name table (`ALL`, `name`,
/// `from_name`) — the single source of the ledger's key set.
macro_rules! metric_ids {
    ($(#[$m:meta])* $vis:vis enum $Name:ident {
        $($(#[$vm:meta])* $Var:ident => $s:literal,)+
    }) => {
        $(#[$m])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        $vis enum $Name {
            $($(#[$vm])* $Var,)+
        }

        impl $Name {
            /// Every id, in declaration (= ledger) order.
            pub const ALL: &'static [$Name] = &[$($Name::$Var),+];
            /// Number of ids (= registry slots).
            pub const COUNT: usize = $Name::ALL.len();

            /// The stable ledger key for this id.
            pub fn name(self) -> &'static str {
                match self { $($Name::$Var => $s),+ }
            }

            /// Inverse of [`name`](Self::name) (ledger parsing).
            pub fn from_name(s: &str) -> Option<$Name> {
                match s { $($s => Some($Name::$Var),)+ _ => None }
            }

            #[inline]
            fn idx(self) -> usize {
                self as usize
            }
        }
    };
}

metric_ids! {
    /// Monotonic event counts.
    pub enum CounterId {
        /// Records ingested from textual traces.
        IngestRecordsText => "ingest.records.text",
        /// Records ingested from binary traces.
        IngestRecordsBinary => "ingest.records.binary",
        /// Bytes ingested from textual traces.
        IngestBytesText => "ingest.bytes.text",
        /// Bytes ingested from binary traces.
        IngestBytesBinary => "ingest.bytes.binary",
        /// Malformed input rejected during ingest (parse/decode errors).
        ParseErrors => "ingest.parse_errors",
        /// Records pushed through the streaming engine.
        EngineRecords => "engine.records",
        /// Access events emitted by the DDG builder fold.
        AccessEvents => "engine.access_events",
        /// Records on which the engine's per-stage fold timers sampled
        /// (1-in-64 sampling; see [`TimerId::FoldRegion`]).
        FoldSamples => "engine.fold_samples",
        /// Worklist pops during Algorithm 1 contraction.
        ContractWorklistSteps => "contract.worklist_steps",
        /// Sessions that finished with a report (service layer).
        SessionsOk => "batch.sessions_ok",
        /// Sessions that failed (service layer).
        SessionsFailed => "batch.sessions_failed",
        /// Resource-limit violations (any axis): a session crossed one of
        /// its configured `ResourceLimits` ceilings and was stopped with a
        /// typed error. The tripped axis is named in the error/diagnostic.
        LimitExceeded => "session.limit_exceeded",
        /// Records analyzed (full mode, replay excluded) across the shards
        /// of a sharded single-trace run; sums to `engine.records`.
        ShardRecords => "shard.records",
    }
}

metric_ids! {
    /// Level values with a tracked all-time peak.
    pub enum GaugeId {
        /// Live per-iteration window entries in the streaming engine — the
        /// memory bound the engine advertises; peak is the true high-water
        /// mark.
        LiveRecords => "engine.live_records",
        /// Main-loop iterations observed.
        Iterations => "engine.iterations",
        /// Nodes of the complete DDG.
        DdgNodes => "ddg.nodes",
        /// Edges of the complete DDG.
        DdgEdges => "ddg.edges",
        /// Nodes surviving Algorithm 1 contraction.
        ContractedNodes => "ddg.contracted_nodes",
        /// Edges of the contracted DDG.
        ContractedEdges => "ddg.contracted_edges",
        /// Distinct symbols interned by the session's space.
        Symbols => "intern.symbols",
        /// Process-wide interner arena footprint in bytes (the PR 4 leak,
        /// finally measured; grows with distinct-symbols-ever-seen).
        ArenaBytes => "intern.arena_bytes",
        /// Concurrently running sessions (service layer); peak is the
        /// realized parallelism.
        JobsInFlight => "batch.jobs_in_flight",
        /// Record batches decoded ahead but not yet consumed in an
        /// overlapped ingest pipeline; bounded by the configured overlap
        /// depth plus the batches held by the producer and consumer.
        IngestDepth => "ingest.depth",
        /// Resident ingest buffer bytes (lookahead windows + pooled chunk
        /// buffers); the peak is what path-based ingest keeps in memory
        /// regardless of trace size.
        IngestBufferBytes => "ingest.buffer_bytes",
    }
}

metric_ids! {
    /// Cumulative wall-clock timers, fed by RAII spans.
    pub enum TimerId {
        /// Trace ingest (parse/decode) time.
        Ingest => "stage.ingest",
        /// Pre-processing: region partitioning + MLI identification. Ingest
        /// is booked under [`TimerId::Ingest`]; the report's Table-III
        /// figure is the sum of the two.
        Preprocess => "stage.preprocess",
        /// Dependency analysis: the DDG fold (contraction excluded — see
        /// [`TimerId::Contract`]).
        Dependency => "stage.dependency",
        /// Variable identification (classification).
        Identify => "stage.identify",
        /// Algorithm 1 contraction.
        Contract => "stage.contract",
        /// Region-tracker share of the engine fold (sampled 1-in-64).
        FoldRegion => "fold.region",
        /// MLI-collector share of the engine fold (sampled 1-in-64).
        FoldMli => "fold.mli",
        /// DDG + statistics share of the engine fold (sampled 1-in-64).
        FoldDdg => "fold.ddg",
        /// Time a job waited in the service queue before a worker picked
        /// it up.
        QueueWait => "batch.queue_wait",
        /// Whole-session wall clock (input acquisition + analysis +
        /// rendering).
        SessionWall => "batch.session_wall",
        /// Per-worker wall clock of a sharded single-trace run (one span
        /// per shard: replay fast-forward + full analysis of its range).
        ShardWall => "shard.wall",
        /// Deterministic state merge after a sharded run (fold of the
        /// partial MLI/DDG/statistics state, in shard order).
        ShardMerge => "shard.merge",
        /// Time the consumer of a decode-ahead ingest pipeline spent
        /// blocked waiting for the next record batch (distinct from
        /// [`TimerId::QueueWait`], which is the service layer's job queue).
        IngestQueueWait => "ingest.queue_wait",
    }
}

metric_ids! {
    /// Fixed-bucket (power-of-two) histograms.
    pub enum HistId {
        /// Records observed per main-loop iteration — the per-stage cost
        /// signal checkpoint-interval scheduling policies consume.
        IterationRecords => "engine.records_per_iteration",
    }
}

/// Number of power-of-two buckets per histogram: bucket 0 counts value 0,
/// bucket `i` counts values in `[2^(i-1), 2^i)`, the last bucket clamps.
pub const HIST_BUCKETS: usize = 32;

/// A level value with a tracked peak. Standalone — the streaming engine
/// owns one for its live-record window whether or not metrics are enabled,
/// so the peak is computed in exactly one place.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Raise the level by `n`, updating the peak.
    #[inline]
    pub fn add(&self, n: u64) {
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Lower the level by `n` (callers guarantee no underflow, as the
    /// engine's window accounting does).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Set the level outright, raising the peak if needed.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// All-time high-water mark.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct TimerCell {
    nanos: AtomicU64,
    count: AtomicU64,
}

#[derive(Debug)]
struct HistCell {
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The fixed slot table behind an enabled [`Metrics`] handle. Allocated
/// once per session; all recording is lock-free atomics.
#[derive(Debug)]
pub struct Registry {
    counters: [AtomicU64; CounterId::COUNT],
    gauges: [Gauge; GaugeId::COUNT],
    timers: [TimerCell; TimerId::COUNT],
    hists: [HistCell; HistId::COUNT],
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| Gauge::new()),
            timers: std::array::from_fn(|_| TimerCell::default()),
            hists: std::array::from_fn(|_| HistCell::default()),
        }
    }
}

/// The per-session metrics handle. Cheap to clone (an `Arc`, or nothing at
/// all when disabled); all clones address the same registry.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Option<Arc<Registry>>,
}

impl Metrics {
    /// An enabled handle over a fresh registry.
    pub fn enabled() -> Metrics {
        Metrics {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// The no-op handle: every operation is one branch, no clock reads, no
    /// atomics. This is the default everywhere a ctx is constructed.
    pub const fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// True when this handle records into a registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn count(&self, id: CounterId, n: u64) {
        if let Some(r) = &self.inner {
            r.counters[id.idx()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current counter value (0 when disabled).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |r| r.counters[id.idx()].load(Ordering::Relaxed))
    }

    /// Raise a gauge by `n`.
    #[inline]
    pub fn gauge_add(&self, id: GaugeId, n: u64) {
        if let Some(r) = &self.inner {
            r.gauges[id.idx()].add(n);
        }
    }

    /// Lower a gauge by `n`.
    #[inline]
    pub fn gauge_sub(&self, id: GaugeId, n: u64) {
        if let Some(r) = &self.inner {
            r.gauges[id.idx()].sub(n);
        }
    }

    /// Set a gauge outright (raises its peak if needed).
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, v: u64) {
        if let Some(r) = &self.inner {
            r.gauges[id.idx()].set(v);
        }
    }

    /// Merge a standalone [`Gauge`]'s value and peak into a registry slot
    /// (used by the engine to publish its window gauge at finish).
    pub fn gauge_merge(&self, id: GaugeId, g: &Gauge) {
        if let Some(r) = &self.inner {
            let slot = &r.gauges[id.idx()];
            slot.value.store(g.value(), Ordering::Relaxed);
            slot.peak.fetch_max(g.peak(), Ordering::Relaxed);
        }
    }

    /// Current `(value, peak)` of a gauge (zeros when disabled).
    pub fn gauge(&self, id: GaugeId) -> (u64, u64) {
        self.inner.as_deref().map_or((0, 0), |r| {
            let g = &r.gauges[id.idx()];
            (g.value(), g.peak())
        })
    }

    /// Record `v` into a histogram.
    #[inline]
    pub fn observe(&self, id: HistId, v: u64) {
        if let Some(r) = &self.inner {
            let h = &r.hists[id.idx()];
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Add an already-measured duration to a timer.
    #[inline]
    pub fn record_duration(&self, id: TimerId, d: Duration) {
        if let Some(r) = &self.inner {
            let t = &r.timers[id.idx()];
            t.nanos
                .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
            t.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cumulative `(nanos, span count)` of a timer (zeros when disabled).
    pub fn timer(&self, id: TimerId) -> (u64, u64) {
        self.inner.as_deref().map_or((0, 0), |r| {
            let t = &r.timers[id.idx()];
            (
                t.nanos.load(Ordering::Relaxed),
                t.count.load(Ordering::Relaxed),
            )
        })
    }

    /// Sum of every value observed into a histogram (0 when disabled).
    pub(crate) fn hist_sum(&self, id: HistId) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |r| r.hists[id.idx()].sum.load(Ordering::Relaxed))
    }

    /// Count in one histogram bucket (0 when disabled).
    pub(crate) fn hist_bucket(&self, id: HistId, bucket: usize) -> u64 {
        self.inner.as_deref().map_or(0, |r| {
            r.hists[id.idx()].buckets[bucket].load(Ordering::Relaxed)
        })
    }

    /// An RAII span feeding `id` on drop. **No-op when disabled** — not even
    /// the clock is read; use [`timed`](Self::timed) where the caller needs
    /// the duration regardless.
    #[inline]
    pub fn span(&self, id: TimerId) -> Span {
        Span {
            state: self
                .inner
                .as_ref()
                .map(|r| (Instant::now(), Arc::clone(r), id)),
        }
    }

    /// A span that **always** measures (the caller consumes the duration,
    /// e.g. for the report's `Timings`) and additionally records into the
    /// registry when enabled. This is what replaced the hand-rolled
    /// `Instant::now()` arithmetic in the pipelines.
    #[inline]
    pub fn timed(&self, id: TimerId) -> Timed {
        Timed {
            start: Instant::now(),
            metrics: self.clone(),
            id,
        }
    }
}

/// Bucket index for histogram value `v` (power-of-two buckets).
#[inline]
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// RAII timing span from [`Metrics::span`]: adds its elapsed wall time to
/// the timer on drop. Carries nothing (and reads no clock) when the handle
/// was disabled.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    state: Option<(Instant, Arc<Registry>, TimerId)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, reg, id)) = self.state.take() {
            let t = &reg.timers[id.idx()];
            t.nanos.fetch_add(
                start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                Ordering::Relaxed,
            );
            t.count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Always-measuring span from [`Metrics::timed`]; [`finish`](Timed::finish)
/// returns the elapsed duration after recording it (when enabled).
#[must_use = "call finish() to obtain the measured duration"]
pub struct Timed {
    start: Instant,
    metrics: Metrics,
    id: TimerId,
}

impl Timed {
    /// Stop the clock, record into the registry (when enabled), and return
    /// the elapsed wall time.
    pub fn finish(self) -> Duration {
        let d = self.start.elapsed();
        self.metrics.record_duration(self.id, d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        m.count(CounterId::EngineRecords, 5);
        m.gauge_add(GaugeId::LiveRecords, 3);
        m.observe(HistId::IterationRecords, 9);
        m.record_duration(TimerId::Ingest, Duration::from_millis(1));
        drop(m.span(TimerId::Ingest));
        assert_eq!(m.counter(CounterId::EngineRecords), 0);
        assert_eq!(m.gauge(GaugeId::LiveRecords), (0, 0));
        assert_eq!(m.timer(TimerId::Ingest), (0, 0));
        // timed() still measures for the caller.
        let d = m.timed(TimerId::Ingest).finish();
        assert!(d >= Duration::ZERO);
        assert_eq!(m.timer(TimerId::Ingest), (0, 0));
    }

    #[test]
    fn counters_and_clones_share_the_registry() {
        let m = Metrics::enabled();
        let c = m.clone();
        m.count(CounterId::ParseErrors, 2);
        c.count(CounterId::ParseErrors, 3);
        assert_eq!(m.counter(CounterId::ParseErrors), 5);
    }

    #[test]
    fn gauge_tracks_peak() {
        let g = Gauge::new();
        g.add(5);
        g.add(7);
        g.sub(10);
        g.add(1);
        assert_eq!(g.value(), 3);
        assert_eq!(g.peak(), 12);
        g.set(2);
        assert_eq!(g.value(), 2);
        assert_eq!(g.peak(), 12, "set below peak keeps the peak");
        g.set(99);
        assert_eq!(g.peak(), 99);

        let m = Metrics::enabled();
        m.gauge_merge(GaugeId::LiveRecords, &g);
        assert_eq!(m.gauge(GaugeId::LiveRecords), (99, 99));
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let m = Metrics::enabled();
        for v in [0, 1, 2, 3, 1024] {
            m.observe(HistId::IterationRecords, v);
        }
        let snap = ledger::Ledger::capture("t", &m);
        let h = &snap.hists[0];
        assert_eq!(h.buckets.iter().sum::<u64>(), 5);
        assert_eq!(h.sum, 1030);
    }

    #[test]
    fn spans_accumulate() {
        let m = Metrics::enabled();
        {
            let _s = m.span(TimerId::Contract);
        }
        {
            let _s = m.span(TimerId::Contract);
        }
        let (ns, count) = m.timer(TimerId::Contract);
        assert_eq!(count, 2);
        // Monotonic clock: even empty spans advance at least 0 ns.
        assert!(ns < u64::MAX);
        let d = m.timed(TimerId::Contract).finish();
        assert!(d >= Duration::ZERO);
        assert_eq!(m.timer(TimerId::Contract).1, 3);
    }

    #[test]
    fn id_names_round_trip() {
        for id in CounterId::ALL {
            assert_eq!(CounterId::from_name(id.name()), Some(*id));
        }
        for id in GaugeId::ALL {
            assert_eq!(GaugeId::from_name(id.name()), Some(*id));
        }
        for id in TimerId::ALL {
            assert_eq!(TimerId::from_name(id.name()), Some(*id));
        }
        for id in HistId::ALL {
            assert_eq!(HistId::from_name(id.name()), Some(*id));
        }
        assert_eq!(CounterId::from_name("nope"), None);
    }
}
