//! The machine-readable run ledger: a versioned JSON snapshot of a
//! session's [`Metrics`] registry.
//!
//! One [`Ledger`] per analysis session; a [`BatchLedger`] wraps the
//! service layer's own registry plus every per-session ledger. The schema
//! is deliberately boring and *stable*: every metric name from the id
//! enums appears in every ledger (zeros included), so CI can validate the
//! exact key set and downstream tooling never has to probe for optional
//! fields. `LEDGER_VERSION` bumps whenever the key set or shape changes.
//!
//! The crate carries its own serializer *and* parser (no serde in this
//! offline workspace); a proptest pins that arbitrary ledgers round-trip
//! field-for-field.

use crate::{CounterId, GaugeId, HistId, Metrics, TimerId, HIST_BUCKETS};
use std::fmt::Write as _;

/// Schema version stamped into every ledger object. Version 3 added the
/// overlapped-ingest keys (`ingest.queue_wait`, `ingest.depth`,
/// `ingest.buffer_bytes`).
pub const LEDGER_VERSION: u64 = 3;

/// `"ledger"` tag of a per-session object.
pub const SESSION_TAG: &str = "autocheck.session";

/// `"ledger"` tag of a batch (service-layer) object.
pub const BATCH_TAG: &str = "autocheck.batch";

/// Snapshot of one histogram: total of observed values plus per-bucket
/// counts (fixed length [`HIST_BUCKETS`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Sum of every observed value.
    pub sum: u64,
    /// Power-of-two bucket counts (bucket 0 = value 0, bucket *i* =
    /// `[2^(i-1), 2^i)`, last bucket clamps).
    pub buckets: Vec<u64>,
}

/// A point-in-time snapshot of one session's metrics registry. Field
/// vectors are indexed in `*Id::ALL` order — the JSON form keys them by
/// metric name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ledger {
    /// Session name (trace path or app name).
    pub name: String,
    /// Counter values in [`CounterId::ALL`] order.
    pub counters: Vec<u64>,
    /// Gauge `(value, peak)` pairs in [`GaugeId::ALL`] order.
    pub gauges: Vec<(u64, u64)>,
    /// Timer `(cumulative nanos, span count)` pairs in [`TimerId::ALL`]
    /// order.
    pub timers: Vec<(u64, u64)>,
    /// Histogram snapshots in [`HistId::ALL`] order.
    pub hists: Vec<HistSnapshot>,
}

impl Ledger {
    /// Snapshot `metrics` under the given session name. A disabled handle
    /// yields an all-zero ledger (same schema, so the shape never depends
    /// on whether metrics were on).
    pub fn capture(name: &str, metrics: &Metrics) -> Ledger {
        Ledger {
            name: name.to_string(),
            counters: CounterId::ALL
                .iter()
                .map(|&id| metrics.counter(id))
                .collect(),
            gauges: GaugeId::ALL.iter().map(|&id| metrics.gauge(id)).collect(),
            timers: TimerId::ALL.iter().map(|&id| metrics.timer(id)).collect(),
            hists: HistId::ALL
                .iter()
                .map(|&id| metrics.hist_snapshot(id))
                .collect(),
        }
    }

    /// An all-zero ledger (what a disabled session reports).
    pub fn empty(name: &str) -> Ledger {
        Ledger::capture(name, &Metrics::disabled())
    }

    /// Counter value by id.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize]
    }

    /// Gauge `(value, peak)` by id.
    pub fn gauge(&self, id: GaugeId) -> (u64, u64) {
        self.gauges[id as usize]
    }

    /// Timer `(nanos, count)` by id.
    pub fn timer(&self, id: TimerId) -> (u64, u64) {
        self.timers[id as usize]
    }

    /// Histogram snapshot by id.
    pub fn hist(&self, id: HistId) -> &HistSnapshot {
        &self.hists[id as usize]
    }

    /// Serialize to the versioned JSON object (pretty, two-space indent,
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        let field = "  ".repeat(indent + 2);
        let _ = write!(
            out,
            "{pad}{{\n{inner}\"ledger\": \"{SESSION_TAG}\",\n{inner}\"version\": {LEDGER_VERSION},\n{inner}\"name\": "
        );
        write_json_string(out, &self.name);
        let _ = write!(out, ",\n{inner}\"counters\": {{");
        for (i, id) in CounterId::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n{field}\"{}\": {}", id.name(), self.counters[i]);
        }
        let _ = write!(out, "\n{inner}}},\n{inner}\"gauges\": {{");
        for (i, id) in GaugeId::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let (v, p) = self.gauges[i];
            let _ = write!(
                out,
                "{sep}\n{field}\"{}\": {{\"value\": {v}, \"peak\": {p}}}",
                id.name()
            );
        }
        let _ = write!(out, "\n{inner}}},\n{inner}\"timers\": {{");
        for (i, id) in TimerId::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let (ns, count) = self.timers[i];
            let _ = write!(
                out,
                "{sep}\n{field}\"{}\": {{\"ns\": {ns}, \"count\": {count}}}",
                id.name()
            );
        }
        let _ = write!(out, "\n{inner}}},\n{inner}\"histograms\": {{");
        for (i, id) in HistId::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let h = &self.hists[i];
            let _ = write!(
                out,
                "{sep}\n{field}\"{}\": {{\"sum\": {}, \"buckets\": [",
                id.name(),
                h.sum
            );
            for (j, b) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{b}");
            }
            let _ = write!(out, "]}}");
        }
        let _ = write!(out, "\n{inner}}}\n{pad}}}");
    }

    /// Parse a session ledger produced by [`to_json`](Self::to_json).
    pub fn from_json(text: &str) -> Result<Ledger, LedgerError> {
        let v = parse_value(text)?;
        ledger_from_value(&v)
    }

    /// Render the human summary table (`--metrics -`). Zero-valued rows
    /// are elided so quick runs stay readable.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== metrics: {} ==", self.name);
        let mut any = false;
        for (i, id) in TimerId::ALL.iter().enumerate() {
            let (ns, count) = self.timers[i];
            if count == 0 {
                continue;
            }
            any = true;
            let _ = writeln!(
                out,
                "  {:<28} {:>12}  ({} span{})",
                id.name(),
                fmt_duration_ns(ns),
                count,
                if count == 1 { "" } else { "s" }
            );
        }
        for (i, id) in CounterId::ALL.iter().enumerate() {
            let v = self.counters[i];
            if v == 0 {
                continue;
            }
            any = true;
            let _ = writeln!(out, "  {:<28} {v:>12}", id.name());
        }
        for (i, id) in GaugeId::ALL.iter().enumerate() {
            let (v, p) = self.gauges[i];
            if v == 0 && p == 0 {
                continue;
            }
            any = true;
            let _ = writeln!(out, "  {:<28} {v:>12}  (peak {p})", id.name());
        }
        for (i, id) in HistId::ALL.iter().enumerate() {
            let h = &self.hists[i];
            let count: u64 = h.buckets.iter().sum();
            if count == 0 {
                continue;
            }
            any = true;
            let _ = writeln!(
                out,
                "  {:<28} {:>12}  (n={count}, mean={})",
                id.name(),
                h.sum,
                h.sum / count.max(1)
            );
        }
        if !any {
            let _ = writeln!(out, "  (no activity recorded)");
        }
        out
    }
}

impl Metrics {
    /// Snapshot one histogram (all-zero when disabled). Lives here so the
    /// registry's cells stay private to the crate.
    pub fn hist_snapshot(&self, id: HistId) -> HistSnapshot {
        HistSnapshot {
            sum: self.hist_sum(id),
            buckets: (0..HIST_BUCKETS).map(|b| self.hist_bucket(id, b)).collect(),
        }
    }
}

/// The service layer's aggregate: its own registry (queue wait, session
/// wall, jobs in flight) plus every per-session ledger, in job order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchLedger {
    /// Number of jobs submitted.
    pub jobs: u64,
    /// Whole-batch wall clock in nanoseconds.
    pub wall_ns: u64,
    /// The batch-level registry snapshot.
    pub batch: Ledger,
    /// One ledger per session, in submission order.
    pub sessions: Vec<Ledger>,
}

impl BatchLedger {
    /// Serialize to the versioned batch JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"ledger\": \"{BATCH_TAG}\",\n  \"version\": {LEDGER_VERSION},\n  \"jobs\": {},\n  \"wall_ns\": {},\n  \"batch\":\n",
            self.jobs, self.wall_ns
        );
        self.batch.write_json(&mut out, 1);
        let _ = write!(out, ",\n  \"sessions\": [");
        for (i, s) in self.sessions.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = writeln!(out, "{sep}");
            s.write_json(&mut out, 2);
        }
        if self.sessions.is_empty() {
            let _ = write!(out, "]\n}}\n");
        } else {
            let _ = write!(out, "\n  ]\n}}\n");
        }
        out
    }

    /// Parse a batch ledger produced by [`to_json`](Self::to_json).
    pub fn from_json(text: &str) -> Result<BatchLedger, LedgerError> {
        let v = parse_value(text)?;
        let obj = v.as_object("batch ledger")?;
        expect_tag(obj, BATCH_TAG)?;
        Ok(BatchLedger {
            jobs: get_u64(obj, "jobs")?,
            wall_ns: get_u64(obj, "wall_ns")?,
            batch: ledger_from_value(get(obj, "batch")?)?,
            sessions: get(obj, "sessions")?
                .as_array("sessions")?
                .iter()
                .map(ledger_from_value)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Render human summaries for the batch and each session.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== batch: {} job{} in {} ==",
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
            fmt_duration_ns(self.wall_ns)
        );
        out.push_str(&self.batch.render_table());
        for s in &self.sessions {
            out.push_str(&s.render_table());
        }
        out
    }
}

/// Why a ledger failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LedgerError(String);

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ledger: {}", self.0)
    }
}

impl std::error::Error for LedgerError {}

fn err<T>(msg: impl Into<String>) -> Result<T, LedgerError> {
    Err(LedgerError(msg.into()))
}

/// Format nanoseconds the way the rest of the CLI formats durations.
pub fn fmt_duration_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the ledger schema (objects, arrays,
// strings with the standard escapes, unsigned integers). Kept private; the
// public surface is from_json on the two ledger types.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    Str(String),
    Num(u64),
}

impl Value {
    fn as_object(&self, what: &str) -> Result<&[(String, Value)], LedgerError> {
        match self {
            Value::Object(fields) => Ok(fields),
            _ => err(format!("{what}: expected an object")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Value], LedgerError> {
        match self {
            Value::Array(items) => Ok(items),
            _ => err(format!("{what}: expected an array")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, LedgerError> {
        match self {
            Value::Num(n) => Ok(*n),
            _ => err(format!("{what}: expected an unsigned integer")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, LedgerError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => err(format!("{what}: expected a string")),
        }
    }
}

fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, LedgerError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| LedgerError(format!("missing key \"{key}\"")))
}

fn get_u64(obj: &[(String, Value)], key: &str) -> Result<u64, LedgerError> {
    get(obj, key)?.as_u64(key)
}

fn expect_tag(obj: &[(String, Value)], tag: &str) -> Result<(), LedgerError> {
    let found = get(obj, "ledger")?.as_str("ledger")?;
    if found != tag {
        return err(format!("expected ledger tag \"{tag}\", found \"{found}\""));
    }
    let version = get_u64(obj, "version")?;
    if version != LEDGER_VERSION {
        return err(format!(
            "unsupported ledger version {version} (this build reads {LEDGER_VERSION})"
        ));
    }
    Ok(())
}

fn ledger_from_value(v: &Value) -> Result<Ledger, LedgerError> {
    let obj = v.as_object("session ledger")?;
    expect_tag(obj, SESSION_TAG)?;
    let counters_obj = get(obj, "counters")?.as_object("counters")?;
    let gauges_obj = get(obj, "gauges")?.as_object("gauges")?;
    let timers_obj = get(obj, "timers")?.as_object("timers")?;
    let hists_obj = get(obj, "histograms")?.as_object("histograms")?;

    let counters = CounterId::ALL
        .iter()
        .map(|id| get_u64(counters_obj, id.name()))
        .collect::<Result<_, _>>()?;
    let gauges = GaugeId::ALL
        .iter()
        .map(|id| {
            let g = get(gauges_obj, id.name())?.as_object(id.name())?;
            Ok((get_u64(g, "value")?, get_u64(g, "peak")?))
        })
        .collect::<Result<_, _>>()?;
    let timers = TimerId::ALL
        .iter()
        .map(|id| {
            let t = get(timers_obj, id.name())?.as_object(id.name())?;
            Ok((get_u64(t, "ns")?, get_u64(t, "count")?))
        })
        .collect::<Result<_, _>>()?;
    let hists = HistId::ALL
        .iter()
        .map(|id| {
            let h = get(hists_obj, id.name())?.as_object(id.name())?;
            let buckets: Vec<u64> = get(h, "buckets")?
                .as_array("buckets")?
                .iter()
                .map(|b| b.as_u64("bucket"))
                .collect::<Result<_, _>>()?;
            if buckets.len() != HIST_BUCKETS {
                return err(format!(
                    "{}: expected {HIST_BUCKETS} buckets, found {}",
                    id.name(),
                    buckets.len()
                ));
            }
            Ok(HistSnapshot {
                sum: get_u64(h, "sum")?,
                buckets,
            })
        })
        .collect::<Result<_, _>>()?;

    Ok(Ledger {
        name: get(obj, "name")?.as_str("name")?.to_string(),
        counters,
        gauges,
        timers,
        hists,
    })
}

fn parse_value(text: &str) -> Result<Value, LedgerError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), LedgerError> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, LedgerError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect_byte(bytes, pos, b':')?;
                let value = parse_at(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => {
            let start = *pos;
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
            let s = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
            match s.parse::<u64>() {
                Ok(n) => Ok(Value::Num(n)),
                Err(_) => err(format!("integer out of range at byte {start}")),
            }
        }
        _ => err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, LedgerError> {
    if bytes.get(*pos) != Some(&b'"') {
        return err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| LedgerError("truncated \\u escape".into()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| LedgerError("invalid \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| LedgerError("invalid \\u escape".into()))?;
                        // The writer only escapes control characters this
                        // way, so bare BMP scalars are all we accept.
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return err("\\u escape is not a scalar value"),
                        }
                        *pos += 4;
                    }
                    _ => return err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 sequence starting here.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| LedgerError("invalid utf-8 in string".into()))?;
                let c = s.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterId, GaugeId, Metrics, TimerId};
    use std::time::Duration;

    fn sample() -> Ledger {
        let m = Metrics::enabled();
        m.count(CounterId::IngestRecordsText, 1234);
        m.count(CounterId::ParseErrors, 2);
        m.gauge_add(GaugeId::LiveRecords, 77);
        m.gauge_sub(GaugeId::LiveRecords, 70);
        m.gauge_set(GaugeId::ArenaBytes, 4096);
        m.record_duration(TimerId::Ingest, Duration::from_micros(1500));
        m.observe(crate::HistId::IterationRecords, 9);
        Ledger::capture("traces/cg.trace", &m)
    }

    #[test]
    fn session_round_trip() {
        let l = sample();
        let json = l.to_json();
        let back = Ledger::from_json(&json).expect("parses");
        assert_eq!(l, back);
        assert_eq!(back.counter(CounterId::IngestRecordsText), 1234);
        assert_eq!(back.gauge(GaugeId::LiveRecords), (7, 77));
        assert_eq!(back.timer(TimerId::Ingest), (1_500_000, 1));
    }

    #[test]
    fn batch_round_trip() {
        let b = BatchLedger {
            jobs: 2,
            wall_ns: 5_000_000,
            batch: Ledger::empty("batch"),
            sessions: vec![sample(), Ledger::empty("quiet \"one\"\n")],
        };
        let json = b.to_json();
        let back = BatchLedger::from_json(&json).expect("parses");
        assert_eq!(b, back);
    }

    #[test]
    fn empty_sessions_batch_round_trips() {
        let b = BatchLedger {
            jobs: 0,
            wall_ns: 0,
            batch: Ledger::empty("batch"),
            sessions: vec![],
        };
        assert_eq!(BatchLedger::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn schema_is_total_even_when_disabled() {
        let json = Ledger::empty("x").to_json();
        for id in CounterId::ALL {
            assert!(json.contains(id.name()), "missing {}", id.name());
        }
        for id in GaugeId::ALL {
            assert!(json.contains(id.name()), "missing {}", id.name());
        }
        for id in TimerId::ALL {
            assert!(json.contains(id.name()), "missing {}", id.name());
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let json = sample().to_json().replace(
            &format!("\"version\": {LEDGER_VERSION}"),
            "\"version\": 999",
        );
        assert!(Ledger::from_json(&json).is_err());
    }

    #[test]
    fn tag_mismatch_is_rejected() {
        let json = sample().to_json().replace(SESSION_TAG, "something.else");
        assert!(Ledger::from_json(&json).is_err());
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"ledger\": }",
            "nope",
            "\"open",
            "{}trail",
        ] {
            assert!(Ledger::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn table_renders_nonzero_rows_only() {
        let t = sample().render_table();
        assert!(t.contains("ingest.records.text"));
        assert!(t.contains("intern.arena_bytes"));
        assert!(
            !t.contains("batch.queue_wait"),
            "zero timer should be elided"
        );
        let quiet = Ledger::empty("q").render_table();
        assert!(quiet.contains("no activity"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration_ns(12), "12ns");
        assert_eq!(fmt_duration_ns(1_500), "1.5µs");
        assert_eq!(fmt_duration_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_duration_ns(3_210_000_000), "3.210s");
    }
}
