//! The end-to-end AutoCheck pipeline with Table-III-style timing.

use crate::ddg::{DdgAnalysis, DdgOptions, RwKind};
use crate::preprocess::{find_mli_vars_in, CollectMode};
use crate::region::{Phase, Phases, Region};
use crate::report::{DdgSummary, Report, Timings};
use autocheck_obs::{GaugeId, TimerId};
use autocheck_stream::{
    boundaries_from_annots, fold_ddg_sharded, fold_mli_sharded, VarStats, VarStatsBuilder,
};
use autocheck_trace::reader::TraceReadError;
use autocheck_trace::{
    plan_shards, resolve_shard_count, AnalysisCtx, ParallelConfig, Record, TraceSource,
};
use std::path::Path;
use std::time::Instant;

/// Tunables for the pipeline (defaults reproduce the paper's tool).
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Occurrence-collection strictness (see [`CollectMode`]).
    pub collect: CollectMode,
    /// Selective trace iteration (paper §IV-B); `false` is the ablation.
    pub selective: bool,
    /// Worker threads for trace parsing (paper §V-A, OpenMP). `1` =
    /// serial.
    pub parse_threads: usize,
    /// Iteration-aligned shards for the analysis folds (MLI + dependency):
    /// `1` = serial, `0` = one per available core, `N` = at most `N`
    /// workers. Any value produces byte-identical reports and DOT output —
    /// the plan degrades gracefully when the loop has fewer iterations
    /// than requested shards.
    pub shards: usize,
    /// Decode-ahead depth for file ingest ([`Analyzer::analyze_path`]):
    /// `1` = serial (the default), `0` = auto (serial on single-core
    /// hosts), `n >= 2` = read and decode on background threads, `n`
    /// record batches ahead. Reports are byte-identical at every depth;
    /// see [`autocheck_trace::resolve_overlap_depth`].
    pub overlap: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            collect: CollectMode::AnyAccess,
            selective: true,
            parse_threads: 1,
            shards: 1,
            overlap: 1,
        }
    }
}

/// The AutoCheck analyzer.
///
/// Inputs mirror the paper's §VII "Use of AutoCheck": the dynamic trace,
/// the main loop's location, and (from the IR loop pass) the loop's
/// control variables.
#[derive(Clone, Debug)]
pub struct Analyzer {
    /// The main computation loop's location.
    pub region: Region,
    /// Induction/control variables of the outermost loop.
    pub index_vars: Vec<String>,
    /// Pipeline tunables.
    pub config: PipelineConfig,
    /// The analysis session (symbol space + address-hash seed). Every
    /// stage resolves symbols through this ctx, so records analyzed by
    /// this analyzer must come from the same session (the same ctx handed
    /// to the parser / interpreter).
    pub ctx: AnalysisCtx,
}

impl Analyzer {
    /// Analyzer with default configuration, scoped to the thread's current
    /// symbol space.
    pub fn new(region: Region) -> Analyzer {
        Analyzer {
            region,
            index_vars: Vec::new(),
            config: PipelineConfig::default(),
            ctx: AnalysisCtx::current(),
        }
    }

    /// Set the Index variables (usually from [`index_variables_of`]).
    pub fn with_index_vars(mut self, vars: Vec<String>) -> Analyzer {
        self.index_vars = vars;
        self
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: PipelineConfig) -> Analyzer {
        self.config = config;
        self
    }

    /// Scope this analyzer to `ctx`'s session: symbols resolve through the
    /// session's space, and address-keyed maps hash with the session's
    /// seed.
    pub fn with_ctx(mut self, ctx: AnalysisCtx) -> Analyzer {
        self.ctx = ctx;
        self
    }

    /// Analyze already-parsed records.
    pub fn analyze(&self, records: &[Record]) -> Report {
        self.analyze_inner(records, std::time::Duration::ZERO)
    }

    /// Analyze a textual trace: parsing (serial or parallel per
    /// [`PipelineConfig::parse_threads`]) is included in the pre-processing
    /// time, exactly like the paper's Table III.
    pub fn analyze_text(&self, text: &str) -> Result<Report, autocheck_trace::ParseError> {
        let t0 = Instant::now();
        let records = self
            .source(TraceSource::from_str(text))
            .records()
            .map_err(|e| match e {
                TraceReadError::Parse(p) => p,
                other => autocheck_trace::ParseError {
                    line: 0,
                    message: other.to_string(),
                },
            })?;
        let parse_time = t0.elapsed();
        Ok(self.analyze_inner(&records, parse_time))
    }

    /// Analyze a trace file in either format (text or binary, auto-detected
    /// by magic bytes). Ingest time is included in the pre-processing time
    /// like [`analyze_text`](Self::analyze_text).
    pub fn analyze_path(&self, path: impl AsRef<Path>) -> Result<Report, TraceReadError> {
        let t0 = Instant::now();
        let records = self
            .source(TraceSource::from_path(path.as_ref()))
            .records()?;
        let parse_time = t0.elapsed();
        Ok(self.analyze_inner(&records, parse_time))
    }

    /// Analyze an in-memory trace in either format.
    pub fn analyze_bytes(&self, bytes: &[u8]) -> Result<Report, TraceReadError> {
        let t0 = Instant::now();
        let records = self.source(TraceSource::from_bytes(bytes)).records()?;
        let parse_time = t0.elapsed();
        Ok(self.analyze_inner(&records, parse_time))
    }

    /// Scope a [`TraceSource`] to this analyzer's session, parallelism,
    /// and decode-ahead depth.
    fn source<'a>(&self, source: TraceSource<'a>) -> TraceSource<'a> {
        source
            .ctx(&self.ctx)
            .parallel(ParallelConfig {
                threads: self.config.parse_threads,
            })
            .overlap(self.config.overlap)
    }

    fn analyze_inner(&self, records: &[Record], parse_time: std::time::Duration) -> Report {
        let m = self.ctx.metrics().clone();

        // Pre-processing: region partitioning + MLI identification. The
        // report's Table-III figure includes ingest (`parse_time`); the
        // ledger books ingest under its own `stage.ingest` timer. With
        // `shards > 1` the annotation vector doubles as the free source of
        // iteration boundaries, and the MLI fold fans out over
        // iteration-aligned shards (replay fast-forward + deterministic
        // merge — byte-identical results, see `autocheck_stream::shard`).
        let t = m.timed(TimerId::Preprocess);
        let phases = Phases::compute_in(records, &self.region, &self.ctx);
        let shards = resolve_shard_count(self.config.shards);
        let plan = if shards > 1 {
            plan_shards(
                records.len(),
                &boundaries_from_annots(&phases.annots),
                shards,
            )
        } else {
            Vec::new()
        };
        let sharded = plan.len() > 1;
        let mli = if sharded {
            fold_mli_sharded(
                records,
                &phases.annots,
                &plan,
                self.config.collect,
                &self.ctx,
            )
            .finish()
        } else {
            find_mli_vars_in(
                records,
                &phases,
                &self.region,
                self.config.collect,
                &self.ctx,
            )
        };
        let preprocess = parse_time + t.finish();

        // Dependency analysis: one fold of the record slice through the
        // shared streaming DdgBuilder. Events are not retained — each one
        // feeds its variable's statistics builder as it is emitted (the
        // same fold the online engine runs), so peak memory for this stage
        // is O(variables), not O(trace). The sharded variant runs one
        // preloaded builder per shard and merges graphs and statistics in
        // shard order.
        let t = m.timed(TimerId::Dependency);
        let addr_seed = self.ctx.addr_seed();
        let mut stats = self.ctx.addr_map::<u64, VarStatsBuilder>();
        let mut stats_finished = self.ctx.addr_map::<u64, VarStats>();
        let graph = if sharded {
            let preload: Vec<_> = mli.iter().map(|v| (v.name, v.base_addr)).collect();
            let (builder, merged) = fold_ddg_sharded(
                records,
                &phases.annots,
                &plan,
                self.config.selective,
                true,
                &preload,
                &self.ctx,
            );
            stats_finished = merged;
            builder.finish()
        } else {
            DdgAnalysis::fold_in(
                records,
                &phases,
                &mli,
                DdgOptions {
                    selective: self.config.selective,
                    retain_events: false,
                    ..DdgOptions::default()
                },
                &self.ctx,
                |e| {
                    let builder = stats
                        .entry(e.base)
                        .or_insert_with(|| VarStatsBuilder::with_seed(addr_seed));
                    match (e.phase, e.kind) {
                        (Phase::Inside, kind) => {
                            builder.feed_inside(e.iter, e.elem, kind == RwKind::Write)
                        }
                        (Phase::After, RwKind::Read) => builder.feed_after_read(),
                        _ => {}
                    }
                },
            )
        };
        let dependency = t.finish();

        // Contraction (Algorithm 1), on the frozen CSR graph — its own
        // stage in the timing breakdown, so batch and streaming book it
        // the same way.
        let t = m.timed(TimerId::Contract);
        let contracted = crate::contract::contract_for_mli_in(&graph, &mli, &m);
        let contract = t.finish();
        let ddg = DdgSummary {
            nodes: graph.len(),
            edges: graph.edge_count(),
            contracted_nodes: contracted.nodes.len(),
            contracted_edges: contracted.edges.len(),
        };

        // Identification: the shared selection over the folded statistics
        // (the exact fold + decision the streaming finish step performs).
        // Each MLI base is decided once, so its builder is taken out of the
        // seeded map and finished in place — no second map.
        let t = m.timed(TimerId::Identify);
        let (critical, skipped) = crate::classify::select(
            &mli,
            &self.index_vars,
            self.region.start_line,
            &self.ctx,
            |var| {
                let st = if sharded {
                    stats_finished.remove(&var.base_addr).unwrap_or_default()
                } else {
                    stats
                        .remove(&var.base_addr)
                        .map(|b| b.finish())
                        .unwrap_or_default()
                };
                crate::classify::decide(&st, var.size)
            },
        );
        let identify = t.finish();

        if m.is_enabled() {
            m.gauge_set(GaugeId::DdgNodes, ddg.nodes as u64);
            m.gauge_set(GaugeId::DdgEdges, ddg.edges as u64);
            crate::observe::note_session_symbols(&self.ctx);
        }

        Report {
            mli,
            critical,
            skipped,
            iterations: phases.iterations,
            records: records.len() as u64,
            timings: Timings {
                preprocess,
                dependency,
                identify,
                contract,
            },
            ddg,
        }
    }
}

/// Find the Index variables of the main loop from the program's IR — our
/// equivalent of the paper's "llvm-pass-loop API" step.
///
/// Returns the names of the control variables of the outermost loop whose
/// header lies within `region` in the region's function.
pub fn index_variables_of(module: &autocheck_ir::Module, region: &Region) -> Vec<String> {
    let Some(fid) = module.function_by_name(&region.function) else {
        return Vec::new();
    };
    let f = module.function(fid);
    let cfg = autocheck_ir::Cfg::compute(f);
    let dom = autocheck_ir::DomTree::compute(&cfg);
    let forest = autocheck_ir::LoopForest::compute(f, &cfg, &dom);
    let Some(idx) = forest.outermost_in_region(f, region.start_line, region.end_line) else {
        return Vec::new();
    };
    autocheck_ir::loops::control_variables(module, f, &forest.loops[idx])
        .into_iter()
        .map(|c| c.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::DepType;

    /// The paper's Figure 4 example, end to end: compile with MiniLang,
    /// trace with the interpreter, analyze, and compare with the paper's
    /// stated result — checkpoint `r`, `a`, `sum`, `it`.
    ///
    /// Line numbers: `foo` spans lines 1–5, `main` starts at 6, the main
    /// loop is lines 13–21 (as in the paper's Fig. 4 layout).
    const FIG4: &str = "\
void foo(int* p, int* q) {
    for (int i = 0; i < 10; i = i + 1) {
        q[i] = p[i] * 2;
    }
}
int main() {
    int a[10]; int b[10];
    int sum = 0; int s = 0; int r = 1;
    for (int i = 0; i < 10; i = i + 1) {
        a[i] = 0;
        b[i] = 0;
    }
    for (int it = 0; it < 10; it = it + 1) {
        int m;
        s = it + 1;
        a[it] = s * r;
        foo(a, b);
        r = r + 1;
        m = a[it] + b[it];
        sum = m;
    }
    print(sum);
    return 0;
}
";

    fn fig4_report() -> Report {
        let module = autocheck_minilang::compile(FIG4).expect("compiles");
        let mut machine =
            autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default());
        let mut sink = autocheck_interp::VecSink::default();
        machine
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .expect("runs");
        let region = Region::new("main", 13, 21);
        let index = index_variables_of(&module, &region);
        Analyzer::new(region)
            .with_index_vars(index)
            .analyze(&sink.records)
    }

    #[test]
    fn fig4_mli_variables_match_paper() {
        let report = fig4_report();
        let mut names: Vec<_> = report.mli.iter().map(|m| m.name.as_str()).collect();
        names.sort();
        // Paper §IV-A: "'a', 'b', 'sum', 's', 'r' are the MLI variables".
        assert_eq!(names, vec!["a", "b", "r", "s", "sum"]);
    }

    #[test]
    fn fig4_critical_variables_match_paper() {
        let report = fig4_report();
        let summary = report.summary();
        // Paper §IV-C: "we should checkpoint variables 'r', 'a', 'sum' and
        // 'it'". `a` is the RAPO example, `r` the WAR example, `sum` the
        // Outcome example, `it` the Index.
        assert_eq!(
            summary,
            vec![
                ("a".to_string(), DepType::Rapo),
                ("it".to_string(), DepType::Index),
                ("r".to_string(), DepType::War),
                ("sum".to_string(), DepType::Outcome),
            ]
        );
    }

    #[test]
    fn fig4_skipped_variables_have_reasons() {
        let report = fig4_report();
        let skipped: Vec<(&str, crate::report::SkipReason)> =
            report.skipped.iter().map(|(n, r)| (&**n, *r)).collect();
        // `s` is rewritten at the top of each iteration; `b` is fully
        // rewritten by foo before being read.
        assert!(skipped
            .iter()
            .any(|(n, r)| *n == "s" && *r == crate::report::SkipReason::RewrittenBeforeRead));
        assert!(skipped
            .iter()
            .any(|(n, r)| *n == "b" && *r == crate::report::SkipReason::RewrittenBeforeRead));
    }

    #[test]
    fn fig4_iteration_count_observed() {
        let report = fig4_report();
        assert_eq!(report.iterations, 10);
        assert!(report.records > 0);
    }

    #[test]
    fn analyze_text_equals_analyze_records() {
        let module = autocheck_minilang::compile(FIG4).unwrap();
        let mut machine =
            autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default());
        let mut sink = autocheck_interp::WriterSink::new(Vec::new());
        machine
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .unwrap();
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();

        let region = Region::new("main", 13, 21);
        let analyzer = Analyzer::new(region).with_index_vars(vec!["it".into()]);
        let from_text = analyzer.analyze_text(&text).unwrap();
        let records = TraceSource::from_str(&text).records().unwrap();
        let from_records = analyzer.analyze(&records);
        assert_eq!(from_text.summary(), from_records.summary());

        // Parallel parsing changes nothing.
        let mut par = analyzer.clone();
        par.config.parse_threads = 4;
        let parallel = par.analyze_text(&text).unwrap();
        assert_eq!(parallel.summary(), from_records.summary());
    }

    #[test]
    fn ablation_configs_agree_on_fig4() {
        let module = autocheck_minilang::compile(FIG4).unwrap();
        let mut machine =
            autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default());
        let mut sink = autocheck_interp::VecSink::default();
        machine
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .unwrap();
        let region = Region::new("main", 13, 21);
        let index = index_variables_of(&module, &region);

        let selective = Analyzer::new(region.clone())
            .with_index_vars(index.clone())
            .analyze(&sink.records);
        let exhaustive = Analyzer::new(region)
            .with_index_vars(index)
            .with_config(PipelineConfig {
                selective: false,
                ..PipelineConfig::default()
            })
            .analyze(&sink.records);
        assert_eq!(selective.summary(), exhaustive.summary());
    }

    #[test]
    fn sharded_analysis_matches_serial() {
        let module = autocheck_minilang::compile(FIG4).unwrap();
        let mut machine =
            autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default());
        let mut sink = autocheck_interp::VecSink::default();
        machine
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .unwrap();
        let region = Region::new("main", 13, 21);
        let index = index_variables_of(&module, &region);
        let serial = Analyzer::new(region.clone())
            .with_index_vars(index.clone())
            .analyze(&sink.records);
        // 0 = auto; 64 exceeds the iteration count (graceful degradation).
        for shards in [0usize, 2, 3, 8, 64] {
            let out = Analyzer::new(region.clone())
                .with_index_vars(index.clone())
                .with_config(PipelineConfig {
                    shards,
                    ..PipelineConfig::default()
                })
                .analyze(&sink.records);
            assert_eq!(out.summary(), serial.summary(), "{shards} shards");
            assert_eq!(out.mli, serial.mli, "{shards} shards");
            assert_eq!(out.skipped, serial.skipped, "{shards} shards");
            assert_eq!(out.iterations, serial.iterations);
            assert_eq!(out.records, serial.records);
            assert_eq!(out.ddg.nodes, serial.ddg.nodes, "{shards} shards");
            assert_eq!(out.ddg.edges, serial.ddg.edges, "{shards} shards");
            assert_eq!(out.ddg.contracted_nodes, serial.ddg.contracted_nodes);
            assert_eq!(out.ddg.contracted_edges, serial.ddg.contracted_edges);
        }
    }

    #[test]
    fn index_variables_of_finds_it() {
        let module = autocheck_minilang::compile(FIG4).unwrap();
        let region = Region::new("main", 13, 21);
        assert_eq!(index_variables_of(&module, &region), vec!["it".to_string()]);
    }

    #[test]
    fn timings_are_populated() {
        let report = fig4_report();
        // Durations are non-negative by construction; just ensure the
        // breakdown exists and total() is the sum.
        let t = report.timings;
        assert_eq!(
            t.total(),
            t.preprocess + t.dependency + t.identify + t.contract
        );
    }
}
