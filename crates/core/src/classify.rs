//! Identification of critical variables — the paper's §IV-C heuristics.
//!
//! Consumes the time-ordered R/W event sequence and labels every MLI
//! variable (Fig. 7):
//!
//! * **WAR** — the variable is written in the loop and some element's
//!   *first access within an iteration is a read*: its value carries across
//!   iterations, so a restart without it replays stale data. This covers
//!   scalars (`r` in the worked example, accumulators like EP's `sx`) and
//!   fully-rewritten-after-read arrays (`u` in BT/SP/LU).
//! * **RAPO** — a carried *array* whose writes never cover the whole
//!   observed footprint in any iteration: the untouched elements cannot be
//!   reconstructed (IS's `key_array`).
//! * **Outcome** — written in the loop, read after it, not carried (FT's
//!   `sum`).
//! * **Index** — the loop's control variables, supplied by the IR loop pass
//!   (the paper's llvm-pass-loop API); they take precedence over the other
//!   labels, matching the paper's miniAMR row where the loop-steering flag
//!   `done` is reported as Index.
//!
//! Non-critical MLI variables are reported with a [`SkipReason`], mirroring
//! the paper's CG case study (`z, p, q, r, A` need no checkpoint).

use crate::ddg::{RwEvent, RwKind};
use crate::preprocess::MliVar;
use crate::region::Phase;
use crate::report::{CriticalVariable, DepType, SkipReason};
use autocheck_stream::{VarStats, VarStatsBuilder};
use autocheck_trace::{AnalysisCtx, SymId};
use fxhash::FxHashSet;
use std::sync::Arc;

/// Classification inputs beyond the event stream.
#[derive(Clone, Debug)]
pub struct ClassifyConfig {
    /// Names of the outermost loop's induction/control variables.
    pub index_vars: Vec<String>,
    /// The loop's start line (reported as the Index variables' location).
    pub region_start: u32,
    /// The analysis session: index-variable names intern into its symbol
    /// space (which must be the space the MLI entries came from), and the
    /// per-base event index hashes with its address seed.
    pub ctx: AnalysisCtx,
}

impl Default for ClassifyConfig {
    /// Defaults scope to the thread's **current** space (like every other
    /// ctx-less entry point), so `..Default::default()` inside an entered
    /// session resolves the session's MLI names, not the global space's.
    fn default() -> Self {
        ClassifyConfig {
            index_vars: Vec::new(),
            region_start: 0,
            ctx: AnalysisCtx::current(),
        }
    }
}

/// Classify MLI variables into critical/skipped sets.
pub fn classify(
    mli: &[MliVar],
    events: &[RwEvent],
    cfg: &ClassifyConfig,
) -> (Vec<CriticalVariable>, Vec<(Arc<str>, SkipReason)>) {
    let mut by_base = cfg.ctx.addr_map::<u64, Vec<&RwEvent>>();
    for e in events {
        by_base.entry(e.base).or_default().push(e);
    }

    select(mli, &cfg.index_vars, cfg.region_start, &cfg.ctx, |var| {
        let evs = by_base
            .get(&var.base_addr)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        classify_one(var, evs, cfg.ctx.addr_seed())
    })
}

/// The shared critical/skipped selection over MLI variables — Index
/// precedence, per-variable decision, the Index fallback location, and the
/// deterministic output order. One copy for both pipelines (the batch
/// [`classify`] and the streaming session's finish), so selection policy
/// cannot drift between them any more than the [`decide`] heuristics can.
pub(crate) fn select(
    mli: &[MliVar],
    index_vars: &[String],
    region_start: u32,
    ctx: &AnalysisCtx,
    mut decide_var: impl FnMut(&MliVar) -> Result<DepType, SkipReason>,
) -> (Vec<CriticalVariable>, Vec<(Arc<str>, SkipReason)>) {
    // The comparison set is interned in the session's space — the space
    // the MLI names came from — so per-variable membership is an integer
    // probe, and names cross back to strings only at the report boundary
    // below.
    let index_set: FxHashSet<SymId> = index_vars.iter().map(|s| ctx.intern(s)).collect();
    let mut critical: Vec<CriticalVariable> = Vec::new();
    let mut skipped: Vec<(Arc<str>, SkipReason)> = Vec::new();

    for var in mli {
        if index_set.contains(&var.name) {
            // Handled below: Index takes precedence.
            continue;
        }
        match decide_var(var) {
            Ok(dep) => critical.push(CriticalVariable {
                name: Arc::from(ctx.resolve(var.name)),
                dep,
                first_line: var.first_line,
                base_addr: var.base_addr,
                size: var.size,
            }),
            Err(reason) => skipped.push((Arc::from(ctx.resolve(var.name)), reason)),
        }
    }

    // Index variables: always checkpointed (paper: "we also do checkpoint
    // to the induction variables of the main computation loop").
    for name in index_vars {
        let id = ctx.intern(name);
        let (base, size, line) = mli
            .iter()
            .find(|m| m.name == id)
            .map(|m| (m.base_addr, m.size, m.first_line))
            .unwrap_or((0, 8, region_start));
        critical.push(CriticalVariable {
            name: Arc::from(name.as_str()),
            dep: DepType::Index,
            first_line: line,
            base_addr: base,
            size,
        });
    }

    critical.sort_by(|a, b| a.name.cmp(&b.name));
    skipped.sort_by(|a, b| a.0.cmp(&b.0));
    (critical, skipped)
}

/// Classify one variable from its time-ordered event slice: fold the
/// events through the shared incremental [`VarStatsBuilder`] (the same
/// fold the streaming engine runs online, seeded with the same session
/// address seed — the fold's element-window keys are trace-supplied
/// addresses), then [`decide`].
fn classify_one(var: &MliVar, evs: &[&RwEvent], addr_seed: u64) -> Result<DepType, SkipReason> {
    let mut fold = VarStatsBuilder::with_seed(addr_seed);
    for e in evs {
        match (e.phase, e.kind) {
            (Phase::Inside, kind) => {
                fold.feed_inside(e.iter, e.elem, kind == RwKind::Write);
            }
            (Phase::After, RwKind::Read) => fold.feed_after_read(),
            _ => {}
        }
    }
    decide(&fold.finish(), var.size)
}

/// The §IV-C dependency-class decision, shared verbatim by the batch and
/// streaming pipelines (both feed it a [`VarStats`] fold of the variable's
/// access events; `size` is the variable's observed footprint in bytes).
pub fn decide(stats: &VarStats, size: u64) -> Result<DepType, SkipReason> {
    if !stats.written_in_loop {
        // Re-created by the pre-loop code on restart; no checkpoint needed
        // (the matrix A in the paper's CG case study).
        return Err(SkipReason::ReadOnlyInLoop);
    }

    if stats.carried {
        let is_array = stats.multi_elem || size > 8;
        // RAPO: some iteration reads an element it never writes (a *stale*
        // read) — "elements that were not involved in the overwriting
        // cannot be recovered". Read-modify-write patterns (EP's histogram
        // `q`) touch only elements they rewrite and are plain WAR;
        // scatter-writes + full scans (IS's `key_array`, the worked
        // example's `a`) are RAPO.
        if is_array && stats.stale_read {
            return Ok(DepType::Rapo);
        }
        return Ok(DepType::War);
    }

    if stats.read_after_loop {
        return Ok(DepType::Outcome);
    }

    if stats.read_in_loop {
        Err(SkipReason::RewrittenBeforeRead)
    } else {
        Err(SkipReason::DeadAfterLoop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str, base: u64, size: u64) -> MliVar {
        MliVar {
            name: SymId::intern(name),
            base_addr: base,
            size,
            first_line: 2,
        }
    }

    fn ev(base: u64, elem: u64, kind: RwKind, dyn_id: u64, iter: u32, phase: Phase) -> RwEvent {
        RwEvent {
            base,
            elem,
            kind,
            dyn_id,
            iter,
            phase,
            line: 10,
        }
    }

    fn run(
        mli: &[MliVar],
        events: &[RwEvent],
        index: &[&str],
    ) -> (Vec<CriticalVariable>, Vec<(Arc<str>, SkipReason)>) {
        classify(
            mli,
            events,
            &ClassifyConfig {
                index_vars: index.iter().map(|s| s.to_string()).collect(),
                region_start: 13,
                ctx: AnalysisCtx::default(),
            },
        )
    }

    #[test]
    fn scalar_read_then_written_is_war() {
        // r: each iteration reads then writes (r = r + 1).
        let mli = [var("r", 0x10, 8)];
        let events = [
            ev(0x10, 0x10, RwKind::Read, 1, 0, Phase::Inside),
            ev(0x10, 0x10, RwKind::Write, 2, 0, Phase::Inside),
            ev(0x10, 0x10, RwKind::Read, 3, 1, Phase::Inside),
            ev(0x10, 0x10, RwKind::Write, 4, 1, Phase::Inside),
        ];
        let (crit, _) = run(&mli, &events, &[]);
        assert_eq!(crit.len(), 1);
        assert_eq!(crit[0].dep, DepType::War);
    }

    #[test]
    fn scalar_rewritten_first_is_skipped() {
        // s: written at the top of each iteration, then read.
        let mli = [var("s", 0x10, 8)];
        let events = [
            ev(0x10, 0x10, RwKind::Write, 1, 0, Phase::Inside),
            ev(0x10, 0x10, RwKind::Read, 2, 0, Phase::Inside),
            ev(0x10, 0x10, RwKind::Write, 3, 1, Phase::Inside),
            ev(0x10, 0x10, RwKind::Read, 4, 1, Phase::Inside),
        ];
        let (crit, skipped) = run(&mli, &events, &[]);
        assert!(crit.is_empty());
        assert_eq!(skipped[0].1, SkipReason::RewrittenBeforeRead);
    }

    #[test]
    fn outcome_detected_from_after_loop_read() {
        // sum: written fresh each iteration, read after the loop.
        let mli = [var("sum", 0x10, 8)];
        let events = [
            ev(0x10, 0x10, RwKind::Write, 1, 0, Phase::Inside),
            ev(0x10, 0x10, RwKind::Write, 2, 1, Phase::Inside),
            ev(0x10, 0x10, RwKind::Read, 9, 1, Phase::After),
        ];
        let (crit, _) = run(&mli, &events, &[]);
        assert_eq!(crit[0].dep, DepType::Outcome);
    }

    #[test]
    fn carried_scalar_that_is_also_outcome_reports_war() {
        // Accumulator read after the loop: WAR wins (it implies the
        // stronger requirement).
        let mli = [var("acc", 0x10, 8)];
        let events = [
            ev(0x10, 0x10, RwKind::Read, 1, 0, Phase::Inside),
            ev(0x10, 0x10, RwKind::Write, 2, 0, Phase::Inside),
            ev(0x10, 0x10, RwKind::Read, 9, 0, Phase::After),
        ];
        let (crit, _) = run(&mli, &events, &[]);
        assert_eq!(crit[0].dep, DepType::War);
    }

    #[test]
    fn partially_overwritten_array_is_rapo() {
        // a[2]: iteration i writes a[i] then reads both elements — the
        // worked example's `a`.
        let mli = [var("a", 0x100, 16)];
        let events = [
            ev(0x100, 0x100, RwKind::Write, 1, 0, Phase::Inside),
            ev(0x100, 0x100, RwKind::Read, 2, 0, Phase::Inside),
            ev(0x100, 0x108, RwKind::Read, 3, 0, Phase::Inside),
            ev(0x100, 0x108, RwKind::Write, 4, 1, Phase::Inside),
            ev(0x100, 0x100, RwKind::Read, 5, 1, Phase::Inside),
            ev(0x100, 0x108, RwKind::Read, 6, 1, Phase::Inside),
        ];
        let (crit, _) = run(&mli, &events, &[]);
        assert_eq!(crit[0].dep, DepType::Rapo);
    }

    #[test]
    fn fully_rewritten_array_after_read_is_war() {
        // u[2]: read fully, then written fully, each iteration (BT's `u`).
        let mli = [var("u", 0x100, 16)];
        let events = [
            ev(0x100, 0x100, RwKind::Read, 1, 0, Phase::Inside),
            ev(0x100, 0x108, RwKind::Read, 2, 0, Phase::Inside),
            ev(0x100, 0x100, RwKind::Write, 3, 0, Phase::Inside),
            ev(0x100, 0x108, RwKind::Write, 4, 0, Phase::Inside),
        ];
        let (crit, _) = run(&mli, &events, &[]);
        assert_eq!(crit[0].dep, DepType::War);
    }

    #[test]
    fn array_fully_written_before_read_is_skipped() {
        // b: foo writes every element, then elements are read.
        let mli = [var("b", 0x100, 16)];
        let events = [
            ev(0x100, 0x100, RwKind::Write, 1, 0, Phase::Inside),
            ev(0x100, 0x108, RwKind::Write, 2, 0, Phase::Inside),
            ev(0x100, 0x100, RwKind::Read, 3, 0, Phase::Inside),
            ev(0x100, 0x108, RwKind::Read, 4, 0, Phase::Inside),
        ];
        let (crit, skipped) = run(&mli, &events, &[]);
        assert!(crit.is_empty());
        assert_eq!(skipped[0].1, SkipReason::RewrittenBeforeRead);
    }

    #[test]
    fn read_only_variable_is_skipped() {
        let mli = [var("A", 0x100, 64)];
        let events = [
            ev(0x100, 0x100, RwKind::Read, 1, 0, Phase::Inside),
            ev(0x100, 0x108, RwKind::Read, 2, 1, Phase::Inside),
        ];
        let (crit, skipped) = run(&mli, &events, &[]);
        assert!(crit.is_empty());
        assert_eq!(skipped[0].1, SkipReason::ReadOnlyInLoop);
    }

    #[test]
    fn index_variables_always_reported() {
        let (crit, _) = run(&[], &[], &["it"]);
        assert_eq!(crit.len(), 1);
        assert_eq!(crit[0].dep, DepType::Index);
        assert_eq!(&*crit[0].name, "it");
        assert_eq!(crit[0].first_line, 13);
    }

    #[test]
    fn index_takes_precedence_over_war() {
        // `done` would classify WAR (read in the condition, written in the
        // body) but the loop pass reports it as a control variable — the
        // paper's miniAMR lists it as Index.
        let mli = [var("done", 0x10, 8)];
        let events = [
            ev(0x10, 0x10, RwKind::Read, 1, 0, Phase::Inside),
            ev(0x10, 0x10, RwKind::Write, 2, 0, Phase::Inside),
        ];
        let (crit, _) = run(&mli, &events, &["done"]);
        assert_eq!(crit.len(), 1);
        assert_eq!(crit[0].dep, DepType::Index);
    }

    #[test]
    fn written_but_never_read_is_dead() {
        let mli = [var("dbg", 0x10, 8)];
        let events = [ev(0x10, 0x10, RwKind::Write, 1, 0, Phase::Inside)];
        let (crit, skipped) = run(&mli, &events, &[]);
        assert!(crit.is_empty());
        assert_eq!(skipped[0].1, SkipReason::DeadAfterLoop);
    }
}
