//! Analysis results: critical variables, skip reasons, timings.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// The dependency class that makes a variable critical (paper Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepType {
    /// Write-After-Read: the value carries across iterations.
    War,
    /// Read-After-Partially-Overwritten: an array only partially rewritten
    /// per iteration.
    Rapo,
    /// The main loop's output, read after the loop.
    Outcome,
    /// Induction/control variable of the outermost main loop.
    Index,
}

impl fmt::Display for DepType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepType::War => write!(f, "WAR"),
            DepType::Rapo => write!(f, "RAPO"),
            DepType::Outcome => write!(f, "Outcome"),
            DepType::Index => write!(f, "Index"),
        }
    }
}

/// One variable AutoCheck says must be checkpointed.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalVariable {
    /// Source-level name.
    pub name: Arc<str>,
    /// Why it is critical.
    pub dep: DepType,
    /// First line the variable was seen used (the paper reports the
    /// declaration location; traces only expose uses).
    pub first_line: u32,
    /// Base address of its storage during the traced run.
    pub base_addr: u64,
    /// Storage footprint in bytes (what a checkpoint of it costs).
    pub size: u64,
}

/// Why an MLI variable was *not* selected (reported for explainability;
/// the paper's §IV-D discusses these cases for CG).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// Never written inside the loop; re-created by pre-loop code on
    /// restart (e.g. the matrix `A` in CG).
    ReadOnlyInLoop,
    /// Fully rewritten before every read in each iteration (e.g. `z`, `p`,
    /// `q`, `r` in CG).
    RewrittenBeforeRead,
    /// Written in the loop but never read afterwards nor carried across
    /// iterations.
    DeadAfterLoop,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::ReadOnlyInLoop => write!(f, "read-only in loop"),
            SkipReason::RewrittenBeforeRead => write!(f, "rewritten before read each iteration"),
            SkipReason::DeadAfterLoop => write!(f, "not carried, not read after loop"),
        }
    }
}

/// Wall-clock breakdown, matching the paper's Table III columns plus the
/// contraction stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct Timings {
    /// Trace reading/parsing + region partitioning + MLI identification
    /// ("Pre-processing").
    pub preprocess: Duration,
    /// Reg-var/reg-reg maps and DDG construction ("Dependency Analysis");
    /// contraction is booked separately in [`contract`](Timings::contract).
    pub dependency: Duration,
    /// Heuristic classification ("Identify Variables").
    pub identify: Duration,
    /// Algorithm 1 contraction — its own stage so batch and streaming wall
    /// figures are computed one way (streaming contracts after
    /// classification; batch used to fold it into `dependency`).
    pub contract: Duration,
}

impl Timings {
    /// Total analysis time across all four stages.
    pub fn total(&self) -> Duration {
        self.preprocess + self.dependency + self.identify + self.contract
    }
}

/// Sizes of the dependency-graph stage — filled by both pipelines,
/// surfaced by `table3 --json` (not printed in the human-readable report).
/// Contraction wall clock lives in [`Timings::contract`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DdgSummary {
    /// Nodes of the complete DDG (variables + registers).
    pub nodes: usize,
    /// Edges of the complete DDG.
    pub edges: usize,
    /// Nodes surviving Algorithm 1 contraction (0 when contraction was not
    /// run, e.g. streaming without `contracted_dot`).
    pub contracted_nodes: usize,
    /// Edges of the contracted DDG.
    pub contracted_edges: usize,
}

/// The full analysis report.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Main-loop-input variables that were analyzed.
    pub mli: Vec<crate::preprocess::MliVar>,
    /// The variables to checkpoint.
    pub critical: Vec<CriticalVariable>,
    /// MLI variables found non-critical, with reasons.
    pub skipped: Vec<(Arc<str>, SkipReason)>,
    /// Loop iterations observed in the trace.
    pub iterations: u32,
    /// Records examined.
    pub records: u64,
    /// Stage timings.
    pub timings: Timings,
    /// Dependency-graph sizes and contraction cost.
    pub ddg: DdgSummary,
}

impl Report {
    /// The critical variable named `name`, if present.
    pub fn critical_by_name(&self, name: &str) -> Option<&CriticalVariable> {
        self.critical.iter().find(|c| &*c.name == name)
    }

    /// `(name, dep)` pairs sorted by name — convenient for table printing
    /// and test assertions.
    pub fn summary(&self) -> Vec<(String, DepType)> {
        let mut v: Vec<(String, DepType)> = self
            .critical
            .iter()
            .map(|c| (c.name.to_string(), c.dep))
            .collect();
        v.sort();
        v
    }

    /// Total bytes a checkpoint of the detected variables would store —
    /// the AutoCheck column of the paper's Table IV.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.critical.iter().map(|c| c.size).sum()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "AutoCheck report: {} MLI variable(s), {} critical, {} iteration(s), {} record(s)",
            self.mli.len(),
            self.critical.len(),
            self.iterations,
            self.records
        )?;
        for c in &self.critical {
            writeln!(
                f,
                "  checkpoint {:<20} {:<8} first seen line {:<5} {} bytes",
                c.name, c.dep, c.first_line, c.size
            )?;
        }
        for (name, why) in &self.skipped {
            writeln!(f, "  skip       {name:<20} {why}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_is_sorted() {
        let report = Report {
            critical: vec![
                CriticalVariable {
                    name: Arc::from("r"),
                    dep: DepType::War,
                    first_line: 8,
                    base_addr: 0x10,
                    size: 8,
                },
                CriticalVariable {
                    name: Arc::from("a"),
                    dep: DepType::Rapo,
                    first_line: 10,
                    base_addr: 0x20,
                    size: 80,
                },
            ],
            ..Report::default()
        };
        assert_eq!(
            report.summary(),
            vec![
                ("a".to_string(), DepType::Rapo),
                ("r".to_string(), DepType::War)
            ]
        );
        assert_eq!(report.checkpoint_bytes(), 88);
        assert!(report.critical_by_name("a").is_some());
        assert!(report.critical_by_name("zz").is_none());
    }

    #[test]
    fn display_mentions_each_variable() {
        let report = Report {
            critical: vec![CriticalVariable {
                name: Arc::from("sum"),
                dep: DepType::Outcome,
                first_line: 9,
                base_addr: 0x10,
                size: 8,
            }],
            skipped: vec![(Arc::from("b"), SkipReason::RewrittenBeforeRead)],
            ..Report::default()
        };
        let text = report.to_string();
        assert!(text.contains("sum"));
        assert!(text.contains("Outcome"));
        assert!(text.contains("rewritten before read"));
    }

    #[test]
    fn timings_total_includes_contraction() {
        let t = Timings {
            preprocess: Duration::from_millis(5),
            dependency: Duration::from_millis(3),
            identify: Duration::from_millis(2),
            contract: Duration::from_millis(4),
        };
        assert_eq!(t.total(), Duration::from_millis(14));
    }
}
