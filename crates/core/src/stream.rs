//! Streaming front door: the online counterpart of [`crate::Analyzer`].
//!
//! [`StreamAnalyzer`] mirrors the batch analyzer's API (region in, index
//! variables in, [`Report`] out) but consumes records **as they arrive**
//! instead of requiring the whole trace in memory: push records into a
//! [`StreamSession`] (e.g. straight from the interpreter's sink — no trace
//! file at all), or pull them from any [`io::Read`] through the trace
//! crate's [`autocheck_trace::TraceSource`] (text or binary, auto-detected).
//!
//! The analysis itself runs in `autocheck-stream`'s [`Engine`]: one pass,
//! per-iteration state retired at iteration boundaries, peak memory
//! observable as the *live-record count* ([`StreamStats`]) and optionally
//! hard-bounded ([`StreamConfig::max_live_records`]). Classification
//! decisions are shared with the batch pipeline ([`crate::classify::decide`]),
//! so both produce identical reports by construction — a property the
//! integration and property tests assert over the Fig. 4 example, all 14
//! benchmarks, and random MiniLang programs.

use crate::preprocess::{CollectMode, MliVar};
use crate::region::Region;
use crate::report::{Report, Timings};
use autocheck_obs::TimerId;
use autocheck_stream::{
    run_sharded, Engine, EngineConfig, EngineError, EngineOutcome, LiveBoundExceeded,
};
use autocheck_trace::{
    resolve_overlap_depth, resolve_shard_count, AnalysisCtx, Record, ResourceExceeded,
    TraceReadError, TraceSource,
};
use std::fmt;
use std::io;
use std::time::Instant;

/// Tunables for the streaming pipeline (defaults match the batch
/// [`crate::PipelineConfig`] where the two overlap).
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Occurrence-collection strictness (see [`CollectMode`]).
    pub collect: CollectMode,
    /// Selective trace iteration (paper §IV-B); `false` is the ablation.
    pub selective: bool,
    /// Hard bound on the live-record window; `None` = observe only.
    pub max_live_records: Option<usize>,
    /// Contract the streaming DDG (Algorithm 1) at finish and render it as
    /// DOT ([`StreamRun::contracted_dot`]). The graph is bounded by the
    /// program, so this keeps the O(live window) memory story intact.
    pub contracted_dot: bool,
    /// Iteration-aligned shards for the engine fold: `1` = serial, `0` =
    /// one per available core, `N` = at most `N` workers. Sharded runs
    /// produce byte-identical reports and DOT output, but materialize the
    /// records (sharding is a wall-clock optimization for traces that fit
    /// in memory; the O(live window) story belongs to the serial stream)
    /// and enforce the live-record bound per shard rather than globally.
    pub shards: usize,
    /// Decode-ahead depth for reader/path inputs: `1` = serial (the
    /// default), `0` = auto (serial on single-core hosts), `n >= 2` = read
    /// and decode the trace on background threads, `n` record batches
    /// ahead of the engine fold. Output is byte-identical to serial at
    /// every depth; see [`autocheck_trace::resolve_overlap_depth`].
    pub overlap: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            collect: CollectMode::AnyAccess,
            selective: true,
            max_live_records: None,
            contracted_dot: false,
            shards: 1,
            overlap: 1,
        }
    }
}

/// A streaming analysis failure.
#[derive(Debug)]
pub enum StreamError {
    /// Reading or parsing the trace stream failed.
    Source(TraceReadError),
    /// The configured live-record bound was exceeded.
    LiveBound(LiveBoundExceeded),
    /// A session resource ceiling (DDG nodes/edges, or a trace-side limit
    /// smuggled through the source) was crossed.
    Resource(ResourceExceeded),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Source(e) => write!(f, "{e}"),
            StreamError::LiveBound(e) => write!(f, "{e}"),
            StreamError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<TraceReadError> for StreamError {
    fn from(e: TraceReadError) -> Self {
        // Surface a limit trip from the trace layer under the same variant
        // the engine uses, so callers match one shape.
        match e {
            TraceReadError::Resource(r) => StreamError::Resource(r),
            other => StreamError::Source(other),
        }
    }
}

impl From<LiveBoundExceeded> for StreamError {
    fn from(e: LiveBoundExceeded) -> Self {
        StreamError::LiveBound(e)
    }
}

impl From<EngineError> for StreamError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::LiveBound(e) => StreamError::LiveBound(e),
            EngineError::Resource(e) => StreamError::Resource(e),
        }
    }
}

impl From<ResourceExceeded> for StreamError {
    fn from(e: ResourceExceeded) -> Self {
        StreamError::Resource(e)
    }
}

/// Memory-bound observability for one streaming run — what the batch
/// pipeline cannot report, because it holds everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// Peak live-record window (per-iteration state entries) over the run.
    pub peak_live_records: usize,
    /// The configured bound, if any.
    pub live_bound: Option<usize>,
    /// Streaming DDG node count (bounded by the program).
    pub ddg_nodes: usize,
    /// Streaming DDG edge count.
    pub ddg_edges: usize,
}

/// A finished streaming run: the batch-identical report plus the
/// memory-bound statistics.
#[derive(Clone, Debug)]
pub struct StreamRun {
    /// The analysis report, identical to the batch pipeline's.
    pub report: Report,
    /// Live-window statistics.
    pub stats: StreamStats,
    /// The contracted DDG rendered as DOT, when
    /// [`StreamConfig::contracted_dot`] asked for it — Algorithm 1 over the
    /// streaming graph, previously a batch-only capability.
    pub contracted_dot: Option<String>,
}

/// The streaming AutoCheck analyzer. Construction mirrors
/// [`crate::Analyzer`]: region, index variables, configuration.
#[derive(Clone, Debug)]
pub struct StreamAnalyzer {
    /// The main computation loop's location.
    pub region: Region,
    /// Induction/control variables of the outermost loop.
    pub index_vars: Vec<String>,
    /// Pipeline tunables.
    pub config: StreamConfig,
    /// The analysis session (symbol space + address-hash seed).
    pub ctx: AnalysisCtx,
}

impl StreamAnalyzer {
    /// Analyzer with default configuration, scoped to the thread's current
    /// symbol space.
    pub fn new(region: Region) -> StreamAnalyzer {
        StreamAnalyzer {
            region,
            index_vars: Vec::new(),
            config: StreamConfig::default(),
            ctx: AnalysisCtx::current(),
        }
    }

    /// Set the Index variables (usually from [`crate::index_variables_of`]).
    pub fn with_index_vars(mut self, vars: Vec<String>) -> StreamAnalyzer {
        self.index_vars = vars;
        self
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: StreamConfig) -> StreamAnalyzer {
        self.config = config;
        self
    }

    /// Scope this analyzer to `ctx`'s session.
    pub fn with_ctx(mut self, ctx: AnalysisCtx) -> StreamAnalyzer {
        self.ctx = ctx;
        self
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            function: self.region.function.clone(),
            start_line: self.region.start_line,
            end_line: self.region.end_line,
            // `CollectMode` *is* the engine's `Collect` (shared type).
            collect: self.config.collect,
            selective: self.config.selective,
            max_live_records: self.config.max_live_records,
        }
    }

    /// Open a push-based session: feed records in execution order, then
    /// [`StreamSession::finish`].
    pub fn session(&self) -> StreamSession {
        StreamSession {
            engine: Engine::with_ctx(self.engine_config(), &self.ctx),
            ctx: self.ctx.clone(),
            index_vars: self.index_vars.clone(),
            region_start: self.region.start_line,
            live_bound: self.config.max_live_records,
            contracted_dot: self.config.contracted_dot,
            started: None,
        }
    }

    /// Analyze already-materialized records through the streaming engine —
    /// the drop-in equivalent of [`crate::Analyzer::analyze`], used by the
    /// equivalence tests. Honors [`StreamConfig::shards`].
    pub fn analyze(&self, records: &[Record]) -> Result<Report, StreamError> {
        self.run_records(records, None).map(|run| run.report)
    }

    /// Analyze materialized records, serial or sharded per
    /// [`StreamConfig::shards`], returning the full [`StreamRun`].
    ///
    /// `boundaries` are iteration-start record indices when already known
    /// (e.g. from the binary format's iteration-index footer); `None` lets
    /// the sharded path run one region-tracker scan.
    pub fn run_records(
        &self,
        records: &[Record],
        boundaries: Option<&[u64]>,
    ) -> Result<StreamRun, StreamError> {
        let shards = resolve_shard_count(self.config.shards);
        if shards <= 1 {
            let mut session = self.session();
            for r in records {
                session.push(r)?;
            }
            return Ok(session.finish());
        }
        let t0 = Instant::now();
        let outcome = run_sharded(
            &self.engine_config(),
            &self.ctx,
            records,
            boundaries,
            shards,
        )?;
        let ingest = t0.elapsed();
        Ok(finish_outcome(
            move || outcome,
            &self.ctx,
            &self.index_vars,
            self.region.start_line,
            self.config.max_live_records,
            self.config.contracted_dot,
            ingest,
        ))
    }

    /// Analyze a trace pulled from any reader (file, pipe, socket, …) with
    /// bounded buffering — the streaming equivalent of
    /// [`crate::Analyzer::analyze_text`].
    pub fn analyze_read<R: io::Read + Send>(&self, reader: R) -> Result<Report, StreamError> {
        self.run_read(reader).map(|run| run.report)
    }

    /// Like [`analyze_read`](Self::analyze_read), also returning the
    /// live-window statistics. With [`StreamConfig::shards`] above 1 the
    /// records are materialized first (see [`StreamConfig::shards`] for
    /// the trade). With [`StreamConfig::overlap`] above 1 the trace is
    /// read and decoded on background threads while the engine folds —
    /// same output, decode wall overlapped away.
    pub fn run_read<R: io::Read + Send>(&self, reader: R) -> Result<StreamRun, StreamError> {
        if resolve_shard_count(self.config.shards) > 1 {
            // Overlap accelerates the materialization that feeds the
            // sharded fold; the two compose.
            let records = TraceSource::from_reader(reader)
                .ctx(&self.ctx)
                .overlap(self.config.overlap)
                .records()?;
            return self.run_records(&records, None);
        }
        if resolve_overlap_depth(self.config.overlap) > 1 {
            return TraceSource::from_reader(reader)
                .ctx(&self.ctx)
                .overlap(self.config.overlap)
                .overlapped(|batches| {
                    let mut session = self.session();
                    while let Some(batch) = batches.next_batch() {
                        for record in &batch? {
                            session.push(record)?;
                        }
                    }
                    Ok(session.finish())
                })?;
        }
        let mut session = self.session();
        let stream = TraceSource::from_reader(reader).ctx(&self.ctx).stream()?;
        for item in stream {
            session.push(&item?)?;
        }
        Ok(session.finish())
    }

    /// Analyze an in-memory trace in either format. Binary traces carrying
    /// an iteration-index footer hand the shard planner its boundaries in
    /// O(index) — no extra scan.
    pub fn run_bytes(&self, bytes: &[u8]) -> Result<StreamRun, StreamError> {
        if resolve_shard_count(self.config.shards) <= 1 {
            return self.run_read(bytes);
        }
        let boundaries = autocheck_trace::binary::iteration_index(bytes)
            .ok()
            .flatten();
        let records = TraceSource::from_bytes(bytes).ctx(&self.ctx).records()?;
        self.run_records(&records, boundaries.as_deref())
    }
}

/// An in-flight streaming analysis.
///
/// Timing semantics: the report's ingest (pre-processing) figure is the
/// wall-clock span from the **first push** to [`finish`](Self::finish).
/// When records are pulled from a reader ([`StreamAnalyzer::run_read`]) or
/// pushed in a tight loop ([`StreamAnalyzer::analyze`]) that is pure
/// analysis time; in interpreter-direct mode (a sink pushing as the program
/// runs) trace generation and analysis are fused, so the span deliberately
/// includes program execution — there is no separable analysis time to
/// report, and the figure must not be compared against batch pre-processing.
pub struct StreamSession {
    engine: Engine,
    ctx: AnalysisCtx,
    index_vars: Vec<String>,
    region_start: u32,
    live_bound: Option<usize>,
    contracted_dot: bool,
    started: Option<Instant>,
}

impl StreamSession {
    /// Consume one record. Fails fast if the configured live-record bound
    /// or a session resource ceiling is exceeded.
    pub fn push(&mut self, record: &Record) -> Result<(), EngineError> {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
        self.engine.push(record)
    }

    /// Live window entries currently held.
    pub fn live_records(&self) -> usize {
        self.engine.live_records()
    }

    /// Peak live window so far.
    pub fn peak_live_records(&self) -> usize {
        self.engine.peak_live_records()
    }

    /// Records consumed so far.
    pub fn records_seen(&self) -> u64 {
        self.engine.records_seen()
    }

    /// Finalize the analysis into a batch-identical [`Report`].
    pub fn finish(self) -> StreamRun {
        // Everything up to here — parse, region partitioning, MLI
        // collection, dependency analysis — ran fused in the single online
        // pass; report it as the pre-processing + dependency stages'
        // combined time, with the finish step as identification.
        let ingest = self
            .started
            .map(|t| t.elapsed())
            .unwrap_or(std::time::Duration::ZERO);
        finish_outcome(
            || self.engine.finish(),
            &self.ctx,
            &self.index_vars,
            self.region_start,
            self.live_bound,
            self.contracted_dot,
            ingest,
        )
    }
}

/// The shared finish step: classification, optional contraction, and report
/// assembly over an [`EngineOutcome`] — one implementation whether the
/// outcome came from a serial [`StreamSession`] or a sharded merge.
/// `outcome` is a closure so serial finalization (retiring windows,
/// freezing the graph) is booked inside the identify stage, exactly as
/// before.
fn finish_outcome(
    outcome: impl FnOnce() -> EngineOutcome,
    ctx: &AnalysisCtx,
    index_vars: &[String],
    region_start: u32,
    live_bound: Option<usize>,
    render_contracted_dot: bool,
    ingest: std::time::Duration,
) -> StreamRun {
    let metrics = ctx.metrics().clone();
    // The fused online pass is the streaming counterpart of
    // pre-processing; the ledger books it there.
    metrics.record_duration(TimerId::Preprocess, ingest);
    let t1 = Instant::now();
    let outcome = outcome();

    // `MliVar` *is* the engine's entry type — no conversion, the same
    // values flow into the report that the batch pipeline would build.
    let mli: Vec<MliVar> = outcome.mli;

    // The exact selection the batch `classify` performs — same shared
    // function, driven by the shared decision heuristics over the
    // engine's folded statistics.
    let (critical, skipped) = crate::classify::select(&mli, index_vars, region_start, ctx, |var| {
        let stats = outcome
            .stats
            .get(&var.base_addr)
            .copied()
            .unwrap_or_default();
        crate::classify::decide(&stats, var.size)
    });

    let identify = t1.elapsed();
    metrics.record_duration(TimerId::Identify, identify);

    // Streaming contraction (Algorithm 1 on the frozen CSR graph):
    // available online for the first time because the engine's graph
    // *is* the shared graph the batch pipeline contracts. Booked as the
    // `contract` timing stage, exactly like the batch pipeline.
    let mut ddg = crate::report::DdgSummary {
        nodes: outcome.ddg.len(),
        edges: outcome.ddg.edge_count(),
        ..Default::default()
    };
    let mut contract = std::time::Duration::ZERO;
    let contracted_dot = if render_contracted_dot {
        let t = metrics.timed(TimerId::Contract);
        let contracted = crate::contract::contract_for_mli_in(&outcome.ddg, &mli, &metrics);
        contract = t.finish();
        ddg.contracted_nodes = contracted.nodes.len();
        ddg.contracted_edges = contracted.edges.len();
        Some(contracted.to_dot())
    } else {
        None
    };
    if metrics.is_enabled() {
        crate::observe::note_session_symbols(ctx);
    }
    StreamRun {
        report: Report {
            mli,
            critical,
            skipped,
            iterations: outcome.iterations,
            records: outcome.records,
            timings: Timings {
                preprocess: ingest,
                dependency: std::time::Duration::ZERO,
                identify,
                contract,
            },
            ddg,
        },
        stats: StreamStats {
            peak_live_records: outcome.peak_live_records,
            live_bound,
            // Derived from the one DdgSummary source so the stats can
            // never desynchronize from the report.
            ddg_nodes: ddg.nodes,
            ddg_edges: ddg.edges,
        },
        contracted_dot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{index_variables_of, Analyzer};

    /// The Fig. 4 worked example (same source as the batch pipeline tests).
    const FIG4: &str = "\
void foo(int* p, int* q) {
    for (int i = 0; i < 10; i = i + 1) {
        q[i] = p[i] * 2;
    }
}
int main() {
    int a[10]; int b[10];
    int sum = 0; int s = 0; int r = 1;
    for (int i = 0; i < 10; i = i + 1) {
        a[i] = 0;
        b[i] = 0;
    }
    for (int it = 0; it < 10; it = it + 1) {
        int m;
        s = it + 1;
        a[it] = s * r;
        foo(a, b);
        r = r + 1;
        m = a[it] + b[it];
        sum = m;
    }
    print(sum);
    return 0;
}
";

    fn fig4_records() -> (autocheck_ir::Module, Vec<Record>) {
        let module = autocheck_minilang::compile(FIG4).expect("compiles");
        let mut machine =
            autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default());
        let mut sink = autocheck_interp::VecSink::default();
        machine
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .expect("runs");
        (module, sink.records)
    }

    fn assert_reports_match(batch: &Report, stream: &Report) {
        assert_eq!(batch.mli, stream.mli);
        assert_eq!(batch.critical, stream.critical);
        assert_eq!(batch.skipped, stream.skipped);
        assert_eq!(batch.iterations, stream.iterations);
        assert_eq!(batch.records, stream.records);
    }

    #[test]
    fn streaming_equals_batch_on_fig4() {
        let (module, records) = fig4_records();
        let region = Region::new("main", 13, 21);
        let index = index_variables_of(&module, &region);
        let batch = Analyzer::new(region.clone())
            .with_index_vars(index.clone())
            .analyze(&records);
        let stream = StreamAnalyzer::new(region)
            .with_index_vars(index)
            .analyze(&records)
            .expect("streams");
        assert_reports_match(&batch, &stream);
        assert_eq!(
            stream
                .summary()
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "it", "r", "sum"]
        );
    }

    #[test]
    fn push_session_reports_live_window() {
        let (module, records) = fig4_records();
        let region = Region::new("main", 13, 21);
        let index = index_variables_of(&module, &region);
        let mut session = StreamAnalyzer::new(region).with_index_vars(index).session();
        for r in &records {
            session.push(r).expect("no bound set");
        }
        let peak = session.peak_live_records();
        assert!(peak > 0);
        assert!(
            (peak as u64) < session.records_seen(),
            "live window must undercut the trace length"
        );
        let run = session.finish();
        assert_eq!(run.stats.peak_live_records, peak);
        assert!(run.stats.ddg_nodes > 0);
    }

    #[test]
    fn analyze_read_streams_the_textual_trace() {
        let (module, records) = fig4_records();
        let mut sink = autocheck_interp::WriterSink::new(Vec::new());
        for r in &records {
            use autocheck_interp::TraceSink as _;
            sink.record(r.clone()).unwrap();
        }
        let text = sink.finish().unwrap();

        let region = Region::new("main", 13, 21);
        let index = index_variables_of(&module, &region);
        let batch = Analyzer::new(region.clone())
            .with_index_vars(index.clone())
            .analyze(&records);
        let stream = StreamAnalyzer::new(region)
            .with_index_vars(index)
            .analyze_read(&text[..])
            .expect("streams");
        assert_reports_match(&batch, &stream);
    }

    #[test]
    fn live_bound_is_enforced() {
        let (module, records) = fig4_records();
        let region = Region::new("main", 13, 21);
        let index = index_variables_of(&module, &region);
        let analyzer = StreamAnalyzer::new(region)
            .with_index_vars(index)
            .with_config(StreamConfig {
                max_live_records: Some(1),
                ..StreamConfig::default()
            });
        let err = analyzer.analyze(&records).unwrap_err();
        assert!(matches!(err, StreamError::LiveBound(_)));
        assert!(err.to_string().contains("bound"));
    }

    #[test]
    fn generous_live_bound_passes() {
        let (module, records) = fig4_records();
        let region = Region::new("main", 13, 21);
        let index = index_variables_of(&module, &region);
        let analyzer = StreamAnalyzer::new(region.clone())
            .with_index_vars(index.clone())
            .with_config(StreamConfig {
                max_live_records: Some(1 << 20),
                ..StreamConfig::default()
            });
        let stream = analyzer.analyze(&records).expect("bound never hit");
        let batch = Analyzer::new(region)
            .with_index_vars(index)
            .analyze(&records);
        assert_reports_match(&batch, &stream);
    }

    #[test]
    fn sharded_streaming_matches_serial() {
        let (module, records) = fig4_records();
        let region = Region::new("main", 13, 21);
        let index = index_variables_of(&module, &region);
        let serial = StreamAnalyzer::new(region.clone())
            .with_index_vars(index.clone())
            .with_config(StreamConfig {
                contracted_dot: true,
                ..StreamConfig::default()
            })
            .run_records(&records, None)
            .expect("serial");
        // 0 = auto, 64 exceeds the iteration count → graceful degradation.
        for shards in [0usize, 2, 3, 4, 8, 64] {
            let sharded = StreamAnalyzer::new(region.clone())
                .with_index_vars(index.clone())
                .with_config(StreamConfig {
                    contracted_dot: true,
                    shards,
                    ..StreamConfig::default()
                })
                .run_records(&records, None)
                .unwrap_or_else(|e| panic!("shards={shards}: {e}"));
            assert_reports_match(&serial.report, &sharded.report);
            assert_eq!(serial.report.ddg.nodes, sharded.report.ddg.nodes);
            assert_eq!(serial.report.ddg.edges, sharded.report.ddg.edges);
            assert_eq!(
                serial.contracted_dot, sharded.contracted_dot,
                "contracted DOT must be byte-identical at shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_run_bytes_reads_the_iteration_index_footer() {
        let (module, records) = fig4_records();
        let region = Region::new("main", 13, 21);
        let index = index_variables_of(&module, &region);
        let serial = StreamAnalyzer::new(region.clone())
            .with_index_vars(index.clone())
            .analyze(&records)
            .expect("serial");

        let analyzer = StreamAnalyzer::new(region)
            .with_index_vars(index)
            .with_config(StreamConfig {
                shards: 4,
                ..StreamConfig::default()
            });
        // Binary trace with the v2 iteration-index footer: the sharded
        // reader plans directly from the footer, no pre-scan.
        let bounds = {
            use autocheck_stream::region::RegionTracker;
            let mut tracker = RegionTracker::with_ctx(&analyzer.ctx, "main", 13, 21);
            let annots: Vec<_> = records.iter().map(|r| tracker.annotate(r)).collect();
            autocheck_stream::boundaries_from_annots(&annots)
        };
        assert!(!bounds.is_empty(), "fig4 must expose iteration boundaries");
        let bytes = autocheck_trace::binary::to_bytes_with_index(&records, bounds, &analyzer.ctx);
        let sharded = analyzer.run_bytes(&bytes).expect("sharded from footer");
        assert_reports_match(&serial, &sharded.report);

        // A plain v1 binary (no footer) still works: the planner falls back
        // to an annotation pre-scan of the materialized records.
        let plain = autocheck_trace::binary::to_bytes(&records, &analyzer.ctx);
        let fallback = analyzer.run_bytes(&plain).expect("sharded without footer");
        assert_reports_match(&serial, &fallback.report);
    }

    #[test]
    fn malformed_stream_surfaces_parse_error() {
        let region = Region::new("main", 5, 7);
        let err = StreamAnalyzer::new(region)
            .analyze_read(&b"0,zz,broken,1:1,0,27,9,\n"[..])
            .unwrap_err();
        assert!(matches!(err, StreamError::Source(_)));
        assert!(err.to_string().contains("src line"));
    }
}
