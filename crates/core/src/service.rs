//! [`MultiAnalyzer`]: the concurrent multi-analysis front door.
//!
//! One process, N independent analyses: every job runs in its **own
//! analysis session** — a fresh [`AnalysisCtx`] with its own
//! [`SymbolSpace`](autocheck_trace::SymbolSpace) (so symbol ids, and the
//! dense tables they index, are sized per-session and never shared between
//! tenants) and, for jobs marked untrusted, its own address-hash seed (so
//! a crafted trace cannot aim precomputed hash-collision chains at the
//! process). Jobs are pulled from a shared queue by a small thread pool;
//! each worker installs its session's space for the duration of the job,
//! runs the batch or streaming pipeline, and **renders all output inside
//! the session** — the returned [`SessionReport`] carries plain strings,
//! so callers never hold cross-session symbol ids.
//!
//! The multi-session stress tests assert the property this module exists
//! for: running all 14 benchmark analyses concurrently in interleaved
//! sessions produces reports and DOT output byte-identical to running them
//! one at a time.

use crate::observe::capture_ledger;
use crate::pipeline::{index_variables_of, Analyzer, PipelineConfig};
use crate::preprocess::CollectMode;
use crate::region::{Phases, Region};
use crate::report::{DepType, Report, Timings};
use crate::stream::{StreamAnalyzer, StreamConfig};
use autocheck_obs::ledger::{BatchLedger, Ledger};
use autocheck_obs::{CounterId, GaugeId, Metrics, TimerId};
use autocheck_trace::{AnalysisCtx, ResourceKind, ResourceLimits, TraceSource};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Where one job's trace comes from.
#[derive(Clone, Debug)]
pub enum JobInput {
    /// An in-memory textual trace.
    TraceText(String),
    /// A trace file, read inside the session (so batch memory is paid
    /// per-worker, not upfront for the whole manifest).
    TracePath(String),
    /// MiniLang source: the session compiles it, executes it under the
    /// tracer (interning into the session's space), and analyzes the
    /// resulting records — the full substrate chain with no trace file.
    MiniLang(String),
}

/// One analysis request.
#[derive(Clone, Debug)]
pub struct AnalysisJob {
    /// Display name (manifest entry, benchmark name, tenant id…).
    pub name: String,
    /// The trace source.
    pub input: JobInput,
    /// The main computation loop's location.
    pub region: Region,
    /// Index variables; `None` derives them from the IR loop pass for
    /// MiniLang inputs (and means "none" for trace inputs).
    pub index_vars: Option<Vec<String>>,
    /// Occurrence-collection strictness.
    pub collect: CollectMode,
    /// Treat the trace as untrusted: the session gets a random
    /// address-hash seed (the `--untrusted-trace` flag).
    pub untrusted: bool,
    /// Analyze through the bounded-memory streaming engine (reports the
    /// session's peak live-record window).
    pub stream: bool,
    /// Hard live-record bound for streaming jobs.
    pub max_live_records: Option<usize>,
    /// Session resource ceilings (trace records/bytes, symbols, arena
    /// bytes, DDG size, live window). A tripped ceiling fails *this* job
    /// with a typed message; the rest of the batch is untouched.
    pub limits: ResourceLimits,
    /// Also render the contracted DDG as DOT (batch *and* streaming jobs —
    /// the streaming engine contracts its own frozen graph at finish).
    pub dot: bool,
    /// Iteration-aligned shards for the analysis fold: `1` = serial, `0` =
    /// one per available core, `N` = at most `N` workers. Output is
    /// byte-identical to the serial fold; session resource ceilings still
    /// apply to the merged state.
    pub shards: usize,
    /// Decode-ahead depth for trace-file ingest: `1` = serial, `0` = auto
    /// (serial on single-core hosts), `n >= 2` = read and decode on
    /// background threads, `n` record batches ahead of the fold. Output is
    /// byte-identical to serial at every depth.
    pub overlap: usize,
}

impl AnalysisJob {
    /// A job with default settings (batch pipeline, trusted, any-access
    /// collection) over the given input.
    pub fn new(name: impl Into<String>, input: JobInput, region: Region) -> AnalysisJob {
        AnalysisJob {
            name: name.into(),
            input,
            region,
            index_vars: None,
            collect: CollectMode::AnyAccess,
            untrusted: false,
            stream: false,
            max_live_records: None,
            limits: ResourceLimits::default(),
            dot: false,
            shards: 1,
            overlap: 1,
        }
    }

    /// Provide explicit index variables.
    pub fn with_index_vars(mut self, vars: Vec<String>) -> AnalysisJob {
        self.index_vars = Some(vars);
        self
    }

    /// Mark the trace source untrusted (per-session seeded address maps).
    pub fn untrusted(mut self, yes: bool) -> AnalysisJob {
        self.untrusted = yes;
        self
    }

    /// Analyze through the streaming engine.
    pub fn streaming(mut self, yes: bool) -> AnalysisJob {
        self.stream = yes;
        self
    }

    /// Apply session resource ceilings to this job.
    pub fn with_limits(mut self, limits: ResourceLimits) -> AnalysisJob {
        self.limits = limits;
        self
    }

    /// Render the contracted DDG as DOT.
    pub fn with_dot(mut self, yes: bool) -> AnalysisJob {
        self.dot = yes;
        self
    }

    /// Shard this job's trace fold across cores (`0` = auto, `1` = serial).
    pub fn with_shards(mut self, shards: usize) -> AnalysisJob {
        self.shards = shards;
        self
    }

    /// Decode the trace ahead of the fold on background threads (`0` =
    /// auto, `1` = serial, `n >= 2` = `n` batches of lookahead).
    pub fn with_overlap(mut self, overlap: usize) -> AnalysisJob {
        self.overlap = overlap;
        self
    }
}

/// One finished session, rendered entirely inside its own symbol space —
/// every field is session-independent plain data.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The job's name.
    pub name: String,
    /// `(variable, dependency class)` pairs, sorted by name.
    pub summary: Vec<(String, DepType)>,
    /// The full report, rendered exactly as `autocheck` prints it.
    pub rendered: String,
    /// The contracted DDG in DOT form, when the job asked for it.
    pub dot: Option<String>,
    /// Records analyzed.
    pub records: u64,
    /// Loop iterations observed.
    pub iterations: u32,
    /// Peak live-record window (streaming jobs only).
    pub peak_live_records: Option<usize>,
    /// Distinct symbols interned by this session — the size its dense
    /// sym-indexed tables were bounded by.
    pub symbols: usize,
    /// Per-stage analysis timings.
    pub timings: Timings,
    /// Wall clock for the whole session (input acquisition + analysis +
    /// rendering).
    pub wall: Duration,
    /// The session's metrics snapshot, when the batch ran with metrics on
    /// ([`MultiAnalyzer::with_metrics`]).
    pub ledger: Option<Ledger>,
}

/// A job that did not produce a report.
#[derive(Clone, Debug)]
pub struct SessionFailure {
    /// The job's name.
    pub name: String,
    /// What went wrong.
    pub message: String,
    /// The session's metrics snapshot at the point of failure, when the
    /// batch ran with metrics on — a tripped quota still shows up as
    /// `session.limit_exceeded` in the aggregated ledger. Boxed: failures
    /// travel through `Result::Err` and should stay small.
    pub ledger: Option<Box<Ledger>>,
}

/// Everything a batch run produced.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Finished sessions, in job-submission order.
    pub sessions: Vec<SessionReport>,
    /// Failed jobs, in job-submission order.
    pub failures: Vec<SessionFailure>,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall clock for the whole batch.
    pub wall: Duration,
    /// The aggregated run ledger — the batch-level registry (queue waits,
    /// jobs in flight, ok/failed counts) plus every session's own ledger —
    /// when the batch ran with metrics on.
    pub ledger: Option<BatchLedger>,
}

impl BatchOutcome {
    /// A rendered aggregate summary: one line per session plus totals.
    pub fn aggregate(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut records: u64 = 0;
        let mut critical: usize = 0;
        for s in &self.sessions {
            records += s.records;
            critical += s.summary.len();
            let peak = match s.peak_live_records {
                Some(p) => format!("{p}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:<10} {:>9} records  {:>4} iters  {:>2} critical  {:>8} symbols  \
                 peak-live {:>6}  total {:>9.3?}  wall {:>9.3?}",
                s.name,
                s.records,
                s.iterations,
                s.summary.len(),
                s.symbols,
                peak,
                s.timings.total(),
                s.wall,
            );
        }
        for f in &self.failures {
            let _ = writeln!(out, "  {:<10} FAILED: {}", f.name, f.message);
        }
        let _ = writeln!(
            out,
            "  {} session(s), {} failure(s), {} records, {} critical variables; \
             {} worker(s), batch wall {:.3?}",
            self.sessions.len(),
            self.failures.len(),
            records,
            critical,
            self.jobs,
            self.wall,
        );
        out
    }
}

/// The concurrent multi-analysis service: N workers, one fresh
/// [`AnalysisCtx`] per job.
#[derive(Clone, Debug)]
pub struct MultiAnalyzer {
    jobs: usize,
    metrics: bool,
}

impl MultiAnalyzer {
    /// A service front door running up to `jobs` analyses concurrently
    /// (`0` is clamped to 1).
    pub fn new(jobs: usize) -> MultiAnalyzer {
        MultiAnalyzer {
            jobs: jobs.max(1),
            metrics: false,
        }
    }

    /// Run with observability on: every session gets its own metrics
    /// registry (snapshotted into [`SessionReport::ledger`]) and the batch
    /// keeps a registry of its own — queue waits, jobs in flight, ok/failed
    /// counts — aggregated into [`BatchOutcome::ledger`].
    pub fn with_metrics(mut self, yes: bool) -> MultiAnalyzer {
        self.metrics = yes;
        self
    }

    /// Run every job, each in its own session, on up to
    /// `self.jobs` workers. Results come back in submission order
    /// regardless of completion order.
    pub fn run(&self, jobs: Vec<AnalysisJob>) -> BatchOutcome {
        let t0 = Instant::now();
        let workers = self.jobs.min(jobs.len()).max(1);
        let batch = if self.metrics {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        };
        // One job, start to finish, with the batch-level registry booked:
        // how long the job sat queued, how many jobs were in flight while
        // it ran (the gauge's peak is the achieved concurrency), and
        // whether it succeeded.
        let run_one = |job: &AnalysisJob| -> Result<SessionReport, SessionFailure> {
            batch.record_duration(TimerId::QueueWait, t0.elapsed());
            batch.gauge_add(GaugeId::JobsInFlight, 1);
            let result = run_session(job, self.metrics);
            batch.gauge_sub(GaugeId::JobsInFlight, 1);
            match &result {
                Ok(_) => batch.count(CounterId::SessionsOk, 1),
                Err(_) => batch.count(CounterId::SessionsFailed, 1),
            }
            result
        };
        let mut slots: Vec<Option<Result<SessionReport, SessionFailure>>> = Vec::new();
        slots.resize_with(jobs.len(), || None);
        if workers == 1 {
            for (slot, job) in slots.iter_mut().zip(&jobs) {
                *slot = Some(run_one(job));
            }
        } else {
            let next = AtomicUsize::new(0);
            let slots_mut = std::sync::Mutex::new(&mut slots);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let jobs = &jobs;
                    let next = &next;
                    let slots_mut = &slots_mut;
                    let run_one = &run_one;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let result = run_one(&jobs[i]);
                        slots_mut.lock().expect("slots poisoned")[i] = Some(result);
                    });
                }
            });
        }
        let mut sessions = Vec::new();
        let mut failures = Vec::new();
        for slot in slots {
            match slot.expect("every job slot is filled") {
                Ok(s) => sessions.push(s),
                Err(f) => failures.push(f),
            }
        }
        let wall = t0.elapsed();
        let ledger = self.metrics.then(|| BatchLedger {
            jobs: (sessions.len() + failures.len()) as u64,
            wall_ns: wall.as_nanos() as u64,
            batch: Ledger::capture("batch", &batch),
            sessions: sessions
                .iter()
                .filter_map(|s| s.ledger.clone())
                .chain(failures.iter().filter_map(|f| f.ledger.as_deref().cloned()))
                .collect(),
        });
        BatchOutcome {
            sessions,
            failures,
            jobs: workers,
            wall,
            ledger,
        }
    }
}

/// Run one job in a fresh session. Panics inside the pipeline are caught
/// and reported as failures so one bad job cannot take down the batch.
fn run_session(job: &AnalysisJob, metrics: bool) -> Result<SessionReport, SessionFailure> {
    // The ctx lives out here so a failing job's registry survives the
    // error path — its counters (notably `session.limit_exceeded`) are
    // snapshotted into the failure record.
    let mut ctx = if job.untrusted {
        AnalysisCtx::session().untrusted()
    } else {
        AnalysisCtx::session()
    };
    if !job.limits.is_unlimited() {
        ctx = ctx.with_limits(job.limits);
    }
    if metrics {
        ctx = ctx.with_metrics(Metrics::enabled());
    }
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_session_inner(job, &ctx)
    }))
    .unwrap_or_else(|p| {
        let msg = p
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "analysis panicked".to_string());
        Err(format!("panic: {msg}"))
    })
    .map_err(|message| SessionFailure {
        name: job.name.clone(),
        message,
        ledger: ctx
            .metrics()
            .is_enabled()
            .then(|| Box::new(capture_ledger(&job.name, &ctx))),
    })
}

fn run_session_inner(job: &AnalysisJob, ctx: &AnalysisCtx) -> Result<SessionReport, String> {
    let t0 = Instant::now();
    // Output edges (report rendering, DOT) resolve via the thread-current
    // space; hold the guard for the whole session.
    let _guard = ctx.enter();

    let stream_analyzer = || {
        StreamAnalyzer::new(job.region.clone())
            .with_index_vars(job.index_vars.clone().unwrap_or_default())
            .with_config(StreamConfig {
                collect: job.collect,
                max_live_records: job.max_live_records,
                contracted_dot: job.dot,
                shards: job.shards,
                overlap: job.overlap,
                ..StreamConfig::default()
            })
            .with_ctx(ctx.clone())
    };

    // Streaming trace jobs never materialize the trace: records flow from
    // the bounded reader straight into the engine, so a worker's peak
    // memory really is the live window the report advertises.
    if job.stream {
        if let JobInput::TraceText(text) = &job.input {
            let run = stream_analyzer()
                .run_read(text.as_bytes())
                .map_err(|e| e.to_string())?;
            return Ok(session_report(
                job,
                ctx,
                run.report,
                Some(run.stats),
                run.contracted_dot,
                t0,
            ));
        }
        if let JobInput::TracePath(path) = &job.input {
            // Sharded file jobs slurp the bytes so a binary trace's
            // iteration-index footer (when present) plans the shards
            // without a pre-scan; serial jobs keep the bounded reader.
            let run = if autocheck_trace::resolve_shard_count(job.shards) > 1 {
                let bytes =
                    std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
                stream_analyzer().run_bytes(&bytes)
            } else {
                let file =
                    std::fs::File::open(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
                stream_analyzer().run_read(std::io::BufReader::new(file))
            }
            .map_err(|e| e.to_string())?;
            return Ok(session_report(
                job,
                ctx,
                run.report,
                Some(run.stats),
                run.contracted_dot,
                t0,
            ));
        }
    }

    // Acquire records in-session: every symbol the trace mentions interns
    // into this session's space.
    let (records, index_vars) = match &job.input {
        JobInput::MiniLang(source) => {
            let module =
                autocheck_minilang::compile(source).map_err(|e| format!("compile error: {e:?}"))?;
            let mut machine = autocheck_interp::Machine::with_ctx(
                &module,
                autocheck_interp::ExecOptions::default(),
                ctx.clone(),
            );
            let mut sink = autocheck_interp::VecSink::default();
            machine
                .run(&mut sink, &mut autocheck_interp::NoHook)
                .map_err(|e| format!("execution error: {e}"))?;
            let index = match &job.index_vars {
                Some(v) => v.clone(),
                None => index_variables_of(&module, &job.region),
            };
            (sink.records, index)
        }
        JobInput::TraceText(text) => (
            TraceSource::from_str(text)
                .ctx(ctx)
                .records()
                .map_err(|e| e.to_string())?,
            job.index_vars.clone().unwrap_or_default(),
        ),
        JobInput::TracePath(path) => (
            // Format (text or binary) auto-detects from the file's leading
            // bytes, so jobs can point at either kind of trace.
            TraceSource::from_path(path)
                .ctx(ctx)
                .overlap(job.overlap)
                .records()
                .map_err(|e| format!("cannot read `{path}`: {e}"))?,
            job.index_vars.clone().unwrap_or_default(),
        ),
    };

    let (report, stream_stats, stream_dot) = if job.stream {
        // MiniLang streaming: the records exist in memory anyway (the
        // interpreter just produced them); push them through the engine
        // (`run_records` shards the fold when the job asks for it).
        let run = stream_analyzer()
            .with_index_vars(index_vars)
            .run_records(&records, None)
            .map_err(|e| e.to_string())?;
        (run.report, Some(run.stats), run.contracted_dot)
    } else {
        let analyzer = Analyzer::new(job.region.clone())
            .with_index_vars(index_vars)
            .with_config(PipelineConfig {
                collect: job.collect,
                shards: job.shards,
                overlap: job.overlap,
                ..PipelineConfig::default()
            })
            .with_ctx(ctx.clone());
        let report = analyzer.analyze(&records);
        // The batch fold is infallible (ingest already enforced the
        // trace-side ceilings); DDG size is checked on the finished graph.
        for (kind, used) in [
            (ResourceKind::DdgNodes, report.ddg.nodes as u64),
            (ResourceKind::DdgEdges, report.ddg.edges as u64),
        ] {
            if let Err(e) = ctx.limits().check(kind, used) {
                ctx.metrics().count(CounterId::LimitExceeded, 1);
                return Err(e.to_string());
            }
        }
        (report, None, None)
    };

    let dot = if job.dot && !job.stream {
        Some(render_dot(&records, &job.region, &report, ctx))
    } else {
        stream_dot
    };

    Ok(session_report(job, ctx, report, stream_stats, dot, t0))
}

/// Assemble the rendered, session-independent report (called inside the
/// session's guard so `Display` resolves in the right space).
fn session_report(
    job: &AnalysisJob,
    ctx: &AnalysisCtx,
    report: Report,
    stream_stats: Option<crate::stream::StreamStats>,
    dot: Option<String>,
    t0: Instant,
) -> SessionReport {
    let wall = t0.elapsed();
    let ledger = if ctx.metrics().is_enabled() {
        ctx.metrics().record_duration(TimerId::SessionWall, wall);
        Some(capture_ledger(&job.name, ctx))
    } else {
        None
    };
    SessionReport {
        name: job.name.clone(),
        summary: report.summary(),
        rendered: report.to_string(),
        dot,
        records: report.records,
        iterations: report.iterations,
        peak_live_records: stream_stats.map(|s| s.peak_live_records),
        symbols: ctx.space().len(),
        timings: report.timings,
        wall,
        ledger,
    }
}

/// The contracted-DDG DOT rendering the `autocheck --dot` path produces,
/// computed inside the session. Re-runs only the dependency fold — with
/// event retention off, so no O(trace) vector is held — and contracts the
/// frozen graph.
fn render_dot(
    records: &[autocheck_trace::Record],
    region: &Region,
    report: &Report,
    ctx: &AnalysisCtx,
) -> String {
    let phases = Phases::compute_in(records, region, ctx);
    let graph = crate::ddg::DdgAnalysis::fold_in(
        records,
        &phases,
        &report.mli,
        crate::ddg::DdgOptions {
            retain_events: false,
            ..crate::ddg::DdgOptions::default()
        },
        ctx,
        |_| {},
    );
    crate::contract::contract_for_mli(&graph, &report.mli).to_dot()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP_MC: &str = "\
int main() {
    int sum = 0; int r = 1;
    for (int it = 0; it < 4; it = it + 1) { // @loop-start
        sum = sum + r;
        r = r + 1;
    } // @loop-end
    print(sum);
    return 0;
}
";

    fn mini_job(name: &str) -> AnalysisJob {
        AnalysisJob::new(
            name,
            JobInput::MiniLang(LOOP_MC.to_string()),
            Region::new("main", 3, 6),
        )
    }

    #[test]
    fn single_minilang_job_round_trips() {
        let out = MultiAnalyzer::new(1).run(vec![mini_job("toy")]);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        let s = &out.sessions[0];
        assert_eq!(s.name, "toy");
        assert!(s.records > 0);
        assert_eq!(s.iterations, 4);
        assert!(s.symbols > 0);
        let names: Vec<&str> = s.summary.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"sum"), "summary: {:?}", s.summary);
        assert!(s.rendered.contains("checkpoint"));
    }

    #[test]
    fn concurrent_equals_serial_and_keeps_submission_order() {
        let jobs: Vec<AnalysisJob> = (0..6).map(|i| mini_job(&format!("job{i}"))).collect();
        let serial = MultiAnalyzer::new(1).run(jobs.clone());
        let parallel = MultiAnalyzer::new(4).run(jobs);
        assert_eq!(serial.sessions.len(), 6);
        assert_eq!(parallel.sessions.len(), 6);
        for (a, b) in serial.sessions.iter().zip(&parallel.sessions) {
            assert_eq!(a.name, b.name, "submission order preserved");
            assert_eq!(a.rendered, b.rendered, "byte-identical rendering");
            assert_eq!(a.summary, b.summary);
            assert_eq!(a.symbols, b.symbols, "per-session symbol counts");
        }
    }

    #[test]
    fn trace_text_job_with_streaming_and_untrusted_seed() {
        // Build a trace in a scratch session, render it to text, and feed
        // the text as an untrusted streaming job.
        let scratch = MultiAnalyzer::new(1).run(vec![mini_job("gen")]);
        assert!(scratch.failures.is_empty());
        // Regenerate the trace text through the interpreter directly.
        let module = autocheck_minilang::compile(LOOP_MC).unwrap();
        let ctx = AnalysisCtx::session();
        let mut machine = autocheck_interp::Machine::with_ctx(
            &module,
            autocheck_interp::ExecOptions::default(),
            ctx.clone(),
        );
        let mut sink = autocheck_interp::WriterSink::new(Vec::new());
        let _g = ctx.enter();
        machine
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .unwrap();
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        drop(_g);

        let job = AnalysisJob::new(
            "tenant",
            JobInput::TraceText(text),
            Region::new("main", 3, 6),
        )
        .with_index_vars(vec!["it".to_string()])
        .streaming(true)
        .untrusted(true);
        let out = MultiAnalyzer::new(2).run(vec![job.clone(), job]);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        for s in &out.sessions {
            assert!(s.peak_live_records.unwrap() > 0);
            assert!((s.peak_live_records.unwrap() as u64) < s.records);
        }
        // Untrusted sessions hash with different seeds yet report
        // identically.
        assert_eq!(out.sessions[0].rendered, out.sessions[1].rendered);
    }

    #[test]
    fn failures_are_isolated_per_session() {
        let good = mini_job("good");
        let bad = AnalysisJob::new(
            "bad",
            JobInput::TraceText("0,zz,broken,1:1,0,27,9,\n".to_string()),
            Region::new("main", 1, 2),
        );
        let missing = AnalysisJob::new(
            "missing",
            JobInput::TracePath("/nonexistent/trace.txt".to_string()),
            Region::new("main", 1, 2),
        );
        let out = MultiAnalyzer::new(3).run(vec![good, bad, missing]);
        assert_eq!(out.sessions.len(), 1);
        assert_eq!(out.failures.len(), 2);
        assert_eq!(out.failures[0].name, "bad");
        assert!(out.failures[0].message.contains("src line"));
        assert_eq!(out.failures[1].name, "missing");
        let agg = out.aggregate();
        assert!(agg.contains("good"));
        assert!(agg.contains("FAILED"));
        assert!(agg.contains("2 failure(s)"));
    }

    #[test]
    fn quota_tripped_job_leaves_the_rest_byte_identical() {
        // Acceptance bar: in an 8-job batch, one job tripping its quota
        // fails alone with a typed message; the other 7 reports are
        // byte-identical to a run with no quotas anywhere.
        let baseline_jobs: Vec<AnalysisJob> = (0..8).map(|i| mini_job(&format!("q{i}"))).collect();
        let baseline = MultiAnalyzer::new(4).run(baseline_jobs);
        assert!(baseline.failures.is_empty(), "{:?}", baseline.failures);

        let jobs: Vec<AnalysisJob> = (0..8)
            .map(|i| {
                let job = mini_job(&format!("q{i}"));
                if i == 3 {
                    job.with_limits(ResourceLimits::new().max_ddg_nodes(0))
                } else {
                    job
                }
            })
            .collect();
        let out = MultiAnalyzer::new(4).run(jobs);
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].name, "q3");
        assert!(
            out.failures[0].message.contains("resource limit exceeded"),
            "typed message, got: {}",
            out.failures[0].message
        );
        assert_eq!(out.sessions.len(), 7);
        let surviving: Vec<&SessionReport> = baseline
            .sessions
            .iter()
            .filter(|s| s.name != "q3")
            .collect();
        for (a, b) in surviving.iter().zip(&out.sessions) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.rendered, b.rendered,
                "{}: report must be untouched",
                a.name
            );
            assert_eq!(a.summary, b.summary);
        }
    }

    #[test]
    fn tripped_quota_is_counted_in_the_batch_ledger() {
        // A failed job's registry survives into the aggregated ledger: the
        // failure record carries its session ledger, the batch ledger
        // includes it, and `session.limit_exceeded` is booked.
        let jobs = vec![
            mini_job("ok"),
            mini_job("capped").with_limits(ResourceLimits::new().max_ddg_nodes(0)),
        ];
        let out = MultiAnalyzer::new(2).with_metrics(true).run(jobs);
        assert_eq!(out.sessions.len(), 1);
        assert_eq!(out.failures.len(), 1);
        let failed = out.failures[0].ledger.as_ref().expect("failure ledger");
        assert_eq!(
            failed.counter(CounterId::LimitExceeded),
            1,
            "{:?}",
            failed.counters
        );
        let batch = out.ledger.as_ref().expect("batch ledger");
        assert_eq!(batch.jobs, 2);
        assert_eq!(batch.sessions.len(), 2, "failed session ledger included");
        assert!(batch.sessions.iter().any(|l| l.name == "capped"));
    }

    #[test]
    fn metrics_batches_carry_session_and_batch_ledgers() {
        let jobs: Vec<AnalysisJob> = (0..4).map(|i| mini_job(&format!("m{i}"))).collect();
        let out = MultiAnalyzer::new(2).with_metrics(true).run(jobs.clone());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        let batch = out.ledger.as_ref().expect("batch ledger present");
        assert_eq!(batch.sessions.len(), 4);
        assert_eq!(batch.batch.counter(CounterId::SessionsOk), 4);
        assert_eq!(batch.batch.counter(CounterId::SessionsFailed), 0);
        assert_eq!(batch.batch.timer(TimerId::QueueWait).1, 4);
        assert!(batch.batch.gauge(GaugeId::JobsInFlight).1 >= 1);
        for (s, l) in out.sessions.iter().zip(&batch.sessions) {
            assert_eq!(s.ledger.as_ref(), Some(l), "outcome and aggregate agree");
            assert_eq!(l.name, s.name);
            assert!(l.gauge(GaugeId::Symbols).0 > 0, "session symbols gauged");
            assert!(l.gauge(GaugeId::ArenaBytes).0 > 0, "arena footprint gauged");
            assert!(l.timer(TimerId::SessionWall).0 > 0, "session wall recorded");
            assert!(l.gauge(GaugeId::DdgNodes).0 > 0, "ddg size gauged");
        }
        // The batch ledger round-trips through its JSON form.
        let parsed = BatchLedger::from_json(&batch.to_json()).expect("parses");
        assert_eq!(&parsed, batch);
        // Metrics must not perturb output: same jobs, metrics off,
        // byte-identical renderings.
        let quiet = MultiAnalyzer::new(2).run(jobs);
        for (a, b) in out.sessions.iter().zip(&quiet.sessions) {
            assert_eq!(a.rendered, b.rendered);
            assert!(b.ledger.is_none());
        }
    }

    #[test]
    fn dot_jobs_render_the_contracted_ddg() {
        let out = MultiAnalyzer::new(1).run(vec![mini_job("dotted").with_dot(true)]);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        let dot = out.sessions[0].dot.as_ref().expect("dot rendered");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("sum"));
    }

    #[test]
    fn streaming_jobs_render_the_contracted_ddg_too() {
        // Contraction used to be batch-only; the unified graph exposes it
        // online: the engine contracts its own frozen CSR graph at finish.
        let out =
            MultiAnalyzer::new(1).run(vec![mini_job("stream-dot").streaming(true).with_dot(true)]);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        let s = &out.sessions[0];
        assert!(s.peak_live_records.is_some(), "really streamed");
        let dot = s.dot.as_ref().expect("streaming dot rendered");
        assert!(dot.starts_with("digraph contracted"));
        assert!(dot.contains("sum"));
        // Same dependency skeleton as the batch rendering: every batch
        // edge label pair appears (numbering may differ, labels must not).
        let batch = MultiAnalyzer::new(1).run(vec![mini_job("batch-dot").with_dot(true)]);
        let batch_dot = batch.sessions[0].dot.as_ref().unwrap();
        for name in ["sum", "r"] {
            assert_eq!(
                dot.matches(&format!("label=\"{name}\"")).count(),
                batch_dot.matches(&format!("label=\"{name}\"")).count(),
                "{name}: node presence must agree between pipelines"
            );
        }
    }
}
