//! AutoCheck — automatic identification of variables for checkpointing by
//! data-dependency analysis.
//!
//! This crate is the paper's primary contribution. Given
//!
//! 1. a **dynamic instruction execution trace** (crate `autocheck-trace`),
//! 2. the **main computation loop's location** (function + start/end source
//!    lines, the "MCLR" of the paper's Table II), and
//! 3. the loop's **control variables** (from the IR loop pass, crate
//!    `autocheck-ir` — the paper's "llvm-pass-loop API"),
//!
//! it reports the **critical variables** that must be checkpointed for the
//! program to restart correctly from the last completed iteration, each
//! labelled with its dependency class (Fig. 7 of the paper):
//!
//! * **WAR** — the variable carries state across iterations: it is read
//!   before being (fully) overwritten, so a failure loses the last written
//!   value;
//! * **RAPO** — an array that is only *partially* overwritten per iteration
//!   while also being read, so unwritten elements cannot be reconstructed;
//! * **Outcome** — the main loop's output, read after the loop;
//! * **Index** — the loop's induction/control variables.
//!
//! # Pipeline
//!
//! [`region`] splits the trace into *before/inside/after* the main loop and
//! numbers iterations; [`preprocess`] collects and matches variables into
//! the MLI (main-loop-input) set; [`ddg`] folds the records through the
//! shared streaming `DdgBuilder` — the single DDG construction in the
//! workspace — yielding the frozen CSR dependency graph plus the
//! time-ordered R/W event sequence; [`contract`] reduces the complete DDG
//! to MLI variables (Algorithm 1, over the CSR parent slices);
//! [`mod@classify`] applies the four heuristics; [`pipeline`] glues
//! everything together with the per-stage timing breakdown reported in the
//! paper's Table III.
//!
//! For traces too big (or too ephemeral) to materialize, [`stream`] offers
//! the same analysis as a single online pass with O(live window) memory:
//! [`StreamAnalyzer`] mirrors [`Analyzer`]'s API, consumes records pushed
//! from the interpreter or pulled from any `io::Read`, and produces
//! identical reports (same classification decisions via [`decide`]).
//!
//! ```no_run
//! use autocheck_core::{Analyzer, Region};
//!
//! let records = autocheck_trace::TraceSource::from_str("...").records().unwrap();
//! let region = Region::new("main", 13, 21);
//! let report = Analyzer::new(region)
//!     .with_index_vars(vec!["it".into()])
//!     .analyze(&records);
//! for cv in &report.critical {
//!     println!("{} ({:?})", cv.name, cv.dep);
//! }
//! ```

pub mod classify;
pub mod contract;
pub mod ddg;
pub mod observe;
pub mod pipeline;
pub mod preprocess;
pub mod region;
pub mod report;
pub mod service;
pub mod stream;

pub use classify::{classify, decide, ClassifyConfig};
pub use contract::{contract_ddg, contract_for_mli, contract_for_mli_in, ContractedDdg};
pub use ddg::{DdgAnalysis, DdgOptions, NodeKind, RwEvent, RwKind};
pub use observe::capture_ledger;
pub use pipeline::{index_variables_of, Analyzer, PipelineConfig};
pub use preprocess::{find_mli_vars, CollectMode, MliVar};
pub use region::{Phase, Phases, Region};
pub use report::{CriticalVariable, DdgSummary, DepType, Report, SkipReason, Timings};
pub use service::{
    AnalysisJob, BatchOutcome, JobInput, MultiAnalyzer, SessionFailure, SessionReport,
};
pub use stream::{
    StreamAnalyzer, StreamConfig, StreamError, StreamRun, StreamSession, StreamStats,
};
// Re-exported so `decide`'s parameter type is nameable from this crate
// alone, without a direct autocheck-stream dependency. The shared graph
// core (one growable graph, one frozen CSR form, one DOT writer) likewise
// surfaces here: `DdgAnalysis.graph` *is* a `CsrGraph`.
pub use autocheck_stream::{
    boundaries_from_annots, CsrGraph, DotWriter, Graph, VarStats, VarStatsBuilder,
};
