//! The AutoCheck command-line tool — the interface described in the
//! paper's §VII "Use of AutoCheck".
//!
//! Inputs: (1) a dynamic execution trace file, (2) the main computation
//! loop's function and start/end line numbers, and optionally (3) the
//! loop's index variables (the paper gets them from an LLVM loop pass; the
//! `mlc` tool prints them for MiniLang programs). Output: the variables to
//! checkpoint, each with its dependency type and location.
//!
//! ```text
//! autocheck <trace-file> --function main --start 13 --end 21 \
//!     [--index it,step] [--threads N] [--dot out.dot] [--collect arithmetic] \
//!     [--stream] [--max-live-records N]
//! ```
//!
//! `--stream` analyzes the trace online through the bounded-memory
//! streaming engine instead of materializing it: the file is pulled
//! chunk-by-chunk, per-iteration analysis state is retired at iteration
//! boundaries, and the report footer shows the peak live-record count so
//! the memory bound is observable. `--max-live-records N` turns that bound
//! into a hard limit (exceeding it is an error, not an OOM).

use autocheck_core::{
    contract_ddg, Analyzer, CollectMode, DdgAnalysis, NodeKind, Phases, PipelineConfig, Region,
    StreamAnalyzer, StreamConfig,
};
use std::process::ExitCode;

struct Args {
    trace: String,
    function: String,
    start: u32,
    end: u32,
    index: Vec<String>,
    threads: usize,
    dot: Option<String>,
    collect: CollectMode,
    stream: bool,
    max_live_records: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: autocheck <trace-file> --function <name> --start <line> --end <line>\n\
         \x20                [--index v1,v2] [--threads N] [--dot <file>] [--collect any|arithmetic]\n\
         \x20                [--stream] [--max-live-records N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut trace = None;
    let mut function = "main".to_string();
    let (mut start, mut end) = (0u32, 0u32);
    let mut index = Vec::new();
    let mut threads = 1usize;
    let mut threads_set = false;
    let mut dot = None;
    let mut collect = CollectMode::AnyAccess;
    let mut stream = false;
    let mut max_live_records = None;
    while let Some(a) = args.next() {
        let mut take = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--function" | "-f" => function = take(),
            "--start" | "-s" => start = take().parse().unwrap_or_else(|_| usage()),
            "--end" | "-e" => end = take().parse().unwrap_or_else(|_| usage()),
            "--index" | "-i" => index = take().split(',').map(|s| s.trim().to_string()).collect(),
            "--threads" | "-t" => {
                threads = take().parse().unwrap_or_else(|_| usage());
                threads_set = true;
            }
            "--dot" => dot = Some(take()),
            "--collect" => {
                collect = match take().as_str() {
                    "any" => CollectMode::AnyAccess,
                    "arithmetic" => CollectMode::Arithmetic,
                    _ => usage(),
                }
            }
            "--stream" => stream = true,
            "--max-live-records" => {
                max_live_records = Some(take().parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            other if trace.is_none() && !other.starts_with('-') => trace = Some(a),
            _ => usage(),
        }
    }
    let Some(trace) = trace else { usage() };
    if start == 0 || end < start {
        eprintln!("error: --start/--end are required and must satisfy start <= end");
        std::process::exit(2);
    }
    if max_live_records.is_some() && !stream {
        eprintln!("error: --max-live-records only applies to --stream mode");
        std::process::exit(2);
    }
    if threads_set && stream {
        eprintln!("error: --threads does not apply to --stream mode (single online pass)");
        std::process::exit(2);
    }
    if dot.is_some() && stream {
        eprintln!("error: --dot requires the batch pipeline; rerun without --stream");
        std::process::exit(2);
    }
    Args {
        trace,
        function,
        start,
        end,
        index,
        threads,
        dot,
        collect,
        stream,
        max_live_records,
    }
}

fn run_streaming(args: &Args, region: &Region) -> ExitCode {
    let file = match std::fs::File::open(&args.trace) {
        Ok(f) => std::io::BufReader::new(f),
        Err(e) => {
            eprintln!("error: cannot read `{}`: {e}", args.trace);
            return ExitCode::FAILURE;
        }
    };
    let analyzer = StreamAnalyzer::new(region.clone())
        .with_index_vars(args.index.clone())
        .with_config(StreamConfig {
            collect: args.collect,
            max_live_records: args.max_live_records,
            ..StreamConfig::default()
        });
    let run = match analyzer.run_read(file) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", run.report);
    println!(
        "timings: ingest {:.3?}, identify {:.3?} (total {:.3?}; single online pass)",
        run.report.timings.preprocess,
        run.report.timings.identify,
        run.report.timings.total()
    );
    let bound = match run.stats.live_bound {
        Some(b) => format!("{b}"),
        None => "unbounded".to_string(),
    };
    println!(
        "streaming: peak {} live records of {} total (bound: {}); ddg {} nodes / {} edges",
        run.stats.peak_live_records,
        run.report.records,
        bound,
        run.stats.ddg_nodes,
        run.stats.ddg_edges
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    let region = Region::new(args.function.clone(), args.start, args.end);
    if args.stream {
        return run_streaming(&args, &region);
    }
    let text = match std::fs::read_to_string(&args.trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read `{}`: {e}", args.trace);
            return ExitCode::FAILURE;
        }
    };
    let analyzer = Analyzer::new(region.clone())
        .with_index_vars(args.index.clone())
        .with_config(PipelineConfig {
            parse_threads: args.threads,
            collect: args.collect,
            ..PipelineConfig::default()
        });
    let report = match analyzer.analyze_text(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    println!(
        "timings: preprocess {:.3?}, dependency {:.3?}, identify {:.3?} (total {:.3?})",
        report.timings.preprocess,
        report.timings.dependency,
        report.timings.identify,
        report.timings.total()
    );

    if let Some(dot_path) = &args.dot {
        // Re-run the dependency stage to export the contracted DDG.
        let records = match autocheck_trace::parse_str(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let phases = Phases::compute(&records, &region);
        let analysis = DdgAnalysis::run(&records, &phases, &report.mli, true);
        let bases: std::collections::HashSet<u64> =
            report.mli.iter().map(|m| m.base_addr).collect();
        let contracted = contract_ddg(
            &analysis.graph,
            |n| matches!(n, NodeKind::Var { base, .. } if bases.contains(base)),
        );
        if let Err(e) = std::fs::write(dot_path, contracted.to_dot()) {
            eprintln!("error: cannot write `{dot_path}`: {e}");
            return ExitCode::FAILURE;
        }
        println!("contracted DDG written to {dot_path}");
    }
    ExitCode::SUCCESS
}
