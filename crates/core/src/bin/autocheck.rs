//! The AutoCheck command-line tool — the interface described in the
//! paper's §VII "Use of AutoCheck".
//!
//! Inputs: (1) a dynamic execution trace file, (2) the main computation
//! loop's function and start/end line numbers, and optionally (3) the
//! loop's index variables (the paper gets them from an LLVM loop pass; the
//! `mlc` tool prints them for MiniLang programs). Output: the variables to
//! checkpoint, each with its dependency type and location.
//!
//! ```text
//! autocheck <trace-file> --function main --start 13 --end 21 \
//!     [--index it,step] [--threads N] [--dot out.dot] [--collect arithmetic]
//! ```

use autocheck_core::{
    contract_ddg, Analyzer, CollectMode, DdgAnalysis, NodeKind, Phases, PipelineConfig, Region,
};
use std::process::ExitCode;

struct Args {
    trace: String,
    function: String,
    start: u32,
    end: u32,
    index: Vec<String>,
    threads: usize,
    dot: Option<String>,
    collect: CollectMode,
}

fn usage() -> ! {
    eprintln!(
        "usage: autocheck <trace-file> --function <name> --start <line> --end <line>\n\
         \x20                [--index v1,v2] [--threads N] [--dot <file>] [--collect any|arithmetic]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut trace = None;
    let mut function = "main".to_string();
    let (mut start, mut end) = (0u32, 0u32);
    let mut index = Vec::new();
    let mut threads = 1usize;
    let mut dot = None;
    let mut collect = CollectMode::AnyAccess;
    while let Some(a) = args.next() {
        let mut take = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--function" | "-f" => function = take(),
            "--start" | "-s" => start = take().parse().unwrap_or_else(|_| usage()),
            "--end" | "-e" => end = take().parse().unwrap_or_else(|_| usage()),
            "--index" | "-i" => index = take().split(',').map(|s| s.trim().to_string()).collect(),
            "--threads" | "-t" => threads = take().parse().unwrap_or_else(|_| usage()),
            "--dot" => dot = Some(take()),
            "--collect" => {
                collect = match take().as_str() {
                    "any" => CollectMode::AnyAccess,
                    "arithmetic" => CollectMode::Arithmetic,
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            other if trace.is_none() && !other.starts_with('-') => trace = Some(a),
            _ => usage(),
        }
    }
    let Some(trace) = trace else { usage() };
    if start == 0 || end < start {
        eprintln!("error: --start/--end are required and must satisfy start <= end");
        std::process::exit(2);
    }
    Args {
        trace,
        function,
        start,
        end,
        index,
        threads,
        dot,
        collect,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let text = match std::fs::read_to_string(&args.trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read `{}`: {e}", args.trace);
            return ExitCode::FAILURE;
        }
    };
    let region = Region::new(args.function.clone(), args.start, args.end);
    let analyzer = Analyzer::new(region.clone())
        .with_index_vars(args.index.clone())
        .with_config(PipelineConfig {
            parse_threads: args.threads,
            collect: args.collect,
            ..PipelineConfig::default()
        });
    let report = match analyzer.analyze_text(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    println!(
        "timings: preprocess {:.3?}, dependency {:.3?}, identify {:.3?} (total {:.3?})",
        report.timings.preprocess,
        report.timings.dependency,
        report.timings.identify,
        report.timings.total()
    );

    if let Some(dot_path) = &args.dot {
        // Re-run the dependency stage to export the contracted DDG.
        let records = match autocheck_trace::parse_str(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let phases = Phases::compute(&records, &region);
        let analysis = DdgAnalysis::run(&records, &phases, &report.mli, true);
        let bases: std::collections::HashSet<u64> =
            report.mli.iter().map(|m| m.base_addr).collect();
        let contracted = contract_ddg(
            &analysis.graph,
            |n| matches!(n, NodeKind::Var { base, .. } if bases.contains(base)),
        );
        if let Err(e) = std::fs::write(dot_path, contracted.to_dot()) {
            eprintln!("error: cannot write `{dot_path}`: {e}");
            return ExitCode::FAILURE;
        }
        println!("contracted DDG written to {dot_path}");
    }
    ExitCode::SUCCESS
}
