//! The AutoCheck command-line tool — the interface described in the
//! paper's §VII "Use of AutoCheck".
//!
//! Inputs: (1) a dynamic execution trace file, (2) the main computation
//! loop's function and start/end line numbers, and optionally (3) the
//! loop's index variables (the paper gets them from an LLVM loop pass; the
//! `mlc` tool prints them for MiniLang programs). Output: the variables to
//! checkpoint, each with its dependency type and location.
//!
//! ```text
//! autocheck <trace-file> --function main --start 13 --end 21 \
//!     [--index it,step] [--threads N] [--shards N] [--overlap N] [--dot out.dot] \
//!     [--collect arithmetic] [--stream] [--max-live-records N] [--untrusted-trace] \
//!     [--metrics out.json]
//! autocheck --batch <manifest> [--jobs N] [--shards N] [--overlap N] [--stream] \
//!     [--untrusted-trace] [--metrics out.json]
//! ```
//!
//! `--stream` analyzes the trace online through the bounded-memory
//! streaming engine instead of materializing it: the file is pulled
//! chunk-by-chunk, per-iteration analysis state is retired at iteration
//! boundaries, and the report footer shows the peak live-record count so
//! the memory bound is observable. `--max-live-records N` turns that bound
//! into a hard limit (exceeding it is an error, not an OOM). `--dot` works
//! here too: the engine contracts its own frozen DDG at finish (the graph
//! is program-bounded, so the memory story is unchanged).
//!
//! `--batch <manifest>` runs many analyses concurrently, each in its own
//! session (own symbol space, own seeded hashers when `--untrusted-trace`
//! is set), on `--jobs N` worker threads. Each manifest line names one
//! analysis:
//!
//! ```text
//! # trace-file  function  start  end  [index,vars]
//! traces/cg.trace   main  13  21  it
//! traces/hpccg.trace main 9   17
//! ```
//!
//! Per-session reports, timings and (with `--stream`) peak-live windows
//! are printed for **every** session, followed by an aggregate summary.
//!
//! `--untrusted-trace` marks the trace source as third-party: every map
//! keyed by trace-supplied addresses hashes with a per-session random
//! seed, so a crafted trace cannot exploit deterministic FxHash.
//!
//! `--limit <kind>=<N>` (repeatable) puts hard ceilings on session
//! resources — `trace-records`, `trace-bytes`, `symbols`, `arena-bytes`,
//! `ddg-nodes`, `ddg-edges`, `live-records`. A crossed ceiling is a clean
//! one-line `error:` diagnostic and a nonzero exit, never an OOM; in
//! `--batch` mode the limits apply per session, so one tenant tripping its
//! quota cannot disturb the other sessions' reports.
//!
//! `--shards N` splits the trace into at most `N` iteration-aligned shards
//! analyzed on worker threads and deterministically merged — the report and
//! DOT output are byte-identical to a serial run. The default (`0` = auto)
//! uses one shard per available core; `--shards 1` forces the serial path.
//! Works in batch, `--stream`, and `--batch` manifest modes; binary traces
//! carrying the v2 iteration-index footer shard without a planning
//! pre-scan. Resource ceilings still apply to the merged session state.
//!
//! `--overlap N` overlaps trace ingest with analysis: the file is read and
//! decoded on background threads, `N` record batches ahead of the fold,
//! through a bounded channel and a recycled buffer pool (file ingest stays
//! O(window) resident). Reports, DOT and exit codes are byte-identical to
//! serial at every depth; only the wall clock changes. The default (`0` =
//! auto) picks a depth from the core count — single-CPU hosts short-circuit
//! to the serial path — and `--overlap 1` forces serial. Composes with
//! `--shards` (overlap accelerates the materialization that feeds the
//! sharded fold) and works in batch, `--stream`, and `--batch` modes.
//!
//! `--metrics <file|->` turns on the observability layer: the session runs
//! with a metrics registry (counters, gauges, stage timers, histograms)
//! and its versioned JSON run ledger is written to the file (`-` prints a
//! human-readable table instead). In `--batch` mode every session gets its
//! own registry and the output is the aggregated batch ledger: batch-level
//! queue/flight stats plus one ledger per session. Metrics never change
//! analysis output — reports and DOT are byte-identical either way.

use autocheck_core::{
    capture_ledger, contract_for_mli, Analyzer, CollectMode, DdgAnalysis, Phases, PipelineConfig,
    Region, StreamAnalyzer, StreamConfig,
};
use autocheck_obs::{CounterId, Metrics};
use autocheck_trace::{parse_limit_arg, AnalysisCtx, ResourceKind, ResourceLimits};
use std::process::ExitCode;

struct Args {
    trace: String,
    function: String,
    start: u32,
    end: u32,
    index: Vec<String>,
    threads: usize,
    dot: Option<String>,
    collect: CollectMode,
    stream: bool,
    max_live_records: Option<usize>,
    untrusted: bool,
    limits: ResourceLimits,
    batch: Option<String>,
    jobs: usize,
    metrics: Option<String>,
    shards: usize,
    overlap: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: autocheck <trace-file> --function <name> --start <line> --end <line>\n\
         \x20                [--index v1,v2] [--threads N] [--shards N] [--overlap N] [--dot <file>]\n\
         \x20                [--collect any|arithmetic] [--stream] [--max-live-records N]\n\
         \x20                [--untrusted-trace] [--metrics <file|->] [--limit <kind>=<N>]...\n\
         \x20      autocheck --batch <manifest> [--jobs N] [--shards N] [--overlap N] [--stream]\n\
         \x20                [--untrusted-trace] [--metrics <file|->] [--limit <kind>=<N>]...\n\
         \x20                (--shards: iteration-aligned trace shards; 0 = auto, 1 = serial)\n\
         \x20                (--overlap: decode-ahead ingest depth; 0 = auto, 1 = serial)\n\
         \x20                (manifest lines: <trace-file> <function> <start> <end> [index,vars])\n\
         \x20                (--limit kinds: trace-records, trace-bytes, symbols, arena-bytes,\n\
         \x20                 ddg-nodes, ddg-edges, live-records; repeatable, applies per session)"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut trace = None;
    let mut function = "main".to_string();
    let mut function_set = false;
    let (mut start, mut end) = (0u32, 0u32);
    let mut index = Vec::new();
    let mut threads = 1usize;
    let mut threads_set = false;
    let mut dot = None;
    let mut collect = CollectMode::AnyAccess;
    let mut stream = false;
    let mut max_live_records = None;
    let mut untrusted = false;
    let mut limits = ResourceLimits::default();
    let mut batch = None;
    let mut jobs = 1usize;
    let mut metrics = None;
    // 0 = auto: one shard per available core (1-core hosts stay serial).
    let mut shards = 0usize;
    // 0 = auto: decode-ahead depth from the core count (1-core = serial).
    let mut overlap = 0usize;
    while let Some(a) = args.next() {
        let mut take = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--function" | "-f" => {
                function = take();
                function_set = true;
            }
            "--start" | "-s" => start = take().parse().unwrap_or_else(|_| usage()),
            "--end" | "-e" => end = take().parse().unwrap_or_else(|_| usage()),
            "--index" | "-i" => index = take().split(',').map(|s| s.trim().to_string()).collect(),
            "--threads" | "-t" => {
                threads = take().parse().unwrap_or_else(|_| usage());
                threads_set = true;
            }
            "--dot" => dot = Some(take()),
            "--collect" => {
                collect = match take().as_str() {
                    "any" => CollectMode::AnyAccess,
                    "arithmetic" => CollectMode::Arithmetic,
                    _ => usage(),
                }
            }
            "--stream" => stream = true,
            "--max-live-records" => {
                max_live_records = Some(take().parse().unwrap_or_else(|_| usage()))
            }
            "--untrusted-trace" => untrusted = true,
            "--limit" => match parse_limit_arg(&take()) {
                Ok((kind, n)) => limits = limits.set(kind, n),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            },
            "--metrics" => metrics = Some(take()),
            "--shards" => shards = take().parse().unwrap_or_else(|_| usage()),
            "--overlap" => overlap = take().parse().unwrap_or_else(|_| usage()),
            "--batch" => batch = Some(take()),
            "--jobs" | "-j" => jobs = take().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other if trace.is_none() && !other.starts_with('-') => trace = Some(a),
            _ => usage(),
        }
    }
    if let Some(batch) = batch {
        if trace.is_some()
            || start != 0
            || end != 0
            || dot.is_some()
            || function_set
            || !index.is_empty()
            || threads_set
        {
            eprintln!(
                "error: --batch takes every per-analysis setting from the manifest; \
                 positional trace, --function, --start/--end, --index, --threads and \
                 --dot do not apply"
            );
            std::process::exit(2);
        }
        return Args {
            trace: String::new(),
            function,
            start,
            end,
            index,
            threads,
            dot: None,
            collect,
            stream,
            max_live_records,
            untrusted,
            limits,
            batch: Some(batch),
            jobs,
            metrics,
            shards,
            overlap,
        };
    }
    let Some(trace) = trace else { usage() };
    if start == 0 || end < start {
        eprintln!("error: --start/--end are required and must satisfy start <= end");
        std::process::exit(2);
    }
    if max_live_records.is_some() && !stream {
        eprintln!("error: --max-live-records only applies to --stream mode");
        std::process::exit(2);
    }
    if threads_set && stream {
        eprintln!("error: --threads does not apply to --stream mode (single online pass)");
        std::process::exit(2);
    }
    Args {
        trace,
        function,
        start,
        end,
        index,
        threads,
        dot,
        collect,
        stream,
        max_live_records,
        untrusted,
        limits,
        batch: None,
        jobs,
        metrics,
        shards,
        overlap,
    }
}

/// Parse a batch manifest: one analysis per non-comment line, formatted as
/// `<trace-file> <function> <start> <end> [index,vars]`.
fn parse_manifest(path: &str, args: &Args) -> Result<Vec<autocheck_core::AnalysisJob>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 4 || fields.len() > 5 {
            return Err(format!(
                "{path}:{}: expected `<trace-file> <function> <start> <end> [index,vars]`",
                lineno + 1
            ));
        }
        let start: u32 = fields[2]
            .parse()
            .map_err(|_| format!("{path}:{}: bad start line `{}`", lineno + 1, fields[2]))?;
        let end: u32 = fields[3]
            .parse()
            .map_err(|_| format!("{path}:{}: bad end line `{}`", lineno + 1, fields[3]))?;
        if start == 0 || end < start {
            return Err(format!(
                "{path}:{}: start/end must satisfy 1 <= start <= end",
                lineno + 1
            ));
        }
        let name = std::path::Path::new(fields[0])
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(fields[0])
            .to_string();
        let mut job = autocheck_core::AnalysisJob::new(
            name,
            autocheck_core::JobInput::TracePath(fields[0].to_string()),
            Region::new(fields[1], start, end),
        )
        .untrusted(args.untrusted)
        .streaming(args.stream)
        .with_limits(args.limits)
        .with_shards(args.shards)
        .with_overlap(args.overlap);
        job.collect = args.collect;
        job.max_live_records = args.max_live_records;
        if let Some(ix) = fields.get(4) {
            job = job.with_index_vars(ix.split(',').map(|s| s.trim().to_string()).collect());
        }
        jobs.push(job);
    }
    if jobs.is_empty() {
        return Err(format!("{path}: manifest names no analyses"));
    }
    Ok(jobs)
}

/// Emit a rendered metrics artifact: `-` prints the human-readable table,
/// anything else gets the versioned JSON.
fn emit_metrics(path: &str, table: String, json: String) -> bool {
    if path == "-" {
        println!("{table}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("error: cannot write `{path}`: {e}");
        return false;
    } else {
        println!("run ledger written to {path}");
    }
    true
}

/// `--batch`: run every manifest analysis in its own session, concurrently
/// on `--jobs` workers, reporting peak-live and timings per session.
fn run_batch(args: &Args, manifest: &str) -> ExitCode {
    let jobs = match parse_manifest(manifest, args) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let n = jobs.len();
    let out = autocheck_core::MultiAnalyzer::new(args.jobs)
        .with_metrics(args.metrics.is_some())
        .run(jobs);
    for s in &out.sessions {
        println!("=== {} ===", s.name);
        print!("{}", s.rendered);
        println!(
            "timings: preprocess {:.3?}, dependency {:.3?}, identify {:.3?}, contract {:.3?} \
             (total {:.3?}; wall {:.3?})",
            s.timings.preprocess,
            s.timings.dependency,
            s.timings.identify,
            s.timings.contract,
            s.timings.total(),
            s.wall
        );
        match s.peak_live_records {
            Some(peak) => println!(
                "session: {} symbols; streaming peak {} live records of {} total",
                s.symbols, peak, s.records
            ),
            None => println!("session: {} symbols", s.symbols),
        }
        println!();
    }
    for f in &out.failures {
        eprintln!("error: {}: {}", f.name, f.message);
    }
    println!(
        "=== aggregate ({} analyses, {} workers{}) ===",
        n,
        out.jobs,
        if args.untrusted {
            ", untrusted: per-session seeded hashing"
        } else {
            ""
        }
    );
    print!("{}", out.aggregate());
    if let (Some(path), Some(ledger)) = (&args.metrics, &out.ledger) {
        if !emit_metrics(path, ledger.render_table(), ledger.to_json()) {
            return ExitCode::FAILURE;
        }
    }
    if out.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_streaming(args: &Args, region: &Region, ctx: &AnalysisCtx) -> ExitCode {
    let analyzer = StreamAnalyzer::new(region.clone())
        .with_index_vars(args.index.clone())
        .with_config(StreamConfig {
            collect: args.collect,
            max_live_records: args.max_live_records,
            contracted_dot: args.dot.is_some(),
            shards: args.shards,
            overlap: args.overlap,
            ..StreamConfig::default()
        })
        .with_ctx(ctx.clone());
    // Sharded runs slurp the file so a binary trace's iteration-index
    // footer can plan the shards without a pre-scan; serial runs keep the
    // bounded single-pass reader (peak memory = live window).
    let run = if autocheck_trace::resolve_shard_count(args.shards) > 1 {
        match std::fs::read(&args.trace) {
            Ok(bytes) => analyzer.run_bytes(&bytes),
            Err(e) => {
                eprintln!("error: cannot read `{}`: {e}", args.trace);
                return ExitCode::FAILURE;
            }
        }
    } else {
        match std::fs::File::open(&args.trace) {
            Ok(f) => analyzer.run_read(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("error: cannot read `{}`: {e}", args.trace);
                return ExitCode::FAILURE;
            }
        }
    };
    let run = match run {
        Ok(r) => r,
        Err(e) => return fail(args, ctx, e),
    };
    println!("{}", run.report);
    if let (Some(dot_path), Some(dot)) = (&args.dot, &run.contracted_dot) {
        if let Err(e) = std::fs::write(dot_path, dot) {
            eprintln!("error: cannot write `{dot_path}`: {e}");
            return ExitCode::FAILURE;
        }
        println!("contracted DDG (streaming) written to {dot_path}");
    }
    println!(
        "timings: ingest {:.3?}, identify {:.3?}, contract {:.3?} (total {:.3?}; single online pass)",
        run.report.timings.preprocess,
        run.report.timings.identify,
        run.report.timings.contract,
        run.report.timings.total()
    );
    let bound = match run.stats.live_bound {
        Some(b) => format!("{b}"),
        None => "unbounded".to_string(),
    };
    println!(
        "streaming: peak {} live records of {} total (bound: {}); ddg {} nodes / {} edges",
        run.stats.peak_live_records,
        run.report.records,
        bound,
        run.stats.ddg_nodes,
        run.stats.ddg_edges
    );
    if let Some(path) = &args.metrics {
        let ledger = capture_ledger(session_name(&args.trace), ctx);
        if !emit_metrics(path, ledger.render_table(), ledger.to_json()) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// One-line diagnostic + nonzero exit for a failed single analysis. The
/// metrics artifact is still emitted so a tripped ceiling shows up in the
/// ledger (`session.limit_exceeded`), not just on stderr.
fn fail(args: &Args, ctx: &AnalysisCtx, e: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {e}");
    if let Some(path) = &args.metrics {
        let ledger = capture_ledger(session_name(&args.trace), ctx);
        emit_metrics(path, ledger.render_table(), ledger.to_json());
    }
    ExitCode::FAILURE
}

/// The ledger's session name: the trace file's stem, like batch manifests.
fn session_name(trace: &str) -> &str {
    std::path::Path::new(trace)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(trace)
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(manifest) = args.batch.clone() {
        return run_batch(&args, &manifest);
    }
    // Single-analysis mode still gets a session scope when the trace is
    // third-party (fresh symbol space + seeded address hashing) — and also
    // whenever a symbol/arena ceiling is set: those are measured against
    // the session's own space, and the global space counts the whole
    // process (its `owned_bytes` never reclaims), which would make the
    // ceilings meaningless.
    let needs_session = args.untrusted
        || args.limits.max_symbols.is_some()
        || args.limits.max_arena_bytes.is_some();
    let mut ctx = if needs_session {
        AnalysisCtx::session()
    } else {
        AnalysisCtx::default()
    };
    if args.untrusted {
        ctx = ctx.untrusted();
    }
    if !args.limits.is_unlimited() {
        ctx = ctx.with_limits(args.limits);
    }
    if args.metrics.is_some() {
        ctx = ctx.with_metrics(Metrics::enabled());
    }
    // Rendering below resolves symbols via the thread-current space.
    let _guard = ctx.enter();
    let region = Region::new(args.function.clone(), args.start, args.end);
    if args.stream {
        return run_streaming(&args, &region, &ctx);
    }
    let analyzer = Analyzer::new(region.clone())
        .with_index_vars(args.index.clone())
        .with_config(PipelineConfig {
            parse_threads: args.threads,
            collect: args.collect,
            shards: args.shards,
            overlap: args.overlap,
            ..PipelineConfig::default()
        })
        .with_ctx(ctx.clone());
    // The file feeds the bounded chunked reader (format auto-detected from
    // the leading magic) — ingest stays O(window) resident and, with
    // overlap, runs concurrently with the fold.
    let report = match analyzer.analyze_path(&args.trace) {
        Ok(r) => r,
        Err(e) => return fail(&args, &ctx, e),
    };
    // Batch ingest enforced the trace-side ceilings; the finished graph is
    // where the DDG ceilings become checkable.
    for (kind, used) in [
        (ResourceKind::DdgNodes, report.ddg.nodes as u64),
        (ResourceKind::DdgEdges, report.ddg.edges as u64),
    ] {
        if let Err(e) = ctx.limits().check(kind, used) {
            ctx.metrics().count(CounterId::LimitExceeded, 1);
            return fail(&args, &ctx, e);
        }
    }
    println!("{report}");
    println!(
        "timings: preprocess {:.3?}, dependency {:.3?}, identify {:.3?}, contract {:.3?} (total {:.3?})",
        report.timings.preprocess,
        report.timings.dependency,
        report.timings.identify,
        report.timings.contract,
        report.timings.total()
    );

    if let Some(dot_path) = &args.dot {
        // Re-run the dependency fold (no event retention) to export the
        // contracted DDG from the frozen graph.
        let records = match autocheck_trace::TraceSource::from_path(&args.trace)
            .ctx(&ctx)
            .overlap(args.overlap)
            .records()
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let phases = Phases::compute_in(&records, &region, &ctx);
        let graph = DdgAnalysis::fold_in(
            &records,
            &phases,
            &report.mli,
            autocheck_core::DdgOptions {
                retain_events: false,
                ..autocheck_core::DdgOptions::default()
            },
            &ctx,
            |_| {},
        );
        let contracted = contract_for_mli(&graph, &report.mli);
        if let Err(e) = std::fs::write(dot_path, contracted.to_dot()) {
            eprintln!("error: cannot write `{dot_path}`: {e}");
            return ExitCode::FAILURE;
        }
        println!("contracted DDG written to {dot_path}");
    }
    if let Some(path) = &args.metrics {
        let ledger = capture_ledger(session_name(&args.trace), &ctx);
        if !emit_metrics(path, ledger.render_table(), ledger.to_json()) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
