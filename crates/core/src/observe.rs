//! Session-level metrics publication and ledger capture — the glue between
//! the per-session [`Metrics`](autocheck_obs::Metrics) registry that rides
//! the [`AnalysisCtx`] and the machine-readable run ledger the CLI edges
//! emit (`--metrics <path>`).

use autocheck_obs::ledger::Ledger;
use autocheck_obs::GaugeId;
use autocheck_trace::AnalysisCtx;

/// Publish the session's interner gauges: distinct symbols in this
/// session's space, and the process-wide arena footprint in bytes (the
/// deliberate dedup leak, measured at last). Called by both pipelines as a
/// session finishes; idempotent.
pub fn note_session_symbols(ctx: &AnalysisCtx) {
    let m = ctx.metrics();
    m.gauge_set(GaugeId::Symbols, ctx.space().len() as u64);
    m.gauge_set(
        GaugeId::ArenaBytes,
        autocheck_trace::intern::arena_bytes() as u64,
    );
}

/// Snapshot the session's registry into a named [`Ledger`] (all-zero when
/// the ctx has metrics disabled). Refreshes the interner gauges first so a
/// capture taken any time after analysis reflects the final symbol counts.
pub fn capture_ledger(name: &str, ctx: &AnalysisCtx) -> Ledger {
    if ctx.metrics().is_enabled() {
        note_session_symbols(ctx);
    }
    Ledger::capture(name, ctx.metrics())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocheck_obs::Metrics;

    #[test]
    fn capture_reflects_session_symbols_and_arena() {
        let ctx = AnalysisCtx::session().with_metrics(Metrics::enabled());
        ctx.intern("observe_test_sym_a");
        ctx.intern("observe_test_sym_b");
        let ledger = capture_ledger("t", &ctx);
        assert_eq!(ledger.gauge(GaugeId::Symbols).0, 2);
        assert!(
            ledger.gauge(GaugeId::ArenaBytes).0 > 0,
            "arena holds at least the strings just interned"
        );
        assert_eq!(ledger.name, "t");
    }

    #[test]
    fn disabled_ctx_captures_an_all_zero_ledger() {
        let ctx = AnalysisCtx::session();
        ctx.intern("observe_test_disabled");
        let ledger = capture_ledger("quiet", &ctx);
        assert_eq!(ledger, Ledger::empty("quiet"));
    }
}
