//! Trace partitioning around the main computation loop.
//!
//! The user supplies the main computation loop's location — the paper's
//! "MCLR" input: the function containing the loop plus its start/end source
//! lines. This module walks the trace once and annotates every record with
//!
//! * its **phase**: `Before` (paper's Part A / region (a)), `Inside`
//!   (Part B / the main loop), or `After` (Part C);
//! * its **iteration number** when inside the loop;
//! * whether it executes at **region level** (directly in the region
//!   function) or inside a nested call — the information Challenge 1's
//!   "bypass function call intervals" needs.
//!
//! Iteration boundaries are detected from the loop header's conditional
//! branch: the header block's `Br` record at the loop's start line fires
//! exactly once per condition evaluation, so its occurrences delimit
//! iterations.

use autocheck_trace::{record::opcodes, Name, Record};
use std::sync::Arc;

/// The main computation loop's location (the paper's MCLR).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Function containing the loop.
    pub function: String,
    /// First source line of the loop statement.
    pub start_line: u32,
    /// Last source line of the loop body.
    pub end_line: u32,
}

impl Region {
    /// Build a region.
    pub fn new(function: impl Into<String>, start_line: u32, end_line: u32) -> Region {
        Region {
            function: function.into(),
            start_line,
            end_line,
        }
    }
}

/// Which part of the execution a record belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Part A: before the main computation loop.
    Before,
    /// Part B: the main computation loop.
    Inside,
    /// Part C: after the main computation loop.
    After,
}

/// Per-record annotation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Annot {
    /// Phase of this record.
    pub phase: Phase,
    /// Iteration index (0-based) when `phase == Inside`. Records of the
    /// loop preamble (`for`-init, first condition evaluation) carry 0.
    pub iter: u32,
    /// True when the record executes directly in the region function (not
    /// inside a nested call).
    pub region_level: bool,
}

/// The partitioned trace.
#[derive(Clone, Debug)]
pub struct Phases {
    /// One annotation per record, parallel to the input slice.
    pub annots: Vec<Annot>,
    /// Number of loop iterations observed (condition evaluations minus the
    /// final failing one; 0 when the loop never ran).
    pub iterations: u32,
    /// Label of the loop header's basic block, if identified.
    pub header_label: Option<Arc<str>>,
}

impl Phases {
    /// Annotate `records` relative to `region`.
    ///
    /// Call tracking uses the Call/Ret structure of the trace: a `Call`
    /// record whose next record enters the named function pushes a frame
    /// ("Call form 2" of the paper), and `Ret` records pop it.
    pub fn compute(records: &[Record], region: &Region) -> Phases {
        let mut annots = Vec::with_capacity(records.len());
        // Call stack of function names; the first record's function is the
        // root frame (usually `main`).
        let mut stack: Vec<Arc<str>> = Vec::new();
        let mut phase = Phase::Before;
        let mut iter: u32 = 0;
        let mut started = false;
        let mut header_label: Option<Arc<str>> = None;
        let mut cond_evals: u32 = 0;

        for (i, r) in records.iter().enumerate() {
            if stack.is_empty() {
                stack.push(r.func.clone());
            }
            let region_level =
                stack.len() == region_frame_depth(&stack, region) && *r.func == region.function;

            if region_level {
                // Phase transitions are driven by region-function lines.
                if r.src_line >= 0 {
                    let line = r.src_line as u32;
                    if line < region.start_line {
                        // Lines before the loop. Only move backwards to
                        // `Before` if the loop has not run yet (code before
                        // the loop cannot execute again in a structured
                        // program, but guard against line-number noise).
                        if !started {
                            phase = Phase::Before;
                        }
                    } else if line > region.end_line {
                        if started {
                            phase = Phase::After;
                        }
                    } else {
                        if phase != Phase::After {
                            phase = Phase::Inside;
                            started = true;
                        }
                    }
                }
                // Header detection: the conditional branch at the start
                // line. `Br` records of a conditional branch carry exactly
                // one operand (the i1 condition).
                if phase == Phase::Inside
                    && r.opcode == opcodes::BR
                    && r.src_line == region.start_line as i32
                    && r.positional().count() == 1
                {
                    match &header_label {
                        None => {
                            header_label = Some(r.bb_label.clone());
                            cond_evals = 1;
                        }
                        Some(l) if Arc::ptr_eq(l, &r.bb_label) || **l == *r.bb_label => {
                            cond_evals += 1;
                            iter = cond_evals - 1;
                        }
                        Some(_) => {}
                    }
                }
            }

            annots.push(Annot {
                phase,
                iter,
                region_level,
            });

            // Maintain the call stack for the *next* record.
            match r.opcode {
                opcodes::CALL => {
                    if let Some(Name::Sym(callee)) = r.op1().map(|o| &o.name) {
                        if let Some(next) = records.get(i + 1) {
                            if *next.func == **callee {
                                stack.push(next.func.clone());
                            }
                        }
                    }
                }
                opcodes::RET if stack.len() > 1 => {
                    stack.pop();
                }
                _ => {}
            }
        }

        // The final condition evaluation fails (loop exit): iterations =
        // evaluations - 1.
        let iterations = cond_evals.saturating_sub(1);
        Phases {
            annots,
            iterations,
            header_label,
        }
    }

    /// Phase of record `i`.
    pub fn phase(&self, i: usize) -> Phase {
        self.annots[i].phase
    }
}

/// Depth at which the region function's frame sits. Our traces enter the
/// region function exactly once (the paper analyzes a single main loop), so
/// the depth is wherever the function first appears on the stack.
fn region_frame_depth(stack: &[Arc<str>], region: &Region) -> usize {
    stack
        .iter()
        .position(|f| **f == *region.function)
        .map(|p| p + 1)
        .unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocheck_trace::parse_str;

    /// A miniature trace: main does a 2-iteration loop at lines 5..=7
    /// calling foo inside, then prints at line 9.
    fn mini_trace() -> Vec<Record> {
        let text = "\
0,3,main,3:1,0,28,0,
0,5,main,5:1,1,27,1,
0,5,main,5:1,1,2,2,
1,1,1,1,5,
0,6,main,6:1,2,49,3,
1,64,0x400010,1,foo,
0,2,foo,2:1,0,28,4,
0,2,foo,2:1,0,1,5,
0,7,main,6:1,2,28,6,
0,5,main,5:1,1,27,7,
0,5,main,5:1,1,2,8,
1,1,1,1,5,
0,6,main,6:1,2,49,9,
1,64,0x400010,1,foo,
0,2,foo,2:1,0,28,10,
0,2,foo,2:1,0,1,11,
0,7,main,6:1,2,28,12,
0,5,main,5:1,1,27,13,
0,5,main,5:1,1,2,14,
1,1,0,1,5,
0,9,main,9:1,3,28,15,
";
        parse_str(text).unwrap()
    }

    #[test]
    fn phases_split_before_inside_after() {
        let recs = mini_trace();
        let region = Region::new("main", 5, 7);
        let ph = Phases::compute(&recs, &region);
        assert_eq!(ph.phase(0), Phase::Before);
        assert_eq!(ph.phase(1), Phase::Inside);
        assert_eq!(ph.phase(14), Phase::Inside);
        assert_eq!(ph.phase(recs.len() - 1), Phase::After);
    }

    #[test]
    fn iteration_numbers_advance_at_header() {
        let recs = mini_trace();
        let region = Region::new("main", 5, 7);
        let ph = Phases::compute(&recs, &region);
        assert_eq!(ph.iterations, 2);
        // Records of the second iteration carry iter == 1.
        let second_iter_store = recs.iter().position(|r| r.dyn_id == 12).unwrap();
        assert_eq!(ph.annots[second_iter_store].iter, 1);
        // First-iteration body records carry iter == 0.
        let first_body = recs.iter().position(|r| r.dyn_id == 6).unwrap();
        assert_eq!(ph.annots[first_body].iter, 0);
    }

    #[test]
    fn callee_records_are_not_region_level_but_keep_phase() {
        let recs = mini_trace();
        let region = Region::new("main", 5, 7);
        let ph = Phases::compute(&recs, &region);
        let foo_store = recs.iter().position(|r| r.dyn_id == 4).unwrap();
        assert_eq!(ph.annots[foo_store].phase, Phase::Inside);
        assert!(!ph.annots[foo_store].region_level);
        let main_store = recs.iter().position(|r| r.dyn_id == 6).unwrap();
        assert!(ph.annots[main_store].region_level);
    }

    #[test]
    fn header_label_is_identified() {
        let recs = mini_trace();
        let ph = Phases::compute(&recs, &Region::new("main", 5, 7));
        assert_eq!(ph.header_label.as_deref(), Some("1"));
    }

    #[test]
    fn empty_trace_is_fine() {
        let ph = Phases::compute(&[], &Region::new("main", 5, 7));
        assert_eq!(ph.iterations, 0);
        assert!(ph.annots.is_empty());
    }

    #[test]
    fn loop_that_never_runs_keeps_everything_outside() {
        // Condition false immediately: one evaluation, zero iterations.
        let text = "\
0,3,main,3:1,0,28,0,
0,5,main,5:1,1,27,1,
0,5,main,5:1,1,2,2,
1,1,0,1,5,
0,9,main,9:1,3,28,3,
";
        let recs = parse_str(text).unwrap();
        let ph = Phases::compute(&recs, &Region::new("main", 5, 7));
        assert_eq!(ph.iterations, 0);
        assert_eq!(ph.phase(3), Phase::After);
    }
}
