//! Trace partitioning around the main computation loop.
//!
//! The user supplies the main computation loop's location — the paper's
//! "MCLR" input: the function containing the loop plus its start/end source
//! lines. [`Phases::compute`] annotates every record with
//!
//! * its **phase**: `Before` (paper's Part A / region (a)), `Inside`
//!   (Part B / the main loop), or `After` (Part C);
//! * its **iteration number** when inside the loop;
//! * whether it executes at **region level** (directly in the region
//!   function) or inside a nested call — the information Challenge 1's
//!   "bypass function call intervals" needs.
//!
//! The partitioning logic itself lives in `autocheck-stream`'s
//! [`RegionTracker`] — one incremental state machine shared by both
//! pipelines — and this module is the batch adapter: it folds the whole
//! record slice through the tracker and materializes the annotation vector
//! the batch passes index into. [`Phase`] and [`Annot`] are the shared
//! types re-exported, so batch and streaming annotations are not merely
//! equal but identical by construction.

use autocheck_stream::RegionTracker;
use autocheck_trace::{AnalysisCtx, Record, SymId};

pub use autocheck_stream::{Phase, StreamAnnot};

/// Per-record annotation — the streaming tracker's output type, shared.
pub type Annot = StreamAnnot;

/// The main computation loop's location (the paper's MCLR).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Function containing the loop.
    pub function: String,
    /// First source line of the loop statement.
    pub start_line: u32,
    /// Last source line of the loop body.
    pub end_line: u32,
}

impl Region {
    /// Build a region.
    pub fn new(function: impl Into<String>, start_line: u32, end_line: u32) -> Region {
        Region {
            function: function.into(),
            start_line,
            end_line,
        }
    }
}

/// The partitioned trace.
#[derive(Clone, Debug)]
pub struct Phases {
    /// One annotation per record, parallel to the input slice.
    pub annots: Vec<Annot>,
    /// Number of loop iterations observed (condition evaluations minus the
    /// final failing one; 0 when the loop never ran).
    pub iterations: u32,
    /// Label of the loop header's basic block, if identified.
    pub header_label: Option<SymId>,
}

impl Phases {
    /// Annotate `records` relative to `region`.
    ///
    /// Call tracking uses the Call/Ret structure of the trace: a `Call`
    /// record whose next record enters the named function pushes a frame
    /// ("Call form 2" of the paper), and `Ret` records pop it.
    pub fn compute(records: &[Record], region: &Region) -> Phases {
        Self::compute_in(records, region, &AnalysisCtx::current())
    }

    /// [`Phases::compute`] scoped to `ctx`'s session: the region function
    /// name interns into the session's symbol space so it compares against
    /// record symbols from the same session.
    pub fn compute_in(records: &[Record], region: &Region, ctx: &AnalysisCtx) -> Phases {
        let mut tracker =
            RegionTracker::with_ctx(ctx, &region.function, region.start_line, region.end_line);
        let annots = records.iter().map(|r| tracker.annotate(r)).collect();
        Phases {
            annots,
            iterations: tracker.iterations(),
            header_label: tracker.header_label(),
        }
    }

    /// Phase of record `i`.
    pub fn phase(&self, i: usize) -> Phase {
        self.annots[i].phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(
        text: &str,
    ) -> Result<Vec<autocheck_trace::Record>, autocheck_trace::reader::TraceReadError> {
        autocheck_trace::TraceSource::from_str(text).records()
    }

    /// A miniature trace: main does a 2-iteration loop at lines 5..=7
    /// calling foo inside, then prints at line 9.
    fn mini_trace() -> Vec<Record> {
        let text = "\
0,3,main,3:1,0,28,0,
0,5,main,5:1,1,27,1,
0,5,main,5:1,1,2,2,
1,1,1,1,5,
0,6,main,6:1,2,49,3,
1,64,0x400010,1,foo,
0,2,foo,2:1,0,28,4,
0,2,foo,2:1,0,1,5,
0,7,main,6:1,2,28,6,
0,5,main,5:1,1,27,7,
0,5,main,5:1,1,2,8,
1,1,1,1,5,
0,6,main,6:1,2,49,9,
1,64,0x400010,1,foo,
0,2,foo,2:1,0,28,10,
0,2,foo,2:1,0,1,11,
0,7,main,6:1,2,28,12,
0,5,main,5:1,1,27,13,
0,5,main,5:1,1,2,14,
1,1,0,1,5,
0,9,main,9:1,3,28,15,
";
        parse_str(text).unwrap()
    }

    #[test]
    fn phases_split_before_inside_after() {
        let recs = mini_trace();
        let region = Region::new("main", 5, 7);
        let ph = Phases::compute(&recs, &region);
        assert_eq!(ph.phase(0), Phase::Before);
        assert_eq!(ph.phase(1), Phase::Inside);
        assert_eq!(ph.phase(14), Phase::Inside);
        assert_eq!(ph.phase(recs.len() - 1), Phase::After);
    }

    #[test]
    fn iteration_numbers_advance_at_header() {
        let recs = mini_trace();
        let region = Region::new("main", 5, 7);
        let ph = Phases::compute(&recs, &region);
        assert_eq!(ph.iterations, 2);
        // Records of the second iteration carry iter == 1.
        let second_iter_store = recs.iter().position(|r| r.dyn_id == 12).unwrap();
        assert_eq!(ph.annots[second_iter_store].iter, 1);
        // First-iteration body records carry iter == 0.
        let first_body = recs.iter().position(|r| r.dyn_id == 6).unwrap();
        assert_eq!(ph.annots[first_body].iter, 0);
    }

    #[test]
    fn callee_records_are_not_region_level_but_keep_phase() {
        let recs = mini_trace();
        let region = Region::new("main", 5, 7);
        let ph = Phases::compute(&recs, &region);
        let foo_store = recs.iter().position(|r| r.dyn_id == 4).unwrap();
        assert_eq!(ph.annots[foo_store].phase, Phase::Inside);
        assert!(!ph.annots[foo_store].region_level);
        let main_store = recs.iter().position(|r| r.dyn_id == 6).unwrap();
        assert!(ph.annots[main_store].region_level);
    }

    #[test]
    fn header_label_is_identified() {
        let recs = mini_trace();
        let ph = Phases::compute(&recs, &Region::new("main", 5, 7));
        assert_eq!(ph.header_label.map(|l| l.as_str()).as_deref(), Some("1"));
    }

    #[test]
    fn empty_trace_is_fine() {
        let ph = Phases::compute(&[], &Region::new("main", 5, 7));
        assert_eq!(ph.iterations, 0);
        assert!(ph.annots.is_empty());
    }

    #[test]
    fn loop_that_never_runs_keeps_everything_outside() {
        // Condition false immediately: one evaluation, zero iterations.
        let text = "\
0,3,main,3:1,0,28,0,
0,5,main,5:1,1,27,1,
0,5,main,5:1,1,2,2,
1,1,0,1,5,
0,9,main,9:1,3,28,3,
";
        let recs = parse_str(text).unwrap();
        let ph = Phases::compute(&recs, &Region::new("main", 5, 7));
        assert_eq!(ph.iterations, 0);
        assert_eq!(ph.phase(3), Phase::After);
    }
}
