//! Pre-processing: identifying the Main-Loop-Input (MLI) variables.
//!
//! Following the paper's §IV-A and Fig. 3:
//!
//! 1. collect variables from the trace region **before** the main loop
//!    (Part A) and **inside** it (Part B);
//! 2. match the two collections — a variable defined before and used inside
//!    the loop is an MLI variable.
//!
//! Collection resolves every `Load`/`Store` to the *named base variable* it
//! touches, chasing pointer provenance through `GetElementPtr`/`BitCast`
//! temporaries (the paper's "POINTER ASSIGNMENT" rule), bypasses
//! function-call intervals (Challenge 1) except for address matches against
//! part-A variables (Challenge 2), and supports two occurrence-strictness
//! modes — see the shared [`MliCollector`] for the rule-by-rule
//! documentation.
//!
//! The collection state machine itself lives in `autocheck-stream`'s
//! [`MliCollector`] — **one copy for both pipelines**. This module is the
//! batch adapter: [`find_mli_vars`] folds the pre-annotated record slice
//! through the collector, the same way [`mod@crate::classify`] folds events
//! through the shared `VarStatsBuilder`. [`MliVar`] *is* the collector's
//! entry type (an alias), so the batch and streaming MLI sets are the same
//! values of the same type, not merely field-compatible copies.
//!
//! On what counts as a collected occurrence: the paper calls these
//! "arithmetic variables", but its own worked example collects `a`, `b`,
//! `sum`, `s`, `r` whose pre-loop occurrences are constant stores
//! (`a[i] = 0`). [`CollectMode::AnyAccess`] (the default) therefore counts
//! every resolved `Load`/`Store`; [`CollectMode::Arithmetic`] implements
//! the stricter reading (loads must feed an arithmetic instruction, stores
//! must store an arithmetic result) and exists for the ablation study.

use crate::region::{Phases, Region};
use autocheck_stream::MliCollector;
use autocheck_trace::{AnalysisCtx, Record};

/// Occurrence-counting strictness (see module docs) — the shared
/// collector's mode type.
pub use autocheck_stream::Collect as CollectMode;

/// One main-loop-input variable — the shared collector's entry type.
/// Fields: interned `name`, `base_addr`, observed `size` in bytes,
/// `first_line` of the pre-loop use.
pub use autocheck_stream::MliEntry as MliVar;

/// Collect MLI variables by folding the annotated trace through the shared
/// streaming [`MliCollector`].
///
/// # Panics
///
/// Panics when `phases` was not computed over exactly `records` (annotation
/// count mismatch) — the same contract the previous indexing implementation
/// enforced, made explicit instead of silently truncating.
pub fn find_mli_vars(
    records: &[Record],
    phases: &Phases,
    region: &Region,
    mode: CollectMode,
) -> Vec<MliVar> {
    find_mli_vars_in(records, phases, region, mode, &AnalysisCtx::current())
}

/// [`find_mli_vars`] scoped to `ctx`'s session (address-keyed collection
/// maps hash with the session's seed).
pub fn find_mli_vars_in(
    records: &[Record],
    phases: &Phases,
    _region: &Region,
    mode: CollectMode,
    ctx: &AnalysisCtx,
) -> Vec<MliVar> {
    assert_eq!(
        records.len(),
        phases.annots.len(),
        "phases must be computed over the same record slice"
    );
    let mut collector = MliCollector::with_ctx(mode, ctx);
    for (r, &a) in records.iter().zip(&phases.annots) {
        collector.observe(r, a);
    }
    collector.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(
        text: &str,
    ) -> Result<Vec<autocheck_trace::Record>, autocheck_trace::reader::TraceReadError> {
        autocheck_trace::TraceSource::from_str(text).records()
    }

    /// main: line 2 stores to sum and x; loop lines 5..=7 loads sum, adds,
    /// stores sum; after the loop prints. `x` is only used before the loop.
    /// `tmp` is only used inside. Expected MLI: {sum}.
    fn toy() -> (Vec<Record>, Phases, Region) {
        let text = "\
0,-1,main,0:0,sum,26,0,
1,64,8,0,,
r,64,0x7f0000000000,1,sum,
0,-1,main,0:0,x,26,1,
1,64,8,0,,
r,64,0x7f0000000008,1,x,
0,-1,main,0:0,tmp,26,2,
1,64,8,0,,
r,64,0x7f0000000010,1,tmp,
0,2,main,2:1,0,28,3,
1,64,0,0,,
2,64,0x7f0000000000,1,sum,
0,2,main,2:1,0,28,4,
1,64,5,0,,
2,64,0x7f0000000008,1,x,
0,5,main,5:1,1,27,5,
1,64,0x7f0000000000,1,sum,
r,64,0,1,0,
0,5,main,5:1,1,2,6,
1,1,1,1,9,
0,6,main,6:1,2,27,7,
1,64,0x7f0000000000,1,sum,
r,64,0,1,1,
0,6,main,6:1,2,8,8,
1,64,0,1,1,
2,64,1,0,,
r,64,1,1,2,
0,6,main,6:1,2,28,9,
1,64,1,1,2,
2,64,0x7f0000000000,1,sum,
0,7,main,7:1,2,28,10,
1,64,3,0,,
2,64,0x7f0000000010,1,tmp,
0,5,main,5:1,1,27,11,
1,64,0x7f0000000000,1,sum,
r,64,1,1,3,
0,5,main,5:1,1,2,12,
1,1,0,1,9,
0,9,main,9:1,3,27,13,
1,64,0x7f0000000000,1,sum,
r,64,1,1,4,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        (recs, phases, region)
    }

    #[test]
    fn matches_variables_defined_before_and_used_inside() {
        let (recs, phases, region) = toy();
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::AnyAccess);
        let names: Vec<_> = mli.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["sum"]);
        assert_eq!(mli[0].base_addr, 0x7f00_0000_0000);
        assert_eq!(mli[0].size, 8);
    }

    #[test]
    fn loop_local_is_not_mli() {
        let (recs, phases, region) = toy();
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::AnyAccess);
        assert!(mli.iter().all(|m| m.name != "tmp"));
        assert!(mli.iter().all(|m| m.name != "x"));
    }

    #[test]
    fn arithmetic_mode_still_finds_sum() {
        // `sum` is loaded into an Add inside the loop, and stored before the
        // loop... but the pre-loop store is a constant store, which strict
        // arithmetic collection rejects — documenting exactly why AnyAccess
        // is the default (the paper's own example relies on constant
        // stores).
        let (recs, phases, region) = toy();
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::Arithmetic);
        assert!(mli.is_empty());
    }

    #[test]
    fn gep_provenance_resolves_array_elements() {
        // a[1] accessed through a GEP temp before the loop; a[0] inside.
        let text = "\
0,-1,main,0:0,a,26,0,
1,64,16,0,,
r,64,0x7f0000000000,1,a,
0,2,main,2:1,0,29,1,
1,64,0x7f0000000000,1,a,
2,64,1,0,,
r,64,0x7f0000000008,1,0,
0,2,main,2:1,0,28,2,
1,64,7,0,,
2,64,0x7f0000000008,1,0,
0,5,main,5:1,1,27,3,
1,64,0x7f0000000000,1,a,
r,64,0,1,1,
0,5,main,5:1,1,2,4,
1,1,1,1,9,
0,6,main,6:1,2,29,5,
1,64,0x7f0000000000,1,a,
2,64,0,0,,
r,64,0x7f0000000000,1,2,
0,6,main,6:1,2,28,6,
1,64,9,0,,
2,64,0x7f0000000000,1,2,
0,5,main,5:1,1,27,7,
1,64,0x7f0000000000,1,a,
r,64,0,1,3,
0,5,main,5:1,1,2,8,
1,1,0,1,9,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::AnyAccess);
        assert_eq!(mli.len(), 1);
        assert_eq!(mli[0].name, "a");
        assert_eq!(mli[0].size, 16, "alloca size wins over extent");
    }

    #[test]
    fn same_name_different_address_does_not_match() {
        // `v` before the loop at one address, `v` inside at another (the
        // Challenge-2 deceiver): no match.
        let text = "\
0,2,main,2:1,0,28,0,
1,64,1,0,,
2,64,0x7f0000000000,1,v,
0,5,main,5:1,1,27,1,
1,64,0x7f0000000100,1,v,
r,64,0,1,0,
0,5,main,5:1,1,2,2,
1,1,0,1,9,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::AnyAccess);
        assert!(mli.is_empty());
    }
}
