//! Pre-processing: identifying the Main-Loop-Input (MLI) variables.
//!
//! Following the paper's §IV-A and Fig. 3:
//!
//! 1. collect variables from the trace region **before** the main loop
//!    (Part A) and **inside** it (Part B);
//! 2. match the two collections — a variable defined before and used inside
//!    the loop is an MLI variable.
//!
//! Collection resolves every `Load`/`Store` to the *named base variable* it
//! touches, chasing pointer provenance through `GetElementPtr`/`BitCast`
//! temporaries (the paper's "POINTER ASSIGNMENT" rule: recursively search
//! for the source variable and replace the assigned object).
//!
//! Implementation notes that mirror the paper's §V-B:
//!
//! * **Challenge 1** (local variables of functions called both before and
//!   inside the loop would match spuriously): collection *bypasses function
//!   call intervals* — only records executing directly in the region
//!   function are considered. Like the paper, this means globals touched
//!   only inside callees are missed; the benchmarks touch their globals at
//!   region level before the loop (the paper's FT workaround).
//! * **Challenge 2** (callee locals sharing an MLI variable's name):
//!   matching is by *(name, base address)*, with addresses taken from the
//!   operands — the same information the paper extracts from `Alloca` /
//!   `Load` / `Store` records.
//!
//! On what counts as a collected occurrence: the paper calls these
//! "arithmetic variables", but its own worked example collects `a`, `b`,
//! `sum`, `s`, `r` whose pre-loop occurrences are constant stores
//! (`a[i] = 0`). [`CollectMode::AnyAccess`] (the default) therefore counts
//! every resolved `Load`/`Store`; [`CollectMode::Arithmetic`] implements
//! the stricter reading (loads must feed an arithmetic instruction, stores
//! must store an arithmetic result) and exists for the ablation study.

use crate::region::{Phase, Phases, Region};
use autocheck_stream::Provenance;
use autocheck_trace::{record::opcodes, Name, Record};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Occurrence-counting strictness (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CollectMode {
    /// Count every resolved load/store (matches the paper's worked example).
    #[default]
    AnyAccess,
    /// Count only arithmetic participation (the paper's literal wording);
    /// kept for the ablation bench.
    Arithmetic,
}

/// One main-loop-input variable.
#[derive(Clone, Debug, PartialEq)]
pub struct MliVar {
    /// Source-level name.
    pub name: Arc<str>,
    /// Base address of its storage.
    pub base_addr: u64,
    /// Observed storage footprint in bytes (exact for alloca'd variables,
    /// max-extent for globals).
    pub size: u64,
    /// First source line where the variable was seen used.
    pub first_line: u32,
}

/// A variable occurrence found during collection.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct VarKey {
    name: Arc<str>,
    base: u64,
}

/// Collect MLI variables.
pub fn find_mli_vars(
    records: &[Record],
    phases: &Phases,
    _region: &Region,
    mode: CollectMode,
) -> Vec<MliVar> {
    let mut prov = Provenance::default();
    // Registers holding results of arithmetic instructions (Arithmetic mode).
    let mut arith_regs: HashSet<Name> = HashSet::new();
    // Registers holding loaded values, mapped to the loaded variable.
    let mut loaded_from: HashMap<Name, VarKey> = HashMap::new();

    let mut before: HashMap<VarKey, u32> = HashMap::new();
    let mut inside: HashMap<VarKey, u32> = HashMap::new();
    // Footprints: maximum extent of element accesses per variable.
    let mut extent: HashMap<VarKey, u64> = HashMap::new();
    // Exact sizes learned from Alloca records.
    let mut alloca_size: HashMap<VarKey, u64> = HashMap::new();

    // Part-A variables indexed by base address, for recognizing them inside
    // bypassed call intervals (the paper's Challenge-2 address matching: "if
    // we can find a match between the variable's memory address and any MLI
    // variable's memory address, the variable is a MLI variable").
    let mut before_by_base: HashMap<u64, VarKey> = HashMap::new();

    for (i, r) in records.iter().enumerate() {
        let a = phases.annots[i];
        prov.observe(r);
        if !a.region_level {
            // Challenge 1: bypass function-call intervals — no *new*
            // candidates are collected here. But usage of an already
            // A-collected variable (recognized by its address) still counts
            // as an in-loop use; this is how globals and arrays touched only
            // through callees (BT's `u` across its nested solvers) match.
            if a.phase == Phase::Inside && matches!(r.opcode, opcodes::LOAD | opcodes::STORE) {
                let ptr = if r.opcode == opcodes::LOAD {
                    r.op1()
                } else {
                    r.op2()
                };
                if let Some(ptr) = ptr {
                    if let Some((_, base)) = prov.resolve(&ptr.name, ptr.value.as_ptr()) {
                        if let Some(key) = before_by_base.get(&base) {
                            let line = if r.src_line > 0 { r.src_line as u32 } else { 0 };
                            inside.entry(key.clone()).or_insert(line);
                        }
                    }
                }
            }
            continue;
        }
        let is_before = match a.phase {
            Phase::Before => true,
            Phase::Inside => false,
            Phase::After => continue,
        };
        let line = if r.src_line > 0 { r.src_line as u32 } else { 0 };
        macro_rules! collect {
            ($key:expr, $line:expr) => {{
                let key: VarKey = $key;
                if is_before {
                    before_by_base
                        .entry(key.base)
                        .or_insert_with(|| key.clone());
                    before.entry(key).or_insert($line);
                } else {
                    inside.entry(key).or_insert($line);
                }
            }};
        }
        match r.opcode {
            opcodes::ALLOCA => {
                if let (Some(size), Some(res)) =
                    (r.op1().and_then(|o| o.value.as_int()), r.result.as_ref())
                {
                    if let (Name::Sym(name), Some(addr)) = (&res.name, res.value.as_ptr()) {
                        alloca_size.insert(
                            VarKey {
                                name: name.clone(),
                                base: addr,
                            },
                            size as u64,
                        );
                    }
                }
            }
            opcodes::LOAD => {
                let Some(ptr) = r.op1() else { continue };
                let Some((name, base)) = prov.resolve(&ptr.name, ptr.value.as_ptr()) else {
                    continue;
                };
                let key = VarKey { name, base };
                if let Some(elem) = ptr.value.as_ptr() {
                    let e = extent.entry(key.clone()).or_insert(8);
                    *e = (*e).max(elem.saturating_sub(base) + 8);
                }
                match mode {
                    CollectMode::AnyAccess => {
                        collect!(key.clone(), line);
                    }
                    CollectMode::Arithmetic => {
                        // Defer: only collected when the loaded temp feeds
                        // an arithmetic instruction (tracked below).
                        if let Some(res) = &r.result {
                            loaded_from.insert(res.name.clone(), key.clone());
                        }
                        continue;
                    }
                }
                if let Some(res) = &r.result {
                    loaded_from.insert(res.name.clone(), key);
                }
            }
            opcodes::STORE => {
                let Some(ptr) = r.op2() else { continue };
                let Some((name, base)) = prov.resolve(&ptr.name, ptr.value.as_ptr()) else {
                    continue;
                };
                let key = VarKey { name, base };
                if let Some(elem) = ptr.value.as_ptr() {
                    let e = extent.entry(key.clone()).or_insert(8);
                    *e = (*e).max(elem.saturating_sub(base) + 8);
                }
                let collect = match mode {
                    CollectMode::AnyAccess => true,
                    CollectMode::Arithmetic => r
                        .op1()
                        .map(|v| arith_regs.contains(&v.name))
                        .unwrap_or(false),
                };
                if collect {
                    collect!(key, line);
                }
            }
            op if (8..=25).contains(&op) || op == opcodes::ICMP || op == opcodes::FCMP => {
                if mode == CollectMode::Arithmetic {
                    // Loads feeding arithmetic are collected now.
                    let hits: Vec<VarKey> = r
                        .positional()
                        .filter_map(|operand| loaded_from.get(&operand.name).cloned())
                        .collect();
                    for key in hits {
                        collect!(key, line);
                    }
                }
                if let Some(res) = &r.result {
                    arith_regs.insert(res.name.clone());
                }
            }
            _ => {}
        }
    }

    // Match A against B by (name, base address).
    let mut out: Vec<MliVar> = Vec::new();
    for (key, first_line_before) in &before {
        if inside.contains_key(key) {
            let size = alloca_size
                .get(key)
                .copied()
                .or_else(|| extent.get(key).copied())
                .unwrap_or(8);
            out.push(MliVar {
                name: key.name.clone(),
                base_addr: key.base,
                size,
                first_line: *first_line_before,
            });
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name).then(a.base_addr.cmp(&b.base_addr)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocheck_trace::parse_str;

    /// main: line 2 stores to sum and x; loop lines 5..=7 loads sum, adds,
    /// stores sum; after the loop prints. `x` is only used before the loop.
    /// `tmp` is only used inside. Expected MLI: {sum}.
    fn toy() -> (Vec<Record>, Phases, Region) {
        let text = "\
0,-1,main,0:0,sum,26,0,
1,64,8,0,,
r,64,0x7f0000000000,1,sum,
0,-1,main,0:0,x,26,1,
1,64,8,0,,
r,64,0x7f0000000008,1,x,
0,-1,main,0:0,tmp,26,2,
1,64,8,0,,
r,64,0x7f0000000010,1,tmp,
0,2,main,2:1,0,28,3,
1,64,0,0,,
2,64,0x7f0000000000,1,sum,
0,2,main,2:1,0,28,4,
1,64,5,0,,
2,64,0x7f0000000008,1,x,
0,5,main,5:1,1,27,5,
1,64,0x7f0000000000,1,sum,
r,64,0,1,0,
0,5,main,5:1,1,2,6,
1,1,1,1,9,
0,6,main,6:1,2,27,7,
1,64,0x7f0000000000,1,sum,
r,64,0,1,1,
0,6,main,6:1,2,8,8,
1,64,0,1,1,
2,64,1,0,,
r,64,1,1,2,
0,6,main,6:1,2,28,9,
1,64,1,1,2,
2,64,0x7f0000000000,1,sum,
0,7,main,7:1,2,28,10,
1,64,3,0,,
2,64,0x7f0000000010,1,tmp,
0,5,main,5:1,1,27,11,
1,64,0x7f0000000000,1,sum,
r,64,1,1,3,
0,5,main,5:1,1,2,12,
1,1,0,1,9,
0,9,main,9:1,3,27,13,
1,64,0x7f0000000000,1,sum,
r,64,1,1,4,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        (recs, phases, region)
    }

    #[test]
    fn matches_variables_defined_before_and_used_inside() {
        let (recs, phases, region) = toy();
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::AnyAccess);
        let names: Vec<&str> = mli.iter().map(|m| &*m.name).collect();
        assert_eq!(names, vec!["sum"]);
        assert_eq!(mli[0].base_addr, 0x7f00_0000_0000);
        assert_eq!(mli[0].size, 8);
    }

    #[test]
    fn loop_local_is_not_mli() {
        let (recs, phases, region) = toy();
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::AnyAccess);
        assert!(mli.iter().all(|m| &*m.name != "tmp"));
        assert!(mli.iter().all(|m| &*m.name != "x"));
    }

    #[test]
    fn arithmetic_mode_still_finds_sum() {
        // `sum` is loaded into an Add inside the loop, and stored before the
        // loop... but the pre-loop store is a constant store, which strict
        // arithmetic collection rejects — documenting exactly why AnyAccess
        // is the default (the paper's own example relies on constant
        // stores).
        let (recs, phases, region) = toy();
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::Arithmetic);
        assert!(mli.is_empty());
    }

    #[test]
    fn gep_provenance_resolves_array_elements() {
        // a[1] accessed through a GEP temp before the loop; a[0] inside.
        let text = "\
0,-1,main,0:0,a,26,0,
1,64,16,0,,
r,64,0x7f0000000000,1,a,
0,2,main,2:1,0,29,1,
1,64,0x7f0000000000,1,a,
2,64,1,0,,
r,64,0x7f0000000008,1,0,
0,2,main,2:1,0,28,2,
1,64,7,0,,
2,64,0x7f0000000008,1,0,
0,5,main,5:1,1,27,3,
1,64,0x7f0000000000,1,a,
r,64,0,1,1,
0,5,main,5:1,1,2,4,
1,1,1,1,9,
0,6,main,6:1,2,29,5,
1,64,0x7f0000000000,1,a,
2,64,0,0,,
r,64,0x7f0000000000,1,2,
0,6,main,6:1,2,28,6,
1,64,9,0,,
2,64,0x7f0000000000,1,2,
0,5,main,5:1,1,27,7,
1,64,0x7f0000000000,1,a,
r,64,0,1,3,
0,5,main,5:1,1,2,8,
1,1,0,1,9,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::AnyAccess);
        assert_eq!(mli.len(), 1);
        assert_eq!(&*mli[0].name, "a");
        assert_eq!(mli[0].size, 16, "alloca size wins over extent");
    }

    #[test]
    fn same_name_different_address_does_not_match() {
        // `v` before the loop at one address, `v` inside at another (the
        // Challenge-2 deceiver): no match.
        let text = "\
0,2,main,2:1,0,28,0,
1,64,1,0,,
2,64,0x7f0000000000,1,v,
0,5,main,5:1,1,27,1,
1,64,0x7f0000000100,1,v,
r,64,0,1,0,
0,5,main,5:1,1,2,2,
1,1,0,1,9,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::AnyAccess);
        assert!(mli.is_empty());
    }
}
