//! Data-dependency analysis: the batch adapter over the shared streaming
//! [`DdgBuilder`].
//!
//! The analysis *selectively iterates* the trace (paper §IV-B / Table I):
//! only `Load`/`Store`/`GetElementPtr`/`BitCast` (reg-var map), the
//! arithmetic family plus compares/casts (reg-reg map), `Alloca` (local
//! discrimination), and `Call`/`Ret` (cross-function bridging) are
//! examined; everything else is skipped. All of that logic lives in
//! **one place** — `autocheck_stream::ddg::DdgBuilder` — and this module
//! folds the materialized record slice through it, the same way
//! `classify`/`find_mli_vars`/`Phases::compute` fold through their shared
//! stream stages.
//!
//! Two artifacts come out:
//!
//! * the **complete DDG** (a frozen [`CsrGraph`]) over variables *and*
//!   temporary registers — Fig. 5(c) of the paper — which
//!   [`crate::contract`] then reduces to MLI variables only (Fig. 5(d));
//! * the **R/W event sequence** ([`RwEvent`]) — Fig. 5(e) — each event
//!   carrying the element address and the loop iteration it occurred in,
//!   which is what the classification heuristics consume. Retention is
//!   opt-out ([`DdgOptions::retain_events`]): the pipeline folds events
//!   into per-variable statistics on the fly instead of holding the
//!   O(trace) vector.
//!
//! Cross-function dependencies follow the paper's two call forms: lone
//! `Call` records (builtins) are treated as arithmetic (inputs → result in
//! the reg-reg map); `Call` records followed by the callee body contribute
//! *argument/parameter triplets* to the reg-var map, so accesses through a
//! parameter resolve to the caller's variable. Return values are linked
//! through the callee's `Ret` record.

use crate::preprocess::MliVar;
use crate::region::{Phase, Phases};
use autocheck_stream::{AccessEvent, CsrGraph, DdgBuilder};
use autocheck_trace::{AnalysisCtx, Record};

pub use autocheck_stream::NodeKind;

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RwKind {
    /// The variable's value was consumed.
    Read,
    /// The variable was overwritten.
    Write,
}

/// One entry of the extracted R/W dependency sequence (paper Fig. 5(e)),
/// enriched with the element address and iteration number the heuristics
/// need.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RwEvent {
    /// Base address of the variable (joins with [`MliVar::base_addr`]).
    pub base: u64,
    /// Address of the accessed element (== `base` for scalars).
    pub elem: u64,
    /// Read or write.
    pub kind: RwKind,
    /// Dynamic instruction id (time order).
    pub dyn_id: u64,
    /// Loop iteration (0-based) for in-loop events.
    pub iter: u32,
    /// Phase the event occurred in.
    pub phase: Phase,
    /// Source line of the access.
    pub line: u32,
}

impl RwEvent {
    fn from_access(e: &AccessEvent) -> RwEvent {
        RwEvent {
            base: e.base,
            elem: e.elem,
            kind: if e.is_write {
                RwKind::Write
            } else {
                RwKind::Read
            },
            dyn_id: e.dyn_id,
            iter: e.iter,
            phase: e.phase,
            line: e.line,
        }
    }
}

/// Output of the dependency-analysis stage.
#[derive(Clone, Debug, Default)]
pub struct DdgAnalysis {
    /// The complete DDG (variables + registers), frozen into CSR form.
    pub graph: CsrGraph,
    /// Time-ordered R/W events on MLI variables. Empty when
    /// [`DdgOptions::retain_events`] is off.
    pub events: Vec<RwEvent>,
}

/// Dependency-analysis options; the defaults are the paper's design.
#[derive(Clone, Copy, Debug)]
pub struct DdgOptions {
    /// Selective iteration (paper §IV-B / Table I): skip irrelevant
    /// opcodes. Disabling is the ablation — identical results, slower.
    pub selective: bool,
    /// Update the reg-var map *on the fly* at every `Load` (the paper's
    /// resolution of the "Mutable-register" challenge: SSA reloads rebind a
    /// shared temporary to the right variable at each use). Disabling
    /// freezes the first binding of each register — demonstrably wrong on
    /// traces where a register is reused for different variables.
    pub on_the_fly_reg_var: bool,
    /// Keep the O(trace) [`RwEvent`] vector on [`DdgAnalysis`]. Defaults
    /// on for API continuity (tests and examples inspect events); the
    /// pipeline, `autocheck`, and `MultiAnalyzer` run with it **off** and
    /// fold events into per-variable statistics as they are emitted.
    pub retain_events: bool,
}

impl Default for DdgOptions {
    fn default() -> Self {
        DdgOptions {
            selective: true,
            on_the_fly_reg_var: true,
            retain_events: true,
        }
    }
}

impl DdgAnalysis {
    /// Run dependency analysis with the paper's configuration plus the
    /// `selective` toggle (see [`DdgOptions`]).
    pub fn run(
        records: &[Record],
        phases: &Phases,
        mli: &[MliVar],
        selective: bool,
    ) -> DdgAnalysis {
        Self::run_with(
            records,
            phases,
            mli,
            DdgOptions {
                selective,
                ..DdgOptions::default()
            },
        )
    }

    /// Run dependency analysis with explicit options.
    pub fn run_with(
        records: &[Record],
        phases: &Phases,
        mli: &[MliVar],
        opts: DdgOptions,
    ) -> DdgAnalysis {
        Self::run_in(records, phases, mli, opts, &AnalysisCtx::current())
    }

    /// [`DdgAnalysis::run_with`] scoped to `ctx`'s session (the MLI
    /// base-address index hashes with the session's seed).
    pub fn run_in(
        records: &[Record],
        phases: &Phases,
        mli: &[MliVar],
        opts: DdgOptions,
        ctx: &AnalysisCtx,
    ) -> DdgAnalysis {
        let mut events = Vec::new();
        let graph = Self::fold_in(records, phases, mli, opts, ctx, |e| {
            if opts.retain_events {
                events.push(*e);
            }
        });
        DdgAnalysis { graph, events }
    }

    /// The batch dependency fold: drive the shared streaming
    /// [`DdgBuilder`] over the record slice, invoking `on_event` for every
    /// MLI-variable access event in time order, and return the frozen
    /// graph. This is the only record walk the batch pipeline has — the
    /// same per-record transition the online engine runs.
    pub fn fold_in(
        records: &[Record],
        phases: &Phases,
        mli: &[MliVar],
        opts: DdgOptions,
        ctx: &AnalysisCtx,
        mut on_event: impl FnMut(&RwEvent),
    ) -> CsrGraph {
        assert_eq!(
            records.len(),
            phases.annots.len(),
            "records and annotations must be parallel"
        );
        let mut mli_bases = ctx.addr_map::<u64, ()>();
        mli_bases.extend(mli.iter().map(|m| (m.base_addr, ())));

        let mut builder =
            DdgBuilder::new(opts.selective).with_reg_var_on_the_fly(opts.on_the_fly_reg_var);
        // Pre-intern MLI variable nodes so the graph always shows them
        // (and numbers them first — stable DOT output).
        for m in mli {
            builder.preload_var(m.name, m.base_addr);
        }
        for (r, &a) in records.iter().zip(&phases.annots) {
            if let Some(e) = builder.observe(r, a) {
                // The batch event sequence is filtered to MLI bases; the
                // streaming engine instead keeps per-base state for every
                // variable and filters at finish.
                if mli_bases.contains_key(&e.base) {
                    on_event(&RwEvent::from_access(&e));
                }
            }
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{find_mli_vars, CollectMode};
    use crate::region::Region;
    use autocheck_trace::SymId;

    fn parse_str(
        text: &str,
    ) -> Result<Vec<autocheck_trace::Record>, autocheck_trace::reader::TraceReadError> {
        autocheck_trace::TraceSource::from_str(text).records()
    }

    /// sum += a[i] inside the loop; sum and a are MLI (stored before loop).
    fn trace_with_array() -> (Vec<Record>, Phases, Region, Vec<MliVar>) {
        let text = "\
0,2,main,2:1,0,28,0,
1,64,0,0,,
2,64,0x7f0000000000,1,sum,
0,2,main,2:1,0,29,1,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,2,main,2:1,0,28,2,
1,64,5,0,,
2,64,0x7f0000000100,1,0,
0,5,main,5:1,1,27,3,
1,64,0x7f0000000000,1,sum,
r,64,0,1,1,
0,5,main,5:1,1,2,4,
1,1,1,1,9,
0,6,main,6:1,2,29,5,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,2,
0,6,main,6:1,2,27,6,
1,64,0x7f0000000100,1,2,
r,64,5,1,3,
0,6,main,6:1,2,27,7,
1,64,0x7f0000000000,1,sum,
r,64,0,1,4,
0,6,main,6:1,2,8,8,
1,64,0,1,4,
2,64,5,1,3,
r,64,5,1,5,
0,6,main,6:1,2,28,9,
1,64,5,1,5,
2,64,0x7f0000000000,1,sum,
0,5,main,5:1,1,27,10,
1,64,0x7f0000000000,1,sum,
r,64,5,1,6,
0,5,main,5:1,1,2,11,
1,1,0,1,9,
0,9,main,9:1,3,27,12,
1,64,0x7f0000000000,1,sum,
r,64,5,1,7,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::AnyAccess);
        (recs, phases, region, mli)
    }

    #[test]
    fn events_capture_reads_and_writes_in_time_order() {
        let (recs, phases, _region, mli) = trace_with_array();
        assert_eq!(mli.len(), 2, "sum and a");
        let ana = DdgAnalysis::run(&recs, &phases, &mli, true);
        let sum_base = 0x7f00_0000_0000u64;
        let sum_events: Vec<_> = ana.events.iter().filter(|e| e.base == sum_base).collect();
        assert!(sum_events.iter().any(|e| e.kind == RwKind::Write));
        assert!(
            sum_events.windows(2).all(|w| w[0].dyn_id <= w[1].dyn_id),
            "time ordered"
        );
        let after: Vec<_> = sum_events
            .iter()
            .filter(|e| e.phase == Phase::After)
            .collect();
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].kind, RwKind::Read);
    }

    #[test]
    fn graph_links_variable_through_registers_to_store() {
        let (recs, phases, _region, mli) = trace_with_array();
        let ana = DdgAnalysis::run(&recs, &phases, &mli, true);
        let g = &ana.graph;
        // a → (gep temp 2) → (load temp 3) → (add temp 5) → sum
        let a = g
            .find(&NodeKind::Var {
                name: SymId::intern("a"),
                base: 0x7f00_0000_0100,
            })
            .expect("node a");
        let sum = g
            .find(&NodeKind::Var {
                name: SymId::intern("sum"),
                base: 0x7f00_0000_0000,
            })
            .expect("node sum");
        // Reachability a ⇒ sum, over the frozen CSR child slices.
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![a];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for c in g.children_of(n) {
                stack.push(c);
            }
        }
        assert!(seen.contains(&sum), "a flows into sum through temps");
    }

    /// The paper's "Mutable-register" challenge (§IV-B): a temporary
    /// register reused as a *pointer* for different arrays must be re-bound
    /// on the fly; a frozen first-binding map attributes the second store
    /// to the wrong variable.
    #[test]
    fn mutable_register_challenge() {
        // In the loop body: gep x -> temp 8, store through 8 (writes x);
        // then gep z -> temp 8 (register reuse!), store through 8 (writes
        // z). Under a frozen map the second store stays attributed to x.
        let text = "\
0,2,main,2:1,0,28,0,
1,64,1,0,,
2,64,0x7f0000000000,1,x,
0,2,main,2:1,0,28,1,
1,64,2,0,,
2,64,0x7f0000000100,1,z,
0,5,main,5:1,1,27,2,
1,64,0x7f0000000000,1,x,
r,64,1,1,9,
0,5,main,5:1,1,2,3,
1,1,1,1,9,
0,6,main,6:1,2,29,4,
1,64,0x7f0000000000,1,x,
2,64,0,0,,
r,64,0x7f0000000000,1,8,
0,6,main,6:1,2,28,5,
1,64,7,0,,
2,64,0x7f0000000000,1,8,
0,7,main,7:1,2,29,6,
1,64,0x7f0000000100,1,z,
2,64,0,0,,
r,64,0x7f0000000100,1,8,
0,7,main,7:1,2,28,7,
1,64,9,0,,
2,64,0x7f0000000100,1,8,
0,5,main,5:1,1,27,8,
1,64,0x7f0000000000,1,x,
r,64,1,1,9,
0,5,main,5:1,1,2,9,
1,1,0,1,9,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        let mli: Vec<MliVar> = [("x", 0x7f0000000000u64), ("z", 0x7f0000000100)]
            .iter()
            .map(|(n, b)| MliVar {
                name: SymId::intern(n),
                base_addr: *b,
                size: 8,
                first_line: 2,
            })
            .collect();

        let fly = DdgAnalysis::run_with(&recs, &phases, &mli, DdgOptions::default());
        let writes = |a: &DdgAnalysis, base: u64| {
            a.events
                .iter()
                .filter(|e| e.base == base && e.kind == RwKind::Write)
                .count()
        };
        assert_eq!(writes(&fly, 0x7f00_0000_0000), 1, "one write on x");
        assert_eq!(writes(&fly, 0x7f00_0000_0100), 1, "one write on z");

        let frozen = DdgAnalysis::run_with(
            &recs,
            &phases,
            &mli,
            DdgOptions {
                on_the_fly_reg_var: false,
                ..DdgOptions::default()
            },
        );
        // The frozen map leaves temp 8 bound to x: the second store is
        // misattributed — x gets two writes, z gets none.
        assert_eq!(writes(&frozen, 0x7f00_0000_0000), 2, "x stole z's write");
        assert_eq!(writes(&frozen, 0x7f00_0000_0100), 0, "z's write was lost");
    }

    #[test]
    fn selective_and_exhaustive_agree() {
        let (recs, phases, _region, mli) = trace_with_array();
        let sel = DdgAnalysis::run(&recs, &phases, &mli, true);
        let all = DdgAnalysis::run(&recs, &phases, &mli, false);
        assert_eq!(sel.events, all.events);
        assert_eq!(sel.graph.len(), all.graph.len());
        assert_eq!(sel.graph.edge_count(), all.graph.edge_count());
    }

    #[test]
    fn element_addresses_are_preserved() {
        let (recs, phases, _region, mli) = trace_with_array();
        let ana = DdgAnalysis::run(&recs, &phases, &mli, true);
        let a_events: Vec<_> = ana
            .events
            .iter()
            .filter(|e| e.base == 0x7f00_0000_0100)
            .collect();
        assert!(!a_events.is_empty());
        assert!(a_events.iter().all(|e| e.elem >= e.base));
    }

    #[test]
    fn dot_output_renders() {
        let (recs, phases, _region, mli) = trace_with_array();
        let ana = DdgAnalysis::run(&recs, &phases, &mli, true);
        let dot = ana
            .graph
            .to_dot(|n| matches!(n, NodeKind::Var { name, .. } if *name == "sum"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn event_retention_is_opt_out_with_identical_graphs() {
        let (recs, phases, _region, mli) = trace_with_array();
        let kept = DdgAnalysis::run_with(&recs, &phases, &mli, DdgOptions::default());
        let dropped = DdgAnalysis::run_with(
            &recs,
            &phases,
            &mli,
            DdgOptions {
                retain_events: false,
                ..DdgOptions::default()
            },
        );
        assert!(!kept.events.is_empty());
        assert!(dropped.events.is_empty(), "no O(trace) event vector");
        // The graph — and the DOT bytes — do not depend on retention.
        assert_eq!(
            kept.graph.to_dot(|_| false),
            dropped.graph.to_dot(|_| false)
        );
        // The fold still delivers every event to the callback.
        let mut streamed = Vec::new();
        let ctx = AnalysisCtx::current();
        DdgAnalysis::fold_in(&recs, &phases, &mli, DdgOptions::default(), &ctx, |e| {
            streamed.push(*e)
        });
        assert_eq!(streamed, kept.events);
    }

    /// Fig. 6(b)-style triplet: foo(p) writes through p which aliases a.
    #[test]
    fn call_triplets_attribute_callee_stores_to_caller_vars() {
        let text = "\
0,2,main,2:1,0,29,0,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,2,main,2:1,0,28,1,
1,64,1,0,,
2,64,0x7f0000000100,1,0,
0,5,main,5:1,1,27,2,
1,64,0x7f0000000100,1,a,
r,64,1,1,1,
0,5,main,5:1,1,2,3,
1,1,1,1,9,
0,6,main,6:1,2,29,4,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,2,
0,6,main,6:1,2,49,5,
1,64,0x400000,1,foo,
2,64,0x7f0000000100,1,2,
f,64,0x7f0000000100,1,p,
0,1,foo,1:1,0,29,6,
1,64,0x7f0000000100,1,p,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,1,foo,1:1,0,28,7,
1,64,9,0,,
2,64,0x7f0000000100,1,0,
0,1,foo,1:1,0,1,8,
0,5,main,5:1,1,27,9,
1,64,0x7f0000000100,1,a,
r,64,9,1,3,
0,5,main,5:1,1,2,10,
1,1,0,1,9,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        let mli = vec![MliVar {
            name: SymId::intern("a"),
            base_addr: 0x7f00_0000_0100,
            size: 8,
            first_line: 2,
        }];
        let ana = DdgAnalysis::run(&recs, &phases, &mli, true);
        // The callee's store through `p` must surface as a Write event on
        // `a` (iteration 0, Inside).
        let writes: Vec<_> = ana
            .events
            .iter()
            .filter(|e| e.base == 0x7f00_0000_0100 && e.kind == RwKind::Write)
            .collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].phase, Phase::Inside);
    }
}
