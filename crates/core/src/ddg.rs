//! Data-dependency analysis: reg-var map, reg-reg map, the complete DDG,
//! and the time-ordered read/write event sequence.
//!
//! The analysis *selectively iterates* the trace (paper §IV-B / Table I):
//! only `Load`/`Store`/`GetElementPtr`/`BitCast` (reg-var map), the
//! arithmetic family plus compares/casts (reg-reg map), `Alloca` (local
//! discrimination), and `Call`/`Ret` (cross-function bridging) are
//! examined; everything else is skipped.
//!
//! Two artifacts come out:
//!
//! * the **complete DDG** ([`DepGraph`]) over variables *and* temporary
//!   registers — Fig. 5(c) of the paper — which [`crate::contract`] then
//!   reduces to MLI variables only (Fig. 5(d));
//! * the **R/W event sequence** ([`RwEvent`]) — Fig. 5(e) — each event
//!   carrying the element address and the loop iteration it occurred in,
//!   which is what the classification heuristics consume.
//!
//! Cross-function dependencies follow the paper's two call forms: lone
//! `Call` records (builtins) are treated as arithmetic (inputs → result in
//! the reg-reg map); `Call` records followed by the callee body contribute
//! *argument/parameter triplets* to the reg-var map, so accesses through a
//! parameter resolve to the caller's variable. Return values are linked
//! through the callee's `Ret` record.

use crate::preprocess::MliVar;
use crate::region::{Phase, Phases};
use autocheck_stream::{relevant_opcode, resolve_alias as resolve, NodeIndex};
use autocheck_trace::{record::opcodes, AnalysisCtx, Name, NameMap, Record, SymId};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A node of the complete DDG. `Copy` — both kinds are interned integers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A named memory location (identified by base address).
    Var {
        /// Display name (interned).
        name: SymId,
        /// Base address (identity).
        base: u64,
    },
    /// A register (temporary or callee parameter alias).
    Reg {
        /// Register name.
        name: Name,
    },
}

impl NodeKind {
    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            NodeKind::Var { name, .. } => name.to_string(),
            NodeKind::Reg { name } => name.to_string(),
        }
    }

    /// True for variable nodes.
    pub fn is_var(&self) -> bool {
        matches!(self, NodeKind::Var { .. })
    }
}

/// Dependency graph; edges run from *source* (parent) to *dependent*
/// (child), matching the paper's parent terminology in Algorithm 1.
///
/// Node lookup goes through the dense per-kind [`NodeIndex`] (vectors
/// indexed by interned ids) instead of a `HashMap<NodeKind, usize>`; node
/// ids are still assigned in first-intern order, so DOT output and node
/// numbering are unchanged.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// Node payloads.
    pub nodes: Vec<NodeKind>,
    index: NodeIndex,
    parents: Vec<BTreeSet<usize>>,
    children: Vec<BTreeSet<usize>>,
}

impl DepGraph {
    /// Intern a node.
    pub fn node(&mut self, kind: NodeKind) -> usize {
        let (id, fresh) = match kind {
            NodeKind::Var { name, base } => self.index.var_node(name, base),
            NodeKind::Reg { name } => self.index.reg_node(name),
        };
        if fresh {
            self.nodes.push(kind);
            self.parents.push(BTreeSet::new());
            self.children.push(BTreeSet::new());
        }
        id as usize
    }

    /// Intern a variable node.
    pub fn var_node(&mut self, name: SymId, base: u64) -> usize {
        self.node(NodeKind::Var { name, base })
    }

    /// Intern a register node.
    pub fn reg_node(&mut self, name: Name) -> usize {
        self.node(NodeKind::Reg { name })
    }

    /// Add a dependency edge `parent → child`.
    pub fn add_edge(&mut self, parent: usize, child: usize) {
        if parent == child {
            return;
        }
        self.parents[child].insert(parent);
        self.children[parent].insert(child);
    }

    /// Parents (sources) of `n`.
    pub fn parents_of(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.parents[n].iter().copied()
    }

    /// Children (dependents) of `n`.
    pub fn children_of(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.children[n].iter().copied()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.children.iter().map(|c| c.len()).sum()
    }

    /// Look a node up without interning.
    pub fn find(&self, kind: &NodeKind) -> Option<usize> {
        match *kind {
            NodeKind::Var { name, base } => self.index.find_var(name, base),
            NodeKind::Reg { name } => self.index.find_reg(name),
        }
        .map(|i| i as usize)
    }

    /// Render as Graphviz DOT; `is_mli` marks MLI variable nodes.
    pub fn to_dot(&self, is_mli: impl Fn(&NodeKind) -> bool) -> String {
        let mut s = String::from("digraph ddg {\n  rankdir=TB;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = if n.is_var() {
                if is_mli(n) {
                    "doublecircle"
                } else {
                    "ellipse"
                }
            } else {
                "box"
            };
            let _ = writeln!(s, "  n{i} [label=\"{}\", shape={shape}];", n.label());
        }
        for (p, kids) in self.children.iter().enumerate() {
            for k in kids {
                let _ = writeln!(s, "  n{p} -> n{k};");
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RwKind {
    /// The variable's value was consumed.
    Read,
    /// The variable was overwritten.
    Write,
}

/// One entry of the extracted R/W dependency sequence (paper Fig. 5(e)),
/// enriched with the element address and iteration number the heuristics
/// need.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RwEvent {
    /// Base address of the variable (joins with [`MliVar::base_addr`]).
    pub base: u64,
    /// Address of the accessed element (== `base` for scalars).
    pub elem: u64,
    /// Read or write.
    pub kind: RwKind,
    /// Dynamic instruction id (time order).
    pub dyn_id: u64,
    /// Loop iteration (0-based) for in-loop events.
    pub iter: u32,
    /// Phase the event occurred in.
    pub phase: Phase,
    /// Source line of the access.
    pub line: u32,
}

/// Output of the dependency-analysis stage.
#[derive(Clone, Debug, Default)]
pub struct DdgAnalysis {
    /// The complete DDG (variables + registers).
    pub graph: DepGraph,
    /// Time-ordered R/W events on MLI variables.
    pub events: Vec<RwEvent>,
}

/// Dependency-analysis options; the defaults are the paper's design.
#[derive(Clone, Copy, Debug)]
pub struct DdgOptions {
    /// Selective iteration (paper §IV-B / Table I): skip irrelevant
    /// opcodes. Disabling is the ablation — identical results, slower.
    pub selective: bool,
    /// Update the reg-var map *on the fly* at every `Load` (the paper's
    /// resolution of the "Mutable-register" challenge: SSA reloads rebind a
    /// shared temporary to the right variable at each use). Disabling
    /// freezes the first binding of each register — demonstrably wrong on
    /// traces where a register is reused for different variables.
    pub on_the_fly_reg_var: bool,
}

impl Default for DdgOptions {
    fn default() -> Self {
        DdgOptions {
            selective: true,
            on_the_fly_reg_var: true,
        }
    }
}

impl DdgAnalysis {
    /// Run dependency analysis with the paper's configuration plus the
    /// `selective` toggle (see [`DdgOptions`]).
    pub fn run(
        records: &[Record],
        phases: &Phases,
        mli: &[MliVar],
        selective: bool,
    ) -> DdgAnalysis {
        Self::run_with(
            records,
            phases,
            mli,
            DdgOptions {
                selective,
                ..DdgOptions::default()
            },
        )
    }

    /// Run dependency analysis with explicit options.
    pub fn run_with(
        records: &[Record],
        phases: &Phases,
        mli: &[MliVar],
        opts: DdgOptions,
    ) -> DdgAnalysis {
        Self::run_in(records, phases, mli, opts, &AnalysisCtx::current())
    }

    /// [`DdgAnalysis::run_with`] scoped to `ctx`'s session (the MLI
    /// base-address index hashes with the session's seed).
    pub fn run_in(
        records: &[Record],
        phases: &Phases,
        mli: &[MliVar],
        opts: DdgOptions,
        ctx: &AnalysisCtx,
    ) -> DdgAnalysis {
        let mut mli_bases = ctx.addr_map::<u64, &MliVar>();
        mli_bases.extend(mli.iter().map(|m| (m.base_addr, m)));
        let mut graph = DepGraph::default();
        let mut events = Vec::new();

        // reg-var map: register name → (variable display name, base addr).
        // Dense, integer-keyed: the per-record updates of §IV-B are vector
        // indexing, not string hashing.
        let mut reg_var: NameMap<(SymId, u64)> = NameMap::new();
        // reg-reg map: register name → input register/var node ids.
        // (Realized directly as graph edges; kept implicit.)
        // Call stack for form-2 calls: pending result register of each call.
        let mut call_stack: Vec<Option<Name>> = Vec::new();

        // Pre-intern MLI variable nodes so the graph always shows them.
        for m in mli {
            graph.var_node(m.name, m.base_addr);
        }

        for (i, r) in records.iter().enumerate() {
            let a = phases.annots[i];
            if opts.selective && !relevant_opcode(r.opcode) {
                continue;
            }
            match r.opcode {
                opcodes::LOAD => {
                    let (Some(ptr), Some(res)) = (r.op1(), &r.result) else {
                        continue;
                    };
                    let Some((name, base)) = resolve(&reg_var, ptr.name, ptr.value.as_ptr()) else {
                        continue;
                    };
                    // reg-var map update (SSA reload keeps this fresh — the
                    // paper's "Mutable-register" resolution). The frozen
                    // variant keeps the first binding, misattributing later
                    // uses of a reused register.
                    if opts.on_the_fly_reg_var {
                        reg_var.insert(res.name, (name, base));
                    } else {
                        reg_var.insert_if_absent(res.name, (name, base));
                    }
                    let vn = graph.var_node(name, base);
                    let rn = graph.reg_node(res.name);
                    graph.add_edge(vn, rn);
                    if mli_bases.contains_key(&base) {
                        record_event(&mut events, r, a, base, ptr.value.as_ptr(), RwKind::Read);
                    }
                }
                opcodes::STORE => {
                    let (Some(val), Some(ptr)) = (r.op1(), r.op2()) else {
                        continue;
                    };
                    let Some((name, base)) = resolve(&reg_var, ptr.name, ptr.value.as_ptr()) else {
                        continue;
                    };
                    let dst = graph.var_node(name, base);
                    if val.is_reg && val.name != Name::None {
                        let src = graph.reg_node(val.name);
                        graph.add_edge(src, dst);
                    }
                    if mli_bases.contains_key(&base) {
                        record_event(&mut events, r, a, base, ptr.value.as_ptr(), RwKind::Write);
                    }
                }
                opcodes::GETELEMENTPTR | opcodes::BITCAST => {
                    let (Some(basep), Some(res)) = (r.op1(), &r.result) else {
                        continue;
                    };
                    if let Some((name, base)) = resolve(&reg_var, basep.name, basep.value.as_ptr())
                    {
                        if opts.on_the_fly_reg_var {
                            reg_var.insert(res.name, (name, base));
                        } else {
                            reg_var.insert_if_absent(res.name, (name, base));
                        }
                        let vn = graph.var_node(name, base);
                        let rn = graph.reg_node(res.name);
                        graph.add_edge(vn, rn);
                    }
                }
                opcodes::ALLOCA => {
                    // Locals are identified by their Alloca (paper
                    // Challenge 2); registering the variable name at its
                    // fresh address keeps the reg-var resolution exact when
                    // names collide across frames.
                    if let Some(res) = &r.result {
                        if let (Name::Sym(s), Some(addr)) = (res.name, res.value.as_ptr()) {
                            reg_var.insert(res.name, (s, addr));
                        }
                    }
                }
                op if (8..=25).contains(&op)
                    || op == opcodes::ICMP
                    || op == opcodes::FCMP
                    || op == opcodes::ZEXT
                    || op == opcodes::SITOFP
                    || op == opcodes::FPTOSI =>
                {
                    // reg-reg map: link inputs to the result.
                    let Some(res) = &r.result else { continue };
                    let rn = graph.reg_node(res.name);
                    for operand in r.positional() {
                        if operand.is_reg && operand.name != Name::None {
                            let on = graph.reg_node(operand.name);
                            graph.add_edge(on, rn);
                        }
                    }
                }
                opcodes::CALL => {
                    let params: Vec<_> = r.params().collect();
                    if params.is_empty() {
                        // Form 1 (builtin): treat as arithmetic.
                        if let Some(res) = &r.result {
                            let rn = graph.reg_node(res.name);
                            for operand in r.positional().skip(1) {
                                if operand.is_reg && operand.name != Name::None {
                                    let on = graph.reg_node(operand.name);
                                    graph.add_edge(on, rn);
                                }
                            }
                        }
                    } else {
                        // Form 2: argument/parameter triplets. Positional
                        // operand 1 is the callee; arguments follow, pairing
                        // with the `f` lines in order.
                        for (arg, param) in r.positional().skip(1).zip(params.iter()) {
                            // The triplet: param name → whatever the
                            // argument register resolves to.
                            if let Some((name, base)) =
                                resolve(&reg_var, arg.name, arg.value.as_ptr())
                            {
                                reg_var.insert(param.name, (name, base));
                                let vn = graph.var_node(name, base);
                                let pn = graph.reg_node(param.name);
                                graph.add_edge(vn, pn);
                            } else if arg.is_reg && arg.name != Name::None {
                                // Scalar argument from a register: alias the
                                // parameter to the same register chain.
                                let an = graph.reg_node(arg.name);
                                let pn = graph.reg_node(param.name);
                                graph.add_edge(an, pn);
                                // Parameter reads resolve through reg-var if
                                // the argument did.
                            }
                        }
                        call_stack.push(r.result.as_ref().map(|res| res.name));
                    }
                }
                opcodes::RET => {
                    if let Some(pending) = call_stack.pop().flatten() {
                        if let Some(op) = r.op1() {
                            if op.is_reg && op.name != Name::None {
                                let from = graph.reg_node(op.name);
                                let to = graph.reg_node(pending);
                                graph.add_edge(from, to);
                                // Value flow: the caller's result register
                                // now carries whatever the returned register
                                // resolved to.
                                if let Some(&v) = reg_var.get(op.name) {
                                    reg_var.insert(pending, v);
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        DdgAnalysis { graph, events }
    }
}

fn record_event(
    events: &mut Vec<RwEvent>,
    r: &Record,
    a: crate::region::Annot,
    base: u64,
    elem: Option<u64>,
    kind: RwKind,
) {
    // Only loop-phase events and after-loop reads matter to the heuristics.
    match (a.phase, kind) {
        (Phase::Inside, _) | (Phase::After, RwKind::Read) => {}
        _ => return,
    }
    events.push(RwEvent {
        base,
        elem: elem.unwrap_or(base),
        kind,
        dyn_id: r.dyn_id,
        iter: a.iter,
        phase: a.phase,
        line: if r.src_line > 0 { r.src_line as u32 } else { 0 },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{find_mli_vars, CollectMode};
    use crate::region::Region;
    use autocheck_trace::parse_str;

    /// sum += a[i] inside the loop; sum and a are MLI (stored before loop).
    fn trace_with_array() -> (Vec<Record>, Phases, Region, Vec<MliVar>) {
        let text = "\
0,2,main,2:1,0,28,0,
1,64,0,0,,
2,64,0x7f0000000000,1,sum,
0,2,main,2:1,0,29,1,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,2,main,2:1,0,28,2,
1,64,5,0,,
2,64,0x7f0000000100,1,0,
0,5,main,5:1,1,27,3,
1,64,0x7f0000000000,1,sum,
r,64,0,1,1,
0,5,main,5:1,1,2,4,
1,1,1,1,9,
0,6,main,6:1,2,29,5,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,2,
0,6,main,6:1,2,27,6,
1,64,0x7f0000000100,1,2,
r,64,5,1,3,
0,6,main,6:1,2,27,7,
1,64,0x7f0000000000,1,sum,
r,64,0,1,4,
0,6,main,6:1,2,8,8,
1,64,0,1,4,
2,64,5,1,3,
r,64,5,1,5,
0,6,main,6:1,2,28,9,
1,64,5,1,5,
2,64,0x7f0000000000,1,sum,
0,5,main,5:1,1,27,10,
1,64,0x7f0000000000,1,sum,
r,64,5,1,6,
0,5,main,5:1,1,2,11,
1,1,0,1,9,
0,9,main,9:1,3,27,12,
1,64,0x7f0000000000,1,sum,
r,64,5,1,7,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        let mli = find_mli_vars(&recs, &phases, &region, CollectMode::AnyAccess);
        (recs, phases, region, mli)
    }

    #[test]
    fn events_capture_reads_and_writes_in_time_order() {
        let (recs, phases, _region, mli) = trace_with_array();
        assert_eq!(mli.len(), 2, "sum and a");
        let ana = DdgAnalysis::run(&recs, &phases, &mli, true);
        let sum_base = 0x7f00_0000_0000u64;
        let sum_events: Vec<_> = ana.events.iter().filter(|e| e.base == sum_base).collect();
        // Loop phase: header read (dyn 3) happens at line 5 — wait, that is
        // the condition load of `sum`? No: dyn 3 loads sum at line 5 (our
        // synthetic condition uses sum). Then read at dyn 7, write at dyn 9,
        // read at dyn 10 (header), and the after-loop read at dyn 12.
        assert!(sum_events.iter().any(|e| e.kind == RwKind::Write));
        assert!(
            sum_events.windows(2).all(|w| w[0].dyn_id <= w[1].dyn_id),
            "time ordered"
        );
        let after: Vec<_> = sum_events
            .iter()
            .filter(|e| e.phase == Phase::After)
            .collect();
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].kind, RwKind::Read);
    }

    #[test]
    fn graph_links_variable_through_registers_to_store() {
        let (recs, phases, _region, mli) = trace_with_array();
        let ana = DdgAnalysis::run(&recs, &phases, &mli, true);
        let g = &ana.graph;
        // a → (gep temp 2) → (load temp 3) → (add temp 5) → sum
        let a = g
            .find(&NodeKind::Var {
                name: SymId::intern("a"),
                base: 0x7f00_0000_0100,
            })
            .expect("node a");
        let sum = g
            .find(&NodeKind::Var {
                name: SymId::intern("sum"),
                base: 0x7f00_0000_0000,
            })
            .expect("node sum");
        // Reachability a ⇒ sum.
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![a];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for c in g.children_of(n) {
                stack.push(c);
            }
        }
        assert!(seen.contains(&sum), "a flows into sum through temps");
    }

    /// The paper's "Mutable-register" challenge (§IV-B): a temporary
    /// register reused as a *pointer* for different arrays must be re-bound
    /// on the fly; a frozen first-binding map attributes the second store
    /// to the wrong variable.
    #[test]
    fn mutable_register_challenge() {
        // In the loop body: gep x -> temp 8, store through 8 (writes x);
        // then gep z -> temp 8 (register reuse!), store through 8 (writes
        // z). Under a frozen map the second store stays attributed to x.
        let text = "\
0,2,main,2:1,0,28,0,
1,64,1,0,,
2,64,0x7f0000000000,1,x,
0,2,main,2:1,0,28,1,
1,64,2,0,,
2,64,0x7f0000000100,1,z,
0,5,main,5:1,1,27,2,
1,64,0x7f0000000000,1,x,
r,64,1,1,9,
0,5,main,5:1,1,2,3,
1,1,1,1,9,
0,6,main,6:1,2,29,4,
1,64,0x7f0000000000,1,x,
2,64,0,0,,
r,64,0x7f0000000000,1,8,
0,6,main,6:1,2,28,5,
1,64,7,0,,
2,64,0x7f0000000000,1,8,
0,7,main,7:1,2,29,6,
1,64,0x7f0000000100,1,z,
2,64,0,0,,
r,64,0x7f0000000100,1,8,
0,7,main,7:1,2,28,7,
1,64,9,0,,
2,64,0x7f0000000100,1,8,
0,5,main,5:1,1,27,8,
1,64,0x7f0000000000,1,x,
r,64,1,1,9,
0,5,main,5:1,1,2,9,
1,1,0,1,9,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        let mli: Vec<MliVar> = [("x", 0x7f0000000000u64), ("z", 0x7f0000000100)]
            .iter()
            .map(|(n, b)| MliVar {
                name: SymId::intern(n),
                base_addr: *b,
                size: 8,
                first_line: 2,
            })
            .collect();

        let fly = DdgAnalysis::run_with(&recs, &phases, &mli, DdgOptions::default());
        let writes = |a: &DdgAnalysis, base: u64| {
            a.events
                .iter()
                .filter(|e| e.base == base && e.kind == RwKind::Write)
                .count()
        };
        assert_eq!(writes(&fly, 0x7f00_0000_0000), 1, "one write on x");
        assert_eq!(writes(&fly, 0x7f00_0000_0100), 1, "one write on z");

        let frozen = DdgAnalysis::run_with(
            &recs,
            &phases,
            &mli,
            DdgOptions {
                on_the_fly_reg_var: false,
                ..DdgOptions::default()
            },
        );
        // The frozen map leaves temp 8 bound to x: the second store is
        // misattributed — x gets two writes, z gets none.
        assert_eq!(writes(&frozen, 0x7f00_0000_0000), 2, "x stole z's write");
        assert_eq!(writes(&frozen, 0x7f00_0000_0100), 0, "z's write was lost");
    }

    #[test]
    fn selective_and_exhaustive_agree() {
        let (recs, phases, _region, mli) = trace_with_array();
        let sel = DdgAnalysis::run(&recs, &phases, &mli, true);
        let all = DdgAnalysis::run(&recs, &phases, &mli, false);
        assert_eq!(sel.events, all.events);
        assert_eq!(sel.graph.len(), all.graph.len());
        assert_eq!(sel.graph.edge_count(), all.graph.edge_count());
    }

    #[test]
    fn element_addresses_are_preserved() {
        let (recs, phases, _region, mli) = trace_with_array();
        let ana = DdgAnalysis::run(&recs, &phases, &mli, true);
        let a_events: Vec<_> = ana
            .events
            .iter()
            .filter(|e| e.base == 0x7f00_0000_0100)
            .collect();
        assert!(!a_events.is_empty());
        assert!(a_events.iter().all(|e| e.elem >= e.base));
    }

    #[test]
    fn dot_output_renders() {
        let (recs, phases, _region, mli) = trace_with_array();
        let ana = DdgAnalysis::run(&recs, &phases, &mli, true);
        let dot = ana
            .graph
            .to_dot(|n| matches!(n, NodeKind::Var { name, .. } if *name == "sum"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("->"));
    }

    /// Fig. 6(b)-style triplet: foo(p) writes through p which aliases a.
    #[test]
    fn call_triplets_attribute_callee_stores_to_caller_vars() {
        let text = "\
0,2,main,2:1,0,29,0,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,2,main,2:1,0,28,1,
1,64,1,0,,
2,64,0x7f0000000100,1,0,
0,5,main,5:1,1,27,2,
1,64,0x7f0000000100,1,a,
r,64,1,1,1,
0,5,main,5:1,1,2,3,
1,1,1,1,9,
0,6,main,6:1,2,29,4,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,2,
0,6,main,6:1,2,49,5,
1,64,0x400000,1,foo,
2,64,0x7f0000000100,1,2,
f,64,0x7f0000000100,1,p,
0,1,foo,1:1,0,29,6,
1,64,0x7f0000000100,1,p,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,1,foo,1:1,0,28,7,
1,64,9,0,,
2,64,0x7f0000000100,1,0,
0,1,foo,1:1,0,1,8,
0,5,main,5:1,1,27,9,
1,64,0x7f0000000100,1,a,
r,64,9,1,3,
0,5,main,5:1,1,2,10,
1,1,0,1,9,
";
        let recs = parse_str(text).unwrap();
        let region = Region::new("main", 5, 7);
        let phases = Phases::compute(&recs, &region);
        let mli = vec![MliVar {
            name: SymId::intern("a"),
            base_addr: 0x7f00_0000_0100,
            size: 8,
            first_line: 2,
        }];
        let ana = DdgAnalysis::run(&recs, &phases, &mli, true);
        // The callee's store through `p` must surface as a Write event on
        // `a` (iteration 0, Inside).
        let writes: Vec<_> = ana
            .events
            .iter()
            .filter(|e| e.base == 0x7f00_0000_0100 && e.kind == RwKind::Write)
            .collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].phase, Phase::Inside);
    }
}
