//! DDG contraction — the paper's Algorithm 1, over the frozen CSR graph.
//!
//! The complete DDG contains MLI variables, local variables, and temporary
//! registers. Contraction replaces every non-MLI parent of an MLI variable
//! with that parent's own parents, repeatedly, until all remaining parents
//! are MLI variables or terminal (parentless) vertices; terminal non-MLI
//! parents are retained with their dependency (the paper keeps `it` in
//! Fig. 5(d)). The result is a graph whose edges connect MLI variables
//! (almost) directly — e.g. `a → sum`, `b → sum` for the worked example.
//!
//! The hot path is pure integer work on the [`CsrGraph`]: per MLI vertex a
//! worklist expands parent **slices** (contiguous, pre-sorted CSR rows —
//! no hashing, no per-node ordered containers), and the visited set is a
//! dense epoch-stamped array reused across all MLI vertices, so one
//! allocation serves the whole contraction.

use crate::preprocess::MliVar;
use autocheck_obs::{CounterId, GaugeId, Metrics};
use autocheck_stream::{CsrGraph, DotWriter, NodeKind};
use std::collections::BTreeSet;

/// A contracted dependency graph over MLI variables (plus retained terminal
/// vertices).
#[derive(Clone, Debug, Default)]
pub struct ContractedDdg {
    /// Nodes, indexed as in the result edges.
    pub nodes: Vec<NodeKind>,
    /// Edges `parent → child`.
    pub edges: BTreeSet<(usize, usize)>,
    /// Per-node parent lists (ascending), indexed alongside `nodes` — the
    /// indexed lookup behind [`ContractedDdg::parents_of`], replacing the
    /// old full-edge-set scan per query.
    parents: Vec<Vec<u32>>,
}

impl ContractedDdg {
    /// Parents of node `n` (ascending), via the per-node index.
    pub fn parents_of(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.parents[n].iter().map(|&p| p as usize)
    }

    /// Find a node by label.
    pub fn find_label(&self, label: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.label() == label)
    }

    /// Render as Graphviz DOT (the shared [`DotWriter`]).
    pub fn to_dot(&self) -> String {
        let mut w = DotWriter::new("contracted", None);
        for (i, n) in self.nodes.iter().enumerate() {
            w.node(i, n, None);
        }
        for &(p, c) in &self.edges {
            w.edge(p, c);
        }
        w.finish()
    }
}

/// Contract `graph` onto the given MLI set — the one definition of "which
/// graph nodes are MLI" (variable nodes whose base address is an MLI base)
/// shared by the batch pipeline, the streaming finish step, and every DOT
/// export path.
pub fn contract_for_mli(graph: &CsrGraph, mli: &[MliVar]) -> ContractedDdg {
    contract_for_mli_in(graph, mli, &Metrics::disabled())
}

/// [`contract_for_mli`] with session metrics: books the worklist step count
/// (`contract.worklist_steps` — the algorithmic cost of Algorithm 1, wall
/// clock aside) and the contracted graph's size gauges.
pub fn contract_for_mli_in(graph: &CsrGraph, mli: &[MliVar], metrics: &Metrics) -> ContractedDdg {
    let bases: std::collections::HashSet<u64> = mli.iter().map(|m| m.base_addr).collect();
    let (out, steps) = contract_ddg_counted(
        graph,
        |n| matches!(n, NodeKind::Var { base, .. } if bases.contains(base)),
    );
    if metrics.is_enabled() {
        metrics.count(CounterId::ContractWorklistSteps, steps);
        metrics.gauge_set(GaugeId::ContractedNodes, out.nodes.len() as u64);
        metrics.gauge_set(GaugeId::ContractedEdges, out.edges.len() as u64);
    }
    out
}

/// Contract `graph` onto the MLI variables selected by `is_mli`.
///
/// Implements Algorithm 1: for every MLI vertex, walk its parent set,
/// expanding non-MLI parents into *their* parents transitively (cycle-safe
/// via the epoch-stamped visited array); non-MLI parents that turn out
/// parentless are retained as terminal vertices ("contract np while
/// retaining its dependency with n").
pub fn contract_ddg(graph: &CsrGraph, is_mli: impl Fn(&NodeKind) -> bool) -> ContractedDdg {
    contract_ddg_counted(graph, is_mli).0
}

/// [`contract_ddg`] plus the number of worklist pops performed — the
/// metric behind `contract.worklist_steps`.
fn contract_ddg_counted(
    graph: &CsrGraph,
    is_mli: impl Fn(&NodeKind) -> bool,
) -> (ContractedDdg, u64) {
    let n = graph.len();
    let mut mli_flag = vec![false; n];
    let mut mli_ids: Vec<usize> = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if is_mli(node) {
            mli_flag[i] = true;
            mli_ids.push(i);
        }
    }

    let mut out = ContractedDdg::default();
    const UNMAPPED: u32 = u32::MAX;
    let mut out_index: Vec<u32> = vec![UNMAPPED; n];
    let mut intern = |out: &mut ContractedDdg, node: usize| -> usize {
        if out_index[node] != UNMAPPED {
            return out_index[node] as usize;
        }
        let i = out.nodes.len();
        out.nodes.push(graph.nodes[node]);
        out.parents.push(Vec::new());
        out_index[node] = i as u32;
        i
    };
    // Intern MLI nodes first so they are present even if isolated.
    for &m in &mli_ids {
        intern(&mut out, m);
    }

    // One dense visited array for the whole contraction: a slot is visited
    // in the current MLI vertex's expansion iff it holds that vertex's
    // epoch stamp.
    let mut visited: Vec<u32> = vec![UNMAPPED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut steps: u64 = 0;
    for (epoch, &child) in mli_ids.iter().enumerate() {
        let epoch = epoch as u32;
        // Expand the parent closure of `child` up to MLI/terminal vertices.
        stack.extend_from_slice(graph.parent_slice(child));
        let mut final_parents: BTreeSet<usize> = BTreeSet::new();
        while let Some(p) = stack.pop() {
            steps += 1;
            let p = p as usize;
            if p == child || visited[p] == epoch {
                continue;
            }
            visited[p] = epoch;
            if mli_flag[p] {
                final_parents.insert(p);
                continue;
            }
            let grandparents = graph.parent_slice(p);
            if grandparents.is_empty() {
                // Terminal non-MLI vertex: retained (Algorithm 1 line 10).
                final_parents.insert(p);
            } else {
                stack.extend_from_slice(grandparents);
            }
        }
        let c = intern(&mut out, child);
        for p in final_parents {
            let parent = intern(&mut out, p);
            out.edges.insert((parent, c));
            out.parents[c].push(parent as u32);
        }
    }
    // Parent lists were filled in original-graph-id order; expose them in
    // contracted-id order like the edge set.
    for list in &mut out.parents {
        list.sort_unstable();
    }
    (out, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocheck_stream::Graph;
    use autocheck_trace::SymId;

    /// Build the paper's Fig. 5(c) complete DDG for `sum`:
    /// a → 10 → 12 → m → 13 → sum, b → 11 → 12.
    fn fig5c() -> CsrGraph {
        let mut g = Graph::new();
        let a = g.var_node(SymId::intern("a"), 0x100);
        let b = g.var_node(SymId::intern("b"), 0x200);
        let sum = g.var_node(SymId::intern("sum"), 0x300);
        let m = g.var_node(SymId::intern("m"), 0x400); // local variable
        let t10 = g.reg_node(autocheck_trace::Name::Temp(10));
        let t11 = g.reg_node(autocheck_trace::Name::Temp(11));
        let t12 = g.reg_node(autocheck_trace::Name::Temp(12));
        let t13 = g.reg_node(autocheck_trace::Name::Temp(13));
        g.add_edge(a, t10);
        g.add_edge(b, t11);
        g.add_edge(t10, t12);
        g.add_edge(t11, t12);
        g.add_edge(t12, m);
        g.add_edge(m, t13);
        g.add_edge(t13, sum);
        g.freeze()
    }

    fn mli_names<'a>(names: &'a [&'a str]) -> impl Fn(&NodeKind) -> bool + 'a {
        move |n| matches!(n, NodeKind::Var { name, .. } if names.iter().any(|m| name.as_str() == *m))
    }

    #[test]
    fn contracts_fig5c_to_fig5d() {
        let g = fig5c();
        let c = contract_ddg(&g, mli_names(&["a", "b", "sum"]));
        let a = c.find_label("a").unwrap();
        let b = c.find_label("b").unwrap();
        let sum = c.find_label("sum").unwrap();
        // The chain a→10→12→m→13→sum collapses to a→sum; likewise b→sum.
        assert!(c.edges.contains(&(a, sum)));
        assert!(c.edges.contains(&(b, sum)));
        // No register or local-variable nodes survive on sum's parents.
        let parents: Vec<_> = c.parents_of(sum).collect();
        assert_eq!(parents.len(), 2);
        assert!(c.find_label("m").is_none());
        assert!(c.find_label("12").is_none());
    }

    #[test]
    fn terminal_non_mli_parents_are_retained() {
        // it → 1 → s  with s MLI: `it` has no parents, so it is kept —
        // matching Fig. 5(d), where `it` still points at `s`.
        let mut g = Graph::new();
        let it = g.var_node(SymId::intern("it"), 0x10);
        let t1 = g.reg_node(autocheck_trace::Name::Temp(1));
        let s = g.var_node(SymId::intern("s"), 0x20);
        g.add_edge(it, t1);
        g.add_edge(t1, s);
        let c = contract_ddg(&g.freeze(), mli_names(&["s"]));
        let it_c = c.find_label("it").expect("terminal `it` retained");
        let s_c = c.find_label("s").unwrap();
        assert!(c.edges.contains(&(it_c, s_c)));
        assert_eq!(c.parents_of(s_c).collect::<Vec<_>>(), vec![it_c]);
    }

    #[test]
    fn cycles_terminate() {
        // r → 3 → 4 → r (self-feedback through temps, as in r = r + 1).
        let mut g = Graph::new();
        let r = g.var_node(SymId::intern("r"), 0x10);
        let t3 = g.reg_node(autocheck_trace::Name::Temp(3));
        let t4 = g.reg_node(autocheck_trace::Name::Temp(4));
        g.add_edge(r, t3);
        g.add_edge(t3, t4);
        g.add_edge(t4, r);
        let c = contract_ddg(&g.freeze(), mli_names(&["r"]));
        let r_c = c.find_label("r").unwrap();
        // Self-dependency r → r collapses away (p == n is skipped), leaving
        // r isolated but present.
        assert!(c.nodes.len() == 1);
        assert!(!c.edges.contains(&(r_c, r_c)));
    }

    #[test]
    fn isolated_mli_variables_survive() {
        let mut g = Graph::new();
        g.var_node(SymId::intern("x"), 0x10);
        let c = contract_ddg(&g.freeze(), mli_names(&["x"]));
        assert_eq!(c.nodes.len(), 1);
        assert!(c.edges.is_empty());
    }

    #[test]
    fn dot_renders() {
        let c = contract_ddg(&fig5c(), mli_names(&["a", "b", "sum"]));
        let dot = c.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("sum"));
    }

    #[test]
    fn diamond_through_shared_register() {
        // x → t → y and x → t → z with y,z MLI: both get parent x.
        let mut g = Graph::new();
        let x = g.var_node(SymId::intern("x"), 0x1);
        let y = g.var_node(SymId::intern("y"), 0x2);
        let z = g.var_node(SymId::intern("z"), 0x3);
        let t = g.reg_node(autocheck_trace::Name::Temp(7));
        g.add_edge(x, t);
        g.add_edge(t, y);
        g.add_edge(t, z);
        let c = contract_ddg(&g.freeze(), mli_names(&["x", "y", "z"]));
        let (x, y, z) = (
            c.find_label("x").unwrap(),
            c.find_label("y").unwrap(),
            c.find_label("z").unwrap(),
        );
        assert!(c.edges.contains(&(x, y)));
        assert!(c.edges.contains(&(x, z)));
    }

    #[test]
    fn parents_index_agrees_with_edge_set() {
        let c = contract_ddg(&fig5c(), mli_names(&["a", "b", "sum"]));
        for n in 0..c.nodes.len() {
            let from_index: Vec<usize> = c.parents_of(n).collect();
            let from_edges: Vec<usize> = c
                .edges
                .iter()
                .filter(|&&(_, ch)| ch == n)
                .map(|&(p, _)| p)
                .collect();
            assert_eq!(from_index, from_edges, "node {n}");
        }
    }
}
