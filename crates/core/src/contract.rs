//! DDG contraction — the paper's Algorithm 1.
//!
//! The complete DDG contains MLI variables, local variables, and temporary
//! registers. Contraction replaces every non-MLI parent of an MLI variable
//! with that parent's own parents, repeatedly, until all remaining parents
//! are MLI variables or terminal (parentless) vertices; terminal non-MLI
//! parents are retained with their dependency (the paper keeps `it` in
//! Fig. 5(d)). The result is a graph whose edges connect MLI variables
//! (almost) directly — e.g. `a → sum`, `b → sum` for the worked example.

use crate::ddg::{DepGraph, NodeKind};
use std::collections::{BTreeSet, HashSet};

/// A contracted dependency graph over MLI variables (plus retained terminal
/// vertices).
#[derive(Clone, Debug, Default)]
pub struct ContractedDdg {
    /// Nodes, indexed as in the result edges.
    pub nodes: Vec<NodeKind>,
    /// Edges `parent → child`.
    pub edges: BTreeSet<(usize, usize)>,
}

impl ContractedDdg {
    /// Parents of node `n`.
    pub fn parents_of(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges
            .iter()
            .filter(move |(_, c)| *c == n)
            .map(|(p, _)| *p)
    }

    /// Find a node by label.
    pub fn find_label(&self, label: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.label() == label)
    }

    /// Render as Graphviz DOT.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph contracted {\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(s, "  n{i} [label=\"{}\"];", n.label());
        }
        for (p, c) in &self.edges {
            let _ = writeln!(s, "  n{p} -> n{c};");
        }
        s.push_str("}\n");
        s
    }
}

/// Contract `graph` onto the MLI variables selected by `is_mli`.
///
/// Implements Algorithm 1: for every MLI vertex, walk its parent set,
/// expanding non-MLI parents into *their* parents transitively (cycle-safe
/// via a visited set); non-MLI parents that turn out parentless are
/// retained as terminal vertices ("contract np while retaining its
/// dependency with n").
pub fn contract_ddg(graph: &DepGraph, is_mli: impl Fn(&NodeKind) -> bool) -> ContractedDdg {
    let mli_ids: Vec<usize> = (0..graph.len())
        .filter(|&i| is_mli(&graph.nodes[i]))
        .collect();
    let mli_set: HashSet<usize> = mli_ids.iter().copied().collect();

    let mut out = ContractedDdg::default();
    // Intern MLI nodes first so they are present even if isolated.
    let mut out_index: Vec<Option<usize>> = vec![None; graph.len()];
    let intern = |out: &mut ContractedDdg,
                  out_index: &mut Vec<Option<usize>>,
                  n: usize,
                  graph: &DepGraph| {
        if let Some(i) = out_index[n] {
            return i;
        }
        let i = out.nodes.len();
        out.nodes.push(graph.nodes[n]);
        out_index[n] = Some(i);
        i
    };
    for &n in &mli_ids {
        intern(&mut out, &mut out_index, n, graph);
    }

    for &n in &mli_ids {
        // Expand the parent closure of `n` up to MLI/terminal vertices.
        let mut visited: HashSet<usize> = HashSet::new();
        let mut stack: Vec<usize> = graph.parents_of(n).collect();
        let mut final_parents: BTreeSet<usize> = BTreeSet::new();
        while let Some(p) = stack.pop() {
            if p == n || !visited.insert(p) {
                continue;
            }
            if mli_set.contains(&p) {
                final_parents.insert(p);
                continue;
            }
            let mut had_parent = false;
            for gp in graph.parents_of(p) {
                had_parent = true;
                stack.push(gp);
            }
            if !had_parent {
                // Terminal non-MLI vertex: retained (Algorithm 1 line 10).
                final_parents.insert(p);
            }
        }
        let child = intern(&mut out, &mut out_index, n, graph);
        for p in final_parents {
            let parent = intern(&mut out, &mut out_index, p, graph);
            out.edges.insert((parent, child));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocheck_trace::SymId;

    /// Build the paper's Fig. 5(c) complete DDG for `sum`:
    /// a → 10 → 12 → m → 13 → sum, b → 11 → 12.
    fn fig5c() -> DepGraph {
        let mut g = DepGraph::default();
        let a = g.var_node(SymId::intern("a"), 0x100);
        let b = g.var_node(SymId::intern("b"), 0x200);
        let sum = g.var_node(SymId::intern("sum"), 0x300);
        let m = g.var_node(SymId::intern("m"), 0x400); // local variable
        let t10 = g.reg_node(autocheck_trace::Name::Temp(10));
        let t11 = g.reg_node(autocheck_trace::Name::Temp(11));
        let t12 = g.reg_node(autocheck_trace::Name::Temp(12));
        let t13 = g.reg_node(autocheck_trace::Name::Temp(13));
        g.add_edge(a, t10);
        g.add_edge(b, t11);
        g.add_edge(t10, t12);
        g.add_edge(t11, t12);
        g.add_edge(t12, m);
        g.add_edge(m, t13);
        g.add_edge(t13, sum);
        g
    }

    fn mli_names<'a>(names: &'a [&'a str]) -> impl Fn(&NodeKind) -> bool + 'a {
        move |n| matches!(n, NodeKind::Var { name, .. } if names.contains(&name.as_str()))
    }

    #[test]
    fn contracts_fig5c_to_fig5d() {
        let g = fig5c();
        let c = contract_ddg(&g, mli_names(&["a", "b", "sum"]));
        let a = c.find_label("a").unwrap();
        let b = c.find_label("b").unwrap();
        let sum = c.find_label("sum").unwrap();
        // The chain a→10→12→m→13→sum collapses to a→sum; likewise b→sum.
        assert!(c.edges.contains(&(a, sum)));
        assert!(c.edges.contains(&(b, sum)));
        // No register or local-variable nodes survive on sum's parents.
        let parents: Vec<_> = c.parents_of(sum).collect();
        assert_eq!(parents.len(), 2);
        assert!(c.find_label("m").is_none());
        assert!(c.find_label("12").is_none());
    }

    #[test]
    fn terminal_non_mli_parents_are_retained() {
        // it → 1 → s  with s MLI: `it` has no parents, so it is kept —
        // matching Fig. 5(d), where `it` still points at `s`.
        let mut g = DepGraph::default();
        let it = g.var_node(SymId::intern("it"), 0x10);
        let t1 = g.reg_node(autocheck_trace::Name::Temp(1));
        let s = g.var_node(SymId::intern("s"), 0x20);
        g.add_edge(it, t1);
        g.add_edge(t1, s);
        let c = contract_ddg(&g, mli_names(&["s"]));
        let it_c = c.find_label("it").expect("terminal `it` retained");
        let s_c = c.find_label("s").unwrap();
        assert!(c.edges.contains(&(it_c, s_c)));
    }

    #[test]
    fn cycles_terminate() {
        // r → 3 → 4 → r (self-feedback through temps, as in r = r + 1).
        let mut g = DepGraph::default();
        let r = g.var_node(SymId::intern("r"), 0x10);
        let t3 = g.reg_node(autocheck_trace::Name::Temp(3));
        let t4 = g.reg_node(autocheck_trace::Name::Temp(4));
        g.add_edge(r, t3);
        g.add_edge(t3, t4);
        g.add_edge(t4, r);
        let c = contract_ddg(&g, mli_names(&["r"]));
        let r_c = c.find_label("r").unwrap();
        // Self-dependency r → r collapses away (p == n is skipped), leaving
        // r isolated but present.
        assert!(c.nodes.len() == 1);
        assert!(!c.edges.contains(&(r_c, r_c)));
    }

    #[test]
    fn isolated_mli_variables_survive() {
        let mut g = DepGraph::default();
        g.var_node(SymId::intern("x"), 0x10);
        let c = contract_ddg(&g, mli_names(&["x"]));
        assert_eq!(c.nodes.len(), 1);
        assert!(c.edges.is_empty());
    }

    #[test]
    fn dot_renders() {
        let c = contract_ddg(&fig5c(), mli_names(&["a", "b", "sum"]));
        let dot = c.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("sum"));
    }

    #[test]
    fn diamond_through_shared_register() {
        // x → t → y and x → t → z with y,z MLI: both get parent x.
        let mut g = DepGraph::default();
        let x = g.var_node(SymId::intern("x"), 0x1);
        let y = g.var_node(SymId::intern("y"), 0x2);
        let z = g.var_node(SymId::intern("z"), 0x3);
        let t = g.reg_node(autocheck_trace::Name::Temp(7));
        g.add_edge(x, t);
        g.add_edge(t, y);
        g.add_edge(t, z);
        let c = contract_ddg(&g, mli_names(&["x", "y", "z"]));
        let (x, y, z) = (
            c.find_label("x").unwrap(),
            c.find_label("y").unwrap(),
            c.find_label("z").unwrap(),
        );
        assert!(c.edges.contains(&(x, y)));
        assert!(c.edges.contains(&(x, z)));
    }
}
