//! Property test: for random MiniLang programs, the sharded analysis —
//! iteration-aligned trace partitioning plus deterministic state merge —
//! produces a report identical to the serial fold at ANY shard count,
//! through both the batch pipeline and the streaming analyzer. Shard
//! counts beyond the program's iteration count must degrade gracefully
//! (fewer shards, same bytes), never error.

use autocheck_core::{
    index_variables_of, Analyzer, PipelineConfig, Region, StreamAnalyzer, StreamConfig,
};
use proptest::collection::vec;
use proptest::prelude::*;

mod gen;
use gen::program;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_batch_report_equals_serial(
        stmt_idx in vec(0usize..10, 1..7),
        m in 2u32..8,
        shards in 1usize..=9,
    ) {
        let (src, start, end) = program(&stmt_idx, m);
        let module = autocheck_minilang::compile(&src)
            .unwrap_or_else(|e| panic!("generated program failed to compile: {e:?}\n{src}"));
        let mut sink = autocheck_interp::VecSink::default();
        autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default())
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .expect("generated program runs");

        let region = Region::new("main", start, end);
        let index = index_variables_of(&module, &region);
        let run = |shards: usize| {
            Analyzer::new(region.clone())
                .with_index_vars(index.clone())
                .with_config(PipelineConfig { shards, ..PipelineConfig::default() })
                .analyze(&sink.records)
        };
        let serial = run(1);
        let sharded = run(shards);
        prop_assert_eq!(
            serial.to_string(), sharded.to_string(),
            "batch report differs at shards={}\n{}", shards, src
        );
        // A shard count beyond the iteration count (m < 8 <= 10_000) must
        // fall back to however many iteration-aligned cuts exist.
        let degenerate = run(10_000);
        prop_assert_eq!(
            serial.to_string(), degenerate.to_string(),
            "degenerate shard count changed the report\n{}", src
        );
    }

    #[test]
    fn sharded_streaming_run_equals_serial(
        stmt_idx in vec(0usize..10, 1..5),
        m in 2u32..6,
        shards in 2usize..=9,
    ) {
        let (src, start, end) = program(&stmt_idx, m);
        let module = autocheck_minilang::compile(&src).unwrap();
        let mut sink = autocheck_interp::VecSink::default();
        autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default())
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .expect("runs");

        let region = Region::new("main", start, end);
        let index = index_variables_of(&module, &region);
        let run = |shards: usize| {
            StreamAnalyzer::new(region.clone())
                .with_index_vars(index.clone())
                .with_config(StreamConfig {
                    contracted_dot: true,
                    shards,
                    ..StreamConfig::default()
                })
                .run_records(&sink.records, None)
                .expect("no live bound configured")
        };
        let serial = run(1);
        let sharded = run(shards);
        prop_assert_eq!(
            serial.report.to_string(), sharded.report.to_string(),
            "streaming report differs at shards={}\n{}", shards, src
        );
        prop_assert_eq!(
            serial.contracted_dot, sharded.contracted_dot,
            "contracted DOT differs at shards={}\n{}", shards, src
        );
    }
}
