//! Shared random-MiniLang-program generator for the parity property
//! suites (`stream_proptests` and `intern_proptests`). One copy: a
//! statement-palette change strengthens every suite at once.

/// Statement palette for the main loop body. Every statement is valid for
/// any loop bound `it < m` with `m <= 8` (the array has 8 elements), and
/// the palette spans the access patterns the classifier distinguishes:
/// accumulators (WAR), partial array overwrites with full-ish reads
/// (RAPO-shaped), loop-local rewrites (skips), and outputs (Outcome).
const STMTS: &[&str] = &[
    "acc = acc + arr[it];",
    "aux = it + 1;",
    "arr[it] = acc + aux;",
    "out = acc + 1;",
    "acc = acc * 2;",
    "arr[0] = arr[it] + 1;",
    "aux = aux + arr[0];",
    "out = out + arr[it];",
    "tmp = acc + it;",
    "acc = acc + tmp;",
];

/// Render a random program and return (source, loop start line, loop end
/// line). The prologue initializes every variable before the loop so each
/// is an MLI candidate; what the loop body does with them decides the
/// classification.
pub fn program(stmt_idx: &[usize], m: u32) -> (String, u32, u32) {
    let mut lines: Vec<String> = vec![
        "int main() {".into(),
        "    int acc = 1;".into(),
        "    int aux = 2;".into(),
        "    int out = 0;".into(),
        "    int tmp = 0;".into(),
        "    int arr[8];".into(),
        "    for (int i = 0; i < 8; i = i + 1) {".into(),
        "        arr[i] = i;".into(),
        "    }".into(),
    ];
    let start = lines.len() as u32 + 1;
    lines.push(format!("    for (int it = 0; it < {m}; it = it + 1) {{"));
    for &i in stmt_idx {
        lines.push(format!("        {}", STMTS[i % STMTS.len()]));
    }
    lines.push("    }".into());
    let end = lines.len() as u32;
    lines.push("    print(out);".into());
    lines.push("    print(acc);".into());
    lines.push("    return 0;".into());
    lines.push("}".into());
    (lines.join("\n") + "\n", start, end)
}
