//! Property test: for random MiniLang programs, the streaming analyzer's
//! report is identical to the batch pipeline's — critical set, dependency
//! classes, skip reasons, first-seen lines, byte sizes, iteration and
//! record counts.

use autocheck_core::{index_variables_of, Analyzer, Region, StreamAnalyzer};
use proptest::collection::vec;
use proptest::prelude::*;

mod gen;
use gen::program;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn streaming_report_equals_batch_report(
        stmt_idx in vec(0usize..10, 1..7),
        m in 2u32..8,
    ) {
        let (src, start, end) = program(&stmt_idx, m);
        let module = autocheck_minilang::compile(&src)
            .unwrap_or_else(|e| panic!("generated program failed to compile: {e:?}\n{src}"));
        let mut sink = autocheck_interp::VecSink::default();
        autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default())
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .expect("generated program runs");

        let region = Region::new("main", start, end);
        let index = index_variables_of(&module, &region);
        let batch = Analyzer::new(region.clone())
            .with_index_vars(index.clone())
            .analyze(&sink.records);
        let stream = StreamAnalyzer::new(region)
            .with_index_vars(index)
            .analyze(&sink.records)
            .expect("no live bound configured");

        prop_assert_eq!(&batch.mli, &stream.mli, "MLI sets differ\n{}", src);
        prop_assert_eq!(&batch.critical, &stream.critical, "critical sets differ\n{}", src);
        prop_assert_eq!(&batch.skipped, &stream.skipped, "skip sets differ\n{}", src);
        prop_assert_eq!(batch.iterations, stream.iterations);
        prop_assert_eq!(batch.records, stream.records);
        prop_assert_eq!(batch.checkpoint_bytes(), stream.checkpoint_bytes());
    }

    #[test]
    fn streaming_from_text_equals_batch_from_text(
        stmt_idx in vec(0usize..10, 1..5),
        m in 2u32..6,
    ) {
        // Same property through the other front doors: the batch analyzer's
        // text path vs the streaming analyzer's reader path.
        let (src, start, end) = program(&stmt_idx, m);
        let module = autocheck_minilang::compile(&src).unwrap();
        let mut sink = autocheck_interp::WriterSink::new(Vec::new());
        autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default())
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .expect("runs");
        let text = sink.finish().expect("trace bytes");

        let region = Region::new("main", start, end);
        let index = index_variables_of(&module, &region);
        let batch = Analyzer::new(region.clone())
            .with_index_vars(index.clone())
            .analyze_text(std::str::from_utf8(&text).unwrap())
            .expect("parses");
        let stream = StreamAnalyzer::new(region)
            .with_index_vars(index)
            .analyze_read(&text[..])
            .expect("streams");

        prop_assert_eq!(&batch.critical, &stream.critical);
        prop_assert_eq!(&batch.skipped, &stream.skipped);
        prop_assert_eq!(batch.records, stream.records);
    }

    #[test]
    fn faulted_streams_never_panic_the_analyzer(
        stmt_idx in vec(0usize..10, 1..5),
        m in 2u32..6,
        seed in any::<u64>(),
    ) {
        // Fault injection below the full streaming pipeline: a seeded plan
        // (short reads, truncation, injected io::Error, bit flips) over a
        // real trace must come out of StreamAnalyzer::run_read as Ok or a
        // typed StreamError — never a panic, never growth past the
        // session's ceilings.
        use autocheck_trace::{AnalysisCtx, FaultPlan, ResourceLimits};
        let (src, start, end) = program(&stmt_idx, m);
        let module = autocheck_minilang::compile(&src).unwrap();
        let mut sink = autocheck_interp::WriterSink::new(Vec::new());
        autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default())
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .expect("runs");
        let text = sink.finish().expect("trace bytes");

        let ctx = AnalysisCtx::session().untrusted().with_limits(
            ResourceLimits::new()
                .max_trace_bytes(text.len() as u64)
                .max_symbols(4_096),
        );
        let _guard = ctx.enter();
        let region = Region::new("main", start, end);
        let index = index_variables_of(&module, &region);
        let plan = FaultPlan::from_seed(seed, text.len() as u64);
        // Reaching the end without unwinding IS the property; the match
        // additionally pins every failure to the typed error enum.
        match StreamAnalyzer::new(region)
            .with_index_vars(index)
            .with_ctx(ctx.clone())
            .run_read(plan.reader(&text[..]))
        {
            Ok(run) => prop_assert!(run.stats.ddg_nodes < 100_000),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}
