//! Property test: for random MiniLang programs, the streaming analyzer's
//! report is identical to the batch pipeline's — critical set, dependency
//! classes, skip reasons, first-seen lines, byte sizes, iteration and
//! record counts.

use autocheck_core::{index_variables_of, Analyzer, Region, StreamAnalyzer};
use proptest::collection::vec;
use proptest::prelude::*;

/// Statement palette for the main loop body. Every statement is valid for
/// any loop bound `it < m` with `m <= 8` (the array has 8 elements), and
/// the palette spans the access patterns the classifier distinguishes:
/// accumulators (WAR), partial array overwrites with full-ish reads
/// (RAPO-shaped), loop-local rewrites (skips), and outputs (Outcome).
const STMTS: &[&str] = &[
    "acc = acc + arr[it];",
    "aux = it + 1;",
    "arr[it] = acc + aux;",
    "out = acc + 1;",
    "acc = acc * 2;",
    "arr[0] = arr[it] + 1;",
    "aux = aux + arr[0];",
    "out = out + arr[it];",
    "tmp = acc + it;",
    "acc = acc + tmp;",
];

/// Render a random program and return (source, loop start line, loop end
/// line). The prologue initializes every variable before the loop so each
/// is an MLI candidate; what the loop body does with them decides the
/// classification.
fn program(stmt_idx: &[usize], m: u32) -> (String, u32, u32) {
    let mut lines: Vec<String> = vec![
        "int main() {".into(),
        "    int acc = 1;".into(),
        "    int aux = 2;".into(),
        "    int out = 0;".into(),
        "    int tmp = 0;".into(),
        "    int arr[8];".into(),
        "    for (int i = 0; i < 8; i = i + 1) {".into(),
        "        arr[i] = i;".into(),
        "    }".into(),
    ];
    let start = lines.len() as u32 + 1;
    lines.push(format!("    for (int it = 0; it < {m}; it = it + 1) {{"));
    for &i in stmt_idx {
        lines.push(format!("        {}", STMTS[i % STMTS.len()]));
    }
    lines.push("    }".into());
    let end = lines.len() as u32;
    lines.push("    print(out);".into());
    lines.push("    print(acc);".into());
    lines.push("    return 0;".into());
    lines.push("}".into());
    (lines.join("\n") + "\n", start, end)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn streaming_report_equals_batch_report(
        stmt_idx in vec(0usize..10, 1..7),
        m in 2u32..8,
    ) {
        let (src, start, end) = program(&stmt_idx, m);
        let module = autocheck_minilang::compile(&src)
            .unwrap_or_else(|e| panic!("generated program failed to compile: {e:?}\n{src}"));
        let mut sink = autocheck_interp::VecSink::default();
        autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default())
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .expect("generated program runs");

        let region = Region::new("main", start, end);
        let index = index_variables_of(&module, &region);
        let batch = Analyzer::new(region.clone())
            .with_index_vars(index.clone())
            .analyze(&sink.records);
        let stream = StreamAnalyzer::new(region)
            .with_index_vars(index)
            .analyze(&sink.records)
            .expect("no live bound configured");

        prop_assert_eq!(&batch.mli, &stream.mli, "MLI sets differ\n{}", src);
        prop_assert_eq!(&batch.critical, &stream.critical, "critical sets differ\n{}", src);
        prop_assert_eq!(&batch.skipped, &stream.skipped, "skip sets differ\n{}", src);
        prop_assert_eq!(batch.iterations, stream.iterations);
        prop_assert_eq!(batch.records, stream.records);
        prop_assert_eq!(batch.checkpoint_bytes(), stream.checkpoint_bytes());
    }

    #[test]
    fn streaming_from_text_equals_batch_from_text(
        stmt_idx in vec(0usize..10, 1..5),
        m in 2u32..6,
    ) {
        // Same property through the other front doors: the batch analyzer's
        // text path vs the streaming analyzer's reader path.
        let (src, start, end) = program(&stmt_idx, m);
        let module = autocheck_minilang::compile(&src).unwrap();
        let mut sink = autocheck_interp::WriterSink::new(Vec::new());
        autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default())
            .run(&mut sink, &mut autocheck_interp::NoHook)
            .expect("runs");
        let text = sink.finish().expect("trace bytes");

        let region = Region::new("main", start, end);
        let index = index_variables_of(&module, &region);
        let batch = Analyzer::new(region.clone())
            .with_index_vars(index.clone())
            .analyze_text(std::str::from_utf8(&text).unwrap())
            .expect("parses");
        let stream = StreamAnalyzer::new(region)
            .with_index_vars(index)
            .analyze_read(&text[..])
            .expect("streams");

        prop_assert_eq!(&batch.critical, &stream.critical);
        prop_assert_eq!(&batch.skipped, &stream.skipped);
        prop_assert_eq!(batch.records, stream.records);
    }
}
