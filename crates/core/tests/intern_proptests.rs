//! Property tests for the interned data plane: report text and DOT output
//! must be **byte-identical** regardless of how symbols were interned.
//!
//! `SymId` values depend on first-come interning order, so ids must never
//! leak into anything user-visible. Within one process the table is shared
//! (serial and parallel parses of the same trace see the same ids), so the
//! targeted guard is [`renamed_program_reports_are_renamed_reports`]: it
//! interns a renamed identifier set in **reverse lexicographic order** —
//! forcing numeric id order and string order to disagree — and asserts the
//! renamed program's full output equals the original's with the renaming
//! applied textually. Any output path ordered or keyed by raw id would
//! come out permuted and fail. The remaining tests pin byte-determinism
//! across parse modes and pipelines, and the trace text round-trip.

use autocheck_core::{
    contract_ddg, find_mli_vars, index_variables_of, Analyzer, CollectMode, DdgAnalysis, NodeKind,
    Phases, Region, StreamAnalyzer,
};
use autocheck_trace::{writer, ParallelConfig, Record, TraceSource};
use proptest::collection::vec;
use proptest::prelude::*;

mod gen;
use gen::program;

fn parse_str(text: &str) -> Result<Vec<Record>, autocheck_trace::reader::TraceReadError> {
    TraceSource::from_str(text).records()
}

/// Trace text + region + index variables for a generated program.
fn traced(stmt_idx: &[usize], m: u32) -> (String, Region, Vec<String>) {
    let (src, start, end) = program(stmt_idx, m);
    let module = autocheck_minilang::compile(&src)
        .unwrap_or_else(|e| panic!("generated program failed to compile: {e:?}\n{src}"));
    let mut sink = autocheck_interp::WriterSink::new(Vec::new());
    autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default())
        .run(&mut sink, &mut autocheck_interp::NoHook)
        .expect("generated program runs");
    let text = String::from_utf8(sink.finish().expect("trace bytes")).expect("utf8");
    let region = Region::new("main", start, end);
    let index = index_variables_of(&module, &region);
    (text, region, index)
}

/// Everything user-visible the analysis produces for one record slice:
/// the report rendering plus both DOT graphs (complete and contracted),
/// with MLI nodes marked — all label resolution paths exercised.
fn visible_output(records: &[Record], region: &Region, index: &[String]) -> String {
    let report = Analyzer::new(region.clone())
        .with_index_vars(index.to_vec())
        .analyze(records);
    let phases = Phases::compute(records, region);
    let mli = find_mli_vars(records, &phases, region, CollectMode::AnyAccess);
    let analysis = DdgAnalysis::run(records, &phases, &mli, true);
    let mli_bases: std::collections::HashSet<u64> = mli.iter().map(|m| m.base_addr).collect();
    let is_mli = |n: &NodeKind| matches!(n, NodeKind::Var { base, .. } if mli_bases.contains(base));
    let complete_dot = analysis.graph.to_dot(is_mli);
    let contracted_dot = contract_ddg(&analysis.graph, is_mli).to_dot();
    format!("{report}\n{complete_dot}\n{contracted_dot}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serial and parallel parsing must yield identical records and
    /// byte-identical rendered output (determinism guard; in-process the
    /// two parses share the interner table, so the id-order property is
    /// covered by the renaming test below).
    #[test]
    fn output_bytes_identical_across_parse_modes(
        stmt_idx in vec(0usize..10, 1..7),
        m in 2u32..8,
        threads in 2usize..5,
    ) {
        let (text, region, index) = traced(&stmt_idx, m);
        let serial = parse_str(&text).unwrap();
        let parallel = TraceSource::from_str(&text)
            .parallel(ParallelConfig { threads })
            .records()
            .unwrap();
        prop_assert_eq!(&serial, &parallel, "records must be equal");
        let a = visible_output(&serial, &region, &index);
        let b = visible_output(&parallel, &region, &index);
        prop_assert_eq!(a, b, "report/DOT bytes diverged across parse modes");
    }

    /// The streaming pipeline shares the interner with batch; its rendered
    /// report must be byte-identical too (labels resolve through the same
    /// table both ways).
    #[test]
    fn report_bytes_identical_across_pipelines(
        stmt_idx in vec(0usize..10, 1..7),
        m in 2u32..8,
    ) {
        let (text, region, index) = traced(&stmt_idx, m);
        let records = parse_str(&text).unwrap();
        let batch = Analyzer::new(region.clone())
            .with_index_vars(index.clone())
            .analyze(&records);
        let stream = StreamAnalyzer::new(region)
            .with_index_vars(index)
            .analyze(&records)
            .expect("no live bound configured");
        prop_assert_eq!(batch.to_string(), stream.to_string());
    }

    /// Interning must be invisible in the trace text format: parsing and
    /// re-serializing a generated trace reproduces it byte-for-byte.
    #[test]
    fn trace_text_round_trips_byte_identically(
        stmt_idx in vec(0usize..10, 1..5),
        m in 2u32..6,
    ) {
        let (text, _, _) = traced(&stmt_idx, m);
        let records = parse_str(&text).unwrap();
        prop_assert_eq!(writer::to_string(&records), text);
    }

    /// The id-order guard. Rename every program identifier by shifting
    /// each character up one (an order- and length-preserving bijection),
    /// but intern the renamed set in *reverse* lexicographic order first,
    /// so numeric `SymId` order is the exact opposite of string order.
    /// The renamed program's report + DOT bytes must equal the original's
    /// with the same renaming applied to the text — which only holds if
    /// every sort and every label resolves through strings, never ids.
    #[test]
    fn renamed_program_reports_are_renamed_reports(
        stmt_idx in vec(0usize..10, 1..7),
        m in 2u32..8,
    ) {
        // Original identifiers and their shifted forms (same lengths, same
        // relative lexicographic order, no keyword collisions).
        let renames: &[(&str, &str)] = &[
            ("acc", "bdd"),
            ("arr", "bss"),
            ("aux", "bvy"),
            ("i", "j"),
            ("it", "ju"),
            ("out", "pvu"),
            ("tmp", "unq"),
        ];
        // Anti-order the ids: intern renamed names in reverse-sorted order.
        // (Effective the first time this test runs in the process; the
        // resulting id order persists for all cases.)
        let mut reversed: Vec<&str> = renames.iter().map(|&(_, to)| to).collect();
        reversed.sort_unstable();
        reversed.reverse();
        for name in reversed {
            autocheck_trace::SymId::intern(name);
        }

        let (src, start, end) = program(&stmt_idx, m);
        let src2 = rename_words(&src, renames);

        let run = |source: &str| {
            let module = autocheck_minilang::compile(source)
                .unwrap_or_else(|e| panic!("failed to compile: {e:?}
{source}"));
            let mut sink = autocheck_interp::WriterSink::new(Vec::new());
            autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default())
                .run(&mut sink, &mut autocheck_interp::NoHook)
                .expect("runs");
            let text = String::from_utf8(sink.finish().expect("trace")).expect("utf8");
            let region = Region::new("main", start, end);
            let index = index_variables_of(&module, &region);
            let records = parse_str(&text).unwrap();
            visible_output(&records, &region, &index)
        };
        let original = run(&src);
        let renamed = run(&src2);
        prop_assert_eq!(renamed, rename_words(&original, renames));
    }
}

/// Word-boundary identifier substitution (applied to source and output
/// alike): replace maximal `[A-Za-z0-9_]+` runs found in the map.
fn rename_words(text: &str, renames: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(text.len());
    let mut word = String::new();
    let flush = |word: &mut String, out: &mut String| {
        if !word.is_empty() {
            match renames.iter().find(|&&(from, _)| from == word) {
                Some(&(_, to)) => out.push_str(to),
                None => out.push_str(word),
            }
            word.clear();
        }
    };
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            word.push(c);
        } else {
            flush(&mut word, &mut out);
            out.push(c);
        }
    }
    flush(&mut word, &mut out);
    out
}
