//! Property test: for random MiniLang programs and random decode-ahead
//! depths, overlapped ingest — bounded chunk pipeline, background decode,
//! batched delivery — produces reports and DOT byte-identical to serial
//! ingest, through both the batch pipeline and the streaming analyzer, in
//! both trace formats. Depth is a scheduling knob, never a semantic one.

use autocheck_core::{
    index_variables_of, Analyzer, PipelineConfig, Region, StreamAnalyzer, StreamConfig,
};
use autocheck_trace::AnalysisCtx;
use proptest::collection::vec;
use proptest::prelude::*;

mod gen;
use gen::program;

/// Run `src` to a serialized trace in the requested format.
fn trace_bytes(src: &str, binary: bool) -> Vec<u8> {
    let module = autocheck_minilang::compile(src).expect("compiles");
    let ctx = AnalysisCtx::session();
    let _guard = ctx.enter();
    if binary {
        let mut sink = autocheck_interp::BinarySink::with_ctx(Vec::new(), &ctx);
        autocheck_interp::Machine::with_ctx(
            &module,
            autocheck_interp::ExecOptions::default(),
            ctx.clone(),
        )
        .run(&mut sink, &mut autocheck_interp::NoHook)
        .expect("runs");
        sink.finish().expect("binary trace")
    } else {
        let mut sink = autocheck_interp::WriterSink::new(Vec::new());
        autocheck_interp::Machine::with_ctx(
            &module,
            autocheck_interp::ExecOptions::default(),
            ctx.clone(),
        )
        .run(&mut sink, &mut autocheck_interp::NoHook)
        .expect("runs");
        sink.finish().expect("text trace")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn overlapped_batch_report_equals_serial(
        stmt_idx in vec(0usize..10, 1..6),
        m in 2u32..6,
        overlap in 2usize..=8,
        binary in any::<bool>(),
    ) {
        let (src, start, end) = program(&stmt_idx, m);
        let module = autocheck_minilang::compile(&src)
            .unwrap_or_else(|e| panic!("generated program failed to compile: {e:?}\n{src}"));
        let bytes = trace_bytes(&src, binary);
        // The decode-ahead pipeline serves path/reader inputs; route the
        // trace through a file so the overlap knob is actually exercised.
        let path = std::env::temp_dir().join(format!(
            "autocheck-overlap-prop-batch-{}.trace",
            std::process::id()
        ));
        std::fs::write(&path, &bytes).expect("write trace");
        let region = Region::new("main", start, end);
        let index = index_variables_of(&module, &region);
        let run = |overlap: usize| {
            let ctx = AnalysisCtx::session();
            let _guard = ctx.enter();
            Analyzer::new(region.clone())
                .with_index_vars(index.clone())
                .with_config(PipelineConfig { overlap, ..PipelineConfig::default() })
                .with_ctx(ctx.clone())
                .analyze_path(&path)
                .expect("ingests")
                .to_string()
        };
        let serial = run(1);
        let overlapped = run(overlap);
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(
            serial, overlapped,
            "batch report differs at overlap={} (binary={})\n{}", overlap, binary, src
        );
    }

    #[test]
    fn overlapped_streaming_run_equals_serial(
        stmt_idx in vec(0usize..10, 1..5),
        m in 2u32..6,
        overlap in 2usize..=8,
        binary in any::<bool>(),
    ) {
        let (src, start, end) = program(&stmt_idx, m);
        let module = autocheck_minilang::compile(&src).unwrap();
        let bytes = trace_bytes(&src, binary);
        let region = Region::new("main", start, end);
        let index = index_variables_of(&module, &region);
        let run = |overlap: usize| {
            let ctx = AnalysisCtx::session();
            let _guard = ctx.enter();
            let run = StreamAnalyzer::new(region.clone())
                .with_index_vars(index.clone())
                .with_config(StreamConfig {
                    contracted_dot: true,
                    overlap,
                    ..StreamConfig::default()
                })
                .with_ctx(ctx.clone())
                .run_read(&bytes[..])
                .expect("streams");
            (run.report.to_string(), run.contracted_dot.expect("dot requested"))
        };
        let serial = run(1);
        let overlapped = run(overlap);
        prop_assert_eq!(
            serial.0, overlapped.0,
            "streaming report differs at overlap={} (binary={})\n{}", overlap, binary, src
        );
        prop_assert_eq!(
            serial.1, overlapped.1,
            "contracted DOT differs at overlap={} (binary={})\n{}", overlap, binary, src
        );
    }
}
