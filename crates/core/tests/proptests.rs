//! Property tests for the analysis core: contraction invariants on random
//! DAG-ish graphs and classification sanity on random event streams.

use autocheck_core::{classify, contract_ddg, ClassifyConfig, CsrGraph, Graph, NodeKind};
use autocheck_core::{DepType, MliVar, Phase, RwEvent, RwKind};
use autocheck_trace::SymId;
use proptest::prelude::*;

/// Build a random frozen graph: `n_vars` variable nodes (first `n_mli` are
/// MLI) plus `n_regs` register nodes, with random edges.
fn arb_graph() -> impl Strategy<Value = (CsrGraph, usize)> {
    (2usize..8, 0usize..6, 0usize..40, any::<u64>()).prop_map(|(n_vars, n_regs, n_edges, seed)| {
        let mut g = Graph::new();
        let mut nodes = Vec::new();
        for i in 0..n_vars {
            nodes.push(g.var_node(SymId::intern(&format!("v{i}")), 0x100 + i as u64 * 8));
        }
        for i in 0..n_regs {
            nodes.push(g.reg_node(autocheck_trace::Name::Temp(i as u32)));
        }
        // Deterministic pseudo-random edges from the seed.
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..n_edges {
            let a = nodes[next() % nodes.len()];
            let b = nodes[next() % nodes.len()];
            g.add_edge(a, b);
        }
        let n_mli = 1 + next() % n_vars;
        (g.freeze(), n_mli)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Algorithm 1 invariants: contraction terminates (implicitly), keeps
    /// every MLI node, and every surviving parent is either MLI or was
    /// parentless in the complete DDG (a retained terminal).
    #[test]
    fn contraction_invariants((g, n_mli) in arb_graph()) {
        let is_mli = |n: &NodeKind| matches!(
            n,
            NodeKind::Var { base, .. } if (*base - 0x100) / 8 < n_mli as u64
        );
        let c = contract_ddg(&g, is_mli);
        // All MLI nodes survive.
        let mli_count = (0..g.len()).filter(|&i| is_mli(&g.nodes[i])).count();
        let surviving_mli = c.nodes.iter().filter(|n| is_mli(n)).count();
        prop_assert_eq!(mli_count, surviving_mli);
        // Every edge's parent is MLI or terminal-in-original.
        for (p, _) in &c.edges {
            let node = &c.nodes[*p];
            if !is_mli(node) {
                let orig = g.find(node).expect("contracted node exists in original");
                prop_assert_eq!(
                    g.parents_of(orig).count(),
                    0,
                    "non-MLI parent {:?} with parents survived",
                    node.label()
                );
            }
        }
        // Edges only ever point INTO MLI nodes.
        for (_, ch) in &c.edges {
            prop_assert!(is_mli(&c.nodes[*ch]));
        }
    }

    /// Classification sanity on random single-variable event streams:
    /// * WAR/RAPO require a write in the loop,
    /// * Outcome requires an after-loop read,
    /// * never-written variables are always skipped,
    /// * the function is deterministic.
    #[test]
    fn classification_sanity(
        kinds in proptest::collection::vec((any::<bool>(), 0u32..4, 0u64..3), 1..40),
        after_read in any::<bool>(),
    ) {
        let base = 0x1000u64;
        let mut events: Vec<RwEvent> = kinds
            .iter()
            .enumerate()
            .map(|(i, (is_read, iter, elem))| RwEvent {
                base,
                elem: base + elem * 8,
                kind: if *is_read { RwKind::Read } else { RwKind::Write },
                dyn_id: i as u64,
                iter: *iter,
                phase: Phase::Inside,
                line: 10,
            })
            .collect();
        // Iterations must be time-ordered like real traces.
        events.sort_by_key(|e| (e.iter, e.dyn_id));
        for (i, e) in events.iter_mut().enumerate() {
            e.dyn_id = i as u64;
        }
        if after_read {
            events.push(RwEvent {
                base,
                elem: base,
                kind: RwKind::Read,
                dyn_id: events.len() as u64,
                iter: events.last().map(|e| e.iter).unwrap_or(0),
                phase: Phase::After,
                line: 90,
            });
        }
        let mli = [MliVar {
            name: SymId::intern("v"),
            base_addr: base,
            size: 24,
            first_line: 2,
        }];
        let cfg = ClassifyConfig::default();
        let (crit, skipped) = classify(&mli, &events, &cfg);
        let (crit2, _) = classify(&mli, &events, &cfg);
        prop_assert_eq!(&crit, &crit2, "deterministic");
        prop_assert_eq!(crit.len() + skipped.len(), 1, "exactly one verdict");

        let written = events
            .iter()
            .any(|e| e.phase == Phase::Inside && e.kind == RwKind::Write);
        if let Some(c) = crit.first() {
            prop_assert!(written, "critical verdict requires an in-loop write");
            if c.dep == DepType::Outcome {
                prop_assert!(after_read);
            }
        } else if written {
            // Skipped despite writes: must be rewritten-first or dead.
        } else {
            prop_assert!(!skipped.is_empty());
        }
    }
}
