//! Table III reproduction: per-benchmark analysis-time breakdown —
//! pre-processing (serial and parallel), dependency analysis, variable
//! identification, total — plus the streaming engine's single-pass total,
//! so the analysis-time story covers all three modes (serial batch,
//! parallel batch, online streaming).
//!
//! Run with:
//! `cargo run --release -p autocheck-bench --bin table3 [scale] [threads] [--jobs N] [--json] [--metrics PATH]`
//!
//! With `--json`, the same timings are also written to `BENCH_table3.json`
//! as machine-readable records — the repo's perf trajectory file, so "did
//! this PR make Table III faster?" is a diff, not archaeology. Schema 2
//! added per-app DDG sizes (nodes/edges, contracted nodes/edges) and the
//! Algorithm 1 contraction wall clock; schema 3 adds per-app ingest
//! throughput (records/s and bytes/s) for both trace formats, keyed by
//! `ingest_format`, so the text-vs-binary ingest gap is part of the
//! trajectory; schema 4 sources `peak_live_records` from the session
//! ledger's live-record gauge and adds the interner arena footprint
//! (`arena_bytes`) observed at each app's capture; schema 5 runs every app
//! once more through the sharded fold (`shards = 0` = auto: one
//! iteration-aligned shard per core, serial on single-CPU hosts), asserts
//! the result identical, and records the resolved `shards` count plus
//! per-app and total `shard_wall_s`. On a single-CPU host the auto path
//! degrades to serial, and the run asserts its overhead stays within 15%
//! of the serial wall; speedup claims are only meaningful when `cpus > 1`
//! (CI gates its parallel-wall validation on that). Schema 6 runs every
//! app once more through the decode-ahead overlapped ingest (`overlap = 0`
//! = auto: serial on single-CPU hosts, `min(cores, 4)` otherwise) from a
//! trace file — the input kind the pipeline serves — asserts the result
//! identical, and records per-app `overlapped_total_s` plus the
//! ledger-sourced `ingest_depth_peak` (validated against the bounded
//! channel's `depth + 2` ceiling), and the suite-wide `overlapped_wall_s`
//! vs `overlap_serial_wall_s`. On a single-CPU host auto degrades to
//! serial and the run asserts the pipeline's overhead stays within 10%.
//!
//! With `--metrics PATH`, the parallel multi-session run goes through
//! `MultiAnalyzer::with_metrics` and its aggregated batch ledger (one
//! session ledger per app plus batch-level queue/flight stats) is written
//! to PATH as versioned JSON (`-` prints the human-readable table).
//!
//! `--jobs N` additionally runs the whole 14-app suite through the
//! concurrent `MultiAnalyzer` front door — every app compiled, traced and
//! analyzed in its **own session** (own symbol space) — once serially
//! (`jobs = 1`) and once on `N` workers, and records both wall clocks in
//! the JSON so the perf trajectory captures the parallel path.

use autocheck_apps::{all_apps_scaled, Scale};
use autocheck_bench::{secs, Table};
use autocheck_core::{
    capture_ledger, index_variables_of, AnalysisJob, Analyzer, JobInput, MultiAnalyzer,
    PipelineConfig, Report, StreamAnalyzer,
};
use autocheck_interp::{ExecOptions, Machine, NoHook, WriterSink};
use autocheck_obs::{GaugeId, Metrics};
use autocheck_trace::{binary, AnalysisCtx, TraceSource};
use std::fmt::Write as _;

/// Ingest throughput for one trace format (serial parse of the whole
/// trace, best of three).
struct IngestRate {
    format: &'static str,
    bytes: u64,
    records_per_s: f64,
    bytes_per_s: f64,
}

/// One benchmark's measurements, in seconds.
struct AppRow {
    name: String,
    serial: Report,
    parallel: Report,
    sharded_total: std::time::Duration,
    streaming_total: std::time::Duration,
    /// End-to-end wall of the serial batch pipeline reading the trace from
    /// a file — the baseline the overlapped wall is compared against.
    path_total: std::time::Duration,
    /// End-to-end wall of the decode-ahead overlapped ingest (auto depth)
    /// over the same file.
    overlapped_total: std::time::Duration,
    /// Peak of the `ingest.depth` gauge during the overlapped run, from
    /// the session ledger. Zero on single-CPU hosts (auto = serial).
    ingest_depth_peak: u64,
    peak_live: usize,
    arena_bytes: u64,
    ingest: Vec<IngestRate>,
}

/// Serial-ingest throughput of `bytes` (either format), best of three runs.
fn measure_ingest(bytes: &[u8], format: &'static str) -> IngestRate {
    let mut best = f64::INFINITY;
    let mut records = 0usize;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        let parsed = TraceSource::from_bytes(bytes)
            .records()
            .expect("trace ingests");
        let dt = t.elapsed().as_secs_f64();
        records = parsed.len();
        if dt < best {
            best = dt;
        }
    }
    let best = best.max(1e-9);
    IngestRate {
        format,
        bytes: bytes.len() as u64,
        records_per_s: records as f64 / best,
        bytes_per_s: bytes.len() as f64 / best,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let jobs: usize = match args.iter().position(|a| a == "--jobs") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --jobs needs a positive integer");
                std::process::exit(2);
            }
        },
        None => std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(1),
    };
    let metrics_path: Option<String> = args.iter().position(|a| a == "--metrics").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --metrics needs a path (or `-` for stdout)");
            std::process::exit(2);
        })
    });
    let positional: Vec<&String> = {
        let jobs_value = args.iter().position(|a| a == "--jobs").map(|i| i + 1);
        let metrics_value = args.iter().position(|a| a == "--metrics").map(|i| i + 1);
        args.iter()
            .enumerate()
            .filter(|(i, a)| {
                !a.starts_with("--") && Some(*i) != jobs_value && Some(*i) != metrics_value
            })
            .map(|(_, a)| a)
            .collect()
    };
    let scale = match positional.first().map(|s| s.as_str()) {
        Some("small") => Scale::Small,
        Some("large") => Scale::Large,
        _ => Scale::Medium,
    };
    let threads: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            // Over-subscribe relative to the core count: on throttled/shared
            // machines a small number of long-running workers is hostage to
            // the slowest core (see autocheck-trace::parallel).
            std::thread::available_parallelism()
                .map(|n| n.get().max(4))
                .unwrap_or(4)
        });
    println!(
        "=== Table III: analysis efficiency ({scale:?} inputs; optimization = {threads} parser threads) ===\n"
    );
    let mut table = Table::new(&[
        "Name",
        "Pre-proc (s)",
        "(with opt)",
        "Dep analysis (s)",
        "Identify (s)",
        "Total (s)",
        "(with opt)",
        "Streaming (s)",
        "Peak live",
        "DDG n/e→c",
        "Bin ingest ×",
    ]);
    let mut rows: Vec<AppRow> = Vec::new();
    let overlap_dir = std::env::temp_dir().join(format!("autocheck-table3-{}", std::process::id()));
    std::fs::create_dir_all(&overlap_dir).expect("scratch dir for overlap traces");
    for spec in all_apps_scaled(scale) {
        let module = autocheck_minilang::compile(&spec.source).expect("compiles");
        let mut sink = WriterSink::new(Vec::new());
        Machine::new(&module, ExecOptions::default())
            .run(&mut sink, &mut NoHook)
            .expect("runs");
        let text = String::from_utf8(sink.finish().expect("trace")).expect("utf8");
        let index = index_variables_of(&module, &spec.region);

        let run = |parse_threads: usize| {
            Analyzer::new(spec.region.clone())
                .with_index_vars(index.clone())
                .with_config(PipelineConfig {
                    parse_threads,
                    ..PipelineConfig::default()
                })
                .analyze_text(&text)
                .expect("parses")
        };
        let serial = run(1);
        let parallel = run(threads);
        assert_eq!(
            serial.summary(),
            parallel.summary(),
            "parallelism must not change results"
        );
        // Sharded single-trace fold: auto shard count (one iteration-aligned
        // shard per core; single-CPU hosts degrade to the serial path).
        let sharded = Analyzer::new(spec.region.clone())
            .with_index_vars(index.clone())
            .with_config(PipelineConfig {
                shards: 0,
                ..PipelineConfig::default()
            })
            .analyze_text(&text)
            .expect("parses");
        assert_eq!(
            serial.summary(),
            sharded.summary(),
            "sharding must not change results"
        );
        // Overlapped decode-ahead ingest over the same trace, read from a
        // file — the input kind the pipeline serves (in-memory inputs are
        // unaffected by the overlap knob). Auto depth: serial on
        // single-CPU hosts, `min(cores, 4)` otherwise. The serial-from-file
        // wall is measured the same way so the comparison isolates the
        // pipeline, not the file I/O.
        let trace_path = overlap_dir.join(format!("{}.txt", spec.name));
        std::fs::write(&trace_path, text.as_bytes()).expect("write trace file");
        let run_path = |overlap: usize, ctx: &AnalysisCtx| {
            let t = std::time::Instant::now();
            let report = Analyzer::new(spec.region.clone())
                .with_index_vars(index.clone())
                .with_config(PipelineConfig {
                    overlap,
                    ..PipelineConfig::default()
                })
                .with_ctx(ctx.clone())
                .analyze_path(&trace_path)
                .expect("parses");
            (report, t.elapsed())
        };
        let (path_serial, path_total) = run_path(1, &AnalysisCtx::current());
        let octx = AnalysisCtx::current().with_metrics(Metrics::enabled());
        let (overlapped, overlapped_total) = run_path(0, &octx);
        assert_eq!(
            serial.summary(),
            path_serial.summary(),
            "file ingest must not change results"
        );
        assert_eq!(
            serial.summary(),
            overlapped.summary(),
            "overlapped ingest must not change results"
        );
        let _ = std::fs::remove_file(&trace_path);
        // Queue-depth peak from the ledger, validated against the bounded
        // channel's invariant: at depth d the producer can be at most d
        // batches plus one in-flight message ahead of the consumer.
        let oledger = capture_ledger(spec.name, &octx);
        let ingest_depth_peak = oledger.gauge(GaugeId::IngestDepth).1;
        let overlap_depth = autocheck_trace::resolve_overlap_depth(0);
        if overlap_depth > 1 {
            assert!(
                (1..=overlap_depth as u64 + 2).contains(&ingest_depth_peak),
                "{}: queue-depth peak {} outside [1, {}]",
                spec.name,
                ingest_depth_peak,
                overlap_depth + 2
            );
        } else {
            assert_eq!(
                ingest_depth_peak, 0,
                "{}: the serial path must book no queue depth",
                spec.name
            );
        }
        // The streaming run carries a metrics registry: schema-4 JSON
        // sources peak-live and the interner arena footprint from its
        // captured ledger, not from hand-maintained counters.
        let sctx = AnalysisCtx::current().with_metrics(Metrics::enabled());
        let streaming = StreamAnalyzer::new(spec.region.clone())
            .with_index_vars(index.clone())
            .with_ctx(sctx.clone())
            .run_read(text.as_bytes())
            .expect("streams");
        assert_eq!(
            serial.summary(),
            streaming.report.summary(),
            "streaming must not change results"
        );
        let ledger = capture_ledger(spec.name, &sctx);
        let peak_live = ledger.gauge(GaugeId::LiveRecords).1 as usize;
        assert_eq!(
            peak_live, streaming.stats.peak_live_records,
            "the ledger gauge and StreamStats report the same peak"
        );
        let arena_bytes = ledger.gauge(GaugeId::ArenaBytes).0;
        // Text-vs-binary ingest throughput on the identical record stream.
        let records = TraceSource::from_str(&text).records().expect("parses");
        let bin = binary::to_bytes(&records, &AnalysisCtx::current());
        let ingest = vec![
            measure_ingest(text.as_bytes(), "text"),
            measure_ingest(&bin, "binary"),
        ];
        let ingest_ratio = ingest[1].records_per_s / ingest[0].records_per_s.max(1e-9);
        table.row(vec![
            spec.name.to_string(),
            secs(serial.timings.preprocess),
            secs(parallel.timings.preprocess),
            secs(serial.timings.dependency),
            secs(serial.timings.identify),
            secs(serial.timings.total()),
            secs(parallel.timings.total()),
            secs(streaming.report.timings.total()),
            peak_live.to_string(),
            format!(
                "{}/{}→{}",
                serial.ddg.nodes, serial.ddg.edges, serial.ddg.contracted_nodes
            ),
            format!("{ingest_ratio:.1}"),
        ]);
        rows.push(AppRow {
            name: spec.name.to_string(),
            serial,
            parallel,
            sharded_total: sharded.timings.total(),
            streaming_total: streaming.report.timings.total(),
            path_total,
            overlapped_total,
            ingest_depth_peak,
            peak_live,
            arena_bytes,
            ingest,
        });
    }
    println!("{}", table.render());
    println!("shape check vs the paper: pre-processing (trace reading) dominates; the");
    println!("parallel reader cuts it; identification is the cheapest stage. The");
    println!("streaming column is one fused online pass whose peak live-record window");
    println!("(rightmost column) stays orders of magnitude below the trace length.");

    // Concurrent multi-session run: the whole suite through MultiAnalyzer,
    // each app in its own symbol space — serially and on `jobs` workers.
    let make_jobs = || -> Vec<AnalysisJob> {
        all_apps_scaled(scale)
            .into_iter()
            .map(|spec| {
                AnalysisJob::new(
                    spec.name,
                    JobInput::MiniLang(spec.source.clone()),
                    spec.region.clone(),
                )
            })
            .collect()
    };
    let serial_batch = MultiAnalyzer::new(1).run(make_jobs());
    assert!(
        serial_batch.failures.is_empty(),
        "batch failures: {:?}",
        serial_batch.failures
    );
    let parallel_batch = MultiAnalyzer::new(jobs)
        .with_metrics(metrics_path.is_some())
        .run(make_jobs());
    assert!(
        parallel_batch.failures.is_empty(),
        "batch failures: {:?}",
        parallel_batch.failures
    );
    for ((row, s), p) in rows
        .iter()
        .zip(&serial_batch.sessions)
        .zip(&parallel_batch.sessions)
    {
        assert_eq!(
            row.serial.summary(),
            s.summary,
            "{}: session summary must match the direct pipeline",
            row.name
        );
        assert_eq!(
            s.rendered, p.rendered,
            "{}: concurrent sessions must render byte-identical reports",
            row.name
        );
    }
    let batch_wall_1 = serial_batch.wall;
    let batch_wall_n = parallel_batch.wall;
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\nmulti-session (compile+trace+analyze per app, own symbol space each):\n\
         \x20 jobs=1: {:.3}s   jobs={}: {:.3}s   speedup {:.2}x ({} cpu(s) available)",
        batch_wall_1.as_secs_f64(),
        parallel_batch.jobs,
        batch_wall_n.as_secs_f64(),
        batch_wall_1.as_secs_f64() / batch_wall_n.as_secs_f64().max(1e-9),
        cpus,
    );
    if cpus == 1 {
        println!(
            "  (single-CPU machine: workers only interleave; the parallel wall\n\
             \x20  measures session-isolation overhead, not speedup)"
        );
    }

    // Sharded-fold wall across the suite. On a single-CPU host the auto
    // shard count resolves to 1 (serial path), so the sharded wall must
    // track the serial wall — enforce the ≤15% overhead bound here; on
    // multi-core hosts the ratio is a speedup signal instead.
    let shards = autocheck_trace::resolve_shard_count(0);
    let serial_wall_s: f64 = rows
        .iter()
        .map(|r| r.serial.timings.total().as_secs_f64())
        .sum();
    let shard_wall_s: f64 = rows.iter().map(|r| r.sharded_total.as_secs_f64()).sum();
    println!(
        "\nsharded fold (shards={}, auto): {:.3}s vs serial {:.3}s ({:.2}x)",
        shards,
        shard_wall_s,
        serial_wall_s,
        serial_wall_s / shard_wall_s.max(1e-9),
    );
    if cpus == 1 {
        assert!(
            shard_wall_s <= serial_wall_s * 1.15,
            "single-CPU sharded fold must stay within 15% of serial \
             (sharded {shard_wall_s:.3}s vs serial {serial_wall_s:.3}s)"
        );
        println!("  (single-CPU machine: auto degrades to serial; overhead within 15%)");
    }

    // Overlapped decode-ahead ingest wall across the suite (from file,
    // auto depth). On a single-CPU host auto resolves to serial, so the
    // overlapped wall must track the serial-from-file wall — enforce the
    // ≤10% overhead bound here; on multi-core hosts the ratio is the
    // decode-ahead speedup CI validates from the JSON.
    let overlap_depth = autocheck_trace::resolve_overlap_depth(0);
    let overlap_serial_wall_s: f64 = rows.iter().map(|r| r.path_total.as_secs_f64()).sum();
    let overlapped_wall_s: f64 = rows.iter().map(|r| r.overlapped_total.as_secs_f64()).sum();
    let _ = std::fs::remove_dir_all(&overlap_dir);
    println!(
        "\noverlapped ingest (depth={}, auto): {:.3}s vs serial-from-file {:.3}s ({:.2}x)",
        overlap_depth,
        overlapped_wall_s,
        overlap_serial_wall_s,
        overlap_serial_wall_s / overlapped_wall_s.max(1e-9),
    );
    if cpus == 1 {
        assert!(
            overlapped_wall_s <= overlap_serial_wall_s * 1.10,
            "single-CPU overlapped ingest must stay within 10% of serial \
             (overlapped {overlapped_wall_s:.3}s vs serial {overlap_serial_wall_s:.3}s)"
        );
        println!("  (single-CPU machine: auto degrades to serial; overhead within 10%)");
    }

    if let Some(path) = &metrics_path {
        let ledger = parallel_batch
            .ledger
            .as_ref()
            .expect("metrics batch produced a ledger");
        if path == "-" {
            println!("\n{}", ledger.render_table());
        } else {
            std::fs::write(path, ledger.to_json()).expect("write metrics ledger");
            println!("\nwrote batch run ledger to {path}");
        }
    }

    if json {
        let path = "BENCH_table3.json";
        std::fs::write(
            path,
            render_json(
                scale,
                threads,
                &rows,
                parallel_batch.jobs,
                batch_wall_1,
                batch_wall_n,
                shards,
                shard_wall_s,
                overlap_depth,
                overlap_serial_wall_s,
                overlapped_wall_s,
            ),
        )
        .expect("write BENCH_table3.json");
        println!("\nwrote machine-readable timings to {path}");
    }
}

/// Hand-rolled JSON (no serde in the offline vendor set). Field names are
/// the contract consumed by trend tooling; keep them stable.
#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: Scale,
    threads: usize,
    rows: &[AppRow],
    jobs: usize,
    batch_wall_1: std::time::Duration,
    batch_wall_n: std::time::Duration,
    shards: usize,
    shard_wall_s: f64,
    overlap_depth: usize,
    overlap_serial_wall_s: f64,
    overlapped_wall_s: f64,
) -> String {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"table3\",");
    let _ = writeln!(out, "  \"schema\": 6,");
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(out, "  \"parse_threads\": {threads},");
    let _ = writeln!(out, "  \"unix_time\": {unix_time},");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(
        out,
        "  \"cpus\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let _ = writeln!(
        out,
        "  \"batch_wall_serial_s\": {:.6},",
        batch_wall_1.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "  \"batch_wall_parallel_s\": {:.6},",
        batch_wall_n.as_secs_f64()
    );
    // Only meaningful as a speedup when `cpus > 1`; on a single-CPU host
    // the auto shard count degrades to serial and this tracks the serial
    // wall (CI validates accordingly).
    let _ = writeln!(out, "  \"shards\": {shards},");
    let _ = writeln!(out, "  \"shard_wall_s\": {shard_wall_s:.6},");
    // Decode-ahead ingest: resolved auto depth and end-to-end walls over
    // file-backed traces. Only a speedup signal when `cpus > 1`; on a
    // single-CPU host auto degrades to serial (and the run asserts the
    // overhead bound before writing this file).
    let _ = writeln!(out, "  \"overlap\": {overlap_depth},");
    let _ = writeln!(
        out,
        "  \"overlap_serial_wall_s\": {overlap_serial_wall_s:.6},"
    );
    let _ = writeln!(out, "  \"overlapped_wall_s\": {overlapped_wall_s:.6},");
    out.push_str("  \"apps\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let t = row.serial.timings;
        let p = row.parallel.timings;
        let d = row.serial.ddg;
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"preprocess_s\": {:.6}, \"preprocess_parallel_s\": {:.6}, \
             \"dependency_s\": {:.6}, \"identify_s\": {:.6}, \"total_s\": {:.6}, \
             \"total_parallel_s\": {:.6}, \"sharded_total_s\": {:.6}, \
             \"streaming_total_s\": {:.6}, \"path_total_s\": {:.6}, \
             \"overlapped_total_s\": {:.6}, \"ingest_depth_peak\": {}, \
             \"peak_live_records\": {}, \"records\": {}, \"arena_bytes\": {}, \
             \"ddg_nodes\": {}, \"ddg_edges\": {}, \"contracted_nodes\": {}, \
             \"contracted_edges\": {}, \"contract_wall_s\": {:.6}, \"ingest\": [{}]}}",
            row.name,
            t.preprocess.as_secs_f64(),
            p.preprocess.as_secs_f64(),
            t.dependency.as_secs_f64(),
            t.identify.as_secs_f64(),
            t.total().as_secs_f64(),
            p.total().as_secs_f64(),
            row.sharded_total.as_secs_f64(),
            row.streaming_total.as_secs_f64(),
            row.path_total.as_secs_f64(),
            row.overlapped_total.as_secs_f64(),
            row.ingest_depth_peak,
            row.peak_live,
            row.serial.records,
            row.arena_bytes,
            d.nodes,
            d.edges,
            d.contracted_nodes,
            d.contracted_edges,
            t.contract.as_secs_f64(),
            row.ingest
                .iter()
                .map(|r| {
                    format!(
                        "{{\"ingest_format\": \"{}\", \"bytes\": {}, \
                         \"records_per_s\": {:.1}, \"bytes_per_s\": {:.1}}}",
                        r.format, r.bytes, r.records_per_s, r.bytes_per_s
                    )
                })
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
