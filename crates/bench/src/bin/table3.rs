//! Table III reproduction: per-benchmark analysis-time breakdown —
//! pre-processing (serial and parallel), dependency analysis, variable
//! identification, total — plus the streaming engine's single-pass total,
//! so the analysis-time story covers all three modes (serial batch,
//! parallel batch, online streaming).
//!
//! Run with: `cargo run --release -p autocheck-bench --bin table3 [scale] [threads]`

use autocheck_apps::{all_apps_scaled, Scale};
use autocheck_bench::{secs, Table};
use autocheck_core::{index_variables_of, Analyzer, PipelineConfig, StreamAnalyzer};
use autocheck_interp::{ExecOptions, Machine, NoHook, WriterSink};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        Some("large") => Scale::Large,
        _ => Scale::Medium,
    };
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            // Over-subscribe relative to the core count: on throttled/shared
            // machines a small number of long-running workers is hostage to
            // the slowest core (see autocheck-trace::parallel).
            std::thread::available_parallelism()
                .map(|n| n.get().max(4))
                .unwrap_or(4)
        });
    println!(
        "=== Table III: analysis efficiency ({scale:?} inputs; optimization = {threads} parser threads) ===\n"
    );
    let mut table = Table::new(&[
        "Name",
        "Pre-proc (s)",
        "(with opt)",
        "Dep analysis (s)",
        "Identify (s)",
        "Total (s)",
        "(with opt)",
        "Streaming (s)",
        "Peak live",
    ]);
    for spec in all_apps_scaled(scale) {
        let module = autocheck_minilang::compile(&spec.source).expect("compiles");
        let mut sink = WriterSink::new(Vec::new());
        Machine::new(&module, ExecOptions::default())
            .run(&mut sink, &mut NoHook)
            .expect("runs");
        let text = String::from_utf8(sink.finish().expect("trace")).expect("utf8");
        let index = index_variables_of(&module, &spec.region);

        let run = |parse_threads: usize| {
            Analyzer::new(spec.region.clone())
                .with_index_vars(index.clone())
                .with_config(PipelineConfig {
                    parse_threads,
                    ..PipelineConfig::default()
                })
                .analyze_text(&text)
                .expect("parses")
        };
        let serial = run(1);
        let parallel = run(threads);
        assert_eq!(
            serial.summary(),
            parallel.summary(),
            "parallelism must not change results"
        );
        let streaming = StreamAnalyzer::new(spec.region.clone())
            .with_index_vars(index.clone())
            .run_read(text.as_bytes())
            .expect("streams");
        assert_eq!(
            serial.summary(),
            streaming.report.summary(),
            "streaming must not change results"
        );
        table.row(vec![
            spec.name.to_string(),
            secs(serial.timings.preprocess),
            secs(parallel.timings.preprocess),
            secs(serial.timings.dependency),
            secs(serial.timings.identify),
            secs(serial.timings.total()),
            secs(parallel.timings.total()),
            secs(streaming.report.timings.total()),
            streaming.stats.peak_live_records.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("shape check vs the paper: pre-processing (trace reading) dominates; the");
    println!("parallel reader cuts it; identification is the cheapest stage. The");
    println!("streaming column is one fused online pass whose peak live-record window");
    println!("(rightmost column) stays orders of magnitude below the trace length.");
}
