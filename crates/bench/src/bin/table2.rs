//! Table II reproduction: benchmarks, trace sizes/times, and the critical
//! variables AutoCheck identifies for each.
//!
//! Run with: `cargo run --release -p autocheck-bench --bin table2 [scale]`
//! where scale is `small` (default), `medium`, or `large`.

use autocheck_apps::{all_apps_scaled, analyze_app, Scale};
use autocheck_bench::{critical_cell, mclr_cell, secs, Table};
use autocheck_trace::stats::human_bytes;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("medium") => Scale::Medium,
        Some("large") => Scale::Large,
        _ => Scale::Small,
    };
    println!("=== Table II: benchmarks, traces, and identified critical variables ({scale:?} inputs) ===\n");
    let mut table = Table::new(&[
        "Name",
        "LOC",
        "Trace size",
        "Trace gen (s)",
        "Records",
        "Critical variables (dependency type)",
        "MCLR",
    ]);
    let mut total_vars = 0usize;
    for spec in all_apps_scaled(scale) {
        let run = analyze_app(&spec);
        total_vars += run.report.critical.len();
        table.row(vec![
            spec.name.to_string(),
            spec.loc().to_string(),
            human_bytes(run.trace_bytes),
            secs(run.trace_gen_time),
            run.records.len().to_string(),
            critical_cell(&run.report),
            mclr_cell(&spec),
        ]);
    }
    println!("{}", table.render());
    println!("total critical variables across the suite: {total_vars}");
    println!("(paper: 102 across the original 14 benchmarks; the skeletons keep each");
    println!(" benchmark's named critical variables and dependency classes)");
}
