//! §VI-B reproduction: validation and characterization of the detected
//! variables — kill/restart success for all 14 benchmarks, plus the
//! dependency-type census.
//!
//! Run with: `cargo run --release -p autocheck-bench --bin validate`
//!
//! Single-file mode (what CI runs on the Fig. 4 example so the
//! analyze → protect → kill → restart chain is exercised per-PR):
//!
//! ```text
//! validate --file examples/fig4.mc --function main --start 16 --end 24
//! ```

use autocheck_apps::{all_apps, analyze_app};
use autocheck_bench::Table;
use autocheck_checkpoint::validate::validate_restart;
use autocheck_checkpoint::CrSpec;
use autocheck_core::{index_variables_of, Analyzer, DepType, Region};

/// Analyze one MiniLang file, protect its critical set, kill at 60%, and
/// restart. Exits nonzero if the restarted output diverges.
fn validate_single_file(path: &str, function: &str, start: u32, end: u32) {
    println!(
        "=== §VI-B single-file validation: {path} ({function} {start}..{end}, kill at 60%) ===\n"
    );
    let source =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read `{path}`: {e}"));
    let module = autocheck_minilang::compile(&source).expect("compiles");
    let mut sink = autocheck_interp::VecSink::default();
    autocheck_interp::Machine::new(&module, autocheck_interp::ExecOptions::default())
        .run(&mut sink, &mut autocheck_interp::NoHook)
        .expect("runs");
    let region = Region::new(function, start, end);
    let report = Analyzer::new(region.clone())
        .with_index_vars(index_variables_of(&module, &region))
        .analyze(&sink.records);
    let protected: Vec<String> = report.critical.iter().map(|c| c.name.to_string()).collect();
    println!(
        "protected set: {protected:?} ({} bytes)",
        report.checkpoint_bytes()
    );
    let cr = CrSpec {
        region_fn: region.function.clone(),
        start_line: region.start_line,
        end_line: region.end_line,
        protected,
    };
    let dir = std::env::temp_dir().join(format!("autocheck-validate-file-{}", std::process::id()));
    let out = validate_restart(&module, &cr, &dir, 0.6).expect("validation runs");
    println!(
        "failure at dyn {}, recovered step {:?}, checkpoint {} bytes: {}",
        out.failure_dyn_id,
        out.recovered_step,
        out.checkpoint_bytes,
        if out.matches { "OK" } else { "DIVERGED" }
    );
    let _ = std::fs::remove_dir_all(&dir);
    if !out.matches {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--file") {
        let get = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|j| args.get(j + 1))
                .cloned()
        };
        let path = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --file needs a path");
            std::process::exit(2);
        });
        let function = get("--function").unwrap_or_else(|| "main".to_string());
        let parse_u32 = |flag: &str| -> u32 {
            get(flag).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {flag} needs a line number");
                std::process::exit(2);
            })
        };
        validate_single_file(&path, &function, parse_u32("--start"), parse_u32("--end"));
        return;
    }
    println!("=== §VI-B: validation of detected variables (kill at 60%, restart, compare) ===\n");
    let base = std::env::temp_dir().join(format!("autocheck-validate-{}", std::process::id()));
    let mut table = Table::new(&[
        "Name",
        "Protected",
        "Ckpt bytes",
        "Recovered step",
        "Restart",
    ]);
    let mut census = std::collections::BTreeMap::new();
    let mut all_ok = true;
    for spec in all_apps() {
        let run = analyze_app(&spec);
        for c in &run.report.critical {
            *census.entry(c.dep).or_insert(0usize) += 1;
        }
        let protected: Vec<String> = run
            .report
            .critical
            .iter()
            .map(|c| c.name.to_string())
            .collect();
        let module = autocheck_minilang::compile(&spec.source).expect("compiles");
        let cr = CrSpec {
            region_fn: spec.region.function.clone(),
            start_line: spec.region.start_line,
            end_line: spec.region.end_line,
            protected: protected.clone(),
        };
        let dir = base.join(spec.name);
        let out = validate_restart(&module, &cr, &dir, 0.6).expect("validation runs");
        all_ok &= out.matches;
        table.row(vec![
            spec.name.to_string(),
            protected.len().to_string(),
            out.checkpoint_bytes.to_string(),
            out.recovered_step
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            if out.matches { "OK" } else { "DIVERGED" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    println!("dependency-type census across the suite:");
    for (dep, n) in &census {
        println!("  {dep:<8} {n}");
    }
    let war = census.get(&DepType::War).copied().unwrap_or(0);
    let rest: usize = census
        .iter()
        .filter(|(d, _)| **d != DepType::War)
        .map(|(_, n)| n)
        .sum();
    println!("\nWAR dominates ({war} vs {rest} others) — matching the paper's 76/95 skew.");
    println!(
        "\nall restarts {}",
        if all_ok { "SUCCEEDED" } else { "FAILED" }
    );
    let _ = std::fs::remove_dir_all(&base);
    if !all_ok {
        std::process::exit(1);
    }
}
