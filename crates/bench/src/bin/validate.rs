//! §VI-B reproduction: validation and characterization of the detected
//! variables — kill/restart success for all 14 benchmarks, plus the
//! dependency-type census.
//!
//! Run with: `cargo run --release -p autocheck-bench --bin validate`

use autocheck_apps::{all_apps, analyze_app};
use autocheck_bench::Table;
use autocheck_checkpoint::validate::validate_restart;
use autocheck_checkpoint::CrSpec;
use autocheck_core::DepType;

fn main() {
    println!("=== §VI-B: validation of detected variables (kill at 60%, restart, compare) ===\n");
    let base = std::env::temp_dir().join(format!("autocheck-validate-{}", std::process::id()));
    let mut table = Table::new(&[
        "Name",
        "Protected",
        "Ckpt bytes",
        "Recovered step",
        "Restart",
    ]);
    let mut census = std::collections::BTreeMap::new();
    let mut all_ok = true;
    for spec in all_apps() {
        let run = analyze_app(&spec);
        for c in &run.report.critical {
            *census.entry(c.dep).or_insert(0usize) += 1;
        }
        let protected: Vec<String> = run
            .report
            .critical
            .iter()
            .map(|c| c.name.to_string())
            .collect();
        let module = autocheck_minilang::compile(&spec.source).expect("compiles");
        let cr = CrSpec {
            region_fn: spec.region.function.clone(),
            start_line: spec.region.start_line,
            end_line: spec.region.end_line,
            protected: protected.clone(),
        };
        let dir = base.join(spec.name);
        let out = validate_restart(&module, &cr, &dir, 0.6).expect("validation runs");
        all_ok &= out.matches;
        table.row(vec![
            spec.name.to_string(),
            protected.len().to_string(),
            out.checkpoint_bytes.to_string(),
            out.recovered_step
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            if out.matches { "OK" } else { "DIVERGED" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    println!("dependency-type census across the suite:");
    for (dep, n) in &census {
        println!("  {dep:<8} {n}");
    }
    let war = census.get(&DepType::War).copied().unwrap_or(0);
    let rest: usize = census
        .iter()
        .filter(|(d, _)| **d != DepType::War)
        .map(|(_, n)| n)
        .sum();
    println!("\nWAR dominates ({war} vs {rest} others) — matching the paper's 76/95 skew.");
    println!(
        "\nall restarts {}",
        if all_ok { "SUCCEEDED" } else { "FAILED" }
    );
    let _ = std::fs::remove_dir_all(&base);
    if !all_ok {
        std::process::exit(1);
    }
}
