//! Table IV reproduction: checkpoint storage cost — BLCR-style whole-image
//! checkpoints vs AutoCheck's detected-variables-only checkpoints.
//!
//! One checkpoint of each kind is actually written to disk per benchmark
//! (via the C/R driver at the first iteration boundary) and the file sizes
//! are compared.
//!
//! Run with: `cargo run --release -p autocheck-bench --bin table4 [scale]`

use autocheck_apps::{all_apps_scaled, analyze_app, Scale};
use autocheck_bench::Table;
use autocheck_checkpoint::{BlcrSim, CrDriver, Fti, FtiConfig};
use autocheck_interp::{ExecOptions, Machine, NullSink};
use autocheck_trace::stats::human_bytes;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        _ => Scale::Large,
    };
    println!("=== Table IV: storage cost for checkpointing ({scale:?} inputs) ===\n");
    let base = std::env::temp_dir().join(format!("autocheck-table4-{}", std::process::id()));
    let mut table = Table::new(&[
        "Name",
        "BLCR (bytes)",
        "AutoCheck (bytes)",
        "Ratio",
        "Protected variables",
    ]);
    for spec in all_apps_scaled(scale) {
        let run = analyze_app(&spec);
        let module = autocheck_minilang::compile(&spec.source).expect("compiles");
        let fti_dir = base.join(format!("{}-fti", spec.name));
        let img_dir = base.join(format!("{}-img", spec.name));
        let mut fti = Fti::new(FtiConfig::local(&fti_dir)).expect("fti");
        for c in &run.report.critical {
            fti.protect(&c.name);
        }
        let blcr = BlcrSim::new(&img_dir).expect("blcr");
        let mut driver = CrDriver::new(
            &mut fti,
            &spec.region.function,
            spec.region.start_line,
            spec.region.end_line,
        )
        .expect("driver")
        .with_whole_image(blcr);
        Machine::new(&module, ExecOptions::default())
            .run(&mut NullSink, &mut driver)
            .expect("runs");
        let auto_bytes = driver.last_checkpoint_bytes;
        let img_bytes = driver.last_image_bytes;
        table.row(vec![
            spec.name.to_string(),
            human_bytes(img_bytes),
            human_bytes(auto_bytes),
            format!("{:.1}x", img_bytes as f64 / auto_bytes.max(1) as f64),
            run.report
                .critical
                .iter()
                .map(|c| c.name.to_string())
                .collect::<Vec<_>>()
                .join(","),
        ]);
    }
    println!("{}", table.render());
    println!("shape check vs the paper: AutoCheck checkpoints are a small fraction of");
    println!("whole-process images (the paper reports up to seven orders of magnitude on");
    println!("production-size inputs; the ratio here grows with the Large scale because");
    println!("the detected set excludes all the recomputable state).");
    let _ = std::fs::remove_dir_all(&base);
}
