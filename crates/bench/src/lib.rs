//! Shared plumbing for the table-regeneration binaries.
//!
//! Each binary reproduces one artifact of the paper's evaluation:
//!
//! | binary      | paper artifact | what it prints |
//! |-------------|----------------|----------------|
//! | `table2`    | Table II       | per-benchmark LOC, trace size/time, critical variables with dependency types, MCLR |
//! | `table3`    | Table III      | per-benchmark analysis-time breakdown, serial vs parallel pre-processing |
//! | `table4`    | Table IV       | per-benchmark checkpoint storage: BLCR whole-image vs AutoCheck |
//! | `validate`  | §VI-B          | restart success + false-positive sweep |
//!
//! Absolute numbers differ from the paper (the substrate is an interpreter,
//! not Clang-compiled binaries on a Xeon cluster); the *shapes* — who wins,
//! by how many orders of magnitude, what dominates the time — are the
//! reproduction targets.

use autocheck_apps::AppSpec;
use std::time::Duration;

/// Render a duration in seconds with sensible precision.
pub fn secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Render the critical set the way Table II does: `name (TYPE), ...`.
pub fn critical_cell(report: &autocheck_core::Report) -> String {
    report
        .critical
        .iter()
        .map(|c| format!("{} ({})", c.name, c.dep))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render the MCLR column: `start-end (main)`.
pub fn mclr_cell(spec: &AppSpec) -> String {
    format!(
        "{}-{} ({})",
        spec.region.start_line, spec.region.end_line, spec.region.function
    )
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}  ", c, w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * cols));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["cg".into(), "1".into()]);
        t.row(vec!["miniamr".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.50");
        assert_eq!(secs(Duration::from_micros(420)), "0.0004");
    }
}
