//! Criterion bench: streaming vs batch analysis.
//!
//! Three ways to turn one app's trace into a report: the batch analyzer
//! over pre-parsed records, the streaming engine over the same records
//! (push path), and the streaming engine pulling the textual trace through
//! the bounded reader (parse + analyze fused). The last one is the mode
//! that scales to traces bigger than memory.

use autocheck_core::{index_variables_of, Analyzer, StreamAnalyzer};
use autocheck_interp::{ExecOptions, Machine, NoHook, VecSink, WriterSink};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming-analysis");
    group.sample_size(10);
    for name in ["cg", "hpccg", "is"] {
        let spec = autocheck_apps::app_by_name(name).expect("known app");
        let module = autocheck_minilang::compile(&spec.source).expect("compiles");
        let mut sink = VecSink::default();
        Machine::new(&module, ExecOptions::default())
            .run(&mut sink, &mut NoHook)
            .expect("runs");
        let records = sink.records;
        let mut text_sink = WriterSink::new(Vec::new());
        for r in &records {
            use autocheck_interp::TraceSink as _;
            text_sink.record(r.clone()).expect("sink");
        }
        let text = text_sink.finish().expect("trace bytes");
        let index = index_variables_of(&module, &spec.region);

        group.bench_function(format!("{name}/batch-records"), |b| {
            let analyzer = Analyzer::new(spec.region.clone()).with_index_vars(index.clone());
            b.iter(|| {
                let report = analyzer.analyze(black_box(&records));
                black_box(report.critical.len())
            })
        });
        group.bench_function(format!("{name}/stream-records"), |b| {
            let analyzer = StreamAnalyzer::new(spec.region.clone()).with_index_vars(index.clone());
            b.iter(|| {
                let report = analyzer.analyze(black_box(&records)).expect("streams");
                black_box(report.critical.len())
            })
        });
        group.bench_function(format!("{name}/stream-read"), |b| {
            let analyzer = StreamAnalyzer::new(spec.region.clone()).with_index_vars(index.clone());
            b.iter(|| {
                let report = analyzer
                    .analyze_read(black_box(&text[..]))
                    .expect("streams");
                black_box(report.critical.len())
            })
        });
        // Same fused parse+analyze pull, but over the binary trace (format
        // auto-detected from the leading magic).
        let bin =
            autocheck_trace::binary::to_bytes(&records, &autocheck_trace::AnalysisCtx::current());
        group.bench_function(format!("{name}/stream-read-binary"), |b| {
            let analyzer = StreamAnalyzer::new(spec.region.clone()).with_index_vars(index.clone());
            b.iter(|| {
                let report = analyzer.analyze_read(black_box(&bin[..])).expect("streams");
                black_box(report.critical.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
