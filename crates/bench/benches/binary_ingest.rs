//! Criterion bench: trace ingest throughput, text vs binary vs raw I/O.
//!
//! The binary format's claim is that ingest cost approaches the cost of
//! just reading the bytes: fixed-width records decode with no per-line
//! scanning, no integer/float text parsing, and symbols intern exactly once
//! at open (string table in the header) instead of once per record field.
//! The `raw-read` series is the floor — a single pass over the same bytes
//! with no decoding at all — so `binary-decode / raw-read` is the overhead
//! factor of the format itself.

use autocheck_apps::hpccg;
use autocheck_interp::{ExecOptions, Machine, NoHook, WriterSink};
use autocheck_trace::{binary, AnalysisCtx, ParallelConfig, TraceSource};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn make_traces() -> (String, Vec<u8>) {
    let spec = hpccg::spec_scaled(64, 16);
    let module = autocheck_minilang::compile(&spec.source).expect("compiles");
    let mut sink = WriterSink::new(Vec::new());
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    let text = String::from_utf8(sink.finish().expect("trace")).expect("utf8");
    let records = TraceSource::from_str(&text).records().expect("parses");
    let bin = binary::to_bytes(&records, &AnalysisCtx::current());
    (text, bin)
}

fn bench_binary_ingest(c: &mut Criterion) {
    let (text, bin) = make_traces();
    let mut group = c.benchmark_group("binary-ingest");
    group.sample_size(10);

    // Raw I/O floor: one pass over the binary bytes, no decoding.
    group.throughput(Throughput::Bytes(bin.len() as u64));
    group.bench_function("raw-read", |b| {
        b.iter(|| {
            let bytes = black_box(&bin[..]);
            let mut sum = 0u64;
            for chunk in bytes.chunks(4096) {
                sum = sum.wrapping_add(chunk.iter().map(|&x| x as u64).sum::<u64>());
            }
            black_box(sum)
        })
    });

    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("text-parse", |b| {
        b.iter(|| {
            let recs = TraceSource::from_str(black_box(&text))
                .records()
                .expect("parses");
            black_box(recs.len())
        })
    });

    group.throughput(Throughput::Bytes(bin.len() as u64));
    group.bench_function("binary-decode", |b| {
        b.iter(|| {
            let recs = TraceSource::from_bytes(black_box(&bin))
                .records()
                .expect("decodes");
            black_box(recs.len())
        })
    });

    // Parallel decode over record-aligned chunks (the binary counterpart of
    // the parallel-parse bench).
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    group.throughput(Throughput::Bytes(bin.len() as u64));
    group.bench_function(format!("binary-decode-par{threads}"), |b| {
        b.iter(|| {
            let recs = TraceSource::from_bytes(black_box(&bin))
                .parallel(ParallelConfig { threads })
                .records()
                .expect("decodes");
            black_box(recs.len())
        })
    });

    // Streaming pull over a reader, both formats (the ingest path the
    // streaming analyzer uses).
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("text-stream", |b| {
        b.iter(|| {
            let n = TraceSource::from_reader(black_box(text.as_bytes()))
                .stream()
                .expect("opens")
                .fold(0usize, |n, r| {
                    r.expect("parses");
                    n + 1
                });
            black_box(n)
        })
    });
    group.throughput(Throughput::Bytes(bin.len() as u64));
    group.bench_function("binary-stream", |b| {
        b.iter(|| {
            let n = TraceSource::from_reader(black_box(&bin[..]))
                .stream()
                .expect("opens")
                .fold(0usize, |n, r| {
                    r.expect("decodes");
                    n + 1
                });
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_binary_ingest);
criterion_main!(benches);
