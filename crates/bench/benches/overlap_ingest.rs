//! Criterion bench: serial vs decode-ahead overlapped ingest of
//! file-backed traces on the two golden-pinned apps (`cg`, the largest,
//! and `is`, a small one), in both trace formats.
//!
//! Pins three points per app and format:
//! * `serial` — `overlap = 1`: the windowed (text) or streaming (binary)
//!   one-thread decode;
//! * `overlap-auto` — `overlap = 0`: serial on a single-CPU host,
//!   `min(cores, 4)` decode-ahead depth otherwise — so the pair also
//!   measures the dispatch overhead of the pipeline entry point on hosts
//!   where auto degrades;
//! * `overlap-4` — a fixed depth, so multi-core hosts record the actual
//!   read/decode overlap win independent of their core count.
//!
//! Overlapped output is byte-identical to serial by construction (see
//! `crates/apps/tests/overlap_parity.rs`); this bench tracks only the
//! wall clock.

use autocheck_apps::app_by_name;
use autocheck_interp::{ExecOptions, Machine, NoHook, WriterSink};
use autocheck_trace::{binary, AnalysisCtx, TraceSource};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

/// Trace `name` and serialize it to scratch files in both formats,
/// returning `(text path, binary path)`. Files live for the process; the
/// bench reads them repeatedly.
fn trace_files(name: &str) -> (PathBuf, PathBuf) {
    let spec = app_by_name(name).expect("known app");
    let module = autocheck_minilang::compile(&spec.source).expect("compiles");
    let mut sink = WriterSink::new(Vec::new());
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    let text = sink.finish().expect("text trace");
    let records = TraceSource::from_bytes(&text).records().expect("parses");
    let bin = binary::to_bytes(&records, &AnalysisCtx::current());
    let dir = std::env::temp_dir().join(format!("autocheck-overlap-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let text_path = dir.join(format!("{name}.txt"));
    let bin_path = dir.join(format!("{name}.bin"));
    std::fs::write(&text_path, &text).expect("write text trace");
    std::fs::write(&bin_path, &bin).expect("write binary trace");
    (text_path, bin_path)
}

fn bench_app(c: &mut Criterion, name: &str) {
    let (text_path, bin_path) = trace_files(name);
    for (fmt, path) in [("text", &text_path), ("binary", &bin_path)] {
        let mut group = c.benchmark_group(format!("overlap-ingest-{name}-{fmt}"));
        group.sample_size(10);
        for (label, overlap) in [("serial", 1usize), ("overlap-auto", 0), ("overlap-4", 4)] {
            group.bench_function(label, |b| {
                b.iter(|| {
                    let records = TraceSource::from_path(black_box(path))
                        .overlap(overlap)
                        .records()
                        .expect("trace ingests");
                    black_box(records.len())
                })
            });
        }
        group.finish();
    }
}

fn bench_cg(c: &mut Criterion) {
    bench_app(c, "cg");
}

fn bench_is(c: &mut Criterion) {
    bench_app(c, "is");
}

criterion_group!(benches, bench_cg, bench_is);
criterion_main!(benches);
