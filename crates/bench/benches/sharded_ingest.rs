//! Criterion bench: serial vs sharded single-trace analysis on the two
//! golden-pinned apps (`cg`, the largest, and `is`, a small one).
//!
//! Pins three points per app:
//! * `serial` — the plain batch fold (`shards = 1`);
//! * `sharded-auto` — `shards = 0`: one iteration-aligned shard per
//!   available core; on a single-CPU host this resolves to the serial
//!   path, so the pair also measures the dispatch overhead of the sharded
//!   entry point (expected: none);
//! * `sharded-4` — a fixed shard count, so multi-core hosts record the
//!   actual fan-out + merge cost independent of their core count.
//!
//! Sharded output is byte-identical to serial by construction (see
//! `tests/shard_parity.rs`); this bench tracks only the wall clock.

use autocheck_apps::app_by_name;
use autocheck_core::{index_variables_of, Analyzer, PipelineConfig};
use autocheck_interp::{ExecOptions, Machine, NoHook, VecSink};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn traced(
    name: &str,
) -> (
    autocheck_apps::AppSpec,
    Vec<autocheck_trace::Record>,
    Vec<String>,
) {
    let spec = app_by_name(name).expect("known app");
    let module = autocheck_minilang::compile(&spec.source).expect("compiles");
    let mut sink = VecSink::default();
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    let index = index_variables_of(&module, &spec.region);
    (spec, sink.records, index)
}

fn bench_app(c: &mut Criterion, name: &str) {
    let (spec, records, index) = traced(name);
    let mut group = c.benchmark_group(format!("sharded-ingest-{name}"));
    group.sample_size(10);
    for (label, shards) in [("serial", 1usize), ("sharded-auto", 0), ("sharded-4", 4)] {
        let analyzer = Analyzer::new(spec.region.clone())
            .with_index_vars(index.clone())
            .with_config(PipelineConfig {
                shards,
                ..PipelineConfig::default()
            });
        group.bench_function(label, |b| {
            b.iter(|| black_box(analyzer.analyze(black_box(&records)).critical.len()))
        });
    }
    group.finish();
}

fn bench_cg(c: &mut Criterion) {
    bench_app(c, "cg");
}

fn bench_is(c: &mut Criterion) {
    bench_app(c, "is");
}

criterion_group!(benches, bench_cg, bench_is);
criterion_main!(benches);
