//! Criterion bench: parallel trace parsing (the paper's §V-A OpenMP
//! optimization, reported in Table III's "with optimization" columns).
//!
//! The expected shape: throughput scales with worker threads up to the core
//! count (the paper reports ≈16× with 48 threads; on this machine the
//! ceiling is `available_parallelism`).

use autocheck_apps::hpccg;
use autocheck_interp::{ExecOptions, Machine, NoHook, WriterSink};
use autocheck_trace::{ParallelConfig, TraceSource};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn make_trace() -> String {
    let spec = hpccg::spec_scaled(64, 16);
    let module = autocheck_minilang::compile(&spec.source).expect("compiles");
    let mut sink = WriterSink::new(Vec::new());
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    String::from_utf8(sink.finish().expect("trace")).expect("utf8")
}

fn bench_parallel_parse(c: &mut Criterion) {
    let text = make_trace();
    let mut group = c.benchmark_group("parallel-parse");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let mut threads: Vec<usize> = vec![1, 2];
    if max > 2 {
        threads.push(max);
    }
    for t in threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                let recs = TraceSource::from_str(black_box(&text))
                    .parallel(ParallelConfig { threads: t })
                    .records()
                    .expect("parses");
                black_box(recs.len())
            })
        });
    }
    group.finish();
}

fn bench_chunking_overhead(c: &mut Criterion) {
    let text = make_trace();
    let mut group = c.benchmark_group("chunking");
    group.sample_size(20);
    group.bench_function("boundaries-8", |b| {
        b.iter(|| {
            black_box(autocheck_trace::chunk_boundaries(
                black_box(text.as_bytes()),
                8,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_parse, bench_chunking_overhead);
criterion_main!(benches);
