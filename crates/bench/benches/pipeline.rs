//! Criterion bench: end-to-end AutoCheck analysis per benchmark
//! (Table III's "Total Time" column as a repeatable microbenchmark).

use autocheck_apps::{analyze_app, app_by_name};
use autocheck_core::{index_variables_of, Analyzer};
use autocheck_interp::{BinarySink, ExecOptions, Machine, NoHook, VecSink, WriterSink};
use autocheck_obs::Metrics;
use autocheck_trace::AnalysisCtx;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis-pipeline");
    group.sample_size(10);
    for name in ["cg", "hpccg", "is", "comd"] {
        let spec = app_by_name(name).expect("known app");
        let module = autocheck_minilang::compile(&spec.source).expect("compiles");
        let mut sink = VecSink::default();
        Machine::new(&module, ExecOptions::default())
            .run(&mut sink, &mut NoHook)
            .expect("runs");
        let index = index_variables_of(&module, &spec.region);
        let records = sink.records;
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = Analyzer::new(spec.region.clone())
                    .with_index_vars(index.clone())
                    .analyze(black_box(&records));
                black_box(report.critical.len())
            })
        });
        // The observability overhead budget (README: <2%): the identical
        // analysis with a live metrics registry riding the ctx.
        if matches!(name, "cg" | "is") {
            let ctx = AnalysisCtx::current().with_metrics(Metrics::enabled());
            group.bench_function(format!("{name}/metrics"), |b| {
                b.iter(|| {
                    let report = Analyzer::new(spec.region.clone())
                        .with_index_vars(index.clone())
                        .with_ctx(ctx.clone())
                        .analyze(black_box(&records));
                    black_box(report.critical.len())
                })
            });
        }
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace-generation");
    group.sample_size(10);
    for name in ["cg", "sp"] {
        let spec = app_by_name(name).expect("known app");
        let module = autocheck_minilang::compile(&spec.source).expect("compiles");
        // In-memory records (no serialization), then each on-disk format:
        // execute + serialize the full trace into a buffer.
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sink = VecSink::default();
                Machine::new(&module, ExecOptions::default())
                    .run(&mut sink, &mut NoHook)
                    .expect("runs");
                black_box(sink.records.len())
            })
        });
        group.bench_function(format!("{name}/text"), |b| {
            b.iter(|| {
                let mut sink = WriterSink::new(Vec::new());
                Machine::new(&module, ExecOptions::default())
                    .run(&mut sink, &mut NoHook)
                    .expect("runs");
                black_box(sink.finish().expect("trace").len())
            })
        });
        group.bench_function(format!("{name}/binary"), |b| {
            b.iter(|| {
                let mut sink = BinarySink::new(Vec::new());
                Machine::new(&module, ExecOptions::default())
                    .run(&mut sink, &mut NoHook)
                    .expect("runs");
                black_box(sink.finish().expect("trace").len())
            })
        });
    }
    group.finish();
}

fn bench_full_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile-trace-analyze");
    group.sample_size(10);
    let spec = app_by_name("mg").expect("known app");
    group.bench_function("mg-end-to-end", |b| {
        b.iter(|| {
            let run = analyze_app(black_box(&spec));
            black_box(run.report.critical.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_trace_generation,
    bench_full_chain
);
criterion_main!(benches);
