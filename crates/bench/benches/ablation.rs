//! Criterion bench: ablations of AutoCheck's design choices (DESIGN.md §5).
//!
//! * **selective iteration** (paper §IV-B: only Table-I opcodes are
//!   examined) vs. pushing every record through the dependency machinery;
//! * **collection mode** (the paper's "arithmetic variables" wording vs.
//!   the any-access reading its own example implies);
//! * **DDG contraction** (Algorithm 1) cost relative to the rest of the
//!   dependency stage.

use autocheck_apps::app_by_name;
use autocheck_core::{
    contract_ddg, index_variables_of, Analyzer, CollectMode, DdgAnalysis, NodeKind, Phases,
    PipelineConfig,
};
use autocheck_interp::{ExecOptions, Machine, NoHook, VecSink};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn traced(
    name: &str,
) -> (
    autocheck_apps::AppSpec,
    Vec<autocheck_trace::Record>,
    Vec<String>,
) {
    let spec = app_by_name(name).expect("known app");
    let module = autocheck_minilang::compile(&spec.source).expect("compiles");
    let mut sink = VecSink::default();
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    let index = index_variables_of(&module, &spec.region);
    (spec, sink.records, index)
}

fn bench_selective_iteration(c: &mut Criterion) {
    let (spec, records, index) = traced("hpccg");
    let mut group = c.benchmark_group("ablation-selective");
    group.sample_size(10);
    for (label, selective) in [("selective", true), ("exhaustive", false)] {
        let analyzer = Analyzer::new(spec.region.clone())
            .with_index_vars(index.clone())
            .with_config(PipelineConfig {
                selective,
                ..PipelineConfig::default()
            });
        group.bench_function(label, |b| {
            b.iter(|| black_box(analyzer.analyze(black_box(&records)).critical.len()))
        });
    }
    group.finish();
}

fn bench_collect_mode(c: &mut Criterion) {
    let (spec, records, index) = traced("cg");
    let mut group = c.benchmark_group("ablation-collect-mode");
    group.sample_size(10);
    for (label, collect) in [
        ("any-access", CollectMode::AnyAccess),
        ("arithmetic", CollectMode::Arithmetic),
    ] {
        let analyzer = Analyzer::new(spec.region.clone())
            .with_index_vars(index.clone())
            .with_config(PipelineConfig {
                collect,
                ..PipelineConfig::default()
            });
        group.bench_function(label, |b| {
            b.iter(|| black_box(analyzer.analyze(black_box(&records)).mli.len()))
        });
    }
    group.finish();
}

fn bench_contraction(c: &mut Criterion) {
    let (spec, records, index) = traced("is");
    let analyzer = Analyzer::new(spec.region.clone()).with_index_vars(index);
    let report = analyzer.analyze(&records);
    let phases = Phases::compute(&records, &spec.region);
    let analysis = DdgAnalysis::run(&records, &phases, &report.mli, true);
    let bases: std::collections::HashSet<u64> = report.mli.iter().map(|m| m.base_addr).collect();
    let mut group = c.benchmark_group("ablation-contraction");
    group.sample_size(20);
    group.bench_function("ddg-build", |b| {
        b.iter(|| {
            black_box(
                DdgAnalysis::run(black_box(&records), &phases, &report.mli, true)
                    .graph
                    .len(),
            )
        })
    });
    group.bench_function("contract-algorithm1", |b| {
        b.iter(|| {
            let c = contract_ddg(
                black_box(&analysis.graph),
                |n| matches!(n, NodeKind::Var { base, .. } if bases.contains(base)),
            );
            black_box(c.nodes.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_selective_iteration,
    bench_collect_mode,
    bench_contraction
);
criterion_main!(benches);
