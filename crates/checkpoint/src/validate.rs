//! The paper's §VI-B validation experiment, packaged.
//!
//! For a program and a protected-variable set:
//!
//! 1. run failure-free → reference output;
//! 2. run with checkpointing and kill the execution at a chosen fraction of
//!    the reference run's dynamic instruction count (the simulated
//!    `raise(SIGTERM)`);
//! 3. restart from the latest checkpoint and run to completion;
//! 4. compare outputs bit-for-bit.
//!
//! A restart that matches proves the protected set *sufficient*; rerunning
//! with one variable dropped and observing divergence proves that variable
//! *necessary* (the paper's false-positive check).

use crate::driver::CrDriver;
use crate::fti::{Fti, FtiConfig};
use autocheck_interp::{ExecError, ExecOptions, Machine, NoHook, NullSink};
use autocheck_ir::Module;
use std::io;
use std::path::Path;

/// What to protect and where the loop is.
#[derive(Clone, Debug)]
pub struct CrSpec {
    /// Function containing the main loop.
    pub region_fn: String,
    /// Loop start line.
    pub start_line: u32,
    /// Loop end line.
    pub end_line: u32,
    /// Variables to protect (AutoCheck's critical set).
    pub protected: Vec<String>,
}

/// Result of one kill/restart experiment.
#[derive(Clone, Debug)]
pub struct ValidationOutcome {
    /// Output of the failure-free run.
    pub reference: Vec<String>,
    /// Output of the killed-then-restarted run.
    pub restart_output: Vec<String>,
    /// True when the restarted run's output is the tail of the reference
    /// output (everything from the recovered iteration onward matches
    /// bit-for-bit).
    pub matches: bool,
    /// Dynamic instruction at which the failure was injected.
    pub failure_dyn_id: u64,
    /// Step recovered from (None = no checkpoint had been written yet).
    pub recovered_step: Option<u64>,
    /// Size in bytes of one FTI checkpoint of the protected set.
    pub checkpoint_bytes: u64,
    /// Iterations the reference run performed (from the interrupted run's
    /// driver; informational).
    pub iterations_before_failure: u64,
}

/// Run the full kill/restart/compare experiment.
///
/// `fail_fraction` ∈ (0, 1) chooses the failure point as a fraction of the
/// failure-free run's dynamic instruction count.
pub fn validate_restart(
    module: &Module,
    spec: &CrSpec,
    ckpt_dir: &Path,
    fail_fraction: f64,
) -> io::Result<ValidationOutcome> {
    // 1. Reference run.
    let reference = {
        let mut m = Machine::new(module, ExecOptions::default());
        m.run(&mut NullSink, &mut NoHook)
            .map_err(|e| io::Error::other(format!("reference run failed: {e}")))?
    };
    let fail_at = ((reference.steps as f64) * fail_fraction).max(1.0) as u64;

    // 2. Checkpointed run, killed at `fail_at`.
    let mut fti = Fti::new(FtiConfig::local(ckpt_dir))?;
    fti.wipe()?;
    for name in &spec.protected {
        fti.protect(name);
    }
    let iterations_before_failure;
    let checkpoint_bytes;
    {
        let mut driver = CrDriver::new(&mut fti, &spec.region_fn, spec.start_line, spec.end_line)?;
        let mut machine = Machine::new(
            module,
            ExecOptions {
                fail_after: Some(fail_at),
                ..ExecOptions::default()
            },
        );
        match machine.run(&mut NullSink, &mut driver) {
            Err(ExecError::Interrupted { .. }) => {}
            Err(e) => return Err(io::Error::other(format!("killed run failed oddly: {e}"))),
            Ok(_) => {
                return Err(io::Error::other(
                    "failure point beyond program end; lower fail_fraction",
                ))
            }
        }
        if let Some(e) = driver.error.take() {
            return Err(e);
        }
        iterations_before_failure = driver.iterations_seen();
        checkpoint_bytes = driver.last_checkpoint_bytes;
    }

    // 3. Restart.
    let mut driver = CrDriver::new(&mut fti, &spec.region_fn, spec.start_line, spec.end_line)?;
    let recovered_step = match driver.mode {
        crate::driver::DriverMode::Recovered { step } => Some(step),
        crate::driver::DriverMode::Fresh => None,
    };
    let mut machine = Machine::new(module, ExecOptions::default());
    let restarted = machine
        .run(&mut NullSink, &mut driver)
        .map_err(|e| io::Error::other(format!("restart run failed: {e}")))?;
    if let Some(e) = driver.error.take() {
        return Err(e);
    }

    // 4. Compare. The restarted run reproduces execution from the
    // recovered iteration onward, so its output must equal the *tail* of
    // the failure-free output (per-iteration prints from earlier, completed
    // iterations belong to the killed run's log). A fresh restart (no
    // checkpoint yet) reproduces the full output, which is trivially its
    // own tail.
    let matches = !restarted.output.is_empty() && reference.output.ends_with(&restarted.output);
    Ok(ValidationOutcome {
        reference: reference.output,
        restart_output: restarted.output,
        matches,
        failure_dyn_id: fail_at,
        recovered_step,
        checkpoint_bytes,
        iterations_before_failure,
    })
}

/// The false-positive check: validate with `drop` removed from the
/// protected set. For a genuinely critical variable the restart must
/// diverge (`matches == false`).
pub fn validate_with_dropped(
    module: &Module,
    spec: &CrSpec,
    drop: &str,
    ckpt_dir: &Path,
    fail_fraction: f64,
) -> io::Result<ValidationOutcome> {
    let reduced = CrSpec {
        protected: spec
            .protected
            .iter()
            .filter(|p| *p != drop)
            .cloned()
            .collect(),
        ..spec.clone()
    };
    validate_restart(module, &reduced, ckpt_dir, fail_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// A two-variable kernel: `acc` (WAR) and `hist` (RAPO-style partial
    /// writes), with an Outcome print after the loop. Loop lines 5..=8.
    const PROG: &str = "\
int main() {
    int acc = 0;
    int hist[8];
    for (int i = 0; i < 8; i = i + 1) { hist[i] = 1; }
    for (int it = 0; it < 8; it = it + 1) {
        hist[it] = hist[it] + acc;
        acc = acc + it + 1;
    }
    for (int i = 0; i < 8; i = i + 1) { print(hist[i]); }
    print(acc);
    return 0;
}
";

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("autocheck-validate-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn spec() -> CrSpec {
        CrSpec {
            region_fn: "main".into(),
            start_line: 5,
            end_line: 8,
            protected: vec!["acc".into(), "hist".into(), "it".into()],
        }
    }

    #[test]
    fn full_protection_restores_exactly() {
        let dir = tmpdir("full");
        let module = autocheck_minilang::compile(PROG).unwrap();
        let out = validate_restart(&module, &spec(), &dir, 0.6).unwrap();
        assert!(out.matches, "restart must reproduce the reference output");
        assert!(out.recovered_step.is_some());
        assert!(out.checkpoint_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multiple_failure_points_all_recover() {
        let dir = tmpdir("sweep");
        let module = autocheck_minilang::compile(PROG).unwrap();
        for frac in [0.3, 0.5, 0.7, 0.9] {
            let out = validate_restart(&module, &spec(), &dir, frac).unwrap();
            assert!(out.matches, "failure at {frac} must recover");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropping_war_variable_diverges() {
        let dir = tmpdir("drop-acc");
        let module = autocheck_minilang::compile(PROG).unwrap();
        let out = validate_with_dropped(&module, &spec(), "acc", &dir, 0.6).unwrap();
        assert!(!out.matches);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropping_index_variable_diverges() {
        let dir = tmpdir("drop-it");
        let module = autocheck_minilang::compile(PROG).unwrap();
        let out = validate_with_dropped(&module, &spec(), "it", &dir, 0.6).unwrap();
        assert!(!out.matches, "without `it` the loop restarts from 0");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn early_failure_before_any_checkpoint_restarts_fresh() {
        let dir = tmpdir("early");
        let module = autocheck_minilang::compile(PROG).unwrap();
        // Fail extremely early: before the loop's first sync-point write.
        let out = validate_restart(&module, &spec(), &dir, 0.01).unwrap();
        assert!(out.matches, "fresh restart still yields correct output");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
