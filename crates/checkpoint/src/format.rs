//! The on-disk checkpoint container: length-prefixed binary with a CRC-64
//! trailer.
//!
//! ```text
//! magic "ACKP" | version u32 | step u64 | count u32
//! repeat count: name_len u32 | name bytes | data_len u64 | data bytes
//! crc64 u64   (over everything before the trailer)
//! ```
//!
//! All integers little-endian. No serde: the format is simple enough to own
//! outright, and owning it keeps the CRC coverage explicit.

use crate::crc::crc64;
use std::io;

const MAGIC: &[u8; 4] = b"ACKP";
const VERSION: u32 = 1;

/// One named variable payload.
pub type VarBytes = (String, Vec<u8>);

/// Encode a checkpoint payload.
pub fn encode(step: u64, vars: &[VarBytes]) -> Vec<u8> {
    let body_len: usize = vars
        .iter()
        .map(|(n, d)| 4 + n.len() + 8 + d.len())
        .sum::<usize>()
        + 4
        + 4
        + 8
        + 4;
    let mut out = Vec::with_capacity(body_len + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&step.to_le_bytes());
    out.extend_from_slice(&(vars.len() as u32).to_le_bytes());
    for (name, data) in vars {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(data);
    }
    let crc = crc64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode and verify a checkpoint payload.
pub fn decode(bytes: &[u8]) -> io::Result<(u64, Vec<VarBytes>)> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if bytes.len() < 4 + 4 + 8 + 4 + 8 {
        return Err(err("checkpoint too short"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored_crc = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if crc64(body) != stored_crc {
        return Err(err("checkpoint CRC mismatch"));
    }
    let mut p = Cursor { buf: body, pos: 0 };
    if p.take(4)? != &MAGIC[..] {
        return Err(err("bad checkpoint magic"));
    }
    let version = p.u32()?;
    if version != VERSION {
        return Err(err("unsupported checkpoint version"));
    }
    let step = p.u64()?;
    let count = p.u32()? as usize;
    let mut vars = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = p.u32()? as usize;
        let name = String::from_utf8(p.take(name_len)?.to_vec())
            .map_err(|_| err("checkpoint variable name is not UTF-8"))?;
        let data_len = p.u64()? as usize;
        let data = p.take(data_len)?.to_vec();
        vars.push((name, data));
    }
    if p.pos != body.len() {
        return Err(err("trailing bytes in checkpoint"));
    }
    Ok((step, vars))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated checkpoint",
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<VarBytes> {
        vec![
            ("r".to_string(), 42i64.to_le_bytes().to_vec()),
            ("a".to_string(), vec![7u8; 80]),
            ("sum".to_string(), vec![]),
        ]
    }

    #[test]
    fn round_trip() {
        let enc = encode(17, &sample());
        let (step, vars) = decode(&enc).unwrap();
        assert_eq!(step, 17);
        assert_eq!(vars, sample());
    }

    #[test]
    fn corruption_is_detected() {
        let mut enc = encode(3, &sample());
        let mid = enc.len() / 2;
        enc[mid] ^= 0xff;
        let e = decode(&enc).unwrap_err();
        assert!(e.to_string().contains("CRC"));
    }

    #[test]
    fn truncation_is_detected() {
        let enc = encode(3, &sample());
        assert!(decode(&enc[..enc.len() - 1]).is_err());
        assert!(decode(&enc[..10]).is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let enc = encode(0, &[]);
        let (step, vars) = decode(&enc).unwrap();
        assert_eq!(step, 0);
        assert!(vars.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut enc = encode(1, &sample());
        enc[0] = b'X';
        // Fix the CRC so only the magic is wrong.
        let len = enc.len();
        let crc = crate::crc::crc64(&enc[..len - 8]);
        enc[len - 8..].copy_from_slice(&crc.to_le_bytes());
        let e = decode(&enc).unwrap_err();
        assert!(e.to_string().contains("magic"));
    }
}
