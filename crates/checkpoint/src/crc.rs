//! CRC-64 (ECMA-182 polynomial) for checkpoint integrity.
//!
//! Hand-rolled (table-driven) so the checkpoint path has no external
//! dependencies; FTI likewise embeds its own integrity hashing.

const POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// Precomputed lookup table.
static TABLE: [u64; 256] = build_table();

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u64) << 56;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & (1u64 << 63) != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-64 hasher.
#[derive(Clone, Copy, Debug)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// Fresh hasher.
    pub fn new() -> Crc64 {
        Crc64 { state: 0 }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state >> 56) as u8 ^ b) as usize;
            self.state = (self.state << 8) ^ TABLE[idx];
        }
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot CRC of a byte slice.
pub fn crc64(data: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc64(&[]), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc64(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc64(&corrupted), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut c = Crc64::new();
        c.update(&data[..100]);
        c.update(&data[100..]);
        assert_eq!(c.finish(), crc64(&data));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(crc64(b"checkpoint-1"), crc64(b"checkpoint-2"));
        assert_ne!(crc64(b"ab"), crc64(b"ba"));
    }
}
