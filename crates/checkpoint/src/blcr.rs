//! BLCR-style whole-image checkpointing.
//!
//! Berkeley Lab Checkpoint/Restart saves the *entire process state*; the
//! paper's Table IV uses it as the storage-cost baseline. Our equivalent
//! serializes the interpreter's full memory image (globals segment + live
//! stack). The interpreter's deterministic layout means a dump can also be
//! restored into a fresh run at the same execution point, which the
//! validation tests exercise.

use crate::crc::crc64;
use autocheck_interp::MemoryImage;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"BLCR";

/// Whole-image checkpointer.
#[derive(Debug)]
pub struct BlcrSim {
    dir: PathBuf,
    bytes_written: u64,
}

impl BlcrSim {
    /// Create the checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<BlcrSim> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(BlcrSim {
            dir,
            bytes_written: 0,
        })
    }

    fn path(&self, step: u64) -> PathBuf {
        self.dir.join(format!("image_{step:012}.blcr"))
    }

    /// Serialize an image.
    pub fn encode(img: &MemoryImage) -> Vec<u8> {
        let mut out = Vec::with_capacity(img.globals.len() + img.stack.len() + 32);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(img.globals.len() as u64).to_le_bytes());
        out.extend_from_slice(&img.globals);
        out.extend_from_slice(&(img.stack.len() as u64).to_le_bytes());
        out.extend_from_slice(&img.stack);
        let crc = crc64(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserialize an image.
    pub fn decode(bytes: &[u8]) -> io::Result<MemoryImage> {
        let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        if bytes.len() < 4 + 8 + 8 + 8 {
            return Err(err("image too short"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8"));
        if crc64(body) != stored {
            return Err(err("image CRC mismatch"));
        }
        if &body[..4] != MAGIC {
            return Err(err("bad image magic"));
        }
        let glen = u64::from_le_bytes(body[4..12].try_into().expect("8")) as usize;
        let gend = 12 + glen;
        if body.len() < gend + 8 {
            return Err(err("truncated globals segment"));
        }
        let globals = body[12..gend].to_vec();
        let slen = u64::from_le_bytes(body[gend..gend + 8].try_into().expect("8")) as usize;
        let send = gend + 8 + slen;
        if body.len() != send {
            return Err(err("truncated stack segment"));
        }
        let stack = body[gend + 8..send].to_vec();
        Ok(MemoryImage { globals, stack })
    }

    /// Write the image for `step`; returns the file size — the BLCR column
    /// of Table IV.
    pub fn checkpoint(&mut self, step: u64, img: &MemoryImage) -> io::Result<u64> {
        let bytes = Self::encode(img);
        let final_path = self.path(step);
        let tmp = final_path.with_extension("tmp");
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &final_path)?;
        self.bytes_written += bytes.len() as u64;
        Ok(bytes.len() as u64)
    }

    /// Read back the image for `step`.
    pub fn restore(&self, step: u64) -> io::Result<MemoryImage> {
        Self::decode(&fs::read(self.path(step))?)
    }

    /// Latest available step, if any.
    pub fn latest(&self) -> io::Result<Option<u64>> {
        let mut best = None;
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(step) = name
                .strip_prefix("image_")
                .and_then(|s| s.strip_suffix(".blcr"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                best = best.max(Some(step));
            }
        }
        Ok(best)
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The size one checkpoint of `img` would occupy, without writing it.
    pub fn image_size(img: &MemoryImage) -> u64 {
        img.byte_size() + 4 + 8 + 8 + 8
    }
}

/// Helper for cleaning test/bench directories.
pub fn remove_dir(dir: &Path) {
    let _ = fs::remove_dir_all(dir);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img() -> MemoryImage {
        MemoryImage {
            globals: (0..64u8).collect(),
            stack: (0..32u8).rev().collect(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("autocheck-blcr-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn encode_decode_round_trip() {
        let i = img();
        let dec = BlcrSim::decode(&BlcrSim::encode(&i)).unwrap();
        assert_eq!(dec, i);
    }

    #[test]
    fn checkpoint_restore_via_disk() {
        let dir = tmpdir("disk");
        let mut b = BlcrSim::new(&dir).unwrap();
        let size = b.checkpoint(7, &img()).unwrap();
        assert_eq!(size, BlcrSim::image_size(&img()));
        assert_eq!(b.latest().unwrap(), Some(7));
        assert_eq!(b.restore(7).unwrap(), img());
        remove_dir(&dir);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = BlcrSim::encode(&img());
        bytes[20] ^= 1;
        assert!(BlcrSim::decode(&bytes).is_err());
    }

    #[test]
    fn image_size_dominates_payload() {
        let i = img();
        assert!(BlcrSim::image_size(&i) >= i.byte_size());
    }
}
