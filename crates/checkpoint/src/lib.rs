//! Application-level checkpoint/restart — the FTI substitute — plus a
//! BLCR-style whole-image checkpointer and the paper's §VI-B validation
//! harness.
//!
//! The paper validates AutoCheck by protecting the detected variables with
//! FTI (level L1, local checkpoints), killing the run mid-loop with
//! `raise(SIGTERM)`, restarting, and comparing outputs with a failure-free
//! execution; it then shows (Table IV) that checkpointing only the detected
//! variables costs orders of magnitude less storage than BLCR's
//! whole-process images. This crate rebuilds that experimental apparatus:
//!
//! * [`fti`] — a protect/checkpoint/recover library writing versioned,
//!   CRC-guarded, atomically-committed checkpoint files to a local
//!   directory (FTI's L1), with an optional duplicate directory (a stand-in
//!   for FTI's higher reliability levels);
//! * [`blcr`] — serialization of the interpreter's entire memory image,
//!   BLCR's "save everything" model, used for the Table IV comparison and
//!   as a second restart mechanism;
//! * [`driver`] — an interpreter hook implementing the paper's C/R
//!   insertion points: restore right before the main loop starts working,
//!   write one checkpoint per completed iteration;
//! * [`validate`] — the kill/restart/compare experiment, including the
//!   false-positive check (drop one protected variable and observe the
//!   restart diverge).

pub mod blcr;
pub mod crc;
pub mod driver;
pub mod format;
pub mod fti;
pub mod validate;

pub use blcr::BlcrSim;
pub use driver::{CrDriver, DriverMode};
pub use fti::{Checkpoint, Fti, FtiConfig};
pub use validate::{validate_restart, CrSpec, ValidationOutcome};
