//! The C/R insertion driver — an interpreter hook implementing the paper's
//! §II-B checkpoint placement.
//!
//! The paper inserts *reading checkpoints* right before the main
//! computation loop and *writing checkpoints* at the end of each iteration.
//! The driver realizes both with one mechanism: a **sync point** at the
//! first body line of every iteration (equivalently, immediately after the
//! previous iteration finished and the induction step ran — the same
//! consistency point, observed from the next iteration's side):
//!
//! * sync point #1 fires before any iteration work: if a checkpoint exists,
//!   the protected variables (including the induction variable) are
//!   restored there — execution then proceeds from the checkpointed
//!   iteration;
//! * sync point #k (k ≥ 2) marks the completion of an iteration: the
//!   protected variables are captured and an FTI checkpoint is written.
//!
//! Sync points are detected line-granularly: an arrival at the loop's start
//! line *arms* the driver, and the next region-function line inside the
//! loop body triggers. This works for `for` and `while` loops alike and is
//! insensitive to nested calls and inner loops.

use crate::blcr::BlcrSim;
use crate::format::VarBytes;
use crate::fti::{Checkpoint, Fti};
use autocheck_interp::{ExecHook, HookAction, HookCtx};
use std::io;

/// Whether the driver started fresh or restored a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverMode {
    /// No checkpoint existed; the run starts from scratch.
    Fresh,
    /// A checkpoint was found and will be restored at the first sync point.
    Recovered {
        /// The iteration the checkpoint captured.
        step: u64,
    },
}

/// The checkpoint/restart execution driver.
pub struct CrDriver<'f> {
    fti: &'f mut Fti,
    region_fn: String,
    start_line: u32,
    end_line: u32,
    /// Checkpoint every `interval` iterations.
    interval: u64,
    armed: bool,
    sync_count: u64,
    pending_restore: Option<Checkpoint>,
    /// Optional BLCR-style whole-image checkpointing alongside FTI, for the
    /// Table IV storage comparison.
    whole_image: Option<BlcrSim>,
    /// First I/O or restore failure, surfaced after the run.
    pub error: Option<io::Error>,
    /// Size of the last checkpoint written (bytes).
    pub last_checkpoint_bytes: u64,
    /// Size of the last whole-image checkpoint written (bytes).
    pub last_image_bytes: u64,
    /// How the run started.
    pub mode: DriverMode,
}

impl<'f> CrDriver<'f> {
    /// Create a driver over `fti` for the loop at
    /// `region_fn:start_line..=end_line`. Protected variables must already
    /// be registered on `fti`; recovery state is probed immediately (like
    /// `FTI_Init`).
    pub fn new(
        fti: &'f mut Fti,
        region_fn: &str,
        start_line: u32,
        end_line: u32,
    ) -> io::Result<CrDriver<'f>> {
        let pending = fti.recover()?;
        let mode = match &pending {
            Some(c) => DriverMode::Recovered { step: c.step },
            None => DriverMode::Fresh,
        };
        Ok(CrDriver {
            fti,
            region_fn: region_fn.to_string(),
            start_line,
            end_line,
            interval: 1,
            armed: false,
            sync_count: 0,
            pending_restore: pending,
            whole_image: None,
            error: None,
            last_checkpoint_bytes: 0,
            last_image_bytes: 0,
            mode,
        })
    }

    /// Checkpoint every `interval` iterations (default 1).
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.interval = interval.max(1);
        self
    }

    /// Also write BLCR-style whole-memory images (Table IV measurement).
    pub fn with_whole_image(mut self, blcr: BlcrSim) -> Self {
        self.whole_image = Some(blcr);
        self
    }

    /// Completed iterations observed (sync points after the first).
    pub fn iterations_seen(&self) -> u64 {
        self.sync_count.saturating_sub(1)
    }

    /// The BLCR handle back, if one was attached.
    pub fn into_whole_image(self) -> Option<BlcrSim> {
        self.whole_image
    }

    fn capture(&mut self, ctx: &HookCtx<'_>) -> Result<Vec<VarBytes>, io::Error> {
        let mut vars = Vec::with_capacity(self.fti.protected().len());
        for name in self.fti.protected().to_vec() {
            match ctx.read_var(&name) {
                Some(data) => vars.push((name, data)),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("protected variable `{name}` not resolvable at sync point"),
                    ))
                }
            }
        }
        Ok(vars)
    }
}

impl ExecHook for CrDriver<'_> {
    fn on_line(&mut self, ctx: &mut HookCtx<'_>, func: &str, line: u32) -> HookAction {
        if func != self.region_fn {
            return HookAction::Continue;
        }
        if line == self.start_line {
            self.armed = true;
            return HookAction::Continue;
        }
        if !(self.armed && line > self.start_line && line <= self.end_line) {
            return HookAction::Continue;
        }
        self.armed = false;
        self.sync_count += 1;

        if self.sync_count == 1 {
            if let Some(ckpt) = self.pending_restore.take() {
                for (name, data) in &ckpt.vars {
                    if !ctx.write_var(name, data) {
                        self.error = Some(io::Error::new(
                            io::ErrorKind::NotFound,
                            format!("cannot restore `{name}`"),
                        ));
                        return HookAction::Interrupt;
                    }
                }
            }
            return HookAction::Continue;
        }

        let step = self.sync_count - 1; // start of iteration `step`
        if !step.is_multiple_of(self.interval) {
            return HookAction::Continue;
        }
        let vars = match self.capture(ctx) {
            Ok(v) => v,
            Err(e) => {
                self.error = Some(e);
                return HookAction::Interrupt;
            }
        };
        self.last_checkpoint_bytes = Fti::encoded_size(&vars);
        if let Err(e) = self.fti.checkpoint(step, &vars) {
            self.error = Some(e);
            return HookAction::Interrupt;
        }
        if let Some(blcr) = &mut self.whole_image {
            match blcr.checkpoint(step, &ctx.mem.image()) {
                Ok(size) => self.last_image_bytes = size,
                Err(e) => {
                    self.error = Some(e);
                    return HookAction::Interrupt;
                }
            }
        }
        HookAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fti::FtiConfig;
    use autocheck_interp::{ExecOptions, Machine, NullSink};
    use std::path::PathBuf;

    /// acc accumulates it+1 each iteration (WAR); loop lines 4..=6.
    const PROG: &str = "\
int main() {
    int acc = 0;
    int scale = 2;
    for (int it = 0; it < 8; it = it + 1) {
        acc = acc + (it + 1) * scale;
    }
    print(acc);
    return 0;
}
";

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("autocheck-driver-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn writes_one_checkpoint_per_iteration() {
        let dir = tmpdir("per-iter");
        let module = autocheck_minilang::compile(PROG).unwrap();
        let mut fti = Fti::new(FtiConfig::local(&dir)).unwrap();
        fti.protect("acc");
        fti.protect("it");
        let mut driver = CrDriver::new(&mut fti, "main", 4, 6).unwrap();
        assert_eq!(driver.mode, DriverMode::Fresh);
        let mut machine = Machine::new(&module, ExecOptions::default());
        let out = machine.run(&mut NullSink, &mut driver).unwrap();
        // 8 iterations → sync points 1..=8; checkpoints at steps 1..=7.
        assert_eq!(driver.iterations_seen(), 7);
        assert!(driver.error.is_none());
        assert_eq!(out.output, vec!["72".to_string()]); // 2*(1+..+8)
        assert_eq!(fti.checkpoints_written(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_and_restart_reproduces_output() {
        let dir = tmpdir("restart");
        let module = autocheck_minilang::compile(PROG).unwrap();

        // Reference.
        let reference = {
            let mut m = Machine::new(&module, ExecOptions::default());
            m.run(&mut NullSink, &mut autocheck_interp::NoHook)
                .unwrap()
                .output
        };
        let total = {
            let mut m = Machine::new(&module, ExecOptions::default());
            m.run(&mut NullSink, &mut autocheck_interp::NoHook)
                .unwrap()
                .steps
        };

        // Run with checkpointing, kill at ~60%.
        let mut fti = Fti::new(FtiConfig::local(&dir)).unwrap();
        fti.protect("acc");
        fti.protect("it");
        {
            let mut driver = CrDriver::new(&mut fti, "main", 4, 6).unwrap();
            let mut machine = Machine::new(
                &module,
                ExecOptions {
                    fail_after: Some(total * 6 / 10),
                    ..ExecOptions::default()
                },
            );
            let err = machine.run(&mut NullSink, &mut driver).unwrap_err();
            assert!(matches!(
                err,
                autocheck_interp::ExecError::Interrupted { .. }
            ));
        }

        // Restart: recovery kicks in at the first sync point.
        let mut driver = CrDriver::new(&mut fti, "main", 4, 6).unwrap();
        assert!(matches!(driver.mode, DriverMode::Recovered { .. }));
        let mut machine = Machine::new(&module, ExecOptions::default());
        let out = machine.run(&mut NullSink, &mut driver).unwrap();
        assert_eq!(out.output, reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_without_protecting_acc_diverges() {
        let dir = tmpdir("falsepos");
        let module = autocheck_minilang::compile(PROG).unwrap();
        let reference = {
            let mut m = Machine::new(&module, ExecOptions::default());
            m.run(&mut NullSink, &mut autocheck_interp::NoHook)
                .unwrap()
                .output
        };
        let total = {
            let mut m = Machine::new(&module, ExecOptions::default());
            m.run(&mut NullSink, &mut autocheck_interp::NoHook)
                .unwrap()
                .steps
        };
        // Protect only `it` — dropping the WAR variable `acc`.
        let mut fti = Fti::new(FtiConfig::local(&dir)).unwrap();
        fti.protect("it");
        {
            let mut driver = CrDriver::new(&mut fti, "main", 4, 6).unwrap();
            let mut machine = Machine::new(
                &module,
                ExecOptions {
                    fail_after: Some(total * 6 / 10),
                    ..ExecOptions::default()
                },
            );
            let _ = machine.run(&mut NullSink, &mut driver).unwrap_err();
        }
        let mut driver = CrDriver::new(&mut fti, "main", 4, 6).unwrap();
        let mut machine = Machine::new(&module, ExecOptions::default());
        let out = machine.run(&mut NullSink, &mut driver).unwrap();
        assert_ne!(
            out.output, reference,
            "dropping the WAR variable must corrupt the restart"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interval_thins_checkpoints() {
        let dir = tmpdir("interval");
        let module = autocheck_minilang::compile(PROG).unwrap();
        let mut fti = Fti::new(FtiConfig::local(&dir)).unwrap();
        fti.protect("acc");
        fti.protect("it");
        let mut driver = CrDriver::new(&mut fti, "main", 4, 6)
            .unwrap()
            .with_interval(3);
        let mut machine = Machine::new(&module, ExecOptions::default());
        machine.run(&mut NullSink, &mut driver).unwrap();
        assert_eq!(fti.checkpoints_written(), 2, "steps 3 and 6 only");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn whole_image_checkpoints_are_larger_than_fti() {
        let dir = tmpdir("img-fti");
        let img_dir = tmpdir("img-blcr");
        // A program with real state beyond the protected variables: the
        // whole-image dump must pay for `big` while FTI only stores
        // acc + it.
        let prog = "\
int main() {
    int acc = 0;
    float big[256];
    for (int i = 0; i < 256; i = i + 1) { big[i] = float(i); }
    for (int it = 0; it < 8; it = it + 1) {
        acc = acc + it + int(big[it]);
    }
    print(acc);
    return 0;
}
";
        let module = autocheck_minilang::compile(prog).unwrap();
        let mut fti = Fti::new(FtiConfig::local(&dir)).unwrap();
        fti.protect("acc");
        fti.protect("it");
        let blcr = BlcrSim::new(&img_dir).unwrap();
        let mut driver = CrDriver::new(&mut fti, "main", 5, 7)
            .unwrap()
            .with_whole_image(blcr);
        let mut machine = Machine::new(&module, ExecOptions::default());
        machine.run(&mut NullSink, &mut driver).unwrap();
        assert!(driver.last_image_bytes > driver.last_checkpoint_bytes);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&img_dir).unwrap();
    }
}
