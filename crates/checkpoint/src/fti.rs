//! The FTI-style checkpoint library: protect / checkpoint / recover.
//!
//! Mirrors the FTI API surface the paper uses (level L1 — local storage):
//! the application *protects* named buffers, writes a checkpoint at the end
//! of each main-loop iteration, and on restart *recovers* the most recent
//! valid checkpoint. Durability details follow production practice:
//!
//! * checkpoints are committed atomically (write to `*.tmp`, fsync-free
//!   rename — a crash mid-write never corrupts an existing checkpoint);
//! * each file carries a CRC-64 trailer; recovery skips corrupt files and
//!   falls back to the newest older valid one;
//! * the last `keep_last` checkpoints are retained, older ones pruned;
//! * an optional mirror directory duplicates every checkpoint — a stand-in
//!   for FTI's partner-copy levels (L2+).

use crate::format::{decode, encode, VarBytes};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Configuration for an [`Fti`] instance.
#[derive(Clone, Debug)]
pub struct FtiConfig {
    /// Local checkpoint directory (FTI L1).
    pub dir: PathBuf,
    /// How many recent checkpoints to retain.
    pub keep_last: usize,
    /// Optional mirror directory (partner copy, FTI L2-style).
    pub mirror: Option<PathBuf>,
}

impl FtiConfig {
    /// L1-only configuration with the default retention of 2.
    pub fn local(dir: impl Into<PathBuf>) -> FtiConfig {
        FtiConfig {
            dir: dir.into(),
            keep_last: 2,
            mirror: None,
        }
    }
}

/// A recovered checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// The step (main-loop iteration) the checkpoint captured.
    pub step: u64,
    /// Protected variable payloads, in protection order.
    pub vars: Vec<VarBytes>,
}

impl Checkpoint {
    /// Payload of variable `name`.
    pub fn var(&self, name: &str) -> Option<&[u8]> {
        self.vars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_slice())
    }
}

/// The checkpoint library handle.
#[derive(Debug)]
pub struct Fti {
    cfg: FtiConfig,
    protected: Vec<String>,
    checkpoints_written: u64,
    bytes_written: u64,
}

impl Fti {
    /// Initialize: creates the checkpoint directory (and mirror).
    pub fn new(cfg: FtiConfig) -> io::Result<Fti> {
        fs::create_dir_all(&cfg.dir)?;
        if let Some(m) = &cfg.mirror {
            fs::create_dir_all(m)?;
        }
        Ok(Fti {
            cfg,
            protected: Vec::new(),
            checkpoints_written: 0,
            bytes_written: 0,
        })
    }

    /// Register a variable for checkpointing (FTI_Protect).
    pub fn protect(&mut self, name: &str) {
        if !self.protected.iter().any(|p| p == name) {
            self.protected.push(name.to_string());
        }
    }

    /// Protected variable names, in registration order.
    pub fn protected(&self) -> &[String] {
        &self.protected
    }

    /// Number of checkpoints written.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Total bytes written (across retention and mirrors) — the AutoCheck
    /// storage-cost figure of Table IV uses the per-checkpoint size.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Size in bytes of one encoded checkpoint with payloads `vars`.
    pub fn encoded_size(vars: &[VarBytes]) -> u64 {
        encode(0, vars).len() as u64
    }

    fn path_for(dir: &Path, step: u64) -> PathBuf {
        dir.join(format!("ckpt_{step:012}.fti"))
    }

    /// Write checkpoint `step` (FTI_Checkpoint). `vars` must cover the
    /// protected set; extra variables are rejected to catch driver bugs.
    pub fn checkpoint(&mut self, step: u64, vars: &[VarBytes]) -> io::Result<()> {
        for (name, _) in vars {
            if !self.protected.iter().any(|p| p == name) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("variable `{name}` was never protected"),
                ));
            }
        }
        let bytes = encode(step, vars);
        self.commit(&self.cfg.dir.clone(), step, &bytes)?;
        if let Some(m) = &self.cfg.mirror.clone() {
            self.commit(m, step, &bytes)?;
        }
        self.checkpoints_written += 1;
        self.prune()?;
        Ok(())
    }

    fn commit(&mut self, dir: &Path, step: u64, bytes: &[u8]) -> io::Result<()> {
        let final_path = Self::path_for(dir, step);
        let tmp = final_path.with_extension("tmp");
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &final_path)?;
        self.bytes_written += bytes.len() as u64;
        Ok(())
    }

    fn list_steps(dir: &Path) -> io::Result<Vec<u64>> {
        let mut steps = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(step) = name
                .strip_prefix("ckpt_")
                .and_then(|s| s.strip_suffix(".fti"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                steps.push(step);
            }
        }
        steps.sort_unstable();
        Ok(steps)
    }

    fn prune(&self) -> io::Result<()> {
        for dir in std::iter::once(&self.cfg.dir).chain(self.cfg.mirror.iter()) {
            let steps = Self::list_steps(dir)?;
            if steps.len() > self.cfg.keep_last {
                for step in &steps[..steps.len() - self.cfg.keep_last] {
                    let _ = fs::remove_file(Self::path_for(dir, *step));
                }
            }
        }
        Ok(())
    }

    /// Recover the most recent valid checkpoint (FTI_Recover), falling back
    /// to older ones when the newest is corrupt, and to the mirror when the
    /// local directory has nothing valid. Returns `None` when no checkpoint
    /// exists (fresh start).
    pub fn recover(&self) -> io::Result<Option<Checkpoint>> {
        for dir in std::iter::once(&self.cfg.dir).chain(self.cfg.mirror.iter()) {
            let mut steps = Self::list_steps(dir)?;
            steps.reverse();
            for step in steps {
                let bytes = match fs::read(Self::path_for(dir, step)) {
                    Ok(b) => b,
                    Err(_) => continue,
                };
                match decode(&bytes) {
                    Ok((s, vars)) => return Ok(Some(Checkpoint { step: s, vars })),
                    Err(_) => continue, // corrupt: fall back
                }
            }
        }
        Ok(None)
    }

    /// Remove every checkpoint (start an experiment from scratch).
    pub fn wipe(&self) -> io::Result<()> {
        for dir in std::iter::once(&self.cfg.dir).chain(self.cfg.mirror.iter()) {
            for step in Self::list_steps(dir)? {
                let _ = fs::remove_file(Self::path_for(dir, step));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("autocheck-fti-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn vars(step: u64) -> Vec<VarBytes> {
        vec![
            ("r".into(), (step as i64).to_le_bytes().to_vec()),
            ("a".into(), vec![step as u8; 40]),
        ]
    }

    #[test]
    fn checkpoint_and_recover_latest() {
        let dir = tmpdir("basic");
        let mut fti = Fti::new(FtiConfig::local(&dir)).unwrap();
        fti.protect("r");
        fti.protect("a");
        for step in 1..=3 {
            fti.checkpoint(step, &vars(step)).unwrap();
        }
        let c = fti.recover().unwrap().expect("checkpoint exists");
        assert_eq!(c.step, 3);
        assert_eq!(c.var("r").unwrap(), 3i64.to_le_bytes());
        assert_eq!(fti.checkpoints_written(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_prunes_old_checkpoints() {
        let dir = tmpdir("prune");
        let mut fti = Fti::new(FtiConfig::local(&dir)).unwrap();
        fti.protect("r");
        fti.protect("a");
        for step in 1..=5 {
            fti.checkpoint(step, &vars(step)).unwrap();
        }
        let files: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(files.len(), 2, "keep_last=2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous() {
        let dir = tmpdir("fallback");
        let mut fti = Fti::new(FtiConfig::local(&dir)).unwrap();
        fti.protect("r");
        fti.protect("a");
        fti.checkpoint(1, &vars(1)).unwrap();
        fti.checkpoint(2, &vars(2)).unwrap();
        // Corrupt the newest file.
        let newest = Fti::path_for(&dir, 2);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        fs::write(&newest, bytes).unwrap();
        let c = fti.recover().unwrap().expect("fallback checkpoint");
        assert_eq!(c.step, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_on_empty_dir_is_none() {
        let dir = tmpdir("empty");
        let fti = Fti::new(FtiConfig::local(&dir)).unwrap();
        assert_eq!(fti.recover().unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unprotected_variable_is_rejected() {
        let dir = tmpdir("reject");
        let mut fti = Fti::new(FtiConfig::local(&dir)).unwrap();
        fti.protect("r");
        let err = fti.checkpoint(1, &[("ghost".into(), vec![1])]).unwrap_err();
        assert!(err.to_string().contains("never protected"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mirror_receives_copies_and_serves_recovery() {
        let dir = tmpdir("mirror-l1");
        let mir = tmpdir("mirror-l2");
        let mut fti = Fti::new(FtiConfig {
            dir: dir.clone(),
            keep_last: 2,
            mirror: Some(mir.clone()),
        })
        .unwrap();
        fti.protect("r");
        fti.protect("a");
        fti.checkpoint(1, &vars(1)).unwrap();
        // Destroy the whole local directory: recovery uses the mirror.
        fs::remove_dir_all(&dir).unwrap();
        fs::create_dir_all(&dir).unwrap();
        let c = fti.recover().unwrap().expect("mirror recovery");
        assert_eq!(c.step, 1);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&mir).unwrap();
    }

    #[test]
    fn wipe_clears_everything() {
        let dir = tmpdir("wipe");
        let mut fti = Fti::new(FtiConfig::local(&dir)).unwrap();
        fti.protect("r");
        fti.protect("a");
        fti.checkpoint(1, &vars(1)).unwrap();
        fti.wipe().unwrap();
        assert_eq!(fti.recover().unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
