//! Property tests for the checkpoint stack: format round-trips, corruption
//! detection, CRC streaming, and recovery-equals-uninterrupted-execution
//! for random failure points.

use autocheck_checkpoint::crc::{crc64, Crc64};
use autocheck_checkpoint::format::{decode, encode, VarBytes};
use autocheck_checkpoint::validate::{validate_restart, CrSpec};
use proptest::prelude::*;

fn arb_vars() -> impl Strategy<Value = Vec<VarBytes>> {
    proptest::collection::vec(
        (
            "[a-z][a-z0-9_]{0,10}",
            proptest::collection::vec(any::<u8>(), 0..200),
        ),
        0..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn format_round_trips(step in any::<u64>(), vars in arb_vars()) {
        let enc = encode(step, &vars);
        let (s, v) = decode(&enc).unwrap();
        prop_assert_eq!(s, step);
        prop_assert_eq!(v, vars);
    }

    #[test]
    fn single_byte_corruption_is_always_detected(
        step in any::<u64>(),
        vars in arb_vars(),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut enc = encode(step, &vars);
        let pos = pos_seed % enc.len();
        enc[pos] ^= flip;
        prop_assert!(decode(&enc).is_err(), "corruption at byte {} missed", pos);
    }

    #[test]
    fn truncation_is_always_detected(step in any::<u64>(), vars in arb_vars(), cut in 1usize..64) {
        let enc = encode(step, &vars);
        let keep = enc.len().saturating_sub(cut);
        if keep < enc.len() {
            prop_assert!(decode(&enc[..keep]).is_err());
        }
    }

    #[test]
    fn crc_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split_seed in any::<usize>()) {
        let split = if data.is_empty() { 0 } else { split_seed % data.len() };
        let mut c = Crc64::new();
        c.update(&data[..split]);
        c.update(&data[split..]);
        prop_assert_eq!(c.finish(), crc64(&data));
    }
}

proptest! {
    // The full kill/restart cycle is expensive (three interpreter runs per
    // case); keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For *any* failure point in (2%, 95%) of the run, restarting from the
    /// latest checkpoint reproduces the failure-free output tail.
    #[test]
    fn recovery_equals_uninterrupted_execution(frac in 0.02f64..0.95) {
        const PROG: &str = "\
int main() {
    int acc = 0;
    int hist[8];
    for (int i = 0; i < 8; i = i + 1) { hist[i] = 1; }
    for (int it = 0; it < 8; it = it + 1) {
        hist[it] = hist[it] + acc;
        acc = acc + it + 1;
    }
    for (int i = 0; i < 8; i = i + 1) { print(hist[i]); }
    print(acc);
    return 0;
}
";
        let module = autocheck_minilang::compile(PROG).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "autocheck-prop-cr-{}-{}",
            std::process::id(),
            (frac * 1e6) as u64
        ));
        let spec = CrSpec {
            region_fn: "main".into(),
            start_line: 5,
            end_line: 8,
            protected: vec!["acc".into(), "hist".into(), "it".into()],
        };
        let out = validate_restart(&module, &spec, &dir, frac).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert!(out.matches, "failure at {:.3} did not recover", frac);
    }
}
