//! Property tests for the interpreter: random arithmetic programs computed
//! against a Rust reference evaluator, and trace determinism.

use autocheck_interp::{ExecOptions, Machine, NoHook, NullSink, VecSink};
use proptest::prelude::*;

/// A random integer expression tree over two variables, rendered both as
/// MiniLang source and as a Rust closure.
#[derive(Clone, Debug)]
enum Expr {
    A,
    B,
    Lit(i8),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn render(&self) -> String {
        match self {
            Expr::A => "a".into(),
            Expr::B => "b".into(),
            Expr::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            Expr::Add(l, r) => format!("({} + {})", l.render(), r.render()),
            Expr::Sub(l, r) => format!("({} - {})", l.render(), r.render()),
            Expr::Mul(l, r) => format!("({} * {})", l.render(), r.render()),
        }
    }

    fn eval(&self, a: i64, b: i64) -> i64 {
        match self {
            Expr::A => a,
            Expr::B => b,
            Expr::Lit(v) => *v as i64,
            Expr::Add(l, r) => l.eval(a, b).wrapping_add(r.eval(a, b)),
            Expr::Sub(l, r) => l.eval(a, b).wrapping_sub(r.eval(a, b)),
            Expr::Mul(l, r) => l.eval(a, b).wrapping_mul(r.eval(a, b)),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::A),
        Just(Expr::B),
        any::<i8>().prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::Mul(Box::new(l), Box::new(r))),
        ]
    })
}

fn run_expr(e: &Expr, a: i64, b: i64) -> i64 {
    let src = format!(
        "int main() {{\n    int a = {a};\n    int b = {b};\n    int out = {};\n    print(out);\n    return 0;\n}}\n",
        e.render()
    );
    let module = autocheck_minilang::compile(&src)
        .unwrap_or_else(|err| panic!("source failed to compile: {err:?}\n{src}"));
    let out = Machine::new(&module, ExecOptions::default())
        .run(&mut NullSink, &mut NoHook)
        .expect("runs");
    out.output[0].parse().expect("integer output")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interpreter_matches_reference_evaluator(e in arb_expr(), a in -1000i64..1000, b in -1000i64..1000) {
        prop_assert_eq!(run_expr(&e, a, b), e.eval(a, b));
    }

    #[test]
    fn loop_sums_match_closed_form(n in 1i64..40, step in 1i64..5) {
        let src = format!(
            "int main() {{\n    int s = 0;\n    for (int i = 0; i < {n}; i = i + {step}) {{\n        s = s + i;\n    }}\n    print(s);\n    return 0;\n}}\n"
        );
        let module = autocheck_minilang::compile(&src).unwrap();
        let out = Machine::new(&module, ExecOptions::default())
            .run(&mut NullSink, &mut NoHook)
            .unwrap();
        let expect: i64 = (0..n).step_by(step as usize).sum();
        prop_assert_eq!(out.output[0].parse::<i64>().unwrap(), expect);
    }

    #[test]
    fn traces_are_deterministic_and_dense(e in arb_expr()) {
        let src = format!(
            "int main() {{\n    int a = 3;\n    int b = 5;\n    int out = {};\n    print(out);\n    return 0;\n}}\n",
            e.render()
        );
        let module = autocheck_minilang::compile(&src).unwrap();
        let run = || {
            let mut sink = VecSink::default();
            Machine::new(&module, ExecOptions::default())
                .run(&mut sink, &mut NoHook)
                .unwrap();
            sink.records
        };
        let r1 = run();
        let r2 = run();
        prop_assert_eq!(&r1, &r2);
        for (i, r) in r1.iter().enumerate() {
            prop_assert_eq!(r.dyn_id, i as u64);
        }
    }
}
