//! End-to-end: MiniLang source → IR → interpreter, checking program
//! semantics and trace shape against hand-computed expectations.

use autocheck_interp::{ExecOptions, Machine, NoHook, NullSink, VecSink};
use autocheck_minilang::compile;
use autocheck_trace::Name;

fn run(src: &str) -> Vec<String> {
    let m = compile(src).expect("compiles");
    let mut machine = Machine::new(&m, ExecOptions::default());
    machine
        .run(&mut NullSink, &mut NoHook)
        .expect("executes")
        .output
}

/// The paper's Figure 4 example code, transliterated to MiniLang with the
/// same line layout (foo at the top, main loop over `it`).
pub const FIG4: &str = r#"void foo(int* p, int* q) {
    for (int i = 0; i < 10; i = i + 1) {
        q[i] = p[i] * 2;
    }
}
int main() {
    int a[10]; int b[10];
    int sum = 0; int s = 0; int r = 1;
    for (int i = 0; i < 10; i = i + 1) {
        a[i] = 0;
        b[i] = 0;
    }
    for (int it = 0; it < 10; it = it + 1) {
        int m;
        s = it + 1;
        a[it] = s * r;
        foo(a, b);
        r = r + 1;
        m = a[it] + b[it];
        sum = m;
    }
    print(sum);
    return 0;
}
"#;

#[test]
fn fig4_example_computes_like_c() {
    // Hand-simulate the C program: at it=9, s=10, r=10 (r incremented 9
    // times by then it is 10 at iteration 9 start... compute exactly).
    let mut a = [0i64; 10];
    let mut b = [0i64; 10];
    let (mut sum, mut s, mut r) = (0i64, 0i64, 1i64);
    let _ = s;
    for it in 0..10usize {
        s = it as i64 + 1;
        a[it] = s * r;
        for i in 0..10 {
            b[i] = a[i] * 2;
        }
        r += 1;
        let m = a[it] + b[it];
        sum = m;
    }
    assert_eq!(run(FIG4), vec![sum.to_string()]);
}

#[test]
fn float_kernel_matches_reference() {
    let src = r#"
float dot(float* x, float* y, int n) {
    float acc = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        acc = acc + x[i] * y[i];
    }
    return acc;
}
int main() {
    float u[8]; float v[8];
    for (int i = 0; i < 8; i = i + 1) {
        u[i] = float(i) * 0.5;
        v[i] = float(i) + 1.0;
    }
    print(dot(u, v, 8));
    return 0;
}
"#;
    let mut expect = 0.0f64;
    for i in 0..8 {
        expect += (i as f64 * 0.5) * (i as f64 + 1.0);
    }
    assert_eq!(run(src), vec![format!("{expect:?}")]);
}

#[test]
fn global_state_persists_across_calls() {
    let src = r#"
global int counter;
void tick() { counter = counter + 1; }
int main() {
    for (int i = 0; i < 5; i = i + 1) { tick(); }
    print(counter);
    return 0;
}
"#;
    assert_eq!(run(src), vec!["5".to_string()]);
}

#[test]
fn builtin_math_works() {
    let src = r#"
int main() {
    print(sqrt(16.0));
    print(pow(2.0, 10.0));
    print(fabs(-2.5));
    print(abs(-7));
    print(fmax(1.0, 2.0));
    return 0;
}
"#;
    assert_eq!(
        run(src),
        vec!["4.0", "1024.0", "2.5", "7", "2.0"]
            .into_iter()
            .map(String::from)
            .collect::<Vec<_>>()
    );
}

#[test]
fn control_flow_if_else_chains() {
    let src = r#"
int classify(int x) {
    if (x < 0) { return -1; }
    else if (x == 0) { return 0; }
    else { return 1; }
}
int main() {
    print(classify(-5));
    print(classify(0));
    print(classify(9));
    return 0;
}
"#;
    assert_eq!(
        run(src),
        vec!["-1", "0", "1"]
            .into_iter()
            .map(String::from)
            .collect::<Vec<_>>()
    );
}

#[test]
fn trace_of_fig4_contains_paper_shapes() {
    let m = compile(FIG4).unwrap();
    let mut machine = Machine::new(&m, ExecOptions::default());
    let mut sink = VecSink::default();
    machine.run(&mut sink, &mut NoHook).unwrap();
    let recs = &sink.records;

    // `foo` is traced as Call form 2: a call record with f-tagged params p,q.
    let call = recs
        .iter()
        .find(|r| r.opcode == 49 && r.params().count() == 2)
        .expect("form-2 call");
    let pnames: Vec<_> = call.params().map(|p| p.name).collect();
    assert_eq!(pnames, vec![Name::sym("p"), Name::sym("q")]);
    // Argument values (pointers to a and b) equal parameter values.
    let avals: Vec<_> = call.positional().skip(1).map(|o| o.value).collect();
    let pvals: Vec<_> = call.params().map(|p| p.value).collect();
    assert_eq!(avals, pvals);

    // Loads inside foo dereference p with a GEP-produced temp register.
    let gep_in_foo = recs
        .iter()
        .find(|r| r.func == "foo" && r.opcode == 29)
        .expect("gep in foo");
    assert_eq!(gep_in_foo.op1().unwrap().name, Name::sym("p"));

    // Stores to `sum` name the variable directly on the pointer operand.
    let sum_store = recs
        .iter()
        .find(|r| r.opcode == 28 && r.op2().map(|o| o.name == Name::sym("sum")).unwrap_or(false))
        .expect("store to sum");
    assert_eq!(sum_store.func.as_str(), "main");

    // Allocas report line -1 and the variable name as the label.
    let alloca = recs
        .iter()
        .find(|r| r.opcode == 26 && r.bb_label == "sum")
        .expect("alloca of sum");
    assert_eq!(alloca.src_line, -1);

    // Trace round-trips through the textual format.
    let text = autocheck_trace::writer::to_string(recs);
    let parsed = autocheck_trace::TraceSource::from_str(&text)
        .records()
        .unwrap();
    assert_eq!(parsed.len(), recs.len());
}

#[test]
fn interrupted_run_matches_prefix_of_full_run() {
    let m = compile(FIG4).unwrap();
    let mut full = VecSink::default();
    Machine::new(&m, ExecOptions::default())
        .run(&mut full, &mut NoHook)
        .unwrap();
    let cut = 200u64;
    let mut partial = VecSink::default();
    let err = Machine::new(
        &m,
        ExecOptions {
            fail_after: Some(cut),
            ..ExecOptions::default()
        },
    )
    .run(&mut partial, &mut NoHook)
    .unwrap_err();
    assert!(matches!(
        err,
        autocheck_interp::ExecError::Interrupted { .. }
    ));
    assert_eq!(partial.records.len() as u64, cut);
    assert_eq!(&full.records[..cut as usize], &partial.records[..]);
}
