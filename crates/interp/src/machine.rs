//! The interpreter proper.

use crate::emit::{build_record, DynOperand};
use crate::error::ExecError;
use crate::hooks::{ExecHook, HookAction, HookCtx};
use crate::memory::{Memory, SymbolInfo, SymbolScope, GLOBAL_BASE};
use crate::rtvalue::RtValue;
use crate::sink::TraceSink;
use autocheck_ir::{
    BinOp, BlockId, Builtin, Callee, CastOp, CmpPred, FuncId, Function, GlobalInit, Inst, InstKind,
    Module, RegName, SrcLoc, Type, Value,
};
use autocheck_trace::{AnalysisCtx, Name, SymId};

/// Synthetic "code addresses" given to functions so Call records carry a
/// pointer value like real traces do.
const CODE_BASE: u64 = 0x40_0000;

/// Execution limits and failure injection.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Hard cap on dynamic instructions (runaway-loop guard).
    pub max_steps: u64,
    /// Interrupt execution when the dynamic instruction id reaches this
    /// value — the simulated `raise(SIGTERM)`.
    pub fail_after: Option<u64>,
    /// Maximum call depth.
    pub max_call_depth: u32,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            max_steps: 2_000_000_000,
            fail_after: None,
            max_call_depth: 512,
        }
    }
}

/// What a completed (or interrupted) execution produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecOutcome {
    /// Lines printed by the program's `print` builtin, in order.
    pub output: Vec<String>,
    /// Number of dynamic instructions executed.
    pub steps: u64,
    /// `main`'s return value.
    pub ret: Option<RtValue>,
}

/// One call frame.
struct Frame {
    func: FuncId,
    regs: Vec<Option<RtValue>>,
    args: Vec<RtValue>,
    syms: SymbolScope,
    sp_base: u64,
}

/// The interpreter. One `Machine` performs one execution (create a fresh
/// machine to re-run, e.g. for a restart).
pub struct Machine<'m> {
    module: &'m Module,
    mem: Memory,
    global_scope: SymbolScope,
    global_addrs: Vec<u64>,
    func_names: Vec<SymId>,
    block_labels: Vec<Vec<SymId>>,
    param_names: Vec<Vec<SymId>>,
    output: Vec<String>,
    dyn_id: u64,
    last_line: Option<(u32, u32)>,
    opts: ExecOptions,
    /// The analysis session this machine emits symbols into.
    ctx: AnalysisCtx,
}

impl<'m> Machine<'m> {
    /// Create a machine in the thread's current symbol space (the global
    /// one unless a session guard is live): lays out and initializes
    /// globals.
    pub fn new(module: &'m Module, opts: ExecOptions) -> Machine<'m> {
        Self::with_ctx(module, opts, AnalysisCtx::current())
    }

    /// Create a machine whose emitted trace records intern their symbols
    /// (function names, labels, variable names) into `ctx`'s space.
    pub fn with_ctx(module: &'m Module, opts: ExecOptions, ctx: AnalysisCtx) -> Machine<'m> {
        // Global layout: sequential, 8-byte aligned.
        let mut offset: u64 = 0;
        let mut global_addrs = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            let size = (g.ty.byte_size() + 7) & !7;
            global_addrs.push(GLOBAL_BASE + offset);
            offset += size.max(8);
        }
        let mut mem = Memory::new(offset);
        let mut global_scope = SymbolScope::new();
        for (g, addr) in module.globals.iter().zip(&global_addrs) {
            match &g.init {
                GlobalInit::Zero => {}
                GlobalInit::I64(v) => mem.write_i64(*addr, *v).expect("global init"),
                GlobalInit::F64(v) => mem.write_f64(*addr, *v).expect("global init"),
            }
            global_scope.insert(
                &g.name,
                SymbolInfo {
                    addr: *addr,
                    ty: g.ty.clone(),
                    decl_line: g.loc.line,
                },
            );
        }
        let func_names = module
            .functions
            .iter()
            .map(|f| ctx.intern(&f.name))
            .collect();
        let block_labels = module
            .functions
            .iter()
            .map(|f| {
                f.blocks
                    .iter()
                    .map(|b| ctx.intern(&b.label.to_string()))
                    .collect()
            })
            .collect();
        let param_names = module
            .functions
            .iter()
            .map(|f| f.params.iter().map(|p| ctx.intern(&p.name)).collect())
            .collect();
        Machine {
            module,
            mem,
            global_scope,
            global_addrs,
            func_names,
            block_labels,
            param_names,
            output: Vec::new(),
            dyn_id: 0,
            last_line: None,
            opts,
            ctx,
        }
    }

    /// A symbolic [`Name`] interned in this machine's session space.
    fn sym(&self, s: &str) -> Name {
        Name::Sym(self.ctx.intern(s))
    }

    /// The memory (for whole-image checkpoint tooling).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The global symbol scope.
    pub fn globals(&self) -> &SymbolScope {
        &self.global_scope
    }

    /// Dynamic instruction count so far.
    pub fn dyn_id(&self) -> u64 {
        self.dyn_id
    }

    /// Run `main` to completion (or interruption).
    pub fn run(
        &mut self,
        sink: &mut dyn TraceSink,
        hook: &mut dyn ExecHook,
    ) -> Result<ExecOutcome, ExecError> {
        let main = self
            .module
            .function_by_name("main")
            .ok_or(ExecError::NoMain)?;
        let ret = self.call_function(main, Vec::new(), sink, hook, 0)?;
        Ok(ExecOutcome {
            output: std::mem::take(&mut self.output),
            steps: self.dyn_id,
            ret,
        })
    }

    fn code_addr(fid: FuncId) -> u64 {
        CODE_BASE + 0x10 * fid.0 as u64
    }

    fn eval(&self, frame: &Frame, v: Value) -> Result<RtValue, ExecError> {
        match v {
            Value::Inst(id) => frame.regs[id.index()].ok_or_else(|| ExecError::UnboundRegister {
                function: self.module.function(frame.func).name.clone(),
                inst: id.0,
            }),
            Value::Param(i) => Ok(frame.args[i as usize]),
            Value::Global(g) => Ok(RtValue::P(self.global_addrs[g.index()])),
            Value::ConstI(v) => Ok(RtValue::I(v)),
            Value::ConstF(v) => Ok(RtValue::F(v)),
            Value::ConstBool(b) => Ok(RtValue::B(b)),
        }
    }

    /// The trace name and register-ness of an operand.
    fn operand_name(&self, frame: &Frame, v: Value) -> (Name, bool) {
        match v {
            Value::Inst(id) => {
                let f = self.module.function(frame.func);
                match &f.inst(id).name {
                    RegName::Temp(n) => (Name::Temp(*n), true),
                    RegName::Var(s) => (self.sym(s), true),
                    RegName::None => (Name::None, true),
                }
            }
            Value::Param(i) => (
                Name::Sym(self.param_names[frame.func.index()][i as usize]),
                true,
            ),
            Value::Global(g) => (self.sym(&self.module.global(g).name), true),
            _ => (Name::None, false),
        }
    }

    fn dyn_operand(&self, frame: &Frame, v: Value) -> Result<DynOperand, ExecError> {
        let value = self.eval(frame, v)?;
        let (name, is_reg) = self.operand_name(frame, v);
        Ok(DynOperand {
            name,
            value,
            is_reg,
        })
    }

    fn result_name(&self, inst: &Inst) -> Name {
        match &inst.name {
            RegName::Temp(n) => Name::Temp(*n),
            RegName::Var(s) => self.sym(s),
            RegName::None => Name::None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        sink: &mut dyn TraceSink,
        frame: &Frame,
        block: BlockId,
        inst: &Inst,
        operands: &[DynOperand],
        params: &[(SymId, RtValue)],
        result: Option<DynOperand>,
        label_override: Option<SymId>,
    ) -> Result<(), ExecError> {
        let f = self.module.function(frame.func);
        let label =
            label_override.unwrap_or_else(|| self.block_labels[frame.func.index()][block.index()]);
        let rec = build_record(
            self.func_names[frame.func.index()],
            f.blocks[block.index()].loc,
            label,
            inst.opcode().0,
            inst.loc,
            self.dyn_id,
            operands,
            params,
            result,
        );
        sink.record(rec)
    }

    fn check_budget(&self) -> Result<(), ExecError> {
        if self.dyn_id >= self.opts.max_steps {
            return Err(ExecError::StepLimit {
                limit: self.opts.max_steps,
            });
        }
        if let Some(f) = self.opts.fail_after {
            if self.dyn_id >= f {
                return Err(ExecError::Interrupted {
                    dyn_id: self.dyn_id,
                });
            }
        }
        Ok(())
    }

    fn call_function(
        &mut self,
        fid: FuncId,
        args: Vec<RtValue>,
        sink: &mut dyn TraceSink,
        hook: &mut dyn ExecHook,
        depth: u32,
    ) -> Result<Option<RtValue>, ExecError> {
        if depth > self.opts.max_call_depth {
            return Err(ExecError::StackOverflow);
        }
        let func: &Function = self.module.function(fid);
        let mut frame = Frame {
            func: fid,
            regs: vec![None; func.insts.len()],
            args,
            syms: SymbolScope::new(),
            sp_base: self.mem.stack_pointer(),
        };
        let mut block = func.entry();
        let mut idx = 0usize;
        loop {
            let inst_id = match func.blocks[block.index()].insts.get(idx) {
                Some(id) => *id,
                None => {
                    // Verified functions always end blocks with terminators;
                    // falling off means an unverified module. Treat as a
                    // void return for robustness.
                    self.mem.stack_release(frame.sp_base);
                    return Ok(None);
                }
            };
            let inst = func.inst(inst_id).clone();

            // Line-transition hook.
            if inst.loc.line != 0 {
                let key = (fid.0, inst.loc.line);
                if self.last_line != Some(key) {
                    self.last_line = Some(key);
                    let mut ctx = HookCtx {
                        mem: &mut self.mem,
                        frame: &frame.syms,
                        globals: &self.global_scope,
                        dyn_id: self.dyn_id,
                    };
                    if hook.on_line(&mut ctx, &func.name, inst.loc.line) == HookAction::Interrupt {
                        return Err(ExecError::Interrupted {
                            dyn_id: self.dyn_id,
                        });
                    }
                }
            }
            self.check_budget()?;

            let trace_on = sink.enabled();
            match &inst.kind {
                InstKind::Alloca { ty, var } => {
                    let addr = self.mem.stack_alloc(ty.byte_size());
                    frame.syms.insert(
                        var,
                        SymbolInfo {
                            addr,
                            ty: ty.clone(),
                            decl_line: inst.loc.line,
                        },
                    );
                    frame.regs[inst_id.index()] = Some(RtValue::P(addr));
                    if trace_on {
                        let ops = [DynOperand::imm(RtValue::I(ty.byte_size() as i64))];
                        let res = DynOperand::reg(self.sym(var), RtValue::P(addr));
                        self.emit(
                            sink,
                            &frame,
                            block,
                            &inst,
                            &ops,
                            &[],
                            Some(res),
                            Some(self.ctx.intern(var)),
                        )?;
                    }
                }
                InstKind::Load { ptr, ty } => {
                    let pv = self.dyn_operand(&frame, *ptr)?;
                    let addr = pv.value.as_p().ok_or(ExecError::OutOfBounds { addr: 0 })?;
                    let loaded = match ty {
                        Type::F64 => RtValue::F(self.mem.read_f64(addr)?),
                        _ => RtValue::I(self.mem.read_i64(addr)?),
                    };
                    frame.regs[inst_id.index()] = Some(loaded);
                    if trace_on {
                        let res = DynOperand {
                            name: self.result_name(&inst),
                            value: loaded,
                            is_reg: true,
                        };
                        self.emit(sink, &frame, block, &inst, &[pv], &[], Some(res), None)?;
                    }
                }
                InstKind::Store { value, ptr, ty } => {
                    let vv = self.dyn_operand(&frame, *value)?;
                    let pv = self.dyn_operand(&frame, *ptr)?;
                    let addr = pv.value.as_p().ok_or(ExecError::OutOfBounds { addr: 0 })?;
                    match ty {
                        Type::F64 => self.mem.write_f64(
                            addr,
                            vv.value.as_f().unwrap_or_else(|| {
                                vv.value.as_i().map(|i| i as f64).unwrap_or(0.0)
                            }),
                        )?,
                        _ => self
                            .mem
                            .write_i64(addr, vv.value.as_i().unwrap_or_default())?,
                    }
                    if trace_on {
                        self.emit(sink, &frame, block, &inst, &[vv, pv], &[], None, None)?;
                    }
                }
                InstKind::Gep { base, index, elem } => {
                    let bv = self.dyn_operand(&frame, *base)?;
                    let iv = self.dyn_operand(&frame, *index)?;
                    let baddr = bv.value.as_p().ok_or(ExecError::OutOfBounds { addr: 0 })?;
                    let i = iv.value.as_i().unwrap_or(0);
                    let addr = (baddr as i64 + i * elem.byte_size() as i64) as u64;
                    let res_v = RtValue::P(addr);
                    frame.regs[inst_id.index()] = Some(res_v);
                    if trace_on {
                        let res = DynOperand {
                            name: self.result_name(&inst),
                            value: res_v,
                            is_reg: true,
                        };
                        self.emit(sink, &frame, block, &inst, &[bv, iv], &[], Some(res), None)?;
                    }
                }
                InstKind::BitCast { value, .. } => {
                    let vv = self.dyn_operand(&frame, *value)?;
                    frame.regs[inst_id.index()] = Some(vv.value);
                    if trace_on {
                        let res = DynOperand {
                            name: self.result_name(&inst),
                            value: vv.value,
                            is_reg: true,
                        };
                        self.emit(sink, &frame, block, &inst, &[vv], &[], Some(res), None)?;
                    }
                }
                InstKind::Binary { op, lhs, rhs } => {
                    let lv = self.dyn_operand(&frame, *lhs)?;
                    let rv = self.dyn_operand(&frame, *rhs)?;
                    let out = eval_binary(*op, lv.value, rv.value, inst.loc)?;
                    frame.regs[inst_id.index()] = Some(out);
                    if trace_on {
                        let res = DynOperand {
                            name: self.result_name(&inst),
                            value: out,
                            is_reg: true,
                        };
                        self.emit(sink, &frame, block, &inst, &[lv, rv], &[], Some(res), None)?;
                    }
                }
                InstKind::Cmp {
                    pred,
                    lhs,
                    rhs,
                    float,
                } => {
                    let lv = self.dyn_operand(&frame, *lhs)?;
                    let rv = self.dyn_operand(&frame, *rhs)?;
                    let out = RtValue::B(eval_cmp(*pred, *float, lv.value, rv.value));
                    frame.regs[inst_id.index()] = Some(out);
                    if trace_on {
                        let res = DynOperand {
                            name: self.result_name(&inst),
                            value: out,
                            is_reg: true,
                        };
                        self.emit(sink, &frame, block, &inst, &[lv, rv], &[], Some(res), None)?;
                    }
                }
                InstKind::Cast { op, value } => {
                    let vv = self.dyn_operand(&frame, *value)?;
                    let out = match op {
                        CastOp::SiToFp => RtValue::F(vv.value.as_i().unwrap_or(0) as f64),
                        CastOp::FpToSi => RtValue::I(vv.value.as_f().unwrap_or(0.0) as i64),
                        CastOp::ZExt => RtValue::I(vv.value.as_i().unwrap_or(0)),
                    };
                    frame.regs[inst_id.index()] = Some(out);
                    if trace_on {
                        let res = DynOperand {
                            name: self.result_name(&inst),
                            value: out,
                            is_reg: true,
                        };
                        self.emit(sink, &frame, block, &inst, &[vv], &[], Some(res), None)?;
                    }
                }
                InstKind::Call { callee, args } => {
                    let mut arg_ops = Vec::with_capacity(args.len() + 1);
                    match callee {
                        Callee::Builtin(b) => {
                            // Call form 1: one record including the result.
                            arg_ops.push(DynOperand::reg(
                                self.sym(b.name()),
                                RtValue::P(CODE_BASE - 0x1000 + *b as u64 * 0x10),
                            ));
                            let mut vals = Vec::with_capacity(args.len());
                            for a in args {
                                let op = self.dyn_operand(&frame, *a)?;
                                vals.push(op.value);
                                arg_ops.push(op);
                            }
                            let out = self.eval_builtin(*b, &vals);
                            if let Some(v) = out {
                                frame.regs[inst_id.index()] = Some(v);
                            }
                            if trace_on {
                                let res = out.map(|v| DynOperand {
                                    name: self.result_name(&inst),
                                    value: v,
                                    is_reg: true,
                                });
                                self.emit(sink, &frame, block, &inst, &arg_ops, &[], res, None)?;
                            }
                            self.dyn_id += 1;
                            idx += 1;
                            continue;
                        }
                        Callee::Function(callee_id) => {
                            // Call form 2: record with args + `f` param
                            // lines, then the callee body.
                            arg_ops.push(DynOperand::reg(
                                self.sym(&self.module.function(*callee_id).name),
                                RtValue::P(Self::code_addr(*callee_id)),
                            ));
                            let mut vals = Vec::with_capacity(args.len());
                            for a in args {
                                let op = self.dyn_operand(&frame, *a)?;
                                vals.push(op.value);
                                arg_ops.push(op);
                            }
                            if trace_on {
                                let params: Vec<(SymId, RtValue)> = self.param_names
                                    [callee_id.index()]
                                .iter()
                                .copied()
                                .zip(vals.iter().copied())
                                .collect();
                                // Unlike paper Fig. 6(b) we add a result line
                                // carrying only the call's register *name*
                                // (placeholder value): it lets the analysis
                                // link the callee's `Ret` operand to the
                                // caller's uses of the returned value.
                                let res = if self.module.function(*callee_id).ret != Type::Void {
                                    Some(DynOperand {
                                        name: self.result_name(&inst),
                                        value: RtValue::I(0),
                                        is_reg: true,
                                    })
                                } else {
                                    None
                                };
                                self.emit(
                                    sink, &frame, block, &inst, &arg_ops, &params, res, None,
                                )?;
                            }
                            self.dyn_id += 1;
                            let ret =
                                self.call_function(*callee_id, vals, sink, hook, depth + 1)?;
                            if let Some(v) = ret {
                                frame.regs[inst_id.index()] = Some(v);
                            }
                            idx += 1;
                            continue;
                        }
                    }
                }
                InstKind::Ret { value } => {
                    let mut ops = Vec::new();
                    let ret_v = match value {
                        Some(v) => {
                            let op = self.dyn_operand(&frame, *v)?;
                            let val = op.value;
                            ops.push(op);
                            Some(val)
                        }
                        None => None,
                    };
                    if trace_on {
                        self.emit(sink, &frame, block, &inst, &ops, &[], None, None)?;
                    }
                    self.dyn_id += 1;
                    self.mem.stack_release(frame.sp_base);
                    return Ok(ret_v);
                }
                InstKind::Br { target } => {
                    if trace_on {
                        self.emit(sink, &frame, block, &inst, &[], &[], None, None)?;
                    }
                    self.dyn_id += 1;
                    block = *target;
                    idx = 0;
                    continue;
                }
                InstKind::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let cv = self.dyn_operand(&frame, *cond)?;
                    let taken = cv.value.as_b().unwrap_or(false);
                    if trace_on {
                        self.emit(sink, &frame, block, &inst, &[cv], &[], None, None)?;
                    }
                    self.dyn_id += 1;
                    block = if taken { *then_bb } else { *else_bb };
                    idx = 0;
                    continue;
                }
            }
            self.dyn_id += 1;
            idx += 1;
        }
    }

    fn eval_builtin(&mut self, b: Builtin, args: &[RtValue]) -> Option<RtValue> {
        let f = |i: usize| args.get(i).and_then(|v| v.as_f()).unwrap_or(0.0);
        Some(match b {
            Builtin::Print => {
                let line = args.first().map(|v| v.display_exact()).unwrap_or_default();
                self.output.push(line);
                return None;
            }
            Builtin::Sqrt => RtValue::F(f(0).sqrt()),
            Builtin::Pow => RtValue::F(f(0).powf(f(1))),
            Builtin::FAbs => RtValue::F(f(0).abs()),
            Builtin::IAbs => RtValue::I(args.first().and_then(|v| v.as_i()).unwrap_or(0).abs()),
            Builtin::Exp => RtValue::F(f(0).exp()),
            Builtin::Log => RtValue::F(f(0).ln()),
            Builtin::Cos => RtValue::F(f(0).cos()),
            Builtin::Sin => RtValue::F(f(0).sin()),
            Builtin::Floor => RtValue::F(f(0).floor()),
            Builtin::FMax => RtValue::F(f(0).max(f(1))),
            Builtin::FMin => RtValue::F(f(0).min(f(1))),
        })
    }
}

fn eval_binary(op: BinOp, l: RtValue, r: RtValue, loc: SrcLoc) -> Result<RtValue, ExecError> {
    if op.is_float() {
        let (a, b) = (l.as_f().unwrap_or(0.0), r.as_f().unwrap_or(0.0));
        return Ok(RtValue::F(match op {
            BinOp::FAdd => a + b,
            BinOp::FSub => a - b,
            BinOp::FMul => a * b,
            BinOp::FDiv => {
                if b == 0.0 {
                    return Err(ExecError::DivByZero { line: loc.line });
                }
                a / b
            }
            _ => unreachable!(),
        }));
    }
    let (a, b) = (l.as_i().unwrap_or(0), r.as_i().unwrap_or(0));
    Ok(RtValue::I(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv => {
            if b == 0 {
                return Err(ExecError::DivByZero { line: loc.line });
            }
            a.wrapping_div(b)
        }
        BinOp::UDiv => {
            if b == 0 {
                return Err(ExecError::DivByZero { line: loc.line });
            }
            ((a as u64) / (b as u64)) as i64
        }
        BinOp::SRem => {
            if b == 0 {
                return Err(ExecError::DivByZero { line: loc.line });
            }
            a.wrapping_rem(b)
        }
        BinOp::URem => {
            if b == 0 {
                return Err(ExecError::DivByZero { line: loc.line });
            }
            ((a as u64) % (b as u64)) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::LShr => ((a as u64).wrapping_shr(b as u32)) as i64,
        BinOp::AShr => a.wrapping_shr(b as u32),
        _ => unreachable!(),
    }))
}

fn eval_cmp(pred: CmpPred, float: bool, l: RtValue, r: RtValue) -> bool {
    if float {
        let (a, b) = (l.as_f().unwrap_or(0.0), r.as_f().unwrap_or(0.0));
        match pred {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
        }
    } else {
        let (a, b) = (l.as_i().unwrap_or(0), r.as_i().unwrap_or(0));
        match pred {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{FnHook, NoHook};
    use crate::sink::{NullSink, VecSink};
    use autocheck_ir::{FunctionBuilder, Param};

    /// int main() { int x; x = 6; x = x * 7; print(x); return x; }
    fn mul_module() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new(autocheck_ir::Function::new(
            "main",
            vec![],
            Type::I64,
            SrcLoc::new(1, 1),
        ));
        b.set_loc(2, 3);
        let x = b.alloca("x", Type::I64);
        b.store(Value::ConstI(6), x, Type::I64);
        b.set_loc(3, 3);
        let v = b.load(x, Type::I64);
        let w = b.binary(BinOp::Mul, v, Value::ConstI(7));
        b.store(w, x, Type::I64);
        b.set_loc(4, 3);
        let v2 = b.load(x, Type::I64);
        b.call_builtin(Builtin::Print, vec![v2]);
        b.set_loc(5, 3);
        let v3 = b.load(x, Type::I64);
        b.ret(Some(v3));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn executes_and_prints() {
        let m = mul_module();
        let mut machine = Machine::new(&m, ExecOptions::default());
        let out = machine.run(&mut NullSink, &mut NoHook).unwrap();
        assert_eq!(out.output, vec!["42".to_string()]);
        assert_eq!(out.ret, Some(RtValue::I(42)));
        assert!(out.steps > 0);
    }

    #[test]
    fn emits_parsable_trace_with_sequential_dyn_ids() {
        let m = mul_module();
        let mut machine = Machine::new(&m, ExecOptions::default());
        let mut sink = VecSink::default();
        machine.run(&mut sink, &mut NoHook).unwrap();
        assert!(!sink.records.is_empty());
        for (i, r) in sink.records.iter().enumerate() {
            assert_eq!(r.dyn_id, i as u64, "dyn ids must be dense and ordered");
        }
        // The store of 6 into x names `x` on the pointer operand.
        let store = sink
            .records
            .iter()
            .find(|r| r.opcode == 28)
            .expect("store record");
        assert_eq!(store.op2().unwrap().name, Name::sym("x"));
        // Load produces a temp-named result.
        let load = sink
            .records
            .iter()
            .find(|r| r.opcode == 27)
            .expect("load record");
        assert!(matches!(load.result.as_ref().unwrap().name, Name::Temp(_)));
    }

    #[test]
    fn trace_is_deterministic_across_runs() {
        let m = mul_module();
        let run = || {
            let mut machine = Machine::new(&m, ExecOptions::default());
            let mut sink = VecSink::default();
            machine.run(&mut sink, &mut NoHook).unwrap();
            sink.records
        };
        assert_eq!(run(), run());
    }

    /// foo(p, q) { q[0] = p[0] * 2; } exercises arrays + call form 2.
    fn call_module() -> Module {
        let mut m = Module::new();
        let mut foo = FunctionBuilder::new(autocheck_ir::Function::new(
            "foo",
            vec![
                Param {
                    name: "p".into(),
                    ty: Type::I64.ptr_to(),
                },
                Param {
                    name: "q".into(),
                    ty: Type::I64.ptr_to(),
                },
            ],
            Type::Void,
            SrcLoc::new(1, 1),
        ));
        foo.set_loc(2, 3);
        let pe = foo.gep(Value::Param(0), Value::ConstI(0), Type::I64);
        let pv = foo.load(pe, Type::I64);
        let dbl = foo.binary(BinOp::Mul, pv, Value::ConstI(2));
        let qe = foo.gep(Value::Param(1), Value::ConstI(0), Type::I64);
        foo.store(dbl, qe, Type::I64);
        foo.ret(None);
        let foo_id = m.add_function(foo.finish());

        let mut main = FunctionBuilder::new(autocheck_ir::Function::new(
            "main",
            vec![],
            Type::I64,
            SrcLoc::new(5, 1),
        ));
        main.set_loc(6, 3);
        let a = main.alloca("a", Type::Array(Box::new(Type::I64), 4));
        let bvar = main.alloca("b", Type::Array(Box::new(Type::I64), 4));
        let a0 = main.gep(a, Value::ConstI(0), Type::I64);
        main.store(Value::ConstI(21), a0, Type::I64);
        main.set_loc(7, 3);
        main.call(foo_id, vec![a, bvar]);
        main.set_loc(8, 3);
        let b0 = main.gep(bvar, Value::ConstI(0), Type::I64);
        let bv = main.load(b0, Type::I64);
        main.call_builtin(Builtin::Print, vec![bv]);
        main.ret(Some(Value::ConstI(0)));
        m.add_function(main.finish());
        m
    }

    #[test]
    fn function_calls_pass_pointers() {
        let m = call_module();
        let mut machine = Machine::new(&m, ExecOptions::default());
        let out = machine.run(&mut NullSink, &mut NoHook).unwrap();
        assert_eq!(out.output, vec!["42".to_string()]);
    }

    #[test]
    fn call_form2_trace_has_param_lines_and_callee_body() {
        let m = call_module();
        let mut machine = Machine::new(&m, ExecOptions::default());
        let mut sink = VecSink::default();
        machine.run(&mut sink, &mut NoHook).unwrap();
        let call = sink
            .records
            .iter()
            .find(|r| r.opcode == 49 && r.params().count() > 0)
            .expect("form-2 call record");
        let params: Vec<_> = call.params().collect();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].name, Name::sym("p"));
        assert_eq!(params[1].name, Name::sym("q"));
        // Argument operand values equal parameter values (the triplet the
        // analysis appends to the reg-var map).
        assert_eq!(call.positional().nth(1).unwrap().value, params[0].value);
        // Callee body records appear after the call, attributed to `foo`.
        let call_pos = sink
            .records
            .iter()
            .position(|r| r.dyn_id == call.dyn_id)
            .unwrap();
        assert!(sink.records[call_pos + 1..].iter().any(|r| r.func == "foo"));
        // And the callee's Ret record closes the invocation.
        assert!(sink.records[call_pos + 1..]
            .iter()
            .any(|r| r.opcode == 1 && r.func == "foo"));
    }

    #[test]
    fn failure_injection_interrupts() {
        let m = mul_module();
        let mut machine = Machine::new(
            &m,
            ExecOptions {
                fail_after: Some(4),
                ..ExecOptions::default()
            },
        );
        let err = machine.run(&mut NullSink, &mut NoHook).unwrap_err();
        assert_eq!(err, ExecError::Interrupted { dyn_id: 4 });
    }

    #[test]
    fn step_limit_guards_runaway_loops() {
        // while (1) {}
        let mut m = Module::new();
        let mut b = FunctionBuilder::new(autocheck_ir::Function::new(
            "main",
            vec![],
            Type::Void,
            SrcLoc::new(1, 1),
        ));
        let header = b.new_block();
        b.br(header);
        b.switch_to(header);
        b.set_loc(2, 1);
        b.br(header);
        m.add_function(b.finish());
        let mut machine = Machine::new(
            &m,
            ExecOptions {
                max_steps: 1000,
                ..ExecOptions::default()
            },
        );
        let err = machine.run(&mut NullSink, &mut NoHook).unwrap_err();
        assert_eq!(err, ExecError::StepLimit { limit: 1000 });
    }

    #[test]
    fn hook_sees_lines_and_can_mutate_memory() {
        let m = mul_module();
        let mut machine = Machine::new(&m, ExecOptions::default());
        let mut seen = Vec::new();
        let mut hook = FnHook(|ctx: &mut HookCtx<'_>, func: &str, line: u32| {
            seen.push((func.to_string(), line));
            if line == 4 {
                // Overwrite x right before it is printed.
                ctx.write_var("x", &(100i64).to_le_bytes());
            }
            HookAction::Continue
        });
        let out = machine.run(&mut NullSink, &mut hook).unwrap();
        assert_eq!(out.output, vec!["100".to_string()]);
        assert!(seen.contains(&("main".to_string(), 2)));
        assert!(seen.contains(&("main".to_string(), 4)));
    }

    #[test]
    fn hook_interrupt_stops_execution() {
        let m = mul_module();
        let mut machine = Machine::new(&m, ExecOptions::default());
        let mut hook = FnHook(|_ctx: &mut HookCtx<'_>, _f: &str, line: u32| {
            if line >= 4 {
                HookAction::Interrupt
            } else {
                HookAction::Continue
            }
        });
        let err = machine.run(&mut NullSink, &mut hook).unwrap_err();
        assert!(matches!(err, ExecError::Interrupted { .. }));
    }

    #[test]
    fn division_by_zero_reports_line() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new(autocheck_ir::Function::new(
            "main",
            vec![],
            Type::I64,
            SrcLoc::new(1, 1),
        ));
        b.set_loc(9, 1);
        let d = b.binary(BinOp::SDiv, Value::ConstI(1), Value::ConstI(0));
        b.ret(Some(d));
        m.add_function(b.finish());
        let mut machine = Machine::new(&m, ExecOptions::default());
        let err = machine.run(&mut NullSink, &mut NoHook).unwrap_err();
        assert_eq!(err, ExecError::DivByZero { line: 9 });
    }

    #[test]
    fn globals_are_initialized_and_addressable() {
        let mut m = Module::new();
        m.add_global(autocheck_ir::Global {
            name: "seed".into(),
            ty: Type::I64,
            init: GlobalInit::I64(7),
            loc: SrcLoc::new(1, 1),
        });
        let g = m.global_by_name("seed").unwrap();
        let mut b = FunctionBuilder::new(autocheck_ir::Function::new(
            "main",
            vec![],
            Type::I64,
            SrcLoc::new(2, 1),
        ));
        b.set_loc(3, 1);
        let v = b.load(Value::Global(g), Type::I64);
        let w = b.binary(BinOp::Add, v, Value::ConstI(1));
        b.store(w, Value::Global(g), Type::I64);
        let v2 = b.load(Value::Global(g), Type::I64);
        b.call_builtin(Builtin::Print, vec![v2]);
        b.ret(Some(Value::ConstI(0)));
        m.add_function(b.finish());
        let mut machine = Machine::new(&m, ExecOptions::default());
        let mut sink = VecSink::default();
        let out = machine.run(&mut sink, &mut NoHook).unwrap();
        assert_eq!(out.output, vec!["8".to_string()]);
        // Global loads carry the global's name on the pointer operand.
        let load = sink.records.iter().find(|r| r.opcode == 27).unwrap();
        assert_eq!(load.op1().unwrap().name, Name::sym("seed"));
    }

    #[test]
    fn missing_main_is_an_error() {
        let m = Module::new();
        let mut machine = Machine::new(&m, ExecOptions::default());
        assert_eq!(
            machine.run(&mut NullSink, &mut NoHook).unwrap_err(),
            ExecError::NoMain
        );
    }
}
