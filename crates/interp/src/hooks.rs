//! Execution hooks: line-granular interception with memory access.
//!
//! The checkpoint/restart driver (crate `autocheck-checkpoint`) attaches a
//! hook to the main computation loop's header line. Each arrival marks an
//! iteration boundary: the first arrival is the paper's "reading
//! checkpoints" insertion point (right before the main loop starts working),
//! later arrivals are the "writing checkpoints" points (one completed
//! iteration).

use crate::memory::{Memory, SymbolInfo, SymbolScope};

/// What a hook wants the interpreter to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HookAction {
    /// Keep executing.
    Continue,
    /// Stop with [`crate::ExecError::Interrupted`] — a simulated fail-stop.
    Interrupt,
}

/// The state a hook can inspect and mutate.
pub struct HookCtx<'a> {
    /// The interpreter's memory.
    pub mem: &'a mut Memory,
    /// Symbols of the current function's frame.
    pub frame: &'a SymbolScope,
    /// Module globals.
    pub globals: &'a SymbolScope,
    /// Dynamic instruction id about to execute.
    pub dyn_id: u64,
}

impl<'a> HookCtx<'a> {
    /// Resolve a variable name: current frame first, then globals — the
    /// same scoping the traced program uses.
    pub fn symbol(&self, name: &str) -> Option<&SymbolInfo> {
        self.frame.get(name).or_else(|| self.globals.get(name))
    }

    /// Read the full storage of variable `name`.
    pub fn read_var(&self, name: &str) -> Option<Vec<u8>> {
        let info = self.symbol(name)?;
        self.mem.read_bytes(info.addr, info.byte_size()).ok()
    }

    /// Overwrite the storage of variable `name`. Returns false when the
    /// variable is unknown or the size does not match.
    pub fn write_var(&mut self, name: &str, data: &[u8]) -> bool {
        let Some(info) = self.symbol(name).cloned() else {
            return false;
        };
        if info.byte_size() != data.len() as u64 {
            return false;
        }
        self.mem.write_bytes(info.addr, data).is_ok()
    }
}

/// A line-granular execution hook.
pub trait ExecHook {
    /// Called when control reaches the first instruction of a new source
    /// line (line transitions only, not once per instruction).
    fn on_line(&mut self, ctx: &mut HookCtx<'_>, func: &str, line: u32) -> HookAction;
}

/// The no-op hook.
#[derive(Default)]
pub struct NoHook;

impl ExecHook for NoHook {
    fn on_line(&mut self, _ctx: &mut HookCtx<'_>, _func: &str, _line: u32) -> HookAction {
        HookAction::Continue
    }
}

/// Adapter: use a closure as a hook.
pub struct FnHook<F>(pub F);

impl<F> ExecHook for FnHook<F>
where
    F: FnMut(&mut HookCtx<'_>, &str, u32) -> HookAction,
{
    fn on_line(&mut self, ctx: &mut HookCtx<'_>, func: &str, line: u32) -> HookAction {
        (self.0)(ctx, func, line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocheck_ir::Type;

    #[test]
    fn ctx_symbol_resolution_prefers_frame() {
        let mut mem = Memory::new(16);
        let mut frame = SymbolScope::new();
        let mut globals = SymbolScope::new();
        globals.insert(
            "x",
            SymbolInfo {
                addr: crate::memory::GLOBAL_BASE,
                ty: Type::I64,
                decl_line: 1,
            },
        );
        let stack_addr = mem.stack_alloc(8);
        frame.insert(
            "x",
            SymbolInfo {
                addr: stack_addr,
                ty: Type::I64,
                decl_line: 5,
            },
        );
        let mut ctx = HookCtx {
            mem: &mut mem,
            frame: &frame,
            globals: &globals,
            dyn_id: 0,
        };
        assert_eq!(ctx.symbol("x").unwrap().addr, stack_addr);
        assert!(ctx.write_var("x", &7i64.to_le_bytes()));
        assert_eq!(ctx.read_var("x").unwrap(), 7i64.to_le_bytes());
        // Global-only symbol resolves too.
        assert!(ctx.symbol("x").is_some());
        assert!(ctx.symbol("missing").is_none());
    }

    #[test]
    fn write_var_rejects_size_mismatch() {
        let mut mem = Memory::new(16);
        let frame = SymbolScope::new();
        let mut globals = SymbolScope::new();
        globals.insert(
            "a",
            SymbolInfo {
                addr: crate::memory::GLOBAL_BASE,
                ty: Type::Array(Box::new(Type::I64), 2),
                decl_line: 1,
            },
        );
        let mut ctx = HookCtx {
            mem: &mut mem,
            frame: &frame,
            globals: &globals,
            dyn_id: 0,
        };
        assert!(!ctx.write_var("a", &[0u8; 8])); // needs 16
        assert!(ctx.write_var("a", &[1u8; 16]));
    }
}
