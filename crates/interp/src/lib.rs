//! Interpreter for the autocheck mini-IR — the LLVM-Tracer substitute.
//!
//! The paper obtains its input by *executing* the application under an LLVM
//! instrumentation pass (LLVM-Tracer) that prints one block per dynamic
//! instruction, with concrete register values and memory addresses. We
//! reproduce that by interpreting the IR directly: the interpreter maintains
//! a concrete memory (globals + stack, real numeric addresses), executes
//! instruction by instruction, and emits [`autocheck_trace::Record`]s
//! through a pluggable [`sink::TraceSink`].
//!
//! Beyond tracing, the interpreter provides the two capabilities the
//! checkpoint/restart experiments need:
//!
//! * **line hooks** ([`hooks::ExecHook`]) — called whenever control reaches a
//!   new source line, with mutable access to memory and the symbol tables.
//!   The FTI-style driver uses a hook on the main loop's header line to
//!   write checkpoints each iteration and to restore state on restart
//!   (paper §II-B "C/R insertion");
//! * **failure injection** ([`machine::ExecOptions`]) — aborts
//!   execution at a chosen dynamic instruction, our deterministic stand-in
//!   for the paper's `raise(SIGTERM)` fail-stop (§VI-B).

pub mod emit;
pub mod error;
pub mod hooks;
pub mod machine;
pub mod memory;
pub mod rtvalue;
pub mod sink;

pub use error::ExecError;
pub use hooks::{ExecHook, HookAction, HookCtx, NoHook};
pub use machine::{ExecOptions, ExecOutcome, Machine};
pub use memory::{Memory, MemoryImage, SymbolInfo, SymbolScope};
pub use rtvalue::RtValue;
pub use sink::{BinarySink, CountSink, FnSink, NullSink, TraceSink, VecSink, WriterSink};
