//! Building trace records from executed instructions.
//!
//! The emitted shapes follow the paper's figures:
//!
//! * Fig. 1 — `Load`/arithmetic blocks: positional operands then an `r`
//!   result line;
//! * Fig. 6(a) — "Call form 1" (builtins): callee operand, argument
//!   operands, `r` result;
//! * Fig. 6(b) — "Call form 2" (defined functions): callee operand,
//!   argument operands, then `f`-tagged parameter lines; the callee's body
//!   records follow, and its `Ret` closes the invocation;
//! * Fig. 6(c) — `Alloca`: the block-label field carries the *variable
//!   name*, and the result line holds the variable's address.

use crate::rtvalue::RtValue;
use autocheck_ir::SrcLoc;
use autocheck_trace::{Name, OpTag, Operand, Record, SymId};

/// A fully-resolved dynamic operand, ready for serialization.
#[derive(Clone, Debug)]
pub struct DynOperand {
    /// Register/variable name (`Name::None` for immediates).
    pub name: Name,
    /// Dynamic value.
    pub value: RtValue,
    /// Whether the operand is a register.
    pub is_reg: bool,
}

impl DynOperand {
    /// A register operand.
    pub fn reg(name: Name, value: RtValue) -> Self {
        DynOperand {
            name,
            value,
            is_reg: true,
        }
    }

    /// An immediate operand.
    pub fn imm(value: RtValue) -> Self {
        DynOperand {
            name: Name::None,
            value,
            is_reg: false,
        }
    }

    fn to_operand(&self, tag: OpTag) -> Operand {
        Operand {
            tag,
            bits: self.value.bit_size(),
            value: self.value.to_trace(),
            is_reg: self.is_reg,
            name: self.name,
        }
    }
}

/// Assemble one trace record.
///
/// `params` carries the `f`-tagged parameter lines of Call form 2 (empty
/// otherwise); `label` is the basic-block label except for `Alloca`, where
/// the caller passes the variable name.
#[allow(clippy::too_many_arguments)]
pub fn build_record(
    func: SymId,
    bb_loc: SrcLoc,
    label: SymId,
    opcode: u16,
    loc: SrcLoc,
    dyn_id: u64,
    operands: &[DynOperand],
    params: &[(SymId, RtValue)],
    result: Option<DynOperand>,
) -> Record {
    let mut ops: Vec<Operand> = Vec::with_capacity(operands.len() + params.len());
    for (i, op) in operands.iter().enumerate() {
        ops.push(op.to_operand(OpTag::Pos((i + 1) as u8)));
    }
    for &(pname, ref pval) in params {
        ops.push(Operand {
            tag: OpTag::Param,
            bits: pval.bit_size(),
            value: pval.to_trace(),
            is_reg: true,
            name: Name::Sym(pname),
        });
    }
    Record {
        src_line: loc.trace_line(),
        func,
        bb: (bb_loc.line, bb_loc.col),
        bb_label: label,
        opcode,
        dyn_id,
        operands: ops,
        result: result.map(|r| r.to_operand(OpTag::Result)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocheck_trace::{writer, TraceValue};

    #[test]
    fn load_record_matches_fig1_shape() {
        let r = build_record(
            SymId::intern("foo"),
            SrcLoc::new(6, 1),
            SymId::intern("11"),
            27,
            SrcLoc::new(3, 1),
            215,
            &[DynOperand::reg(
                Name::sym("p"),
                RtValue::P(0x7ffc_f3f2_5a70),
            )],
            &[],
            Some(DynOperand::reg(Name::Temp(8), RtValue::I(1))),
        );
        let mut s = String::new();
        writer::format_record(&r, &mut s);
        assert!(s.starts_with("0,3,foo,6:1,11,27,215,\n"));
        assert!(s.contains("1,64,0x7ffcf3f25a70,1,p,\n"));
        assert!(s.contains("r,64,1,1,8,\n"));
    }

    #[test]
    fn call_form2_record_has_param_lines() {
        let r = build_record(
            SymId::intern("main"),
            SrcLoc::new(21, 1),
            SymId::intern("49"),
            49,
            SrcLoc::new(17, 1),
            199,
            &[
                DynOperand::reg(Name::sym("foo"), RtValue::P(0x4009e0)),
                DynOperand::reg(Name::Temp(6), RtValue::P(0x7ffe_c14b_0db0)),
                DynOperand::reg(Name::Temp(7), RtValue::P(0x7ffe_c14b_0d80)),
            ],
            &[
                (SymId::intern("p"), RtValue::P(0x7ffe_c14b_0db0)),
                (SymId::intern("q"), RtValue::P(0x7ffe_c14b_0d80)),
            ],
            None,
        );
        assert_eq!(r.positional().count(), 3);
        let params: Vec<_> = r.params().collect();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].name, Name::sym("p"));
        assert_eq!(params[0].value, TraceValue::Ptr(0x7ffe_c14b_0db0));
        assert!(r.result.is_none());
    }

    #[test]
    fn alloca_record_carries_var_name_in_label() {
        let r = build_record(
            SymId::intern("main"),
            SrcLoc::new(0, 0),
            SymId::intern("sum"),
            26,
            SrcLoc::synthetic(),
            51,
            &[DynOperand::imm(RtValue::I(8))],
            &[],
            Some(DynOperand::reg(
                Name::sym("sum"),
                RtValue::P(0x7ffe_11de_09bc),
            )),
        );
        assert_eq!(r.src_line, -1);
        assert_eq!(r.bb_label.as_str(), "sum");
        assert_eq!(
            r.result.as_ref().unwrap().value,
            TraceValue::Ptr(0x7ffe_11de_09bc)
        );
    }
}
