//! Execution errors.

use std::fmt;

/// Why execution stopped abnormally.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The module has no `main` function.
    NoMain,
    /// A register was read before being written — an interpreter or
    /// verifier bug, not a user-program error.
    UnboundRegister {
        /// Function where it happened.
        function: String,
        /// Offending instruction index.
        inst: u32,
    },
    /// A memory access fell outside every segment.
    OutOfBounds {
        /// The faulting address.
        addr: u64,
    },
    /// Integer or float division by zero.
    DivByZero {
        /// Source line of the division.
        line: u32,
    },
    /// The configured step budget was exhausted (runaway-loop guard).
    StepLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// Call stack exceeded the configured depth.
    StackOverflow,
    /// Execution was killed by failure injection or by a hook — the
    /// simulated fail-stop (`raise(SIGTERM)` in the paper).
    Interrupted {
        /// Dynamic instruction id at which execution stopped.
        dyn_id: u64,
    },
    /// The trace sink failed (e.g. disk full).
    Sink {
        /// Description from the sink.
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoMain => write!(f, "module has no `main` function"),
            ExecError::UnboundRegister { function, inst } => {
                write!(f, "unbound register %i{inst} in `{function}`")
            }
            ExecError::OutOfBounds { addr } => write!(f, "memory access out of bounds: 0x{addr:x}"),
            ExecError::DivByZero { line } => write!(f, "division by zero at line {line}"),
            ExecError::StepLimit { limit } => write!(f, "step limit of {limit} instructions hit"),
            ExecError::StackOverflow => write!(f, "call stack overflow"),
            ExecError::Interrupted { dyn_id } => {
                write!(f, "execution interrupted at dynamic instruction {dyn_id}")
            }
            ExecError::Sink { message } => write!(f, "trace sink error: {message}"),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ExecError::NoMain.to_string().contains("main"));
        assert!(ExecError::OutOfBounds { addr: 0x40 }
            .to_string()
            .contains("0x40"));
        assert!(ExecError::Interrupted { dyn_id: 99 }
            .to_string()
            .contains("99"));
        assert!(ExecError::DivByZero { line: 7 }.to_string().contains("7"));
    }
}
